//! Offline stand-in for [rand 0.8](https://docs.rs/rand/0.8).
//!
//! The build container has no crates.io access, so this crate provides
//! the API subset the workspace uses: `rngs::StdRng`, `SeedableRng`
//! (`seed_from_u64`, `from_seed`), `RngCore`, and the `Rng` extension
//! methods `gen_range` / `gen_bool`.
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64 — fast,
//! high-quality, and fully deterministic per seed, but **not**
//! bit-compatible with upstream rand's ChaCha12-based `StdRng`.
//! Nothing in this workspace depends on upstream's exact streams, only
//! on per-seed determinism, which this guarantees.

// Vendored stand-in: exempt from the workspace lint gate.
#![allow(warnings, clippy::all)]
#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// The core of every random number generator.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A random distribution over the values of a range type.
pub trait SampleRange<T> {
    /// Samples one value; panics on an empty range (like rand 0.8).
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Converts 64 random bits into a uniform `f64` in `[0, 1)`.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let span = (self.end as i128) - (self.start as i128);
                assert!(span > 0, "cannot sample empty range");
                let v = (rng.next_u64() as u128) % (span as u128);
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                let span = (hi as i128) - (lo as i128) + 1;
                assert!(span > 0, "cannot sample empty range");
                let v = (rng.next_u64() as u128) % (span as u128);
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let v = self.start + (self.end - self.start) * unit_f64(rng);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let unit = rng.next_u64() as f64 / u64::MAX as f64;
        lo + (hi - lo) * unit
    }
}

// No `f32` range impl: a single float impl keeps `gen_range(45.0..60.0)`
// unambiguous for inference (float literals resolve to `f64`).

/// Convenience methods available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range`; panics when empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`; panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator constructible from a fixed seed.
pub trait SeedableRng: Sized {
    /// The seed byte array.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64 (deterministic).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

pub mod rngs {
    //! The standard generator.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for upstream's
    /// ChaCha12-based `StdRng`; see the crate docs).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(b);
            }
            // xoshiro must not start from the all-zero state.
            if s.iter().all(|&w| w == 0) {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&bytes[..n]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(0..10);
            assert!(v < 10);
            let f: f64 = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
            let i: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
    }

    #[test]
    fn works_through_dyn_rngcore() {
        let mut rng = StdRng::seed_from_u64(3);
        let dy: &mut dyn RngCore = &mut rng;
        let mut borrowed = dy;
        let v: usize = borrowed.gen_range(0..4);
        assert!(v < 4);
    }
}

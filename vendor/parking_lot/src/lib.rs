//! Offline stand-in for [parking_lot](https://docs.rs/parking_lot).
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API:
//! `lock()` returns the guard directly, and a panic while holding the
//! lock does not poison it for later users (the underlying std poison
//! flag is swallowed with `PoisonError::into_inner`). Performance
//! characteristics are std's, which is fine for this workspace.

// Vendored stand-in: exempt from the workspace lint gate.
#![allow(warnings, clippy::all)]
#![forbid(unsafe_code)]

use std::sync::PoisonError;

/// A mutual-exclusion lock that never poisons.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference without locking (requires `&mut`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock that never poisons.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn panic_does_not_poison() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(5);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 10);
        }
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}

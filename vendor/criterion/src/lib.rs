//! Offline stand-in for [criterion](https://docs.rs/criterion).
//!
//! Implements the API shape the workspace's benches use — `Criterion`,
//! `BenchmarkGroup`, `Bencher`, `BenchmarkId`, `Throughput`, and the
//! `criterion_group!`/`criterion_main!` macros — with a simple
//! wall-clock measurement loop instead of criterion's statistical
//! machinery. Each benchmark warms up briefly, then runs batches until
//! a small time budget is spent, and prints the mean per-iteration
//! time (plus element throughput when configured).

// Vendored stand-in: exempt from the workspace lint gate.
#![allow(warnings, clippy::all)]
#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    /// Target measurement budget per benchmark.
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let quick = std::env::var("CTXRES_BENCH_QUICK").is_ok();
        Criterion {
            budget: if quick {
                Duration::from_millis(50)
            } else {
                Duration::from_millis(300)
            },
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            criterion: self,
            name: name.to_owned(),
            throughput: None,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        let report = run_bench(self.budget, &mut f);
        print_report(name, &report, None);
    }
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for criterion API compatibility; the stand-in sizes
    /// its sample count from the time budget instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Reports throughput in the given units alongside timings.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benches a closure under `<group>/<name>`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        let report = run_bench(self.criterion.budget, &mut f);
        print_report(&format!("{}/{name}", self.name), &report, self.throughput);
    }

    /// Benches a closure with an input value under the given id.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let report = run_bench(self.criterion.budget, &mut |b: &mut Bencher| f(b, input));
        print_report(&format!("{}/{id}", self.name), &report, self.throughput);
    }

    /// Ends the group (printing is incremental, so this is a no-op).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `<function_name>/<parameter>`.
    pub fn new<P: fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Just the parameter, for single-function groups.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Units for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to benchmark closures; call [`Bencher::iter`] with the code
/// under test.
#[derive(Debug)]
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it as many times as the measurement
    /// loop asks for.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

struct Report {
    mean: Duration,
}

fn run_bench<F: FnMut(&mut Bencher)>(budget: Duration, f: &mut F) -> Report {
    // Warm-up and calibration: one iteration tells us roughly how many
    // fit in the budget.
    let mut b = Bencher {
        iterations: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let per_batch = budget.as_nanos() / 4 / per_iter.as_nanos().max(1);
    let batch = per_batch.clamp(1, 1_000_000) as u64;

    let mut total = Duration::ZERO;
    let mut iterations = 0u64;
    let start = Instant::now();
    while start.elapsed() < budget {
        let mut b = Bencher {
            iterations: batch,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        total += b.elapsed;
        iterations += batch;
    }
    Report {
        mean: if iterations > 0 {
            total / iterations.max(1) as u32
        } else {
            per_iter
        },
    }
}

fn print_report(name: &str, report: &Report, throughput: Option<Throughput>) {
    let mean_ns = report.mean.as_nanos().max(1);
    let time = format_ns(mean_ns);
    match throughput {
        Some(Throughput::Elements(n)) => {
            let rate = n as f64 / (mean_ns as f64 / 1e9);
            println!("{name:<48} time: {time:>12}   thrpt: {rate:>14.0} elem/s");
        }
        Some(Throughput::Bytes(n)) => {
            let rate = n as f64 / (mean_ns as f64 / 1e9);
            println!("{name:<48} time: {time:>12}   thrpt: {rate:>14.0} B/s");
        }
        None => println!("{name:<48} time: {time:>12}"),
    }
}

fn format_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // The libtest-style `--bench` flag cargo passes is ignored.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion {
            budget: Duration::from_millis(5),
        };
        c.bench_function("spin", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(100));
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }
}

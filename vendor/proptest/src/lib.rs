//! Offline stand-in for [proptest](https://docs.rs/proptest).
//!
//! Covers the API subset this workspace's property tests use:
//!
//! * `Strategy` with `prop_map` / `prop_filter` / `prop_recursive`;
//! * `any::<T>()`, `Just`, integer range strategies, tuple strategies,
//!   `collection::vec`, `option::of`, `bool::weighted`, and
//!   regex-subset string strategies (`"[a-z][a-z0-9_]{0,6}"`);
//! * the `proptest!`, `prop_oneof!`, `prop_assert!`, and
//!   `prop_assert_eq!` macros and `ProptestConfig::with_cases`.
//!
//! Differences from real proptest: generation is driven by a fixed
//! deterministic seed (no `PROPTEST_*` env vars), and there is **no
//! shrinking** — a failing case reports its inputs' Debug rendering via
//! the panic message only when the assertion formats them itself.

// Vendored stand-in: exempt from the workspace lint gate.
#![allow(warnings, clippy::all)]
#![forbid(unsafe_code)]

#[doc(hidden)]
pub mod __rng {
    pub use rand::rngs::StdRng;
    pub use rand::{Rng, SeedableRng};
}

use rand::rngs::StdRng;
use rand::Rng;
use std::sync::Arc;

pub mod test_runner {
    //! Test-runner configuration.

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Real proptest defaults to 256; 64 keeps offline CI fast
            // while still exercising the properties broadly.
            ProptestConfig { cases: 64 }
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use super::*;

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { strategy: self, f }
        }

        /// Rejects values failing `pred`, regenerating until one
        /// passes (panics after 10 000 consecutive rejections).
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            reason: &'static str,
            pred: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                strategy: self,
                reason,
                pred,
            }
        }

        /// Builds a recursive strategy: `self` is the leaf case and
        /// `recurse` wraps an inner strategy one level deeper. The
        /// result picks uniformly among all `depth + 1` nesting levels.
        /// `desired_size`/`expected_branch_size` are accepted for
        /// upstream API compatibility but unused.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let mut levels: Vec<BoxedStrategy<Self::Value>> = vec![self.boxed()];
            for _ in 0..depth {
                let inner = levels.last().expect("levels is never empty").clone();
                levels.push(recurse(inner).boxed());
            }
            Union::new(levels).boxed()
        }

        /// Type-erases the strategy behind an `Arc`.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Arc::new(self))
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut StdRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Object-safe generation, used by [`BoxedStrategy`].
    trait DynStrategy<T> {
        fn dyn_generate(&self, rng: &mut StdRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn dyn_generate(&self, rng: &mut StdRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A cloneable, type-erased strategy.
    pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<T> std::fmt::Debug for BoxedStrategy<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("BoxedStrategy { .. }")
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            self.0.dyn_generate(rng)
        }
    }

    /// Always generates a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) strategy: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            (self.f)(self.strategy.generate(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Debug, Clone)]
    pub struct Filter<S, F> {
        pub(crate) strategy: S,
        pub(crate) reason: &'static str,
        pub(crate) pred: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;

        fn generate(&self, rng: &mut StdRng) -> S::Value {
            for _ in 0..10_000 {
                let v = self.strategy.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter rejected 10000 consecutive values: {}",
                self.reason
            );
        }
    }

    /// Picks uniformly among several strategies (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over `options`; panics when empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            let i = rng.gen_range(0..self.options.len());
            self.options[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($n:tt $s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$n.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (0 A)
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
        (0 A, 1 B, 2 C, 3 D, 4 E)
    }

    // String strategies from regex-subset literals.
    impl Strategy for str {
        type Value = String;

        fn generate(&self, rng: &mut StdRng) -> String {
            crate::string_gen::generate(self, rng)
        }
    }
}

mod string_gen {
    //! Generates strings from the regex subset the workspace's test
    //! patterns use: literal chars, `[...]` classes with ranges, `\PC`
    //! (printable), and `{n}` / `{m,n}` quantifiers.

    use rand::rngs::StdRng;
    use rand::Rng;

    struct Atom {
        /// Inclusive char ranges this atom may emit.
        ranges: Vec<(u32, u32)>,
        min: usize,
        max: usize,
    }

    pub fn generate(pattern: &str, rng: &mut StdRng) -> String {
        let atoms = parse(pattern);
        let mut out = String::new();
        for atom in &atoms {
            let n = rng.gen_range(atom.min..=atom.max);
            let total: u32 = atom.ranges.iter().map(|(lo, hi)| hi - lo + 1).sum();
            for _ in 0..n {
                let mut pick = rng.gen_range(0..total);
                for &(lo, hi) in &atom.ranges {
                    let span = hi - lo + 1;
                    if pick < span {
                        out.push(char::from_u32(lo + pick).expect("ranges hold valid scalars"));
                        break;
                    }
                    pick -= span;
                }
            }
        }
        out
    }

    fn parse(pattern: &str) -> Vec<Atom> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut atoms = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let ranges = match chars[i] {
                '[' => {
                    i += 1;
                    let mut ranges = Vec::new();
                    while i < chars.len() && chars[i] != ']' {
                        let c = chars[i];
                        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                            ranges.push((c as u32, chars[i + 2] as u32));
                            i += 3;
                        } else {
                            ranges.push((c as u32, c as u32));
                            i += 1;
                        }
                    }
                    assert!(i < chars.len(), "unterminated [ in pattern {pattern:?}");
                    i += 1; // ']'
                    ranges
                }
                '\\' => {
                    // `\PC` and friends: approximate every class escape
                    // as "printable ASCII".
                    i += 1;
                    if i < chars.len() {
                        i += 1;
                        if i < chars.len() && chars[i - 1] == 'P' {
                            i += 1; // the category letter
                        }
                    }
                    vec![(' ' as u32, '~' as u32)]
                }
                c => {
                    i += 1;
                    vec![(c as u32, c as u32)]
                }
            };
            let (min, max) = if i < chars.len() && chars[i] == '{' {
                i += 1;
                let start = i;
                while i < chars.len() && chars[i] != '}' {
                    i += 1;
                }
                assert!(i < chars.len(), "unterminated {{ in pattern {pattern:?}");
                let body: String = chars[start..i].iter().collect();
                i += 1; // '}'
                match body.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse().expect("quantifier min"),
                        n.trim().parse().expect("quantifier max"),
                    ),
                    None => {
                        let n = body.trim().parse().expect("quantifier count");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            atoms.push(Atom { ranges, min, max });
        }
        atoms
    }
}

pub mod arbitrary {
    //! `any::<T>()` support.

    use super::strategy::Strategy;
    use super::*;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Generates one arbitrary value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> $t {
                    use rand::RngCore;
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> bool {
            use rand::RngCore;
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut StdRng) -> f64 {
            // Finite, roughly symmetric around zero.
            rng.gen_range(-1.0e9..1.0e9)
        }
    }

    /// Strategy generating the full range of `T` (see [`any`]).
    #[derive(Debug, Clone)]
    pub struct Any<T> {
        _marker: std::marker::PhantomData<fn() -> T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::*;

    /// Acceptable size arguments for [`vec`]: an exact count, a
    /// half-open range, or an inclusive range.
    pub trait IntoSizeRange {
        /// Converts to inclusive `(min, max)`.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for std::ops::RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// Generates `Vec`s of `element` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.min..=self.max);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use super::strategy::Strategy;
    use super::*;

    /// Generates `Some` three times out of four (like upstream).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
            if rng.gen_bool(0.75) {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

pub mod bool {
    //! `bool` strategies.

    use super::strategy::Strategy;
    use super::*;

    /// Generates `true` with probability `p`.
    pub fn weighted(p: f64) -> Weighted {
        Weighted { p }
    }

    /// See [`weighted`].
    #[derive(Debug, Clone)]
    pub struct Weighted {
        p: f64,
    }

    impl Strategy for Weighted {
        type Value = ::core::primitive::bool;

        fn generate(&self, rng: &mut StdRng) -> ::core::primitive::bool {
            rng.gen_bool(self.p)
        }
    }
}

pub mod prelude {
    //! The usual imports: `use proptest::prelude::*;`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Runs property test functions: each `fn name(arg in strategy, ...)`
/// becomes a `#[test]` looping over `ProptestConfig::cases` random
/// cases with a fixed deterministic seed.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            (<$crate::test_runner::ProptestConfig as ::core::default::Default>::default())
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr) ) => {};
    ( ($config:expr)
      $(#[$meta:meta])*
      fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            let mut __rng = <$crate::__rng::StdRng as $crate::__rng::SeedableRng>::seed_from_u64(
                0x5EED_0000_u64 ^ (stringify!($name).len() as u64),
            );
            for __case in 0..__config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut __rng);)+
                let __outcome = (|| -> ::std::result::Result<(), ::std::string::String> {
                    $body
                    Ok(())
                })();
                if let ::std::result::Result::Err(__msg) = __outcome {
                    panic!("property {} failed at case {}: {}", stringify!($name), __case, __msg);
                }
            }
        }
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
}

/// Picks uniformly among several strategies for the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(
                format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err(
                format!("assertion failed: {:?} != {:?}", __l, __r),
            );
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err(
                format!("{}: {:?} != {:?}", format!($($fmt)+), __l, __r),
            );
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        if __l == __r {
            return ::std::result::Result::Err(format!("assertion failed: {:?} == {:?}", __l, __r));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn string_patterns_match_shape() {
        use crate::strategy::Strategy;
        let mut rng = <crate::__rng::StdRng as crate::__rng::SeedableRng>::seed_from_u64(1);
        for _ in 0..200 {
            let s = "[a-z][a-z0-9_]{0,6}".generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 7, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 0usize..10, y in -5i64..=5, b in any::<bool>()) {
            prop_assert!(x < 10);
            prop_assert!((-5..=5).contains(&y));
            let _ = b;
        }

        #[test]
        fn vec_sizes_respect_bounds(v in crate::collection::vec(0u8..4, 2..6)) {
            prop_assert!((2..6).contains(&v.len()), "len {}", v.len());
            prop_assert!(v.iter().all(|&b| b < 4));
        }

        #[test]
        fn oneof_and_filter_compose(
            n in prop_oneof![Just(1i32), Just(2), (10i32..20)].prop_filter("nonzero", |n| *n != 0)
        ) {
            prop_assert!(n == 1 || n == 2 || (10..20).contains(&n));
        }
    }
}

//! Offline stand-in for [crossbeam](https://docs.rs/crossbeam).
//!
//! Provides `crossbeam::channel` — multi-producer multi-consumer
//! bounded/unbounded channels with crossbeam's disconnect semantics —
//! implemented over `std::sync` mutex + condvars. Throughput is far
//! below real crossbeam's lock-free queues, but the semantics the
//! workspace relies on are preserved:
//!
//! * dropping every `Sender` lets receivers drain the queue, then
//!   `recv` returns `Err(RecvError)` (so `for x in rx` terminates);
//! * dropping every `Receiver` makes `send` fail with the value
//!   returned in `SendError` (so producers notice and stop);
//! * bounded channels block producers at capacity.

// Vendored stand-in: exempt from the workspace lint gate.
#![allow(warnings, clippy::all)]
#![forbid(unsafe_code)]

pub mod channel {
    //! MPMC channels (stand-in for `crossbeam-channel`).

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex, PoisonError};

    struct Inner<T> {
        queue: VecDeque<T>,
        cap: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone;
    /// carries the unsent value.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T: fmt::Debug> std::error::Error for SendError<T> {}

    /// Error returned by [`Receiver::recv`] when the channel is empty
    /// and every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    f.write_str("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for TryRecvError {}

    /// The sending half of a channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Creates a channel holding at most `cap` in-flight messages.
    ///
    /// Real crossbeam's `bounded(0)` is a rendezvous channel; this
    /// stand-in approximates it with capacity 1.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        make(Some(cap.max(1)))
    }

    /// Creates a channel with no capacity bound.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        make(None)
    }

    fn make<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                cap,
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Shared<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, Inner<T>> {
            self.inner.lock().unwrap_or_else(PoisonError::into_inner)
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, blocking while the channel is full.
        ///
        /// # Errors
        ///
        /// Returns the message when every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut inner = self.shared.lock();
            loop {
                if inner.receivers == 0 {
                    return Err(SendError(value));
                }
                let full = inner.cap.is_some_and(|c| inner.queue.len() >= c);
                if !full {
                    inner.queue.push_back(value);
                    drop(inner);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
                inner = self
                    .shared
                    .not_full
                    .wait(inner)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.lock().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.lock();
            inner.senders -= 1;
            let last = inner.senders == 0;
            drop(inner);
            if last {
                // Wake receivers blocked on an empty queue so they can
                // observe the disconnect.
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Receives a message, blocking while the channel is empty.
        ///
        /// # Errors
        ///
        /// Fails once the channel is empty and every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.shared.lock();
            loop {
                if let Some(value) = inner.queue.pop_front() {
                    drop(inner);
                    self.shared.not_full.notify_one();
                    return Ok(value);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self
                    .shared
                    .not_empty
                    .wait(inner)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Receives without blocking.
        ///
        /// # Errors
        ///
        /// [`TryRecvError::Empty`] when nothing is queued yet,
        /// [`TryRecvError::Disconnected`] after the last sender is gone.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = self.shared.lock();
            if let Some(value) = inner.queue.pop_front() {
                drop(inner);
                self.shared.not_full.notify_one();
                Ok(value)
            } else if inner.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// A blocking iterator that ends when the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.lock().receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.lock();
            inner.receivers -= 1;
            let last = inner.receivers == 0;
            drop(inner);
            if last {
                // Wake producers blocked on a full queue so their sends
                // can fail fast.
                self.shared.not_full.notify_all();
            }
        }
    }

    /// Borrowing message iterator (see [`Receiver::iter`]).
    #[derive(Debug)]
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    /// Owning message iterator.
    #[derive(Debug)]
    pub struct IntoIter<T> {
        receiver: Receiver<T>,
    }

    impl<T> Iterator for IntoIter<T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;

        fn into_iter(self) -> IntoIter<T> {
            IntoIter { receiver: self }
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;

        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_within_a_sender() {
            let (tx, rx) = unbounded();
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            assert_eq!(rx.iter().collect::<Vec<_>>(), (0..100).collect::<Vec<_>>());
        }

        #[test]
        fn recv_fails_after_all_senders_drop() {
            let (tx, rx) = unbounded::<i32>();
            tx.send(1).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_fails_after_receiver_drops() {
            let (tx, rx) = bounded(4);
            drop(rx);
            assert_eq!(tx.send(7), Err(SendError(7)));
        }

        #[test]
        fn bounded_blocks_until_drained() {
            let (tx, rx) = bounded(2);
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            let producer = std::thread::spawn(move || tx.send(3));
            assert_eq!(rx.recv(), Ok(1));
            producer.join().unwrap().unwrap();
            assert_eq!(rx.iter().collect::<Vec<_>>(), vec![2, 3]);
        }

        #[test]
        fn multi_producer_multi_consumer() {
            let (tx, rx) = unbounded();
            let producers: Vec<_> = (0..4)
                .map(|p| {
                    let tx = tx.clone();
                    std::thread::spawn(move || {
                        for i in 0..250 {
                            tx.send(p * 1000 + i).unwrap();
                        }
                    })
                })
                .collect();
            drop(tx);
            let consumers: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    std::thread::spawn(move || rx.iter().count())
                })
                .collect();
            drop(rx);
            for p in producers {
                p.join().unwrap();
            }
            let total: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
            assert_eq!(total, 1000);
        }
    }
}

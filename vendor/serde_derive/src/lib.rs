//! Offline stand-in for [serde_derive](https://serde.rs/derive.html).
//!
//! The build container has no crates.io access, so `syn`/`quote` are
//! unavailable; this crate hand-parses the `proc_macro::TokenStream`
//! of the deriving item and emits the impl as a source string, which
//! `str::parse::<TokenStream>()` re-tokenizes.
//!
//! Supported shapes (everything this workspace derives on):
//!
//! * structs with named fields, tuple/newtype structs, unit structs;
//! * enums with unit, newtype, tuple, and struct variants
//!   (externally tagged, like real serde's default representation);
//! * no generics, no lifetimes, no `#[serde(...)]` attributes.
//!
//! The generated code routes through `serde::__private`, which builds
//! and consumes `serde::Value` trees.

// Vendored stand-in: exempt from the workspace lint gate.
#![allow(warnings, clippy::all)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Item {
    name: String,
    data: Data,
}

enum Data {
    NamedStruct(Vec<String>),
    /// Arity of a tuple struct (1 ⇒ newtype, serialized transparently).
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Fields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// Derives `serde::ser::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl must parse")
}

/// Derives `serde::de::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl must parse")
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let mut it = input.into_iter().peekable();
    // Skip outer attributes (`#[...]`, incl. doc comments) and
    // visibility until the `struct` / `enum` keyword.
    let kind = loop {
        match it.next().expect("expected `struct` or `enum`") {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                it.next(); // the bracketed attribute body
            }
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    break s;
                }
                // `pub` — a following `(crate)` group falls to `_`.
            }
            _ => {}
        }
    };
    let name = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected type name, found {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = it.peek() {
        if p.as_char() == '<' {
            panic!("the vendored serde_derive does not support generic types");
        }
    }
    let data = if kind == "struct" {
        match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Data::TupleStruct(count_top_level_items(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Data::UnitStruct,
            other => panic!("unsupported struct body: {other:?}"),
        }
    } else {
        match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Enum(parse_variants(g.stream()))
            }
            other => panic!("unsupported enum body: {other:?}"),
        }
    };
    Item { name, data }
}

/// Extracts field names from a `{ ... }` body, skipping attributes,
/// visibility, and types. Commas inside generic arguments
/// (`BTreeMap<String, ContextValue>`) are not field separators, so the
/// type skipper tracks angle-bracket depth; bracketed/parenthesized
/// type components arrive as atomic `Group` tokens and need no care.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut it = stream.into_iter().peekable();
    loop {
        let name = loop {
            match it.next() {
                None => return fields,
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    it.next();
                }
                Some(TokenTree::Ident(id)) => {
                    let s = id.to_string();
                    if s != "pub" {
                        break s;
                    }
                }
                Some(TokenTree::Group(_)) => {} // `(crate)` after `pub`
                Some(other) => panic!("unexpected token before field name: {other}"),
            }
        };
        fields.push(name);
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field name, found {other:?}"),
        }
        let mut depth = 0i32;
        loop {
            match it.next() {
                None => return fields,
                Some(TokenTree::Punct(p)) => match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => break,
                    _ => {}
                },
                Some(_) => {}
            }
        }
    }
}

/// Counts comma-separated items at angle-bracket depth 0, tolerating a
/// trailing comma (tuple-struct / tuple-variant arity).
fn count_top_level_items(stream: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut items = 0usize;
    let mut in_item = false;
    for tt in stream {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    if in_item {
                        items += 1;
                        in_item = false;
                    }
                    continue;
                }
                _ => {}
            }
        }
        in_item = true;
    }
    if in_item {
        items += 1;
    }
    items
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut it = stream.into_iter().peekable();
    loop {
        // Skip attributes (e.g. `#[default]`) up to the variant name.
        let name = loop {
            match it.next() {
                None => return variants,
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    it.next();
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                Some(other) => panic!("unexpected token in variant list: {other}"),
            }
        };
        let fields = match it.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let f = Fields::Tuple(count_top_level_items(g.stream()));
                it.next();
                f
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = Fields::Named(parse_named_fields(g.stream()));
                it.next();
                f
            }
            _ => Fields::Unit,
        };
        variants.push(Variant { name, fields });
        // Skip to the next top-level comma (also swallows explicit
        // discriminants, which serialization ignores).
        loop {
            match it.next() {
                None => return variants,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' => break,
                Some(_) => {}
            }
        }
    }
}

// ---------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------

const SER_ERR: &str = "|e| <S::Error as serde::ser::Error>::custom(e)";
const DE_ERR: &str = "|e| <D::Error as serde::de::Error>::custom(e)";

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.data {
        Data::NamedStruct(fields) => {
            let mut s = String::from("let mut __m: Vec<(String, serde::Value)> = Vec::new();\n");
            for f in fields {
                s.push_str(&format!(
                    "__m.push((String::from(\"{f}\"), \
                     serde::__private::to_value(&self.{f}).map_err({SER_ERR})?));\n"
                ));
            }
            s.push_str("serializer.serialize_value(serde::Value::Map(__m))");
            s
        }
        Data::TupleStruct(1) => format!(
            "let __v = serde::__private::to_value(&self.0).map_err({SER_ERR})?;\n\
             serializer.serialize_value(__v)"
        ),
        Data::TupleStruct(n) => {
            let mut s = String::from("let mut __s: Vec<serde::Value> = Vec::new();\n");
            for i in 0..*n {
                s.push_str(&format!(
                    "__s.push(serde::__private::to_value(&self.{i}).map_err({SER_ERR})?);\n"
                ));
            }
            s.push_str("serializer.serialize_value(serde::Value::Seq(__s))");
            s
        }
        Data::UnitStruct => "serializer.serialize_value(serde::Value::Null)".to_owned(),
        Data::Enum(variants) => {
            let mut s = String::from("match self {\n");
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => s.push_str(&format!(
                        "{name}::{vn} => serializer.serialize_str(\"{vn}\"),\n"
                    )),
                    Fields::Tuple(1) => s.push_str(&format!(
                        "{name}::{vn}(__f0) => {{\n\
                         let __p = serde::__private::to_value(__f0).map_err({SER_ERR})?;\n\
                         serializer.serialize_value(serde::Value::Map(vec![(String::from(\"{vn}\"), __p)]))\n\
                         }}\n"
                    )),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let mut arm = format!(
                            "{name}::{vn}({}) => {{\n\
                             let mut __s: Vec<serde::Value> = Vec::new();\n",
                            binds.join(", ")
                        );
                        for b in &binds {
                            arm.push_str(&format!(
                                "__s.push(serde::__private::to_value({b}).map_err({SER_ERR})?);\n"
                            ));
                        }
                        arm.push_str(&format!(
                            "serializer.serialize_value(serde::Value::Map(vec![\
                             (String::from(\"{vn}\"), serde::Value::Seq(__s))]))\n}}\n"
                        ));
                        s.push_str(&arm);
                    }
                    Fields::Named(fields) => {
                        let mut arm = format!(
                            "{name}::{vn} {{ {} }} => {{\n\
                             let mut __m: Vec<(String, serde::Value)> = Vec::new();\n",
                            fields.join(", ")
                        );
                        for f in fields {
                            arm.push_str(&format!(
                                "__m.push((String::from(\"{f}\"), \
                                 serde::__private::to_value({f}).map_err({SER_ERR})?));\n"
                            ));
                        }
                        arm.push_str(&format!(
                            "serializer.serialize_value(serde::Value::Map(vec![\
                             (String::from(\"{vn}\"), serde::Value::Map(__m))]))\n}}\n"
                        ));
                        s.push_str(&arm);
                    }
                }
            }
            s.push('}');
            s
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(warnings, clippy::all)]\n\
         impl serde::ser::Serialize for {name} {{\n\
         fn serialize<S: serde::ser::Serializer>(&self, serializer: S) \
         -> Result<S::Ok, S::Error> {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.data {
        Data::NamedStruct(fields) => {
            let mut s = format!(
                "let mut __m = serde::__private::expect_map(deserializer.take_value()?)\
                 .map_err({DE_ERR})?;\nOk({name} {{\n"
            );
            for f in fields {
                s.push_str(&format!(
                    "{f}: serde::__private::field(&mut __m, \"{f}\").map_err({DE_ERR})?,\n"
                ));
            }
            s.push_str("})");
            s
        }
        Data::TupleStruct(1) => format!(
            "Ok({name}(serde::__private::from_value(deserializer.take_value()?)\
             .map_err({DE_ERR})?))"
        ),
        Data::TupleStruct(n) => {
            let mut s = format!(
                "let __s = serde::__private::expect_seq(deserializer.take_value()?, {n})\
                 .map_err({DE_ERR})?;\nlet mut __it = __s.into_iter();\nOk({name}("
            );
            for _ in 0..*n {
                s.push_str(&format!(
                    "serde::__private::from_value(__it.next().expect(\"length checked\"))\
                     .map_err({DE_ERR})?, "
                ));
            }
            s.push_str("))");
            s
        }
        Data::UnitStruct => format!("let _ = deserializer.take_value()?;\nOk({name})"),
        Data::Enum(variants) => {
            let mut s = format!(
                "let (__name, __payload) = \
                 serde::__private::variant(deserializer.take_value()?).map_err({DE_ERR})?;\n\
                 match __name.as_str() {{\n"
            );
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => s.push_str(&format!(
                        "\"{vn}\" => {{ let _ = __payload; Ok({name}::{vn}) }}\n"
                    )),
                    Fields::Tuple(1) => s.push_str(&format!(
                        "\"{vn}\" => Ok({name}::{vn}(\
                         serde::__private::from_value(__payload).map_err({DE_ERR})?)),\n"
                    )),
                    Fields::Tuple(n) => {
                        let mut arm = format!(
                            "\"{vn}\" => {{\n\
                             let __s = serde::__private::expect_seq(__payload, {n})\
                             .map_err({DE_ERR})?;\n\
                             let mut __it = __s.into_iter();\nOk({name}::{vn}("
                        );
                        for _ in 0..*n {
                            arm.push_str(&format!(
                                "serde::__private::from_value(__it.next()\
                                 .expect(\"length checked\")).map_err({DE_ERR})?, "
                            ));
                        }
                        arm.push_str("))\n}\n");
                        s.push_str(&arm);
                    }
                    Fields::Named(fields) => {
                        let mut arm = format!(
                            "\"{vn}\" => {{\n\
                             let mut __m = serde::__private::expect_map(__payload)\
                             .map_err({DE_ERR})?;\nOk({name}::{vn} {{\n"
                        );
                        for f in fields {
                            arm.push_str(&format!(
                                "{f}: serde::__private::field(&mut __m, \"{f}\")\
                                 .map_err({DE_ERR})?,\n"
                            ));
                        }
                        arm.push_str("})\n}\n");
                        s.push_str(&arm);
                    }
                }
            }
            s.push_str(&format!(
                "__other => Err(<D::Error as serde::de::Error>::custom(\
                 format!(\"unknown {name} variant {{__other:?}}\")))\n}}"
            ));
            s
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(warnings, clippy::all)]\n\
         impl<'de> serde::de::Deserialize<'de> for {name} {{\n\
         fn deserialize<D: serde::de::Deserializer<'de>>(deserializer: D) \
         -> Result<Self, D::Error> {{\n{body}\n}}\n}}\n"
    )
}

//! Offline stand-in for [serde_json](https://docs.rs/serde_json).
//!
//! Serializes the vendored serde's [`serde::Value`] tree to JSON text
//! and parses JSON text back into it. Exposes the three entry points
//! this workspace uses: [`to_string`], [`to_string_pretty`], and
//! [`from_str`].
//!
//! Formatting matches real serde_json closely enough for this repo's
//! purposes: compact output has no whitespace, pretty output indents
//! with two spaces, floats print via `{:?}` (which keeps a decimal
//! point, e.g. `1.0`), and non-finite floats serialize as `null`.

// Vendored stand-in: exempt from the workspace lint gate.
#![allow(warnings, clippy::all)]
#![forbid(unsafe_code)]

use serde::{de, ser, Value};
use std::fmt;

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Returns an error when the value's `Serialize` impl fails.
pub fn to_string<T: ser::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let tree = serde::__private::to_value(value).map_err(|e| Error(e.to_string()))?;
    let mut out = String::new();
    write_compact(&tree, &mut out);
    Ok(out)
}

/// Serializes a value to two-space-indented JSON.
///
/// # Errors
///
/// Returns an error when the value's `Serialize` impl fails.
pub fn to_string_pretty<T: ser::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let tree = serde::__private::to_value(value).map_err(|e| Error(e.to_string()))?;
    let mut out = String::new();
    write_pretty(&tree, 0, &mut out);
    Ok(out)
}

/// Parses JSON text into any deserializable type.
///
/// # Errors
///
/// Returns an error on malformed JSON, trailing input, or a shape the
/// target type rejects.
pub fn from_str<T: de::DeserializeOwned>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let tree = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    serde::__private::from_value(tree).map_err(|e| Error(e.to_string()))
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

fn write_compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::U64(u) => out.push_str(&u.to_string()),
        Value::F64(f) => write_f64(*f, out),
        Value::Str(s) => write_escaped(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_compact(item, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(v: &Value, indent: usize, out: &mut String) {
    match v {
        Value::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(indent + 1, out);
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            push_indent(indent, out);
            out.push(']');
        }
        Value::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(indent + 1, out);
                write_escaped(k, out);
                out.push_str(": ");
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            push_indent(indent, out);
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

fn push_indent(n: usize, out: &mut String) {
    for _ in 0..n {
        out.push_str("  ");
    }
}

fn write_f64(f: f64, out: &mut String) {
    if f.is_finite() {
        // `{:?}` keeps a trailing `.0` on integral floats, matching
        // serde_json's round-trippable float formatting.
        out.push_str(&format!("{f:?}"));
    } else {
        out.push_str("null");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => {
                            return Err(Error(format!("expected ',' or ']' at byte {}", self.pos)))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => {
                            return Err(Error(format!("expected ',' or '}}' at byte {}", self.pos)))
                        }
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let first = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&first) {
                                // Surrogate pair.
                                if !self.eat_keyword("\\u") {
                                    return Err(Error("lone leading surrogate".into()));
                                }
                                let second = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&second) {
                                    return Err(Error("invalid trailing surrogate".into()));
                                }
                                0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00)
                            } else {
                                first
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error(format!("invalid \\u{code:04x}")))?,
                            );
                            // parse_hex4 leaves pos past the digits.
                            continue;
                        }
                        other => {
                            return Err(Error(format!(
                                "invalid escape {:?}",
                                other.map(|b| b as char)
                            )))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume the whole unescaped run in one go. The
                    // delimiters (quote, backslash) are ASCII, so the
                    // byte scan can never split a multi-byte scalar,
                    // and validating only the run keeps parsing linear
                    // in the document size.
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| Error("invalid UTF-8 in string".into()))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error("truncated \\u escape".into()));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error("invalid \\u escape".into()))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| Error("invalid \\u escape".into()))?;
        self.pos = end;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error(format!("invalid number {text:?}")))
        } else if let Ok(i) = text.parse::<i64>() {
            Ok(Value::I64(i))
        } else if let Ok(u) = text.parse::<u64>() {
            Ok(Value::U64(u))
        } else {
            // Integer overflow: fall back to float like serde_json's
            // arbitrary-precision-off behavior.
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error(format!("invalid number {text:?}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_containers() {
        let v: Vec<i64> = from_str("[1, -2, 3]").unwrap();
        assert_eq!(v, vec![1, -2, 3]);
        assert_eq!(to_string(&v).unwrap(), "[1,-2,3]");
        let s: String = from_str(r#""a\nbA""#).unwrap();
        assert_eq!(s, "a\nbA");
        let f: f64 = from_str("2.5e1").unwrap();
        assert!((f - 25.0).abs() < 1e-12);
    }

    #[test]
    fn floats_keep_their_decimal_point() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
    }

    #[test]
    fn pretty_indents_with_two_spaces() {
        let v: Vec<i64> = vec![1];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1\n]");
    }

    #[test]
    fn trailing_garbage_is_an_error() {
        assert!(from_str::<i64>("1 x").is_err());
    }
}

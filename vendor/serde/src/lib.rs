//! Offline stand-in for [serde](https://serde.rs).
//!
//! The build container for this repository has no access to crates.io,
//! so the workspace vendors a minimal, self-contained implementation of
//! the serde API surface it actually uses:
//!
//! * `#[derive(Serialize, Deserialize)]` on plain structs (named,
//!   tuple, newtype, unit) and enums (unit, newtype, tuple and struct
//!   variants) without generics or `#[serde(...)]` attributes;
//! * manual impls written against `Serializer::serialize_str` /
//!   `Deserialize::deserialize` (see `ContextKind` in `ctxres-context`);
//! * generic bounds `T: Serialize` / `T: de::DeserializeOwned`.
//!
//! Unlike real serde's visitor-driven streaming data model, this
//! implementation routes everything through an owned [`Value`] tree:
//! serializers receive a fully built `Value`, deserializers hand one
//! out. That is slower and less general than serde proper, but it is
//! dependency-free, deterministic, and sufficient for the JSON
//! round-tripping this workspace performs.

// Vendored stand-in: exempt from the workspace lint gate.
#![allow(warnings, clippy::all)]
#![forbid(unsafe_code)]

use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data-model tree every serializer consumes and
/// every deserializer produces.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` / a `None`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer that does not fit `i64`.
    U64(u64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// A sequence.
    Seq(Vec<Value>),
    /// A map with string keys, in insertion order.
    Map(Vec<(String, Value)>),
}

/// Error produced while building or consuming a [`Value`] tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValueError(pub String);

impl fmt::Display for ValueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ValueError {}

pub mod ser {
    //! Serialization traits.

    use super::Value;
    use std::fmt::Display;

    /// Errors a serializer may produce.
    pub trait Error: Sized {
        /// Builds an error from any displayable message.
        fn custom<T: Display>(msg: T) -> Self;
    }

    impl Error for super::ValueError {
        fn custom<T: Display>(msg: T) -> Self {
            super::ValueError(msg.to_string())
        }
    }

    /// A data format that can consume a [`Value`] tree.
    pub trait Serializer: Sized {
        /// Output of a successful serialization.
        type Ok;
        /// Error type.
        type Error: Error;

        /// Consumes a fully built value tree.
        fn serialize_value(self, value: Value) -> Result<Self::Ok, Self::Error>;

        /// Serializes a string (convenience used by manual impls).
        fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error> {
            self.serialize_value(Value::Str(v.to_owned()))
        }

        /// Serializes a boolean.
        fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error> {
            self.serialize_value(Value::Bool(v))
        }

        /// Serializes a signed integer.
        fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error> {
            self.serialize_value(Value::I64(v))
        }

        /// Serializes an unsigned integer.
        fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error> {
            self.serialize_value(if let Ok(i) = i64::try_from(v) {
                Value::I64(i)
            } else {
                Value::U64(v)
            })
        }

        /// Serializes a float.
        fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error> {
            self.serialize_value(Value::F64(v))
        }
    }

    /// A type that can serialize itself into any [`Serializer`].
    pub trait Serialize {
        /// Serializes `self`.
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
    }
}

pub mod de {
    //! Deserialization traits.

    use super::Value;
    use std::fmt::Display;

    /// Errors a deserializer may produce.
    pub trait Error: Sized {
        /// Builds an error from any displayable message.
        fn custom<T: Display>(msg: T) -> Self;
    }

    impl Error for super::ValueError {
        fn custom<T: Display>(msg: T) -> Self {
            super::ValueError(msg.to_string())
        }
    }

    /// A data format that can produce a [`Value`] tree.
    pub trait Deserializer<'de>: Sized {
        /// Error type.
        type Error: Error;

        /// Yields the underlying value tree.
        fn take_value(self) -> Result<Value, Self::Error>;
    }

    /// A type constructible from any [`Deserializer`].
    pub trait Deserialize<'de>: Sized {
        /// Deserializes `Self`.
        fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
    }

    /// A type deserializable without borrowing from the input.
    pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
    impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}
}

pub use de::{Deserialize as _DeserializeTrait, Deserializer};
pub use ser::{Serialize as _SerializeTrait, Serializer};

// The trait names must be importable as `serde::Serialize` /
// `serde::Deserialize` *alongside* the derive macros of the same name
// (type vs macro namespace), exactly like real serde.
pub use de::Deserialize;
pub use ser::Serialize;

/// Serializer that captures the value tree (used by `to_value`).
struct ValueCapture;

impl ser::Serializer for ValueCapture {
    type Ok = Value;
    type Error = ValueError;

    fn serialize_value(self, value: Value) -> Result<Value, ValueError> {
        Ok(value)
    }
}

/// Deserializer over an owned value tree (used by `from_value`).
struct ValueDeserializer(Value);

impl<'de> de::Deserializer<'de> for ValueDeserializer {
    type Error = ValueError;

    fn take_value(self) -> Result<Value, ValueError> {
        Ok(self.0)
    }
}

#[doc(hidden)]
pub mod __private {
    //! Helpers the derive macros and `serde_json` generate calls to.
    //! Not a public API.

    use super::{de, ser};
    pub use super::{Value, ValueError};

    /// Serializes any `Serialize` into a value tree.
    pub fn to_value<T: ser::Serialize + ?Sized>(v: &T) -> Result<Value, ValueError> {
        v.serialize(super::ValueCapture)
    }

    /// Deserializes any `DeserializeOwned` out of a value tree.
    pub fn from_value<T: de::DeserializeOwned>(v: Value) -> Result<T, ValueError> {
        T::deserialize(super::ValueDeserializer(v))
    }

    /// Unwraps a map value (derived struct deserialization).
    pub fn expect_map(v: Value) -> Result<Vec<(String, Value)>, ValueError> {
        match v {
            Value::Map(m) => Ok(m),
            other => Err(ValueError(format!("expected map, found {other:?}"))),
        }
    }

    /// Unwraps a sequence of exactly `n` elements (derived tuple
    /// structs/variants).
    pub fn expect_seq(v: Value, n: usize) -> Result<Vec<Value>, ValueError> {
        match v {
            Value::Seq(s) if s.len() == n => Ok(s),
            Value::Seq(s) => Err(ValueError(format!(
                "expected {n} elements, found {}",
                s.len()
            ))),
            other => Err(ValueError(format!("expected sequence, found {other:?}"))),
        }
    }

    /// Removes and deserializes a named field; a missing key
    /// deserializes as `Null` (so `Option` fields tolerate absence).
    pub fn field<T: de::DeserializeOwned>(
        map: &mut Vec<(String, Value)>,
        name: &str,
    ) -> Result<T, ValueError> {
        let value = match map.iter().position(|(k, _)| k == name) {
            Some(i) => map.remove(i).1,
            None => Value::Null,
        };
        from_value(value).map_err(|e| ValueError(format!("field {name:?}: {e}")))
    }

    /// Splits an externally tagged enum value into `(variant, payload)`.
    /// Unit variants arrive as a bare string and yield a `Null` payload.
    pub fn variant(v: Value) -> Result<(String, Value), ValueError> {
        match v {
            Value::Str(name) => Ok((name, Value::Null)),
            Value::Map(mut m) if m.len() == 1 => {
                let (name, payload) = m.remove(0);
                Ok((name, payload))
            }
            other => Err(ValueError(format!("expected enum, found {other:?}"))),
        }
    }
}

// ---------------------------------------------------------------------
// Serialize / Deserialize impls for the std types the workspace uses.
// ---------------------------------------------------------------------

use de::{Deserialize as De, Deserializer as DeD, Error as DeError};
use ser::{Serialize as Ser, Serializer as SerS};

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Ser for $t {
            fn serialize<S: SerS>(&self, s: S) -> Result<S::Ok, S::Error> {
                #[allow(unused_comparisons)]
                if (*self as i128) <= i64::MAX as i128 && (*self as i128) >= i64::MIN as i128 {
                    s.serialize_i64(*self as i64)
                } else {
                    s.serialize_u64(*self as u64)
                }
            }
        }
        impl<'de> De<'de> for $t {
            fn deserialize<D: DeD<'de>>(d: D) -> Result<Self, D::Error> {
                match d.take_value()? {
                    Value::I64(i) => <$t>::try_from(i)
                        .map_err(|_| D::Error::custom(format!("{i} out of range"))),
                    Value::U64(u) => <$t>::try_from(u)
                        .map_err(|_| D::Error::custom(format!("{u} out of range"))),
                    other => Err(D::Error::custom(format!("expected integer, found {other:?}"))),
                }
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Ser for f64 {
    fn serialize<S: SerS>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_f64(*self)
    }
}

impl<'de> De<'de> for f64 {
    fn deserialize<D: DeD<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::F64(f) => Ok(f),
            Value::I64(i) => Ok(i as f64),
            Value::U64(u) => Ok(u as f64),
            other => Err(D::Error::custom(format!(
                "expected number, found {other:?}"
            ))),
        }
    }
}

impl Ser for f32 {
    fn serialize<S: SerS>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_f64(f64::from(*self))
    }
}

impl<'de> De<'de> for f32 {
    fn deserialize<D: DeD<'de>>(d: D) -> Result<Self, D::Error> {
        f64::deserialize(d).map(|f| f as f32)
    }
}

impl Ser for bool {
    fn serialize<S: SerS>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_bool(*self)
    }
}

impl<'de> De<'de> for bool {
    fn deserialize<D: DeD<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Bool(b) => Ok(b),
            other => Err(D::Error::custom(format!("expected bool, found {other:?}"))),
        }
    }
}

impl Ser for String {
    fn serialize<S: SerS>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(self)
    }
}

impl<'de> De<'de> for String {
    fn deserialize<D: DeD<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Str(s) => Ok(s),
            other => Err(D::Error::custom(format!(
                "expected string, found {other:?}"
            ))),
        }
    }
}

impl Ser for str {
    fn serialize<S: SerS>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(self)
    }
}

impl Ser for char {
    fn serialize<S: SerS>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(&self.to_string())
    }
}

impl<'de> De<'de> for char {
    fn deserialize<D: DeD<'de>>(d: D) -> Result<Self, D::Error> {
        let s = String::deserialize(d)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(D::Error::custom("expected single-char string")),
        }
    }
}

impl<T: Ser> Ser for Option<T> {
    fn serialize<S: SerS>(&self, s: S) -> Result<S::Ok, S::Error> {
        match self {
            None => s.serialize_value(Value::Null),
            Some(v) => {
                let inner = __private::to_value(v).map_err(|e| ser::Error::custom(e))?;
                s.serialize_value(inner)
            }
        }
    }
}

impl<'de, T: de::DeserializeOwned> De<'de> for Option<T> {
    fn deserialize<D: DeD<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Null => Ok(None),
            other => __private::from_value(other)
                .map(Some)
                .map_err(|e| D::Error::custom(e)),
        }
    }
}

fn seq_to_value<'a, T: Ser + 'a, E: ser::Error>(
    items: impl Iterator<Item = &'a T>,
) -> Result<Value, E> {
    let mut out = Vec::new();
    for item in items {
        out.push(__private::to_value(item).map_err(|e| ser::Error::custom(e))?);
    }
    Ok(Value::Seq(out))
}

impl<T: Ser> Ser for Vec<T> {
    fn serialize<S: SerS>(&self, s: S) -> Result<S::Ok, S::Error> {
        let v = seq_to_value(self.iter())?;
        s.serialize_value(v)
    }
}

impl<T: Ser> Ser for [T] {
    fn serialize<S: SerS>(&self, s: S) -> Result<S::Ok, S::Error> {
        let v = seq_to_value(self.iter())?;
        s.serialize_value(v)
    }
}

impl<'de, T: de::DeserializeOwned> De<'de> for Vec<T> {
    fn deserialize<D: DeD<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Seq(items) => items
                .into_iter()
                .map(|v| __private::from_value(v).map_err(|e| D::Error::custom(e)))
                .collect(),
            other => Err(D::Error::custom(format!(
                "expected sequence, found {other:?}"
            ))),
        }
    }
}

impl<T: Ser + Ord> Ser for std::collections::BTreeSet<T> {
    fn serialize<S: SerS>(&self, s: S) -> Result<S::Ok, S::Error> {
        let v = seq_to_value(self.iter())?;
        s.serialize_value(v)
    }
}

impl<'de, T: de::DeserializeOwned + Ord> De<'de> for std::collections::BTreeSet<T> {
    fn deserialize<D: DeD<'de>>(d: D) -> Result<Self, D::Error> {
        Vec::<T>::deserialize(d).map(|v| v.into_iter().collect())
    }
}

impl<V: Ser> Ser for std::collections::BTreeMap<String, V> {
    fn serialize<S: SerS>(&self, s: S) -> Result<S::Ok, S::Error> {
        let mut out = Vec::new();
        for (k, v) in self {
            out.push((
                k.clone(),
                __private::to_value(v).map_err(|e| ser::Error::custom(e))?,
            ));
        }
        s.serialize_value(Value::Map(out))
    }
}

impl<'de, V: de::DeserializeOwned> De<'de> for std::collections::BTreeMap<String, V> {
    fn deserialize<D: DeD<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Map(entries) => entries
                .into_iter()
                .map(|(k, v)| {
                    __private::from_value(v)
                        .map(|v| (k, v))
                        .map_err(|e| D::Error::custom(e))
                })
                .collect(),
            other => Err(D::Error::custom(format!("expected map, found {other:?}"))),
        }
    }
}

impl<V: Ser> Ser for std::collections::HashMap<String, V> {
    fn serialize<S: SerS>(&self, s: S) -> Result<S::Ok, S::Error> {
        // Deterministic output: sort keys.
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        let mut out = Vec::new();
        for k in keys {
            out.push((
                k.clone(),
                __private::to_value(&self[k]).map_err(|e| ser::Error::custom(e))?,
            ));
        }
        s.serialize_value(Value::Map(out))
    }
}

impl<'de, V: de::DeserializeOwned> De<'de> for std::collections::HashMap<String, V> {
    fn deserialize<D: DeD<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Map(entries) => entries
                .into_iter()
                .map(|(k, v)| {
                    __private::from_value(v)
                        .map(|v| (k, v))
                        .map_err(|e| D::Error::custom(e))
                })
                .collect(),
            other => Err(D::Error::custom(format!("expected map, found {other:?}"))),
        }
    }
}

// `features = ["rc"]` in real serde: impls for Arc/Rc.
impl<T: Ser + ?Sized> Ser for std::sync::Arc<T> {
    fn serialize<S: SerS>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

impl<'de> De<'de> for std::sync::Arc<str> {
    fn deserialize<D: DeD<'de>>(d: D) -> Result<Self, D::Error> {
        String::deserialize(d).map(std::sync::Arc::from)
    }
}

impl<'de, T: de::DeserializeOwned> De<'de> for std::sync::Arc<T> {
    fn deserialize<D: DeD<'de>>(d: D) -> Result<Self, D::Error> {
        T::deserialize(d).map(std::sync::Arc::new)
    }
}

impl<T: Ser + ?Sized> Ser for Box<T> {
    fn serialize<S: SerS>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

impl<'de, T: de::DeserializeOwned> De<'de> for Box<T> {
    fn deserialize<D: DeD<'de>>(d: D) -> Result<Self, D::Error> {
        T::deserialize(d).map(Box::new)
    }
}

impl<T: Ser + ?Sized> Ser for &T {
    fn serialize<S: SerS>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

macro_rules! impl_tuple {
    ($(($len:expr; $($n:tt $t:ident),+))*) => {$(
        impl<$($t: Ser),+> Ser for ($($t,)+) {
            fn serialize<S: SerS>(&self, s: S) -> Result<S::Ok, S::Error> {
                let items = vec![
                    $(__private::to_value(&self.$n).map_err(|e| ser::Error::custom(e))?,)+
                ];
                s.serialize_value(Value::Seq(items))
            }
        }
        impl<'de, $($t: de::DeserializeOwned),+> De<'de> for ($($t,)+) {
            fn deserialize<DE: DeD<'de>>(d: DE) -> Result<Self, DE::Error> {
                let items = __private::expect_seq(d.take_value()?, $len)
                    .map_err(|e| DE::Error::custom(e))?;
                let mut it = items.into_iter();
                Ok(($({
                    let _ = stringify!($n);
                    __private::from_value::<$t>(it.next().expect("length checked"))
                        .map_err(|e| DE::Error::custom(e))?
                },)+))
            }
        }
    )*};
}

impl_tuple! {
    (1; 0 A)
    (2; 0 A, 1 B)
    (3; 0 A, 1 B, 2 C)
    (4; 0 A, 1 B, 2 C, 3 D)
}

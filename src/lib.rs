//! # ctxres — heuristics-based context inconsistency resolution
//!
//! A from-scratch Rust reproduction of *"Heuristics-Based Strategies for
//! Resolving Context Inconsistencies in Pervasive Computing
//! Applications"* (Xu, Cheung, Chan, Ye — ICDCS 2008), including every
//! substrate the paper depends on: the context model, the first-order
//! consistency-constraint language with incremental checking, the
//! Cabot-style middleware, the LANDMARC localization simulator, the two
//! subject applications, and the full experiment harness.
//!
//! This umbrella crate re-exports the workspace members under stable
//! module names; depend on the individual `ctxres-*` crates if you only
//! need one layer.
//!
//! ```
//! use ctxres::apps::scenarios;
//! use ctxres::constraint::{Evaluator, PredicateRegistry};
//! use ctxres::context::{ContextPool, LogicalTime};
//!
//! // Detect the paper's Scenario A inconsistencies (Fig. 1).
//! let pool: ContextPool = scenarios::scenario_a().into_iter().collect();
//! let registry = PredicateRegistry::with_builtins();
//! let evaluator = Evaluator::new(&registry);
//! let outcome = evaluator
//!     .check(&scenarios::adjacent_constraint(), &pool, LogicalTime::new(9))?;
//! assert_eq!(outcome.violations.len(), 2); // (d2,d3) and (d3,d4)
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! The runnable binaries regenerating each figure/table of the paper
//! live in `ctxres-experiments`; see DESIGN.md for the inventory and
//! EXPERIMENTS.md for paper-vs-measured results.
//!
//! # Tour: from noisy contexts to resolved ones
//!
//! The full pipeline in one place — state constraints, plug in drop-bad,
//! stream contexts, observe the resolution:
//!
//! ```
//! use ctxres::constraint::parse_constraints;
//! use ctxres::context::{Context, ContextKind, ContextState, LogicalTime, Point, Ticks};
//! use ctxres::core::strategies::DropBad;
//! use ctxres::middleware::{Middleware, MiddlewareConfig, SubscriptionFilter};
//!
//! // 1. Consistency constraints in the text DSL (paper §2.1's velocity
//! //    bound plus the Fig. 5 gap-2 refinement).
//! let constraints = parse_constraints(
//!     "constraint gap1:
//!        forall a: location, b: location .
//!          (same_subject(a, b) and seq_gap(a, b, 1)) implies velocity_le(a, b, 1.5)
//!      constraint gap2:
//!        forall a: location, b: location .
//!          (same_subject(a, b) and seq_gap(a, b, 2)) implies velocity_le(a, b, 1.5)",
//! )?;
//!
//! // 2. Middleware with drop-bad plugged in and a 4-tick use window.
//! let mut mw = Middleware::builder()
//!     .constraints(constraints)
//!     .strategy(Box::new(DropBad::new()))
//!     .config(MiddlewareConfig { window: Ticks::new(4), ..MiddlewareConfig::default() })
//!     .build();
//! let feed = mw.subscribe(SubscriptionFilter::all().of_subject("peter"));
//!
//! // 3. Peter's tracked walk — the third fix is the Fig. 1 outlier.
//! for (i, (x, y)) in [(0.0, 0.0), (1.0, 0.0), (2.0, 3.0), (3.0, 0.0), (4.0, 0.0)]
//!     .iter()
//!     .enumerate()
//! {
//!     mw.submit(
//!         Context::builder(ContextKind::new("location"), "peter")
//!             .attr("pos", Point::new(*x, *y))
//!             .attr("seq", i as i64)
//!             .stamp(LogicalTime::new(i as u64))
//!             .build(),
//!     );
//! }
//! mw.drain();
//!
//! // 4. Drop-bad singled out the outlier; the rest reached the app.
//! assert_eq!(mw.stats().discarded, 1);
//! assert_eq!(mw.poll(feed).len(), 4);
//! let (outlier, _) = mw
//!     .pool()
//!     .iter()
//!     .find(|(_, c)| c.state() == ContextState::Inconsistent)
//!     .expect("one context was discarded");
//! assert_eq!(outlier.raw(), 2); // d3
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! Layer by layer:
//!
//! * [`context`] — the data model: [`context::Context`] facts with
//!   logical time, lifespans, and the Fig. 8 four-state life cycle in an
//!   indexed [`context::ContextPool`];
//! * [`constraint`] — first-order constraints: a text DSL, an evaluator
//!   whose violations are *links* (the inconsistency sets), incremental
//!   checking, deploy-time schema validation, and a simplifier;
//! * [`core`] — the strategies: drop-bad (tracked Δ + count values +
//!   deferred decisions + discard explanations), every baseline, the
//!   OPT-R oracle, the impact-aware extension, and machine-checked
//!   heuristic-rule theory;
//! * [`obs`] — the instrumentation layer: typed life-cycle event traces
//!   in bounded per-shard ring buffers, a lock-light metrics registry
//!   (latency histograms, Δ-size, queue depth), and RAII timing spans
//!   that compile to a branch when disabled;
//! * [`middleware`] — the Cabot-style runtime: plug-in strategies,
//!   situation engine, subscriptions, observers, retention, and a
//!   thread-shared front-end;
//! * [`landmarc`] — the simulated localization substrate (k-NN,
//!   trilateration, fusion);
//! * [`apps`] — four complete applications with calibrated workloads;
//! * [`experiments`] — the harness regenerating every paper artifact.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The context model (`ctxres-context`).
pub mod context {
    pub use ctxres_context::*;
}

/// The consistency-constraint language (`ctxres-constraint`).
pub mod constraint {
    pub use ctxres_constraint::*;
}

/// The resolution strategies — the paper's contribution (`ctxres-core`).
pub mod core {
    pub use ctxres_core::*;
}

/// The instrumentation layer: life-cycle event tracing, per-shard
/// metrics registry, and span timing hooks (`ctxres-obs`).
pub mod obs {
    pub use ctxres_obs::*;
}

/// The Cabot-style middleware (`ctxres-middleware`).
pub mod middleware {
    pub use ctxres_middleware::*;
}

/// The LANDMARC localization simulator (`ctxres-landmarc`).
pub mod landmarc {
    pub use ctxres_landmarc::*;
}

/// The subject applications (`ctxres-apps`).
pub mod apps {
    pub use ctxres_apps::*;
}

/// The experiment harness (`ctxres-experiments`).
pub mod experiments {
    pub use ctxres_experiments::*;
}

//! Authoring consistency constraints: the designer's workflow the paper
//! discusses in §5.3 ("how does one design correct consistency
//! constraints?"), tooled end to end — write in the DSL, validate
//! against the application's schema, simplify, dry-run against a trace.
//!
//! Run with `cargo run --example constraint_authoring`.

use ctxres::constraint::{
    parse_constraints, simplify, validate, AttrType, ContextSchema, Evaluator, PredicateRegistry,
};
use ctxres::context::{Context, ContextKind, ContextPool, LogicalTime, Point};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Declare what the application's contexts look like.
    let mut schema = ContextSchema::new();
    schema
        .kind("location")
        .attr("pos", AttrType::Point)
        .attr("seq", AttrType::Int);
    let registry = PredicateRegistry::with_builtins();

    // 2. A first draft with a typo: `sq` instead of `seq`.
    let draft = parse_constraints(
        "constraint max_speed:
           forall a: location, b: location .
             (same_subject(a, b) and seq_gap(a, b, 1)) implies velocity_le(a, b, 1.5)
         constraint feasible:
           forall a: location . within(a, 0.0, 0.0, 40.0, 30.0) and le(a.sq, 100000)",
    )?;
    println!("validating the draft against the schema:");
    for violation in validate(&draft, &schema, &registry) {
        println!("  ✗ {violation}");
    }

    // 3. Fix the typo; validation is clean.
    let fixed = parse_constraints(
        "constraint max_speed:
           forall a: location, b: location .
             (same_subject(a, b) and seq_gap(a, b, 1)) implies velocity_le(a, b, 1.5)
         constraint feasible:
           forall a: location . within(a, 0.0, 0.0, 40.0, 30.0) and le(a.seq, 100000)",
    )?;
    assert!(validate(&fixed, &schema, &registry).is_empty());
    println!("\nfixed draft validates cleanly");

    // 4. Redundant guards fold away.
    let verbose = ctxres::constraint::parse_formula(
        "not not (true and (forall a: location . (false implies p(a)) and within(a, 0.0, 0.0, 40.0, 30.0)))",
    )?;
    println!("\nsimplify:\n  before: {verbose}");
    println!("  after:  {}", simplify(verbose));

    // 5. Dry-run the constraints against a five-fix trace (Scenario A).
    let mut pool = ContextPool::new();
    for (i, (x, y)) in [(0.0, 0.0), (1.0, 0.0), (2.0, 3.0), (3.0, 0.0), (4.0, 0.0)]
        .iter()
        .enumerate()
    {
        pool.insert(
            Context::builder(ContextKind::new("location"), "peter")
                .attr("pos", Point::new(*x, *y))
                .attr("seq", i as i64)
                .stamp(LogicalTime::new(i as u64))
                .build(),
        );
    }
    let evaluator = Evaluator::new(&registry);
    println!("\ndry run against the Scenario A trace:");
    for constraint in &fixed {
        let outcome = evaluator.check(constraint, &pool, LogicalTime::new(9))?;
        println!(
            "  {}: {} ({} inconsistencies)",
            constraint.name(),
            if outcome.satisfied {
                "satisfied"
            } else {
                "VIOLATED"
            },
            outcome.violations.len()
        );
        for link in &outcome.violations {
            let ids: Vec<String> = link.iter().map(ToString::to_string).collect();
            println!("    {{{}}}", ids.join(", "));
        }
    }
    Ok(())
}

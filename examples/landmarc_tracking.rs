//! LANDMARC indoor localization feeding the resolution middleware — the
//! paper's §5.2 case-study pipeline on the simulated testbed.
//!
//! Run with `cargo run --example landmarc_tracking`.

use ctxres::apps::location_tracking::LocationTracking;
use ctxres::apps::PervasiveApp;
use ctxres::context::{Ticks, TruthTag};
use ctxres::core::strategies::DropBad;
use ctxres::landmarc::{LandmarcConfig, LandmarcSim};
use ctxres::middleware::{Middleware, MiddlewareConfig};

fn main() {
    // Peek at the raw simulator: reference-tag grid + k-NN estimates.
    let sim = LandmarcSim::new(LandmarcConfig::default(), 42);
    println!(
        "floorplan: {} reference tags, {} readers",
        sim.estimator().plan().reference_tags().len(),
        sim.estimator().plan().readers().len()
    );
    let mut err_sum = 0.0;
    let mut n = 0;
    for fix in LandmarcSim::new(
        LandmarcConfig {
            err_rate: 0.0,
            ..Default::default()
        },
        42,
    )
    .take(50)
    {
        err_sum += fix.pos.distance(fix.true_pos);
        n += 1;
    }
    println!(
        "mean estimation error over {n} clean fixes: {:.2} m\n",
        err_sum / n as f64
    );

    // Full pipeline: noisy fixes -> velocity constraints -> drop-bad.
    let app = LocationTracking::new();
    let mut mw = Middleware::builder()
        .constraints(app.constraints())
        .situations(app.situations())
        .registry(app.registry())
        .strategy(Box::new(DropBad::new()))
        .config(MiddlewareConfig {
            window: Ticks::new(app.recommended_window()),
            track_ground_truth: true,
            retention: None,
        })
        .build();
    let trace = app.generate(0.2, 42, 400);
    let corrupted = trace
        .iter()
        .filter(|c| c.truth() == TruthTag::Corrupted)
        .count();
    for ctx in trace {
        mw.submit(ctx);
    }
    mw.drain();
    let s = mw.stats();
    println!("400 fixes, {corrupted} corrupted (20% injection)");
    println!("inconsistencies detected: {}", s.inconsistencies);
    println!(
        "discarded: {} ({} corrupted, {} expected)",
        s.discarded, s.discarded_corrupted, s.discarded_expected
    );
    println!(
        "survival rate {:.1}% (paper: 96.5%), removal precision {:.1}% (paper: 84.7%)",
        s.survival_rate() * 100.0,
        s.removal_precision() * 100.0
    );
}

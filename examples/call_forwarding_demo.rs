//! The Call Forwarding application end to end: badge sightings with a
//! controlled error rate flow through the middleware; situations route
//! calls; the summary compares drop-bad with the baselines.
//!
//! Run with `cargo run --example call_forwarding_demo [err_rate]`.

use ctxres::apps::call_forwarding::CallForwarding;
use ctxres::apps::PervasiveApp;
use ctxres::context::Ticks;
use ctxres::core::strategies::by_name;
use ctxres::middleware::{Middleware, MiddlewareConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let err_rate: f64 = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(0.3);
    let app = CallForwarding::new();
    println!("call forwarding demo: err_rate {:.0}%\n", err_rate * 100.0);
    println!(
        "{:<8} {:>10} {:>10} {:>10} {:>12} {:>10}",
        "strategy", "delivered", "corrupted", "discarded", "lost (exp.)", "situations"
    );
    for name in ["opt-r", "d-bad", "d-lat", "d-all", "d-rand"] {
        let mut mw = Middleware::builder()
            .constraints(app.constraints())
            .situations(app.situations())
            .registry(app.registry())
            .strategy(by_name(name, 7).expect("known strategy"))
            .config(MiddlewareConfig {
                window: Ticks::new(app.recommended_window()),
                track_ground_truth: true,
                retention: None,
            })
            .build();
        for ctx in app.generate(err_rate, 7, 450) {
            mw.submit(ctx);
        }
        mw.drain();
        let s = mw.stats();
        println!(
            "{:<8} {:>10} {:>10} {:>10} {:>12} {:>10}",
            name,
            s.delivered,
            s.delivered_corrupted,
            s.discarded,
            s.discarded_expected,
            s.situation_activations
        );
    }
    println!(
        "\n`delivered corrupted` and `lost (expected)` are the two failure \
         modes the paper's metrics capture: drop-latest keeps corrupted \
         contexts and loses correct ones; drop-all over-discards; drop-bad \
         tracks count values and mostly discards the right ones."
    );
    Ok(())
}

//! Walks through the paper's Figures 1-5 step by step: the two location
//! traces, the count values drop-bad accumulates, and what each strategy
//! decides.
//!
//! Run with `cargo run --example scenario_walkthrough`.

use ctxres::apps::scenarios::{adjacent_constraint, refined_constraints, scenario_a, scenario_b};
use ctxres::constraint::{Evaluator, PredicateRegistry};
use ctxres::context::{ContextPool, LogicalTime};
use ctxres::core::{Inconsistency, ResolutionStrategy, TrackedSet};
use ctxres::experiments::scenario_replay::replay;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let registry = PredicateRegistry::with_builtins();
    let evaluator = Evaluator::new(&registry);

    for (name, trace) in [("A", scenario_a()), ("B", scenario_b())] {
        println!("== Scenario {name} ==");
        for (i, ctx) in trace.iter().enumerate() {
            let pos = ctx.point("pos").expect("scenario contexts carry pos");
            let tag = if ctx.truth().is_corrupted() {
                "  <- corrupted"
            } else {
                ""
            };
            println!("  d{} at {pos}{tag}", i + 1);
        }

        // Fig. 4: count values under the adjacent constraint only.
        let pool: ContextPool = trace.into_iter().collect();
        let mut delta = TrackedSet::new();
        for constraint in [adjacent_constraint()]
            .iter()
            .chain(refined_constraints().iter().skip(1))
        {
            let outcome = evaluator.check(constraint, &pool, LogicalTime::new(9))?;
            for link in outcome.violations {
                delta.add(Inconsistency::new(
                    constraint.name(),
                    link,
                    LogicalTime::new(9),
                ));
            }
        }
        println!("  tracked inconsistencies and count values (Fig. 5):");
        for line in delta.to_string().lines() {
            println!("    {line}");
        }
        println!();
    }

    println!("== Resolution outcomes (refined constraints, Fig. 5) ==");
    println!(
        "{:<10}{:<10}{:<16}correct?",
        "scenario", "strategy", "discarded"
    );
    for scenario in ["A", "B"] {
        for strategy in ["opt-r", "d-bad", "d-lat", "d-all"] {
            let out = replay(scenario, refined_constraints(), strategy);
            let who = if out.discarded.is_empty() {
                "-".to_owned()
            } else {
                out.discarded
                    .iter()
                    .map(|d| format!("d{d}"))
                    .collect::<Vec<_>>()
                    .join(",")
            };
            println!(
                "{:<10}{:<10}{:<16}{}",
                scenario,
                strategy,
                who,
                if out.is_correct() { "yes" } else { "NO" }
            );
        }
    }

    // Sanity: drop-bad with a fresh strategy instance matches the
    // documented life-cycle behaviour.
    let strategy = ctxres::core::strategies::DropBad::new();
    assert!(strategy.defers_decision());
    assert_eq!(strategy.name(), "d-bad");
    Ok(())
}

//! Quickstart: submit noisy contexts to a drop-bad middleware and watch
//! it discard exactly the corrupted one.
//!
//! Run with `cargo run --example quickstart`.

use ctxres::constraint::parse_constraints;
use ctxres::context::{Context, ContextKind, LogicalTime, Point, Ticks};
use ctxres::core::strategies::DropBad;
use ctxres::middleware::{Middleware, MiddlewareConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. State what "consistent" means: Peter walks at 1 m/tick, so his
    //    estimated velocity between consecutive fixes must stay under
    //    150 % of that (the paper's running example, §2.1).
    let constraints = parse_constraints(
        "constraint max_speed:
           forall a: location, b: location .
             (same_subject(a, b) and seq_gap(a, b, 1)) implies velocity_le(a, b, 1.5)
         constraint max_speed_gap2:
           forall a: location, b: location .
             (same_subject(a, b) and seq_gap(a, b, 2)) implies velocity_le(a, b, 1.5)",
    )?;

    // 2. Build the middleware with the drop-bad strategy plugged in. The
    //    window defers decisions until count evidence accumulates.
    let mut mw = Middleware::builder()
        .constraints(constraints)
        .strategy(Box::new(DropBad::new()))
        .config(MiddlewareConfig {
            window: Ticks::new(4),
            ..MiddlewareConfig::default()
        })
        .build();

    // 3. Stream Peter's tracked locations; the third one is corrupted
    //    (a wild outlier, like Fig. 1's d3).
    let path = [(0.0, 0.0), (1.0, 0.0), (2.0, 3.0), (3.0, 0.0), (4.0, 0.0)];
    for (i, (x, y)) in path.iter().enumerate() {
        let report = mw.submit(
            Context::builder(ContextKind::new("location"), "peter")
                .attr("pos", Point::new(*x, *y))
                .attr("seq", i as i64)
                .stamp(LogicalTime::new(i as u64))
                .build(),
        );
        println!(
            "t{i}: submitted ({x:.1}, {y:.1}) -> {} new inconsistencies",
            report.fresh
        );
    }

    // 4. Let the window elapse; the application uses the contexts and
    //    drop-bad resolves.
    mw.drain();

    println!("\nfinal states:");
    for (id, ctx) in mw.pool().iter() {
        println!("  {id}: {}", ctx.state());
    }
    println!(
        "\ndelivered {} contexts, discarded {} (the deviating fix)",
        mw.stats().delivered,
        mw.stats().discarded
    );
    assert_eq!(mw.stats().discarded, 1);
    Ok(())
}

//! Debugging strategies head to head: find the first step where two
//! strategies disagree on an identical event stream, then use drop-bad's
//! explanation journal to see *why* it decided what it decided.
//!
//! Run with `cargo run --example divergence_debugging`.

use ctxres::context::{Context, ContextKind, ContextPool, LogicalTime};
use ctxres::core::harness::{first_divergence, ScriptStep};
use ctxres::core::strategies::{DropBad, DropLatest};
use ctxres::core::{Inconsistency, ResolutionStrategy};

fn main() {
    // The paper's Scenario B as an abstract script: d3 (index 2) is
    // corrupted but slips in cleanly; d4 and d5 each conflict with it
    // (the Fig. 5 refined constraints); contexts are used in order.
    let script = vec![
        ScriptStep::Add { conflicts: vec![] },  // d1
        ScriptStep::Add { conflicts: vec![] },  // d2
        ScriptStep::Add { conflicts: vec![] },  // d3
        ScriptStep::Add { conflicts: vec![2] }, // d4 vs d3
        ScriptStep::Add { conflicts: vec![2] }, // d5 vs d3
        ScriptStep::Use(0),
        ScriptStep::Use(1),
        ScriptStep::Use(2),
        ScriptStep::Use(3),
        ScriptStep::Use(4),
    ];

    let mut drop_bad = DropBad::new();
    let mut drop_latest = DropLatest::new();
    match first_divergence(&mut drop_bad, &mut drop_latest, &script) {
        Some(d) => {
            println!("drop-bad and drop-latest first diverge at {d}");
            println!(
                "(drop-latest already discarded someone; drop-bad is still collecting counts)\n"
            );
        }
        None => println!("no divergence?!\n"),
    }

    // Replay the same scenario through an explaining drop-bad to audit
    // its eventual decision.
    let mut pool = ContextPool::new();
    let kind = ContextKind::new("location");
    let ids: Vec<_> = (1..=5)
        .map(|i| {
            pool.insert(
                Context::builder(kind.clone(), "peter")
                    .stamp(LogicalTime::new(i))
                    .build(),
            )
        })
        .collect();
    let mut strategy = DropBad::new().with_explanations();
    let now = LogicalTime::new(9);
    strategy.on_addition(
        &mut pool,
        now,
        ids[3],
        &[Inconsistency::pair("gap1", ids[2], ids[3], now)],
    );
    strategy.on_addition(
        &mut pool,
        now,
        ids[4],
        &[Inconsistency::pair("gap2", ids[2], ids[4], now)],
    );
    for &id in &ids {
        strategy.on_use(&mut pool, now, id);
    }
    println!("drop-bad's audited decisions:");
    for entry in strategy
        .explanations()
        .expect("explanations enabled")
        .entries()
    {
        println!("  {entry}");
    }
}

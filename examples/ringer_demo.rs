//! The paper's opening story, end to end: a smart phone that vibrates in
//! the concert hall and roars at the stadium — driven by noisy venue
//! fixes that drop-bad cleans up using cross-kind (venue × noise)
//! consistency constraints.
//!
//! Demonstrates the subscription and observer APIs alongside the
//! resolution pipeline. Run with `cargo run --example ringer_demo`.

use ctxres::apps::smart_ringer::SmartRinger;
use ctxres::apps::PervasiveApp;
use ctxres::context::Ticks;
use ctxres::core::strategies::DropBad;
use ctxres::middleware::{EventLog, Middleware, MiddlewareConfig, SubscriptionFilter};
use parking_lot::Mutex;
use std::sync::Arc;

fn main() {
    let app = SmartRinger::new();
    let log = Arc::new(Mutex::new(EventLog::with_capacity(8)));

    let mut mw = Middleware::builder()
        .constraints(app.constraints())
        .situations(app.situations())
        .registry(app.registry())
        .strategy(Box::new(DropBad::new()))
        .config(MiddlewareConfig {
            window: Ticks::new(app.recommended_window()),
            track_ground_truth: true,
            retention: None,
        })
        .observer(Box::new(Arc::clone(&log)))
        .build();

    // The ringer controller subscribes to delivered venue fixes only.
    let venue_feed = mw.subscribe(SubscriptionFilter::all().of_kind("venue"));

    let mut ringer_mode = "normal".to_owned();
    let mut switches = 0;
    for ctx in app.generate(0.3, 2026, 400) {
        mw.submit(ctx);
        for id in mw.poll(venue_feed) {
            let place = mw
                .pool()
                .get(id)
                .and_then(|c| c.text("place").map(str::to_owned))
                .unwrap_or_default();
            let mode = match place.as_str() {
                "concert-hall" => "vibrate",
                "stadium" => "roar",
                _ => "normal",
            };
            if mode != ringer_mode {
                println!("t{:<4} {place:<14} -> ringer {mode}", mw.now().tick());
                ringer_mode = mode.to_owned();
                switches += 1;
            }
        }
    }
    mw.drain();

    let s = mw.stats();
    println!("\n{switches} ringer mode switches over 200 ticks");
    println!(
        "venue+noise contexts: {} received, {} delivered, {} discarded \
         ({} corrupted caught, {} expected lost)",
        s.received, s.delivered, s.discarded, s.discarded_corrupted, s.discarded_expected
    );
    println!(
        "cross-kind inconsistencies detected: {} | survival {:.1}% | precision {:.1}%",
        s.inconsistencies,
        s.survival_rate() * 100.0,
        s.removal_precision() * 100.0
    );
    println!("\nlast middleware events:\n{}", log.lock());
}

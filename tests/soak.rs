//! Soak test: a long-running middleware with retention enabled keeps
//! memory bounded and metrics stable — the deployment mode a real
//! pervasive installation would run in.

use ctxres::apps::call_forwarding::CallForwarding;
use ctxres::apps::PervasiveApp;
use ctxres::context::Ticks;
use ctxres::core::strategies::DropBad;
use ctxres::middleware::{Middleware, MiddlewareConfig};

#[test]
fn long_run_with_retention_stays_bounded_and_accurate() {
    let app = CallForwarding::new();
    let mut mw = Middleware::builder()
        .constraints(app.constraints())
        .situations(app.situations())
        .registry(app.registry())
        .strategy(Box::new(DropBad::new()))
        .config(MiddlewareConfig {
            window: Ticks::new(app.recommended_window()),
            track_ground_truth: true,
            retention: Some(Ticks::new(30)),
        })
        .build();

    let mut max_pool = 0usize;
    for ctx in app.generate(0.3, 99, 3000) {
        mw.submit(ctx);
        max_pool = max_pool.max(mw.pool().len());
    }
    mw.drain();

    // Memory: retention keeps the pool to roughly (retention + TTL) ticks
    // of contexts, far below the 3000 submitted.
    assert!(max_pool < 400, "pool peaked at {max_pool}");
    assert!(
        mw.stats().compacted > 2000,
        "compacted {}",
        mw.stats().compacted
    );

    // Accuracy: compaction must not change the resolution quality drop-bad
    // achieves on this workload without retention.
    let stats = *mw.stats();
    assert!(
        stats.survival_rate() > 0.95,
        "survival {}",
        stats.survival_rate()
    );
    assert!(
        stats.removal_precision() > 0.85,
        "precision {}",
        stats.removal_precision()
    );
    assert_eq!(stats.received, 3000);

    // Cross-check against an unbounded run on the same trace: identical
    // decisions (compaction only removes contexts whose fate is sealed).
    let mut unbounded = Middleware::builder()
        .constraints(app.constraints())
        .situations(app.situations())
        .registry(app.registry())
        .strategy(Box::new(DropBad::new()))
        .config(MiddlewareConfig {
            window: Ticks::new(app.recommended_window()),
            track_ground_truth: true,
            retention: None,
        })
        .build();
    for ctx in app.generate(0.3, 99, 3000) {
        unbounded.submit(ctx);
    }
    unbounded.drain();
    assert_eq!(stats.delivered, unbounded.stats().delivered);
    assert_eq!(stats.discarded, unbounded.stats().discarded);
    assert_eq!(stats.inconsistencies, unbounded.stats().inconsistencies);
}

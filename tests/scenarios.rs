//! Integration tests replaying the paper's Figures 1–5 through the full
//! stack (apps → constraint checking → middleware → strategies).

use ctxres::apps::scenarios::{
    adjacent_constraint, gap2_constraint, refined_constraints, scenario_a, scenario_b,
};
use ctxres::experiments::scenario_replay::replay;

#[test]
fn figure2_drop_latest_right_in_a_wrong_in_b() {
    let a = replay("A", vec![adjacent_constraint()], "d-lat");
    assert_eq!(a.discarded, vec![3], "Scenario A: d3 correctly discarded");
    let b = replay("B", vec![adjacent_constraint()], "d-lat");
    assert_eq!(b.discarded, vec![4], "Scenario B: the correct d4 is lost");
}

#[test]
fn figure3_drop_all_overcautious_in_both() {
    let a = replay("A", vec![adjacent_constraint()], "d-all");
    assert!(a.discarded.contains(&2) && a.discarded.contains(&3));
    let b = replay("B", vec![adjacent_constraint()], "d-all");
    assert!(b.discarded.contains(&3) && b.discarded.contains(&4));
}

#[test]
fn figure5_drop_bad_correct_in_both_scenarios() {
    for scenario in ["A", "B"] {
        let out = replay(scenario, refined_constraints(), "d-bad");
        assert!(
            out.is_correct(),
            "scenario {scenario}: expected only d3 discarded, got {:?}",
            out.discarded
        );
    }
}

#[test]
fn figure4_drop_bad_with_adjacent_only_still_correct_in_a() {
    // Scenario A already gives d3 count 2 with just the adjacent
    // constraint — enough to single it out.
    let out = replay("A", vec![adjacent_constraint()], "d-bad");
    assert!(out.is_correct(), "got {:?}", out.discarded);
}

#[test]
fn oracle_correct_everywhere() {
    for scenario in ["A", "B"] {
        for constraints in [vec![adjacent_constraint()], refined_constraints()] {
            let out = replay(scenario, constraints, "opt-r");
            assert!(out.is_correct());
        }
    }
}

#[test]
fn gap2_constraint_alone_detects_the_long_pairs() {
    // In Scenario A, (d1,d3) and (d3,d5) violate the gap-2 constraint.
    use ctxres::constraint::{Evaluator, PredicateRegistry};
    use ctxres::context::{ContextPool, LogicalTime};
    let pool: ContextPool = scenario_a().into_iter().collect();
    let registry = PredicateRegistry::with_builtins();
    let outcome = Evaluator::new(&registry)
        .check(&gap2_constraint(), &pool, LogicalTime::new(9))
        .unwrap();
    assert_eq!(outcome.violations.len(), 2);
}

#[test]
fn scenario_b_trace_slips_past_the_adjacent_check_for_d2d3() {
    use ctxres::constraint::{Evaluator, PredicateRegistry};
    use ctxres::context::{ContextPool, LogicalTime};
    let pool: ContextPool = scenario_b().into_iter().collect();
    let registry = PredicateRegistry::with_builtins();
    let outcome = Evaluator::new(&registry)
        .check(&adjacent_constraint(), &pool, LogicalTime::new(9))
        .unwrap();
    // Only (d3,d4): ids 2 and 3.
    assert_eq!(outcome.violations.len(), 1);
    let ids: Vec<u64> = outcome.violations[0].iter().map(|i| i.raw()).collect();
    assert_eq!(ids, vec![2, 3]);
}

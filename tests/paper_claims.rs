//! The paper's quotable claims, as an executable checklist. Each test
//! cites the sentence it verifies.

use ctxres::apps::call_forwarding::CallForwarding;
use ctxres::apps::scenarios::{adjacent_constraint, refined_constraints, scenario_a, scenario_b};
use ctxres::apps::PervasiveApp;
use ctxres::constraint::{Evaluator, PredicateRegistry};
use ctxres::context::{ContextId, ContextPool, LogicalTime};
use ctxres::core::{Inconsistency, TrackedSet};
use ctxres::experiments::runner::run_named;
use ctxres::experiments::scenario_replay::replay;

/// §2.2: "the strategy correctly discards d3 for Scenario A. However
/// … in Scenario B … context d4 instead of d3 is discarded … the result
/// is an incorrect resolution."
#[test]
fn claim_drop_latest_fails_scenario_b() {
    assert!(replay("A", vec![adjacent_constraint()], "d-lat").is_correct());
    let b = replay("B", vec![adjacent_constraint()], "d-lat");
    assert_eq!(b.discarded, vec![4]);
}

/// §2.3: "the drop-all resolution strategy does not work satisfactorily
/// … tends to discard more contexts than necessary."
#[test]
fn claim_drop_all_over_discards() {
    for scenario in ["A", "B"] {
        let out = replay(scenario, vec![adjacent_constraint()], "d-all");
        assert!(
            out.discarded.len() > 1,
            "scenario {scenario}: {:?}",
            out.discarded
        );
    }
}

/// §3.1: "context d3 has a count value of 2 since d3 participates in
/// both inconsistencies" (Scenario A, adjacent constraint, Fig. 4) and
/// "context d3 now carries the largest count value (4 and 2,
/// respectively)" (refined constraints, Fig. 5).
#[test]
fn claim_count_values_match_figures_4_and_5() {
    let registry = PredicateRegistry::with_builtins();
    let evaluator = Evaluator::new(&registry);
    let count_of_d3 = |trace: Vec<ctxres::context::Context>, refined: bool| {
        let pool: ContextPool = trace.into_iter().collect();
        let constraints = if refined {
            refined_constraints()
        } else {
            vec![adjacent_constraint()]
        };
        let mut delta = TrackedSet::new();
        for c in &constraints {
            for link in evaluator
                .check(c, &pool, LogicalTime::new(9))
                .unwrap()
                .violations
            {
                delta.add(Inconsistency::new(c.name(), link, LogicalTime::new(9)));
            }
        }
        delta.counts().get(ContextId::from_raw(2))
    };
    assert_eq!(count_of_d3(scenario_a(), false), 2); // Fig. 4 left
    assert_eq!(count_of_d3(scenario_a(), true), 4); // Fig. 5 left
    assert_eq!(count_of_d3(scenario_b(), true), 2); // Fig. 5 right
}

/// §3.1: "A context that participates more frequently in
/// inconsistencies is likelier to be incorrect" — operationalized:
/// drop-bad discards exactly d3 in both refined scenarios.
#[test]
fn claim_drop_bad_discards_the_frequent_participant() {
    for scenario in ["A", "B"] {
        assert!(replay(scenario, refined_constraints(), "d-bad").is_correct());
    }
}

/// §4.1: "OPT-R serves as a theoretical upper bound of good strategies"
/// — no practical strategy uses more expected contexts than the oracle.
#[test]
fn claim_oracle_is_an_upper_bound() {
    let app = CallForwarding::new();
    let w = app.recommended_window();
    for err in [0.2, 0.4] {
        let opt = run_named(&app, "opt-r", err, 3, 240, w).used_expected;
        for s in ["d-bad", "d-lat", "d-all", "d-rand"] {
            let used = run_named(&app, s, err, 3, 240, w).used_expected;
            assert!(used <= opt, "{s} at {err}: {used} > {opt}");
        }
    }
}

/// §4.2: degradation grows with the error rate for the eager baselines.
#[test]
fn claim_eager_degradation_grows_with_error_rate() {
    let app = CallForwarding::new();
    let w = app.recommended_window();
    for s in ["d-lat", "d-all"] {
        let mut gaps = Vec::new();
        for err in [0.1, 0.4] {
            let mut opt = 0i64;
            let mut got = 0i64;
            for seed in 0..4 {
                opt += run_named(&app, "opt-r", err, seed, 240, w).used_expected as i64;
                got += run_named(&app, s, err, seed, 240, w).used_expected as i64;
            }
            gaps.push(opt - got);
        }
        assert!(gaps[1] > gaps[0], "{s}: gaps {gaps:?}");
    }
}

/// §5.3: "the time window of the drop-bad strategy is trivially reduced
/// to zero. Then the strategy would behave just as the drop-latest
/// strategy."
#[test]
fn claim_window_zero_is_drop_latest() {
    let app = CallForwarding::new();
    for seed in 0..3 {
        let bad = run_named(&app, "d-bad", 0.3, seed, 240, 0);
        let lat = run_named(&app, "d-lat", 0.3, seed, 240, 0);
        assert_eq!(bad.used_expected, lat.used_expected);
        assert_eq!(bad.discarded, lat.discarded);
    }
}

/// §5.3 (continued): "the effectiveness of the drop-bad resolution
/// strategy would be no worse than those achieved by existing resolution
/// strategies" — with its calibrated window it strictly beats them here.
#[test]
fn claim_drop_bad_no_worse_than_baselines() {
    let app = CallForwarding::new();
    let w = app.recommended_window();
    let mut bad = 0u64;
    let mut lat = 0u64;
    let mut all = 0u64;
    for seed in 0..4 {
        bad += run_named(&app, "d-bad", 0.3, seed, 240, w).used_expected;
        lat += run_named(&app, "d-lat", 0.3, seed, 240, w).used_expected;
        all += run_named(&app, "d-all", 0.3, seed, 240, w).used_expected;
    }
    assert!(bad > lat && bad > all, "bad {bad}, lat {lat}, all {all}");
}

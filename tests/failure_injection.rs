//! Failure injection: the middleware must stay correct (and never
//! panic) under pathological workloads — out-of-order stamps, duplicate
//! sequence numbers, all-corrupted streams, bursts, expiring contexts,
//! and constraints that fail to evaluate.

use ctxres::constraint::parse_constraints;
use ctxres::context::{
    Context, ContextKind, ContextState, Lifespan, LogicalTime, Point, Ticks, TruthTag,
};
use ctxres::core::strategies::by_name;
use ctxres::middleware::{Middleware, MiddlewareConfig};

const SPEED: &str = "constraint gap1:
    forall a: location, b: location .
      (same_subject(a, b) and seq_gap(a, b, 1)) implies velocity_le(a, b, 1.5)";

fn mw(strategy: &str, window: u64) -> Middleware {
    Middleware::builder()
        .constraints(parse_constraints(SPEED).unwrap())
        .strategy(by_name(strategy, 3).unwrap())
        .config(MiddlewareConfig {
            window: Ticks::new(window),
            track_ground_truth: true,
            retention: None,
        })
        .build()
}

fn loc(seq: i64, t: u64, x: f64) -> Context {
    Context::builder(ContextKind::new("location"), "p")
        .attr("pos", Point::new(x, 0.0))
        .attr("seq", seq)
        .stamp(LogicalTime::new(t))
        .build()
}

#[test]
fn out_of_order_stamps_do_not_rewind_the_clock() {
    for strategy in ["opt-r", "d-bad", "d-lat", "d-all"] {
        let mut m = mw(strategy, 2);
        m.submit(loc(0, 10, 0.0));
        m.submit(loc(1, 3, 0.5)); // stale stamp
        m.submit(loc(2, 11, 1.0));
        m.drain();
        assert_eq!(m.stats().received, 3, "{strategy}");
        assert!(m.now() >= LogicalTime::new(11), "{strategy}");
        for (_, c) in m.pool().iter() {
            assert!(c.state().is_terminal(), "{strategy}: {c}");
        }
    }
}

#[test]
fn duplicate_sequence_numbers_are_handled() {
    // Two contexts claim the same stream position far apart: the gap-1
    // pair (seq 0, seq 1) exists twice; detection and resolution must
    // not panic and must resolve decisively.
    let mut m = mw("d-bad", 2);
    m.submit(loc(0, 0, 0.0));
    m.submit(loc(1, 1, 0.5));
    m.submit(loc(1, 2, 40.0)); // duplicate seq, far away
    m.drain();
    assert!(m.stats().inconsistencies > 0);
    assert!(m.stats().discarded >= 1);
}

#[test]
fn fully_corrupted_stream_survives() {
    let mut m = mw("d-bad", 2);
    for i in 0..40 {
        let ctx = Context::builder(ContextKind::new("location"), "p")
            .attr("pos", Point::new((i * 50) as f64, 0.0)) // every hop violates
            .attr("seq", i as i64)
            .stamp(LogicalTime::new(i))
            .truth(TruthTag::Corrupted)
            .build();
        m.submit(ctx);
    }
    m.drain();
    assert_eq!(m.stats().received, 40);
    assert!(m.stats().discarded > 0, "a hot stream must lose contexts");
    // Whatever was delivered + discarded + expired covers everything.
    for (_, c) in m.pool().iter() {
        assert!(c.state().is_terminal());
    }
}

#[test]
fn burst_of_duplicate_seq_contexts() {
    // A reader hiccup re-sends 50 readings with the same stream position
    // and stamp: no gap-1 pairs exist, so nothing may be blamed and the
    // burst must drain cleanly.
    let mut m = mw("d-bad", 1);
    for i in 0..50 {
        m.submit(loc(0, 5, i as f64 * 0.5));
    }
    m.drain();
    assert_eq!(m.stats().delivered, 50);
    assert_eq!(m.stats().discarded, 0);
}

#[test]
fn same_tick_teleports_are_blamed() {
    // The dual of the burst case: consecutive stream positions at the
    // same instant but different places imply infinite velocity — the
    // constraint must fire and someone must be discarded.
    let mut m = mw("d-bad", 1);
    for i in 0..10 {
        m.submit(loc(i, 5, i as f64 * 0.5));
    }
    m.drain();
    assert!(m.stats().inconsistencies > 0);
    assert!(m.stats().discarded > 0);
}

#[test]
fn contexts_expiring_inside_the_window_are_not_blamed() {
    let mut m = mw("d-bad", 10);
    let short = Context::builder(ContextKind::new("location"), "p")
        .attr("pos", Point::new(0.0, 0.0))
        .attr("seq", 0i64)
        .stamp(LogicalTime::new(0))
        .lifespan(Lifespan::with_ttl(LogicalTime::new(0), Ticks::new(2)))
        .build();
    m.submit(short);
    m.advance_to(LogicalTime::new(20));
    let stats = m.stats();
    assert_eq!(stats.delivered, 0);
    assert_eq!(stats.discarded, 0, "expiry is not a blame");
    assert_eq!(stats.expired_on_use, 1);
}

#[test]
fn unknown_predicate_constraint_degrades_gracefully() {
    let mut m = Middleware::builder()
        .constraints(
            parse_constraints("constraint broken: forall a: location . no_such_predicate(a)")
                .unwrap(),
        )
        .strategy(by_name("d-bad", 1).unwrap())
        .config(MiddlewareConfig {
            window: Ticks::new(1),
            track_ground_truth: false,
            retention: None,
        })
        .build();
    m.submit(loc(0, 0, 0.0));
    m.drain();
    assert_eq!(m.stats().eval_errors, 1);
    assert_eq!(m.stats().delivered, 1, "context admitted unchecked");
}

#[test]
fn interleaved_subjects_do_not_cross_talk() {
    // Two subjects with identical seq numbers: constraints guard with
    // same_subject, so no spurious pairs arise.
    let mut m = mw("d-bad", 2);
    for i in 0..20 {
        m.submit(loc(i, i as u64, i as f64 * 0.5));
        let other = Context::builder(ContextKind::new("location"), "q")
            .attr("pos", Point::new(100.0 - i as f64 * 0.5, 50.0))
            .attr("seq", i)
            .stamp(LogicalTime::new(i as u64))
            .build();
        m.submit(other);
    }
    m.drain();
    assert_eq!(m.stats().discarded, 0);
    assert_eq!(m.stats().delivered, 40);
}

#[test]
fn reusing_a_decided_context_is_stable() {
    let mut m = mw("d-bad", 1);
    let id = m.submit(loc(0, 0, 0.0)).id;
    m.drain();
    assert_eq!(m.pool().get(id).unwrap().state(), ContextState::Consistent);
    // Explicit re-use after the decision: still delivered, not recounted
    // as a discard.
    let rec = m.use_now(id).unwrap();
    assert!(rec.delivered);
    assert_eq!(m.stats().discarded, 0);
}

//! End-to-end integration: full application workloads through the
//! middleware, asserting the paper's qualitative results at reduced
//! scale.

use ctxres::apps::call_forwarding::CallForwarding;
use ctxres::apps::location_tracking::LocationTracking;
use ctxres::apps::rfid_anomalies::RfidAnomalies;
use ctxres::apps::PervasiveApp;
use ctxres::experiments::runner::run_named;

fn used_expected_avg(app: &dyn PervasiveApp, strategy: &str, err: f64, seeds: u64) -> f64 {
    (0..seeds)
        .map(|s| run_named(app, strategy, err, s, 240, app.recommended_window()).used_expected)
        .sum::<u64>() as f64
        / seeds as f64
}

#[test]
fn call_forwarding_strategy_ordering_holds() {
    let app = CallForwarding::new();
    let opt = used_expected_avg(&app, "opt-r", 0.3, 4);
    let bad = used_expected_avg(&app, "d-bad", 0.3, 4);
    let lat = used_expected_avg(&app, "d-lat", 0.3, 4);
    let all = used_expected_avg(&app, "d-all", 0.3, 4);
    assert!(opt >= bad, "opt {opt} vs bad {bad}");
    assert!(bad > lat, "bad {bad} vs lat {lat}");
    assert!(lat > all, "lat {lat} vs all {all}");
}

#[test]
fn rfid_drop_bad_beats_both_baselines() {
    let app = RfidAnomalies::new();
    let bad = used_expected_avg(&app, "d-bad", 0.3, 4);
    let lat = used_expected_avg(&app, "d-lat", 0.3, 4);
    let all = used_expected_avg(&app, "d-all", 0.3, 4);
    assert!(bad > lat, "bad {bad} vs lat {lat}");
    assert!(bad > all, "bad {bad} vs all {all}");
}

#[test]
fn location_tracking_case_study_rates_are_high() {
    let app = LocationTracking::new();
    let m = run_named(&app, "d-bad", 0.2, 11, 300, app.recommended_window());
    assert!(m.survival > 0.9, "survival {}", m.survival);
    assert!(m.precision > 0.6, "precision {}", m.precision);
}

#[test]
fn oracle_never_wrong_on_any_app() {
    for app in [
        Box::new(CallForwarding::new()) as Box<dyn PervasiveApp>,
        Box::new(RfidAnomalies::new()),
        Box::new(LocationTracking::new()),
    ] {
        let m = run_named(app.as_ref(), "opt-r", 0.3, 5, 200, app.recommended_window());
        assert_eq!(m.used_corrupted, 0, "{}", app.name());
        assert_eq!(m.discarded_expected, 0, "{}", app.name());
    }
}

#[test]
fn whole_pipeline_is_deterministic() {
    let app = CallForwarding::new();
    let a = run_named(&app, "d-bad", 0.25, 17, 210, app.recommended_window());
    let b = run_named(&app, "d-bad", 0.25, 17, 210, app.recommended_window());
    assert_eq!(a, b);
}

#[test]
fn higher_error_rates_detect_more_inconsistencies() {
    let app = CallForwarding::new();
    let lo = run_named(&app, "d-bad", 0.1, 3, 240, app.recommended_window());
    let hi = run_named(&app, "d-bad", 0.4, 3, 240, app.recommended_window());
    assert!(
        hi.inconsistencies > lo.inconsistencies,
        "hi {} vs lo {}",
        hi.inconsistencies,
        lo.inconsistencies
    );
}

#[test]
fn drop_random_sits_between_oracle_and_drop_all() {
    let app = CallForwarding::new();
    let opt = used_expected_avg(&app, "opt-r", 0.3, 3);
    let rnd = used_expected_avg(&app, "d-rand", 0.3, 3);
    let all = used_expected_avg(&app, "d-all", 0.3, 3);
    assert!(opt > rnd, "opt {opt} vs rand {rnd}");
    assert!(rnd > all, "rand {rnd} vs all {all}");
}

//! Integration: client threads feed the middleware through crossbeam
//! channels, as in the paper's experimental setup (§4.1: contexts were
//! "produced by a client thread").

use ctxres::apps::call_forwarding::CallForwarding;
use ctxres::apps::PervasiveApp;
use ctxres::constraint::parse_constraints;
use ctxres::context::{Context, ContextKind, LogicalTime, Point, Ticks};
use ctxres::core::strategies::DropBad;
use ctxres::middleware::source::{collect, spawn_replay};
use ctxres::middleware::{Middleware, MiddlewareConfig, ShardPlan, ShardedMiddleware};

#[test]
fn threaded_sources_match_direct_submission() {
    let app = CallForwarding::new();
    let trace = app.generate(0.3, 9, 240);

    // Direct submission.
    let run = |contexts: Vec<Context>| {
        let mut mw = Middleware::builder()
            .constraints(app.constraints())
            .registry(app.registry())
            .strategy(Box::new(DropBad::new()))
            .config(MiddlewareConfig {
                window: Ticks::new(app.recommended_window()),
                track_ground_truth: true,
                retention: None,
            })
            .build();
        for ctx in contexts {
            mw.submit(ctx);
        }
        mw.drain();
        *mw.stats()
    };
    let direct = run(trace.clone());

    // Per-person client threads, merged by stamp.
    let mut per_person: Vec<Vec<Context>> = vec![Vec::new(); 3];
    for ctx in trace {
        let slot = match ctx.subject() {
            "peter" => 0,
            "mary" => 1,
            _ => 2,
        };
        per_person[slot].push(ctx);
    }
    let mut receivers = Vec::new();
    let mut handles = Vec::new();
    for t in per_person {
        let (rx, handle) = spawn_replay(t);
        receivers.push(rx);
        handles.push(handle);
    }
    let merged = collect(receivers);
    for h in handles {
        h.join();
    }
    let threaded = run(merged);

    // Same stamp order within each subject and detection only relates
    // same-subject contexts, so the outcomes agree.
    assert_eq!(direct.delivered, threaded.delivered);
    assert_eq!(direct.discarded, threaded.discarded);
    assert_eq!(direct.inconsistencies, threaded.inconsistencies);
}

#[test]
fn many_small_sources_drain_cleanly() {
    let traces: Vec<Vec<Context>> = (0..8)
        .map(|i| {
            let app = CallForwarding::new();
            app.generate(0.2, i, 60)
        })
        .collect();
    let mut receivers = Vec::new();
    let mut handles = Vec::new();
    for t in traces {
        let (rx, h) = spawn_replay(t);
        receivers.push(rx);
        handles.push(h);
    }
    let merged = collect(receivers);
    for h in handles {
        h.join();
    }
    assert_eq!(merged.len(), 8 * 60);
    // Stamp-sorted.
    assert!(merged.windows(2).all(|w| w[0].stamp() <= w[1].stamp()));
}

const SPEED: &str = "constraint speed:
    forall a: location, b: location .
      (same_subject(a, b) and seq_gap(a, b, 1)) implies velocity_le(a, b, 1.5)";

fn speed_engine() -> Middleware {
    Middleware::builder()
        .constraints(parse_constraints(SPEED).unwrap())
        .strategy(Box::new(DropBad::new()))
        .config(MiddlewareConfig {
            window: Ticks::new(0),
            track_ground_truth: false,
            retention: None,
        })
        .build()
}

/// One subject's walk: steady 0.5/tick steps with a teleport every
/// seventh reading that violates the speed bound.
fn walk(subject: &str, len: usize) -> Vec<Context> {
    (0..len)
        .map(|seq| {
            let x = if seq % 7 == 6 {
                900.0
            } else {
                seq as f64 * 0.5
            };
            Context::builder(ContextKind::new("location"), subject)
                .attr("pos", Point::new(x, 0.0))
                .attr("seq", seq as i64)
                .stamp(LogicalTime::new(seq as u64))
                .build()
        })
        .collect()
}

/// The tentpole's acceptance bar: four producer threads racing into the
/// sharded engine must leave the same final pool state and the same
/// inconsistency/discard record as one thread feeding one engine. The
/// speed constraint only relates same-subject contexts and each
/// producer owns its subjects, so the cross-thread interleave cannot
/// leak into the outcome.
#[test]
fn racing_producers_match_single_threaded_run() {
    let subjects: Vec<String> = (0..8).map(|i| format!("subj-{i}")).collect();
    let traces: Vec<Vec<Context>> = subjects.iter().map(|s| walk(s, 50)).collect();

    // Oracle: one engine, contexts in deterministic (stamp, subject)
    // order.
    let mut merged: Vec<Context> = traces.iter().flatten().cloned().collect();
    merged.sort_by(|a, b| a.stamp().cmp(&b.stamp()).then(a.subject().cmp(b.subject())));
    let mut single = speed_engine();
    for ctx in &merged {
        single.submit(ctx.clone());
    }
    single.drain();

    // Four producer threads, two subjects each, submitting concurrently.
    let plan = ShardPlan::analyze(&parse_constraints(SPEED).unwrap(), 4);
    let sharded = ShardedMiddleware::new(plan, |_| speed_engine());
    std::thread::scope(|scope| {
        for pair in traces.chunks(2) {
            scope.spawn(|| {
                for ctx in pair.iter().flatten() {
                    sharded.submit(ctx.clone());
                }
            });
        }
    });
    sharded.drain();

    let stats = sharded.stats();
    assert_eq!(stats.inconsistencies, single.stats().inconsistencies);
    assert_eq!(stats.discarded, single.stats().discarded);
    assert_eq!(stats.received, single.stats().received);
    assert_eq!(sharded.signature(), single.pool().signature());
    assert!(
        stats.inconsistencies > 0,
        "the workload must actually exercise detection"
    );
}

/// A constraint relating *different* subjects cannot be split: the plan
/// must route every context of its kinds to the shared-scope shard.
#[test]
fn cross_subject_constraint_routes_to_shared_shard() {
    let constraints = parse_constraints(
        "constraint speed:
            forall a: location, b: location .
              (same_subject(a, b) and seq_gap(a, b, 1)) implies velocity_le(a, b, 1.5)
         constraint one_badge_per_room:
            forall a: badge, b: badge . not eq(a.room, b.room)",
    )
    .unwrap();
    let plan = ShardPlan::analyze(&constraints, 4);

    let badge = Context::builder(ContextKind::new("badge"), "peter").build();
    assert_eq!(
        plan.route(&badge),
        plan.shared_shard(),
        "unguarded cross-subject kind must land on the shared-scope shard"
    );

    // Same-subject-guarded kinds stay partitioned across subject shards.
    for i in 0..16 {
        let loc = Context::builder(ContextKind::new("location"), &format!("s{i}")).build();
        assert!(plan.route(&loc) < plan.shared_shard());
    }
}

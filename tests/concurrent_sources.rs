//! Integration: client threads feed the middleware through crossbeam
//! channels, as in the paper's experimental setup (§4.1: contexts were
//! "produced by a client thread").

use ctxres::apps::call_forwarding::CallForwarding;
use ctxres::apps::PervasiveApp;
use ctxres::context::{Context, Ticks};
use ctxres::core::strategies::DropBad;
use ctxres::middleware::source::{collect, spawn_replay};
use ctxres::middleware::{Middleware, MiddlewareConfig};

#[test]
fn threaded_sources_match_direct_submission() {
    let app = CallForwarding::new();
    let trace = app.generate(0.3, 9, 240);

    // Direct submission.
    let run = |contexts: Vec<Context>| {
        let mut mw = Middleware::builder()
            .constraints(app.constraints())
            .registry(app.registry())
            .strategy(Box::new(DropBad::new()))
            .config(MiddlewareConfig {
                window: Ticks::new(app.recommended_window()),
                track_ground_truth: true,
                retention: None,
            })
            .build();
        for ctx in contexts {
            mw.submit(ctx);
        }
        mw.drain();
        *mw.stats()
    };
    let direct = run(trace.clone());

    // Per-person client threads, merged by stamp.
    let mut per_person: Vec<Vec<Context>> = vec![Vec::new(); 3];
    for ctx in trace {
        let slot = match ctx.subject() {
            "peter" => 0,
            "mary" => 1,
            _ => 2,
        };
        per_person[slot].push(ctx);
    }
    let mut receivers = Vec::new();
    let mut handles = Vec::new();
    for t in per_person {
        let (rx, handle) = spawn_replay(t);
        receivers.push(rx);
        handles.push(handle);
    }
    let merged = collect(receivers);
    for h in handles {
        h.join();
    }
    let threaded = run(merged);

    // Same stamp order within each subject and detection only relates
    // same-subject contexts, so the outcomes agree.
    assert_eq!(direct.delivered, threaded.delivered);
    assert_eq!(direct.discarded, threaded.discarded);
    assert_eq!(direct.inconsistencies, threaded.inconsistencies);
}

#[test]
fn many_small_sources_drain_cleanly() {
    let traces: Vec<Vec<Context>> = (0..8)
        .map(|i| {
            let app = CallForwarding::new();
            app.generate(0.2, i, 60)
        })
        .collect();
    let mut receivers = Vec::new();
    let mut handles = Vec::new();
    for t in traces {
        let (rx, h) = spawn_replay(t);
        receivers.push(rx);
        handles.push(h);
    }
    let merged = collect(receivers);
    for h in handles {
        h.join();
    }
    assert_eq!(merged.len(), 8 * 60);
    // Stamp-sorted.
    assert!(merged.windows(2).all(|w| w[0].stamp() <= w[1].stamp()));
}

//! Integration smoke tests for the library's supporting features, used
//! through the umbrella crate the way a downstream application would.

use ctxres::apps::{impact_profile, PervasiveApp};
use ctxres::constraint::{
    parse_constraints, parse_formula, simplify, validate, AttrType, ContextSchema,
    PredicateRegistry,
};
use ctxres::context::{Context, ContextKind, LogicalTime, Ticks};
use ctxres::core::strategies::{DropBad, ImpactAwareDropBad};
use ctxres::core::ResolutionStrategy;
use ctxres::middleware::{
    EventLog, Middleware, MiddlewareConfig, SharedMiddleware, SubscriptionFilter,
};

#[test]
fn schema_validation_through_the_umbrella() {
    let mut schema = ContextSchema::new();
    schema.kind("badge").attr("room", AttrType::Text);
    let registry = PredicateRegistry::with_builtins();
    let good =
        parse_constraints("constraint ok: forall b: badge . eq(b.room, \"office\")").unwrap();
    assert!(validate(&good, &schema, &registry).is_empty());
    let bad = parse_constraints("constraint nope: forall b: badge . eq(b.floor, 3)").unwrap();
    assert_eq!(validate(&bad, &schema, &registry).len(), 1);
}

#[test]
fn simplifier_through_the_umbrella() {
    let f = parse_formula("not not (true and (false or p()))").unwrap();
    assert_eq!(simplify(f).to_string(), "p()");
}

#[test]
fn explanations_journal_a_full_run() {
    let app = ctxres::apps::call_forwarding::CallForwarding::new();
    let strategy = DropBad::new().with_explanations();
    // Drive manually to keep hold of the strategy.
    let mut pool = ctxres::context::ContextPool::new();
    let mut strategy = strategy;
    let now = LogicalTime::ZERO;
    let ids: Vec<_> = app
        .generate(0.0, 1, 6)
        .into_iter()
        .map(|c| pool.insert(c))
        .collect();
    let inc = ctxres::core::Inconsistency::pair("x", ids[0], ids[3], now);
    strategy.on_addition(&mut pool, now, ids[3], &[inc]);
    strategy.on_use(&mut pool, now, ids[0]);
    let log = strategy.explanations().unwrap();
    assert!(!log.entries().is_empty());
}

#[test]
fn impact_aware_strategy_builds_from_situations() {
    let app = ctxres::apps::rfid_anomalies::RfidAnomalies::new();
    let strategy = ImpactAwareDropBad::new(impact_profile(&app.situations()));
    assert_eq!(strategy.name(), "d-bad-impact");
    let promo = Context::builder(ContextKind::new("rfid_read"), "tag-0").build();
    assert_eq!(strategy.profile().impact_of(&promo), 2);
}

#[test]
fn shared_middleware_with_observer_and_subscription() {
    let log = std::sync::Arc::new(parking_lot::Mutex::new(EventLog::new()));
    let mw = Middleware::builder()
        .strategy(Box::new(DropBad::new()))
        .config(MiddlewareConfig {
            window: Ticks::new(0),
            track_ground_truth: false,
            retention: None,
        })
        .observer(Box::new(std::sync::Arc::clone(&log)))
        .build();
    let shared = SharedMiddleware::new(mw);
    let feed = shared
        .lock()
        .subscribe(SubscriptionFilter::all().of_kind("badge"));

    let (tx, rx) = crossbeam::channel::unbounded();
    let pump = shared.pump_in_thread(rx);
    for i in 0..10u64 {
        tx.send(
            Context::builder(ContextKind::new("badge"), "peter")
                .attr("room", "office")
                .stamp(LogicalTime::new(i))
                .build(),
        )
        .unwrap();
    }
    drop(tx);
    assert_eq!(pump.join(), 10);
    shared.lock().drain();
    assert_eq!(shared.lock().poll(feed).len(), 10);
    assert!(!log.lock().events().is_empty());
}

//! The exact five-context traces of the paper's Figures 1–5.
//!
//! Peter walks at `v = 1` m/tick along the x axis; the application
//! requires that his estimated velocity stay below `150 % · v` (§2.1).
//! Five locations `d1 … d5` are tracked; `d3` is corrupted:
//!
//! * **Scenario A** (Fig. 1): `d3` deviates so far that both adjacent
//!   pairs `(d2,d3)` and `(d3,d4)` violate the constraint; with the
//!   refined gap-2 constraint (Fig. 5), `(d1,d3)` and `(d3,d5)` violate
//!   too — `count(d3) = 4`;
//! * **Scenario B** (Fig. 2): `d3` sits closer to `d2`, so only
//!   `(d3,d4)` violates the adjacent constraint; the refined constraint
//!   adds `(d3,d5)` — `count(d3) = 2`.
//!
//! These traces drive the paper-shape integration tests: drop-latest
//! resolves Scenario A correctly but discards the *correct* `d4` in
//! Scenario B; drop-all loses correct contexts in both; drop-bad
//! discards exactly `d3` in both (given the refined constraints).

use ctxres_constraint::{parse_constraints, Constraint};
use ctxres_context::{Context, ContextKind, LogicalTime, Point, TruthTag};

/// The context kind used by the scenario traces.
pub fn location_kind() -> ContextKind {
    ContextKind::new("location")
}

fn trace(points: [(f64, f64); 5]) -> Vec<Context> {
    points
        .iter()
        .enumerate()
        .map(|(i, (x, y))| {
            Context::builder(location_kind(), "peter")
                .attr("pos", Point::new(*x, *y))
                .attr("seq", i as i64)
                .stamp(LogicalTime::new(i as u64))
                .truth(if i == 2 {
                    TruthTag::Corrupted
                } else {
                    TruthTag::Expected
                })
                .build()
        })
        .collect()
}

/// Scenario A (Fig. 1): `d3 = (2, 3)` deviates sharply.
pub fn scenario_a() -> Vec<Context> {
    trace([(0.0, 0.0), (1.0, 0.0), (2.0, 3.0), (3.0, 0.0), (4.0, 0.0)])
}

/// Scenario B (Fig. 2): `d3 = (1.2, 1.4)` slips past the adjacent check.
pub fn scenario_b() -> Vec<Context> {
    trace([(0.0, 0.0), (1.0, 0.0), (1.2, 1.4), (3.0, 0.0), (4.0, 0.0)])
}

/// The adjacent-pair velocity constraint of §2.1 (gap 1, limit
/// `150 % · v`).
pub fn adjacent_constraint() -> Constraint {
    parse_constraints(
        "constraint velocity_gap1:
           forall a: location, b: location .
             (same_subject(a, b) and seq_gap(a, b, 1)) implies velocity_le(a, b, 1.5)",
    )
    .unwrap()
    .remove(0)
}

/// The refined gap-2 constraint of §3.1 (pairs separated by one
/// intermediate location, same 150 % velocity limit over two ticks).
pub fn gap2_constraint() -> Constraint {
    parse_constraints(
        "constraint velocity_gap2:
           forall a: location, b: location .
             (same_subject(a, b) and seq_gap(a, b, 2)) implies velocity_le(a, b, 1.5)",
    )
    .unwrap()
    .remove(0)
}

/// Both constraints, as deployed for Fig. 5.
pub fn refined_constraints() -> Vec<Constraint> {
    vec![adjacent_constraint(), gap2_constraint()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctxres_constraint::{Evaluator, PredicateRegistry};
    use ctxres_context::ContextPool;
    use std::collections::BTreeSet;

    fn violations(trace: Vec<Context>, constraints: &[Constraint]) -> BTreeSet<Vec<u64>> {
        let pool: ContextPool = trace.into_iter().collect();
        let reg = PredicateRegistry::with_builtins();
        let eval = Evaluator::new(&reg);
        let mut out = BTreeSet::new();
        for c in constraints {
            let outcome = eval.check(c, &pool, LogicalTime::new(10)).unwrap();
            for link in outcome.violations {
                out.insert(link.iter().map(|id| id.raw()).collect());
            }
        }
        out
    }

    #[test]
    fn scenario_a_adjacent_detects_d2d3_and_d3d4() {
        // Fig. 1: Δ = {(d2,d3), (d3,d4)} — 0-based ids 1,2,3.
        let v = violations(scenario_a(), &[adjacent_constraint()]);
        assert_eq!(v, BTreeSet::from([vec![1, 2], vec![2, 3]]));
    }

    #[test]
    fn scenario_a_refined_detects_four_inconsistencies() {
        // Fig. 5 left: Δ = {(d1,d3),(d2,d3),(d3,d4),(d3,d5)}.
        let v = violations(scenario_a(), &refined_constraints());
        assert_eq!(
            v,
            BTreeSet::from([vec![0, 2], vec![1, 2], vec![2, 3], vec![2, 4]])
        );
    }

    #[test]
    fn scenario_b_adjacent_detects_only_d3d4() {
        // Fig. 2 right: Δ = {(d3,d4)}.
        let v = violations(scenario_b(), &[adjacent_constraint()]);
        assert_eq!(v, BTreeSet::from([vec![2, 3]]));
    }

    #[test]
    fn scenario_b_refined_detects_two_inconsistencies() {
        // Fig. 5 right: Δ = {(d3,d4),(d3,d5)}.
        let v = violations(scenario_b(), &refined_constraints());
        assert_eq!(v, BTreeSet::from([vec![2, 3], vec![2, 4]]));
    }

    #[test]
    fn only_d3_is_corrupted() {
        for trace in [scenario_a(), scenario_b()] {
            let corrupted: Vec<usize> = trace
                .iter()
                .enumerate()
                .filter(|(_, c)| c.truth().is_corrupted())
                .map(|(i, _)| i)
                .collect();
            assert_eq!(corrupted, vec![2]);
        }
    }
}

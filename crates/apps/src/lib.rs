//! The paper's subject applications and illustrative scenarios.
//!
//! The ICDCS'08 experiments use two context-aware applications "adapted
//! from Call Forwarding [Want et al.] and RFID data anomalies [Rao et
//! al.]", each with **five consistency constraints** and **three
//! situations** (§4.1), plus the location-tracking running example of
//! §2–3. This crate implements all three, each as a [`PervasiveApp`]:
//!
//! * [`LocationTracking`](location_tracking::LocationTracking) — Peter's
//!   walk, tracked by the `ctxres-landmarc` simulator, with the
//!   velocity/region constraints of §2.1;
//! * [`CallForwarding`](call_forwarding::CallForwarding) — Active-Badge
//!   style badge sightings over a room graph; calls follow people;
//! * [`RfidAnomalies`](rfid_anomalies::RfidAnomalies) — shelf/checkout
//!   RFID reads with ghost-read and cross-read anomalies;
//! * [`scenarios`] — the exact five-context traces of Figures 1–5,
//!   which the integration tests replay against every strategy.
//!
//! Each application supplies its constraint set, its situations, the
//! custom predicates they need, and a seeded workload generator with the
//! controlled `err_rate` knob of §4.1.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod call_forwarding;
mod impact;
pub mod location_tracking;
pub mod rfid_anomalies;
mod rooms;
pub mod scenarios;
pub mod smart_ringer;

pub use impact::impact_profile;
pub use rooms::RoomGraph;

use ctxres_constraint::{Constraint, ContextSchema, PredicateRegistry};
use ctxres_context::Context;

/// A pervasive-computing application as the experiments see it: a named
/// workload with constraints, situations and custom predicates.
pub trait PervasiveApp {
    /// The application's display name.
    fn name(&self) -> &'static str;

    /// The consistency constraints the application deploys.
    fn constraints(&self) -> Vec<Constraint>;

    /// The situations whose activation the application reacts to.
    fn situations(&self) -> Vec<Constraint>;

    /// A predicate registry containing the builtins plus the
    /// application's domain predicates.
    fn registry(&self) -> PredicateRegistry;

    /// The context schema this application produces — used to validate
    /// its constraints and situations at deploy time
    /// (`ctxres_constraint::validate`).
    fn schema(&self) -> ContextSchema;

    /// Generates a workload trace of `len` contexts with the given
    /// corruption probability, deterministically from `seed`.
    fn generate(&self, err_rate: f64, seed: u64, len: usize) -> Vec<Context>;

    /// The middleware time window this workload is calibrated for: long
    /// enough for drop-bad to gather count evidence from each subject's
    /// next couple of contexts, short enough that contexts are used well
    /// within their lifespans.
    fn recommended_window(&self) -> u64 {
        12
    }
}

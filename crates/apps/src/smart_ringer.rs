//! The smart-phone ringer — the paper's opening example (§1): "a smart
//! phone would vibrate rather than beep in a concert hall to avoid
//! disturbing an ongoing performance, but would roar loudly in a
//! foot-ball match".
//!
//! Two context kinds feed the ringer policy: `venue` fixes (where the
//! phone is) and `noise` samples (ambient level in dB). Unlike the other
//! applications, the key consistency constraint is **cross-kind**: a
//! reported venue must be coherent with the concurrently measured noise
//! floor — a "concert hall" fix while the microphone reads 95 dB is
//! corrupt. This exercises the §3.4 claim that drop-bad handles
//! inconsistencies "caused by different types and numbers of contexts".

use crate::rooms::RoomGraph;
use crate::PervasiveApp;
use ctxres_constraint::{parse_constraints, Constraint, EvalError, PredicateRegistry};
use ctxres_context::{Context, ContextKind, Lifespan, LogicalTime, Ticks, TruthTag};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::sync::Arc;

/// The ambient-noise band (dB) expected at a venue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseBand {
    /// Lower edge of the plausible band.
    pub low: f64,
    /// Upper edge of the plausible band.
    pub high: f64,
}

/// The smart-ringer application.
#[derive(Debug, Clone)]
pub struct SmartRinger {
    venues: Arc<RoomGraph>,
    bands: Arc<BTreeMap<String, NoiseBand>>,
    ttl: Ticks,
    stay_probability: f64,
}

impl SmartRinger {
    /// The venue-fix context kind.
    pub fn venue_kind() -> ContextKind {
        ContextKind::new("venue")
    }

    /// The noise-sample context kind.
    pub fn noise_kind() -> ContextKind {
        ContextKind::new("noise")
    }

    /// Creates the application with the default city block.
    pub fn new() -> Self {
        let venues = RoomGraph::from_edges([
            ("street", "concert-hall"),
            ("street", "stadium"),
            ("street", "office"),
            ("street", "cafe"),
            ("stadium", "parking"),
        ]);
        let bands: BTreeMap<String, NoiseBand> = [
            (
                "concert-hall",
                NoiseBand {
                    low: 25.0,
                    high: 55.0,
                },
            ),
            (
                "stadium",
                NoiseBand {
                    low: 80.0,
                    high: 110.0,
                },
            ),
            (
                "office",
                NoiseBand {
                    low: 35.0,
                    high: 60.0,
                },
            ),
            (
                "cafe",
                NoiseBand {
                    low: 55.0,
                    high: 75.0,
                },
            ),
            (
                "street",
                NoiseBand {
                    low: 60.0,
                    high: 85.0,
                },
            ),
            (
                "parking",
                NoiseBand {
                    low: 45.0,
                    high: 70.0,
                },
            ),
        ]
        .into_iter()
        .map(|(k, v)| (k.to_owned(), v))
        .collect();
        SmartRinger {
            venues: Arc::new(venues),
            bands: Arc::new(bands),
            ttl: Ticks::new(5),
            stay_probability: 0.5,
        }
    }

    /// The venue adjacency graph.
    pub fn venues(&self) -> &RoomGraph {
        &self.venues
    }

    /// The noise band expected at `venue`.
    pub fn band(&self, venue: &str) -> Option<NoiseBand> {
        self.bands.get(venue).copied()
    }
}

impl Default for SmartRinger {
    fn default() -> Self {
        SmartRinger::new()
    }
}

impl PervasiveApp for SmartRinger {
    fn name(&self) -> &'static str {
        "smart-ringer"
    }

    fn constraints(&self) -> Vec<Constraint> {
        parse_constraints(
            "# the phone cannot jump between non-adjacent venues
             constraint venue_adjacent:
               forall a: venue, b: venue .
                 (same_subject(a, b) and seq_gap(a, b, 1)) implies venue_edge(a, b)
             # fixes one apart stay within two hops
             constraint venue_within2:
               forall a: venue, b: venue .
                 (same_subject(a, b) and seq_gap(a, b, 2)) implies venue_within2(a, b)
             # cross-kind: a venue fix must be coherent with concurrent
             # noise samples from the same phone
             constraint venue_noise_coherent:
               forall v: venue, n: noise .
                 (same_subject(v, n) and time_gap_le(v, n, 0)) implies noise_matches_venue(v, n)
             # microphones report physical levels
             constraint noise_physical:
               forall n: noise . ge(n.level, 10.0) and le(n.level, 130.0)
             # ambient noise does not jump more than a venue change can
             # explain (office 35 dB to stadium 110 dB is the widest
             # legitimate transition)
             constraint noise_smooth:
               forall a: noise, b: noise .
                 (same_subject(a, b) and seq_gap(a, b, 1)) implies level_delta_le(a, b, 80.0)",
        )
        .expect("builtin constraints parse")
    }

    fn situations(&self) -> Vec<Constraint> {
        parse_constraints(
            "# vibrate: the phone is in the concert hall
             constraint silent_mode:
               exists v: venue . eq(v.place, \"concert-hall\")
             # roar: the phone is at the match
             constraint loud_mode:
               exists v: venue . eq(v.place, \"stadium\")
             # quiet hours at the office with low measured noise
             constraint office_quiet:
               exists v: venue, n: noise .
                 same_subject(v, n) and eq(v.place, \"office\") and lt(n.level, 55.0)",
        )
        .expect("builtin situations parse")
    }

    fn registry(&self) -> PredicateRegistry {
        let mut reg = PredicateRegistry::with_builtins();
        let place_of = |args: &[ctxres_constraint::Resolved<'_>], i: usize, pred: &str| {
            args[i]
                .ctx()
                .and_then(|(c, _)| c.text("place").map(str::to_owned))
                .ok_or_else(|| EvalError::Type {
                    name: pred.to_owned(),
                    detail: format!("argument {i} must be a venue context with a place"),
                })
        };
        let venues = Arc::clone(&self.venues);
        reg.register("venue_edge", 2, move |args| {
            let a = place_of(args, 0, "venue_edge")?;
            let b = place_of(args, 1, "venue_edge")?;
            Ok(venues.adjacent(&a, &b))
        });
        let venues = Arc::clone(&self.venues);
        reg.register("venue_within2", 2, move |args| {
            let a = place_of(args, 0, "venue_within2")?;
            let b = place_of(args, 1, "venue_within2")?;
            Ok(venues.within_hops(&a, &b, 2))
        });
        let bands = Arc::clone(&self.bands);
        reg.register("noise_matches_venue", 2, move |args| {
            let place = place_of(args, 0, "noise_matches_venue")?;
            let (noise, _) = args[1].ctx().ok_or_else(|| EvalError::Type {
                name: "noise_matches_venue".into(),
                detail: "argument 1 must be a noise context".into(),
            })?;
            let level = noise.number("level").ok_or_else(|| EvalError::Type {
                name: "noise_matches_venue".into(),
                detail: "noise context lacks a level".into(),
            })?;
            // Bands widen by a tolerance: transient sounds should not
            // raise false inconsistencies (Rule 1).
            Ok(bands
                .get(&place)
                .map(|b| level >= b.low - 10.0 && level <= b.high + 10.0)
                .unwrap_or(false))
        });
        reg.register("level_delta_le", 3, |args| {
            let level = |i: usize| {
                args[i]
                    .ctx()
                    .and_then(|(c, _)| c.number("level"))
                    .ok_or_else(|| EvalError::Type {
                        name: "level_delta_le".into(),
                        detail: format!("argument {i} must be a noise context with a level"),
                    })
            };
            let bound = args[2]
                .value()
                .and_then(ctxres_context::ContextValue::as_f64)
                .ok_or_else(|| EvalError::Type {
                    name: "level_delta_le".into(),
                    detail: "argument 2 must be numeric".into(),
                })?;
            Ok((level(0)? - level(1)?).abs() <= bound)
        });
        reg
    }

    fn schema(&self) -> ctxres_constraint::ContextSchema {
        use ctxres_constraint::AttrType;
        let mut schema = ctxres_constraint::ContextSchema::new();
        schema
            .kind("venue")
            .attr("place", AttrType::Text)
            .attr("seq", AttrType::Int);
        schema
            .kind("noise")
            .attr("level", AttrType::Float)
            .attr("seq", AttrType::Int);
        schema
    }

    fn recommended_window(&self) -> u64 {
        3
    }

    fn generate(&self, err_rate: f64, seed: u64, len: usize) -> Vec<Context> {
        assert!(
            (0.0..=1.0).contains(&err_rate),
            "err_rate must be a probability"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut place = "office".to_owned();
        let mut venue_seq = 0i64;
        let mut noise_seq = 0i64;
        let mut out = Vec::with_capacity(len);
        // Each tick emits a venue fix and a noise sample; `len` counts
        // contexts, so the run spans len/2 ticks.
        for i in 0..len {
            let tick = (i / 2) as u64;
            let stamp = LogicalTime::new(tick);
            if i % 2 == 0 {
                // Venue fix.
                if rng.gen_bool(1.0 - self.stay_probability) {
                    if let Some(next) = self.venues.random_neighbor(&place, &mut rng) {
                        place = next;
                    }
                }
                let corrupted = rng.gen_bool(err_rate);
                let reported = if corrupted {
                    // A wrong venue — far when one exists, otherwise any
                    // other venue (from the street hub everything is
                    // adjacent, so the error is subtle there).
                    self.venues
                        .random_far_room(&place, 2, &mut rng)
                        .or_else(|| {
                            let others: Vec<&str> = self
                                .venues
                                .rooms()
                                .iter()
                                .copied()
                                .filter(|r| *r != place)
                                .collect();
                            (!others.is_empty())
                                .then(|| others[rng.gen_range(0..others.len())].to_owned())
                        })
                        .unwrap_or_else(|| place.clone())
                } else {
                    place.clone()
                };
                out.push(
                    Context::builder(Self::venue_kind(), "phone")
                        .attr("place", reported.as_str())
                        .attr("seq", venue_seq)
                        .stamp(stamp)
                        .lifespan(Lifespan::with_ttl(stamp, self.ttl))
                        .truth(if corrupted {
                            TruthTag::Corrupted
                        } else {
                            TruthTag::Expected
                        })
                        .build(),
                );
                venue_seq += 1;
            } else {
                // Noise sample from the *true* venue's band.
                let band = self.bands[&place];
                let corrupted = rng.gen_bool(err_rate / 2.0);
                let level = if corrupted {
                    // A phantom spike or dropout.
                    if rng.gen_bool(0.5) {
                        band.high + rng.gen_range(45.0..60.0)
                    } else {
                        (band.low - rng.gen_range(45.0..60.0)).max(11.0)
                    }
                } else {
                    rng.gen_range(band.low..band.high)
                };
                out.push(
                    Context::builder(Self::noise_kind(), "phone")
                        .attr("level", level)
                        .attr("seq", noise_seq)
                        .stamp(stamp)
                        .lifespan(Lifespan::with_ttl(stamp, self.ttl))
                        .truth(if corrupted {
                            TruthTag::Corrupted
                        } else {
                            TruthTag::Expected
                        })
                        .build(),
                );
                noise_seq += 1;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctxres_constraint::{validate, Evaluator};
    use ctxres_context::ContextPool;
    use std::collections::BTreeSet;

    fn all_violations(app: &SmartRinger, trace: Vec<Context>) -> Vec<ctxres_constraint::Link> {
        let pool: ContextPool = trace.into_iter().collect();
        let reg = app.registry();
        let eval = Evaluator::new(&reg);
        let mut links = Vec::new();
        for c in app.constraints() {
            links.extend(
                eval.check(&c, &pool, LogicalTime::new(0))
                    .unwrap()
                    .violations,
            );
        }
        links
    }

    #[test]
    fn clean_traces_are_consistent() {
        let app = SmartRinger::new();
        let trace = app.generate(0.0, 3, 300);
        let v = all_violations(&app, trace);
        assert!(v.is_empty(), "false positives: {v:?}");
    }

    #[test]
    fn corrupted_venues_conflict_with_noise() {
        // With only the cross-kind constraint deployed, corrupted venue
        // fixes are still caught: the noise stream betrays them.
        let app = SmartRinger::new();
        let trace = app.generate(0.3, 7, 300);
        let corrupted_venues: BTreeSet<u64> = trace
            .iter()
            .enumerate()
            .filter(|(_, c)| c.kind() == &SmartRinger::venue_kind() && c.truth().is_corrupted())
            .map(|(i, _)| i as u64)
            .collect();
        let pool: ContextPool = trace.into_iter().collect();
        let reg = app.registry();
        let eval = Evaluator::new(&reg);
        let coherence = app
            .constraints()
            .into_iter()
            .find(|c| c.name() == "venue_noise_coherent")
            .unwrap();
        let out = eval.check(&coherence, &pool, LogicalTime::new(0)).unwrap();
        let blamed: BTreeSet<u64> = out
            .violations
            .iter()
            .flat_map(|l| l.iter().map(|id| id.raw()))
            .collect();
        let caught = corrupted_venues.intersection(&blamed).count();
        // The coherence channel alone cannot separate acoustically
        // similar venues (office vs concert hall) — a realistic partial
        // detector; it must still catch a solid share on its own.
        assert!(
            caught as f64 > corrupted_venues.len() as f64 * 0.3,
            "cross-kind recall {caught}/{}",
            corrupted_venues.len()
        );
        // All channels together catch most corrupted venue fixes.
        let mut all_blamed: BTreeSet<u64> = BTreeSet::new();
        for c in app.constraints() {
            for link in eval
                .check(&c, &pool, LogicalTime::new(0))
                .unwrap()
                .violations
            {
                all_blamed.extend(link.iter().map(|id| id.raw()));
            }
        }
        let caught_all = corrupted_venues.intersection(&all_blamed).count();
        assert!(
            caught_all as f64 > corrupted_venues.len() as f64 * 0.75,
            "overall recall {caught_all}/{}",
            corrupted_venues.len()
        );
    }

    #[test]
    fn cross_kind_links_span_both_kinds() {
        let app = SmartRinger::new();
        let trace = app.generate(0.4, 5, 200);
        let pool: ContextPool = trace.into_iter().collect();
        let reg = app.registry();
        let eval = Evaluator::new(&reg);
        let coherence = app
            .constraints()
            .into_iter()
            .find(|c| c.name() == "venue_noise_coherent")
            .unwrap();
        let out = eval.check(&coherence, &pool, LogicalTime::new(0)).unwrap();
        assert!(!out.violations.is_empty());
        let spans_kinds = out.violations.iter().any(|link| {
            let kinds: BTreeSet<&str> = link
                .iter()
                .filter_map(|id| pool.get(*id))
                .map(|c| c.kind().name())
                .collect();
            kinds.len() == 2
        });
        assert!(spans_kinds, "expected a violation naming both kinds");
    }

    #[test]
    fn schema_validates() {
        let app = SmartRinger::new();
        let mut all = app.constraints();
        all.extend(app.situations());
        let violations = validate(&all, &app.schema(), &app.registry());
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn five_constraints_three_situations() {
        let app = SmartRinger::new();
        assert_eq!(app.constraints().len(), 5);
        assert_eq!(app.situations().len(), 3);
    }

    #[test]
    fn generate_is_deterministic() {
        let app = SmartRinger::new();
        assert_eq!(app.generate(0.2, 9, 80), app.generate(0.2, 9, 80));
    }

    #[test]
    fn emits_both_kinds_alternating() {
        let app = SmartRinger::new();
        let trace = app.generate(0.0, 1, 6);
        let kinds: Vec<&str> = trace.iter().map(|c| c.kind().name()).collect();
        assert_eq!(
            kinds,
            vec!["venue", "noise", "venue", "noise", "venue", "noise"]
        );
    }

    #[test]
    fn bands_are_exposed() {
        let app = SmartRinger::new();
        assert!(app.band("stadium").unwrap().low > app.band("concert-hall").unwrap().high);
        assert!(app.band("nowhere").is_none());
    }
}

//! The RFID data anomalies application (paper §4.1, after Rao et al.'s
//! deferred RFID cleansing and Jeffery et al.'s adaptive cleaning).
//!
//! Tagged items sit on store shelves; zone readers report `rfid_read`
//! contexts. Real RFID deployments suffer *cross reads* (a tag answering
//! a distant reader) and *ghost reads* (phantom observations) — the
//! anomalies this application's constraints catch: items cannot jump
//! between non-adjacent zones, and a checked-out item cannot reappear on
//! a shelf.

use crate::rooms::RoomGraph;
use crate::PervasiveApp;
use ctxres_constraint::{parse_constraints, Constraint, EvalError, PredicateRegistry};
use ctxres_context::{Context, ContextKind, Lifespan, LogicalTime, Ticks, TruthTag};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// The tagged items the generator tracks.
pub const TAGS: [&str; 6] = ["tag-0", "tag-1", "tag-2", "tag-3", "tag-4", "tag-5"];

/// The RFID data anomalies application.
#[derive(Debug, Clone)]
pub struct RfidAnomalies {
    zones: Arc<RoomGraph>,
    ttl: Ticks,
    move_probability: f64,
}

impl RfidAnomalies {
    /// The context kind produced by zone readers.
    pub fn kind() -> ContextKind {
        ContextKind::new("rfid_read")
    }

    /// Creates the application over the default store layout.
    pub fn new() -> Self {
        RfidAnomalies {
            zones: Arc::new(Self::default_zones()),
            ttl: Ticks::new(5),
            move_probability: 0.45,
        }
    }

    /// Default store layout: two shelf aisles between the entry and the
    /// checkout, with a backroom off the entry. Cross-aisle zones sit
    /// several hops apart, so cross reads are physically implausible.
    pub fn default_zones() -> RoomGraph {
        RoomGraph::from_edges([
            ("entry", "shelf-1"),
            ("shelf-1", "shelf-2"),
            ("shelf-2", "shelf-3"),
            ("shelf-3", "checkout"),
            ("entry", "shelf-4"),
            ("shelf-4", "shelf-5"),
            ("shelf-5", "shelf-6"),
            ("shelf-6", "checkout"),
            ("entry", "backroom"),
        ])
    }

    /// The zone graph in use.
    pub fn zones(&self) -> &RoomGraph {
        &self.zones
    }

    /// A zone adjacent to (or equal to) `prev` but different from the
    /// item's true zone — a cross read that looks like a legal move when
    /// checked against the previous read.
    fn plausible_wrong_zone(
        &self,
        prev: &str,
        current_true: &str,
        rng: &mut rand::rngs::StdRng,
    ) -> String {
        let mut candidates: Vec<String> = self
            .zones
            .rooms()
            .iter()
            .filter(|z| self.zones.adjacent(prev, z) && **z != current_true)
            .map(|z| (*z).to_owned())
            .collect();
        if candidates.is_empty() {
            return self
                .zones
                .random_far_room(current_true, 2, rng)
                .unwrap_or_else(|| current_true.to_owned());
        }
        candidates.swap_remove(rng.gen_range(0..candidates.len()))
    }
}

impl Default for RfidAnomalies {
    fn default() -> Self {
        RfidAnomalies::new()
    }
}

impl PervasiveApp for RfidAnomalies {
    fn name(&self) -> &'static str {
        "rfid-anomalies"
    }

    fn constraints(&self) -> Vec<Constraint> {
        parse_constraints(
            "# consecutive reads of a tag come from adjacent zones
             constraint read_adjacent:
               forall a: rfid_read, b: rfid_read .
                 (same_subject(a, b) and seq_gap(a, b, 1)) implies zone_adjacent(a, b)
             # reads one apart stay within two hops
             constraint read_within2:
               forall a: rfid_read, b: rfid_read .
                 (same_subject(a, b) and seq_gap(a, b, 2)) implies zone_within2(a, b)
             # a checked-out item does not reappear on the floor
             constraint checkout_final:
               forall a: rfid_read, b: rfid_read .
                 (same_subject(a, b) and seq_gap_le(a, b, 2) and eq(a.zone, \"checkout\"))
                   implies eq(b.zone, \"checkout\")
             # reads name zones that exist in this store
             constraint known_zone:
               forall a: rfid_read . zone_known(a)
             # reads two apart stay within three hops (more pairs,
             # more count evidence -- the Fig. 5 refinement idea)
             constraint read_within3:
               forall a: rfid_read, b: rfid_read .
                 (same_subject(a, b) and seq_gap(a, b, 3)) implies zone_within3(a, b)",
        )
        .expect("builtin constraints parse")
    }

    fn situations(&self) -> Vec<Constraint> {
        // Reads expire after their TTL, so these toggle as items wander
        // — the activation edges the experiments count.
        parse_constraints(
            "# the promo item is on its shelf and sellable
             constraint promo_on_shelf:
               exists r: rfid_read . subject_eq(r, \"tag-0\") and eq(r.zone, \"shelf-1\")
             # the display unit is back in the backroom
             constraint display_in_backroom:
               exists r: rfid_read . subject_eq(r, \"tag-1\") and eq(r.zone, \"backroom\")
             # the promo item wandered off its shelf without being sold
             constraint promo_misplaced:
               exists r: rfid_read .
                 subject_eq(r, \"tag-0\") and not eq(r.zone, \"shelf-1\")
                   and not eq(r.zone, \"checkout\")",
        )
        .expect("builtin situations parse")
    }

    fn registry(&self) -> PredicateRegistry {
        let mut reg = PredicateRegistry::with_builtins();
        let zone_of = |args: &[ctxres_constraint::Resolved<'_>], i: usize, pred: &str| {
            args[i]
                .ctx()
                .and_then(|(c, _)| c.text("zone").map(str::to_owned))
                .ok_or_else(|| EvalError::Type {
                    name: pred.to_owned(),
                    detail: format!("argument {i} must be an rfid_read context with a zone"),
                })
        };
        let zones = Arc::clone(&self.zones);
        reg.register("zone_adjacent", 2, move |args| {
            let a = zone_of(args, 0, "zone_adjacent")?;
            let b = zone_of(args, 1, "zone_adjacent")?;
            Ok(zones.adjacent(&a, &b))
        });
        let zones = Arc::clone(&self.zones);
        reg.register("zone_within2", 2, move |args| {
            let a = zone_of(args, 0, "zone_within2")?;
            let b = zone_of(args, 1, "zone_within2")?;
            Ok(zones.within_hops(&a, &b, 2))
        });
        let zones = Arc::clone(&self.zones);
        reg.register("zone_within3", 2, move |args| {
            let a = zone_of(args, 0, "zone_within3")?;
            let b = zone_of(args, 1, "zone_within3")?;
            Ok(zones.within_hops(&a, &b, 3))
        });
        let zones = Arc::clone(&self.zones);
        reg.register("zone_known", 1, move |args| {
            let a = zone_of(args, 0, "zone_known")?;
            Ok(zones.contains(&a))
        });
        reg
    }

    fn schema(&self) -> ctxres_constraint::ContextSchema {
        use ctxres_constraint::AttrType;
        let mut schema = ctxres_constraint::ContextSchema::new();
        schema
            .kind("rfid_read")
            .attr("zone", AttrType::Text)
            .attr("seq", AttrType::Int);
        schema
    }

    fn recommended_window(&self) -> u64 {
        2
    }

    fn generate(&self, err_rate: f64, seed: u64, len: usize) -> Vec<Context> {
        assert!(
            (0.0..=1.0).contains(&err_rate),
            "err_rate must be a probability"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut zones: Vec<String> = vec![
            "shelf-1".into(),
            "shelf-1".into(),
            "shelf-2".into(),
            "shelf-4".into(),
            "shelf-5".into(),
            "backroom".into(),
        ];
        let mut seqs = vec![0i64; TAGS.len()];
        let mut out = Vec::with_capacity(len);
        // Every zone reader polls each tick; `len` counts contexts, so
        // the run spans len/6 ticks.
        for i in 0..len {
            let tick = i / TAGS.len();
            let t = i % TAGS.len();
            let prev_zone = zones[t].clone();
            // True movement: items migrate between floor zones; nothing
            // truly enters the checkout zone in these traces, so every
            // checkout read is a ghost (the classic RFID false-positive
            // anomaly the constraints watch for).
            if rng.gen_bool(self.move_probability) {
                if let Some(next) = self.zones.random_neighbor(&zones[t], &mut rng) {
                    if next != "checkout" {
                        zones[t] = next;
                    }
                }
            }
            let corrupted = rng.gen_bool(err_rate);
            let reported = if corrupted {
                // Cross reads are usually *plausible-but-wrong* (a zone
                // consistent with the item's previous position, the
                // Scenario-B shape that defeats drop-latest); the rest
                // are blatant far-zone ghosts caught on arrival.
                if rng.gen_bool(0.85) {
                    self.plausible_wrong_zone(&prev_zone, &zones[t], &mut rng)
                } else {
                    self.zones
                        .random_far_room(&zones[t], 2, &mut rng)
                        .unwrap_or_else(|| zones[t].clone())
                }
            } else {
                zones[t].clone()
            };
            let stamp = LogicalTime::new(tick as u64);
            out.push(
                Context::builder(Self::kind(), TAGS[t])
                    .attr("zone", reported.as_str())
                    .attr("seq", seqs[t])
                    .stamp(stamp)
                    .lifespan(Lifespan::with_ttl(stamp, self.ttl))
                    .truth(if corrupted {
                        TruthTag::Corrupted
                    } else {
                        TruthTag::Expected
                    })
                    .build(),
            );
            seqs[t] += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctxres_constraint::Evaluator;
    use ctxres_context::ContextPool;
    use std::collections::BTreeSet;

    fn all_violations(app: &RfidAnomalies, trace: Vec<Context>) -> Vec<ctxres_constraint::Link> {
        let pool: ContextPool = trace.into_iter().collect();
        let reg = app.registry();
        let eval = Evaluator::new(&reg);
        let mut links = Vec::new();
        for c in app.constraints() {
            links.extend(
                eval.check(&c, &pool, LogicalTime::new(0))
                    .unwrap()
                    .violations,
            );
        }
        links
    }

    #[test]
    fn clean_traces_are_consistent() {
        let app = RfidAnomalies::new();
        let trace = app.generate(0.0, 4, 360);
        let v = all_violations(&app, trace);
        assert!(v.is_empty(), "false positives: {v:?}");
    }

    #[test]
    fn corrupted_reads_are_usually_caught() {
        let app = RfidAnomalies::new();
        let trace = app.generate(0.25, 10, 360);
        let corrupted: BTreeSet<u64> = trace
            .iter()
            .enumerate()
            .filter(|(_, c)| c.truth().is_corrupted())
            .map(|(i, _)| i as u64)
            .collect();
        let blamed: BTreeSet<u64> = all_violations(&app, trace)
            .iter()
            .flat_map(|l| l.iter().map(|id| id.raw()))
            .collect();
        let recall = corrupted.intersection(&blamed).count() as f64 / corrupted.len().max(1) as f64;
        // Plausible-but-wrong cross reads are sometimes genuinely
        // indistinguishable from legal moves, so recall sits well below
        // 1 by design; it must still clearly beat chance.
        assert!(recall > 0.5, "recall {recall}");
    }

    #[test]
    fn checkout_is_absorbing_for_expected_items() {
        let app = RfidAnomalies::new();
        let trace = app.generate(0.0, 21, 600);
        for tag in TAGS {
            let zones: Vec<&str> = trace
                .iter()
                .filter(|c| c.subject() == tag)
                .map(|c| c.text("zone").unwrap())
                .collect();
            if let Some(first) = zones.iter().position(|z| *z == "checkout") {
                assert!(
                    zones[first..].iter().all(|z| *z == "checkout"),
                    "{tag} left checkout"
                );
            }
        }
    }

    #[test]
    fn five_constraints_three_situations() {
        let app = RfidAnomalies::new();
        assert_eq!(app.constraints().len(), 5);
        assert_eq!(app.situations().len(), 3);
    }

    #[test]
    fn generate_is_deterministic() {
        let app = RfidAnomalies::new();
        assert_eq!(app.generate(0.2, 2, 60), app.generate(0.2, 2, 60));
    }

    #[test]
    fn custom_predicates_registered() {
        let reg = RfidAnomalies::new().registry();
        for p in [
            "zone_adjacent",
            "zone_within2",
            "zone_within3",
            "zone_known",
        ] {
            assert!(reg.contains(p), "{p} missing");
        }
    }
}

//! The location-tracking running example (paper §2–3, §5.2).
//!
//! Peter walks across a floor; the LANDMARC simulator estimates his
//! position each tick; corrupted fixes teleport far from the true path.
//! Velocity-style consistency constraints over adjacent and
//! near-adjacent location pairs catch the teleports — the exact workload
//! of the paper's illustrations and its §5.2 case study.

use crate::PervasiveApp;
use ctxres_constraint::{parse_constraints, Constraint, PredicateRegistry};
use ctxres_context::{Context, ContextKind, Lifespan, LogicalTime, Ticks};
use ctxres_landmarc::{LandmarcConfig, LandmarcSim};

/// The location-tracking application.
///
/// Thresholds are calibrated against the simulator's noise model: an
/// expected pair of fixes `g` ticks apart is displaced by at most
/// `g·v + 2·err_tail`, while a corrupted fix sits at least
/// `corruption_min_jump` from the true path. The constraint limits sit
/// between the two bands, so expected contexts (almost) never violate —
/// heuristic Rule 1 — while teleports reliably do.
#[derive(Debug, Clone)]
pub struct LocationTracking {
    config: LandmarcConfig,
    ttl: Ticks,
}

impl LocationTracking {
    /// The context kind produced by this application.
    pub fn kind() -> ContextKind {
        ContextKind::new("location")
    }

    /// Creates the application with the calibrated default setup.
    pub fn new() -> Self {
        LocationTracking {
            config: LandmarcConfig {
                radio: ctxres_landmarc::PathLossModel {
                    sigma: 1.0,
                    ..ctxres_landmarc::PathLossModel::default()
                },
                corruption_min_jump: 15.0,
                ..LandmarcConfig::default()
            },
            ttl: Ticks::new(20),
        }
    }

    /// The underlying simulator configuration.
    pub fn config(&self) -> &LandmarcConfig {
        &self.config
    }

    /// Overrides the simulator configuration (ablations).
    pub fn with_config(mut self, config: LandmarcConfig) -> Self {
        self.config = config;
        self
    }
}

impl Default for LocationTracking {
    fn default() -> Self {
        LocationTracking::new()
    }
}

impl PervasiveApp for LocationTracking {
    fn name(&self) -> &'static str {
        "location-tracking"
    }

    fn constraints(&self) -> Vec<Constraint> {
        // Peter's speed is 1 m/tick; expected estimation error stays
        // within ~2.5 m per fix at σ = 1 dB. Limits leave that band and
        // stay below the ≥ 15 m teleports.
        parse_constraints(
            "# gap-1: adjacent fixes
             constraint velocity_gap1:
               forall a: location, b: location .
                 (same_subject(a, b) and seq_gap(a, b, 1)) implies velocity_le(a, b, 6.0)
             # gap-2: one intermediate fix (the Fig. 5 refinement)
             constraint velocity_gap2:
               forall a: location, b: location .
                 (same_subject(a, b) and seq_gap(a, b, 2)) implies velocity_le(a, b, 3.5)
             # gap-3: two intermediate fixes
             constraint velocity_gap3:
               forall a: location, b: location .
                 (same_subject(a, b) and seq_gap(a, b, 3)) implies velocity_le(a, b, 2.7)
             # fixes must stay on the floor
             constraint feasible_region:
               forall a: location . within(a, -1.0, -1.0, 41.0, 31.0)
             # a person is in one place at a time
             constraint single_place:
               forall a: location, b: location .
                 (same_subject(a, b) and distinct(a, b) and time_gap_le(a, b, 0))
                   implies dist_le(a, b, 6.0)",
        )
        .expect("builtin constraints parse")
    }

    fn situations(&self) -> Vec<Constraint> {
        parse_constraints(
            "# someone is near the entrance (bottom-left corner)
             constraint near_entrance:
               exists a: location . within(a, 0.0, 0.0, 6.0, 6.0)
             # someone reached the far meeting corner
             constraint in_meeting_corner:
               exists a: location . within(a, 32.0, 22.0, 40.0, 30.0)
             # loitering: barely moved across four ticks
             constraint loitering:
               exists a: location, b: location .
                 same_subject(a, b) and seq_gap(a, b, 4) and dist_le(a, b, 2.0)",
        )
        .expect("builtin situations parse")
    }

    fn registry(&self) -> PredicateRegistry {
        PredicateRegistry::with_builtins()
    }

    fn schema(&self) -> ctxres_constraint::ContextSchema {
        use ctxres_constraint::AttrType;
        let mut schema = ctxres_constraint::ContextSchema::new();
        schema
            .kind("location")
            .attr("pos", AttrType::Point)
            .attr("seq", AttrType::Int);
        schema
    }

    fn generate(&self, err_rate: f64, seed: u64, len: usize) -> Vec<Context> {
        let config = LandmarcConfig {
            err_rate,
            ..self.config.clone()
        };
        let sim = LandmarcSim::new(config, seed);
        sim.take(len)
            .map(|fix| {
                let stamp = LogicalTime::new(fix.seq);
                Context::builder(Self::kind(), "peter")
                    .attr("pos", fix.pos)
                    .attr("seq", fix.seq as i64)
                    .stamp(stamp)
                    .lifespan(Lifespan::with_ttl(stamp, self.ttl))
                    .truth(if fix.corrupted {
                        ctxres_context::TruthTag::Corrupted
                    } else {
                        ctxres_context::TruthTag::Expected
                    })
                    .build()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctxres_constraint::{Evaluator, Link};
    use ctxres_context::{ContextPool, TruthTag};
    use std::collections::BTreeSet;

    fn violations_of(trace: Vec<Context>, app: &LocationTracking) -> Vec<Link> {
        let pool: ContextPool = trace.into_iter().collect();
        let reg = app.registry();
        let eval = Evaluator::new(&reg);
        let mut links = Vec::new();
        for c in app.constraints() {
            // Time 0 keeps every TTL'd context live (lifespans anchor at
            // their stamps, which are all >= 0).
            let out = eval.check(&c, &pool, LogicalTime::new(0)).unwrap();
            links.extend(out.violations);
        }
        links
    }

    #[test]
    fn clean_traces_raise_almost_no_inconsistencies() {
        // Heuristic Rule 1 calibration: with err_rate 0 the constraints
        // should (essentially) never fire.
        let app = LocationTracking::new();
        let trace = app.generate(0.0, 7, 400);
        // Contexts carry TTLs; evaluate at a time where all are live to
        // stress the worst case.
        let pool: ContextPool = trace.into_iter().collect();
        let reg = app.registry();
        let eval = Evaluator::new(&reg);
        let mut total = 0;
        for c in app.constraints() {
            // Evaluate with everything live: use each context's stamp era.
            let out = eval.check(&c, &pool, LogicalTime::new(0)).unwrap();
            total += out.violations.len();
        }
        assert_eq!(total, 0, "false positives on a clean trace");
    }

    #[test]
    fn corrupted_fixes_are_usually_caught() {
        let app = LocationTracking::new();
        let trace = app.generate(0.2, 11, 300);
        let corrupted: BTreeSet<u64> = trace
            .iter()
            .enumerate()
            .filter(|(_, c)| c.truth() == TruthTag::Corrupted)
            .map(|(i, _)| i as u64)
            .collect();
        assert!(!corrupted.is_empty());
        let links = violations_of(trace, &app);
        let blamed: BTreeSet<u64> = links
            .iter()
            .flat_map(|l| l.iter().map(|id| id.raw()))
            .collect();
        let caught = corrupted.intersection(&blamed).count();
        let recall = caught as f64 / corrupted.len() as f64;
        assert!(recall > 0.8, "detection recall {recall}");
    }

    #[test]
    fn five_constraints_three_situations() {
        let app = LocationTracking::new();
        assert_eq!(
            app.constraints().len(),
            5,
            "the paper deploys five constraints"
        );
        assert_eq!(app.situations().len(), 3, "and three situations");
    }

    #[test]
    fn generate_is_deterministic() {
        let app = LocationTracking::new();
        assert_eq!(app.generate(0.2, 5, 50), app.generate(0.2, 5, 50));
    }

    #[test]
    fn contexts_carry_ttl_lifespans() {
        let app = LocationTracking::new();
        let trace = app.generate(0.0, 1, 3);
        for c in &trace {
            assert_eq!(c.lifespan().ttl(), Some(Ticks::new(20)));
        }
    }

    #[test]
    fn err_rate_controls_corruption_share() {
        let app = LocationTracking::new();
        for rate in [0.1, 0.4] {
            let trace = app.generate(rate, 13, 1000);
            let share = trace.iter().filter(|c| c.truth().is_corrupted()).count() as f64 / 1000.0;
            assert!((share - rate).abs() < 0.05, "rate {rate} got {share}");
        }
    }
}

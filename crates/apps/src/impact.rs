//! Deriving an [`ImpactProfile`] from an application's situations.
//!
//! The impact-aware drop-bad extension (paper §5.1/§7 future work) needs
//! to know which contexts the application's situations can observe. That
//! is statically readable from the situation formulas: the kinds their
//! quantifiers range over, and the subjects `subject_eq(var, "name")`
//! predicates pin down.

use ctxres_constraint::{Constraint, Formula, Term};
use ctxres_context::ContextKind;
use ctxres_core::strategies::ImpactProfile;

/// Builds the impact profile of a situation set.
///
/// ```
/// use ctxres_apps::call_forwarding::CallForwarding;
/// use ctxres_apps::{impact_profile, PervasiveApp};
/// use ctxres_context::{Context, ContextKind};
///
/// let app = CallForwarding::new();
/// let profile = impact_profile(&app.situations());
/// let peter = Context::builder(ContextKind::new("badge"), "peter").build();
/// let aux = Context::builder(ContextKind::new("sensor"), "x").build();
/// assert!(profile.impact_of(&peter) > profile.impact_of(&aux));
/// ```
pub fn impact_profile(situations: &[Constraint]) -> ImpactProfile {
    let mut profile = ImpactProfile::new();
    for situation in situations {
        collect(situation.formula(), &mut Vec::new(), &mut profile);
    }
    profile
}

fn collect(f: &Formula, env: &mut Vec<(String, ContextKind)>, profile: &mut ImpactProfile) {
    match f {
        Formula::Quant {
            var, kind, body, ..
        } => {
            profile.watch_kind(kind.clone());
            env.push((var.clone(), kind.clone()));
            collect(body, env, profile);
            env.pop();
        }
        Formula::And(a, b) | Formula::Or(a, b) | Formula::Implies(a, b) => {
            collect(a, env, profile);
            collect(b, env, profile);
        }
        Formula::Not(a) => collect(a, env, profile),
        Formula::Pred(call) if call.name == "subject_eq" => {
            if let [Term::Var(var), Term::Const(value)] = call.args.as_slice() {
                if let Some(subject) = value.as_text() {
                    if let Some((_, kind)) = env.iter().rev().find(|(v, _)| v == var) {
                        profile.watch_subject(kind.clone(), subject);
                    }
                }
            }
        }
        Formula::Pred(_) | Formula::True | Formula::False => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rfid_anomalies::RfidAnomalies;
    use crate::PervasiveApp;
    use ctxres_constraint::parse_constraints;
    use ctxres_context::Context;

    #[test]
    fn extracts_kinds_and_named_subjects() {
        let situations = parse_constraints(
            "constraint s1: exists b: badge . subject_eq(b, \"peter\") and eq(b.room, \"office\")
             constraint s2: exists r: rfid_read . eq(r.zone, \"shelf-1\")",
        )
        .unwrap();
        let p = impact_profile(&situations);
        let peter = Context::builder(ContextKind::new("badge"), "peter").build();
        let mary = Context::builder(ContextKind::new("badge"), "mary").build();
        let read = Context::builder(ContextKind::new("rfid_read"), "tag-9").build();
        let other = Context::builder(ContextKind::new("temperature"), "room").build();
        assert_eq!(p.impact_of(&peter), 2);
        assert_eq!(p.impact_of(&mary), 1);
        assert_eq!(p.impact_of(&read), 1);
        assert_eq!(p.impact_of(&other), 0);
    }

    #[test]
    fn subject_eq_under_negation_still_counts_as_watched() {
        // `not eq(...)`-style situations still reference the subject;
        // the profile is about observability, not polarity.
        let situations = parse_constraints(
            "constraint s: exists r: rfid_read .
               subject_eq(r, \"tag-0\") and not eq(r.zone, \"shelf-1\")",
        )
        .unwrap();
        let p = impact_profile(&situations);
        let promo = Context::builder(ContextKind::new("rfid_read"), "tag-0").build();
        assert_eq!(p.impact_of(&promo), 2);
    }

    #[test]
    fn application_situations_produce_nontrivial_profiles() {
        let app = RfidAnomalies::new();
        let p = impact_profile(&app.situations());
        let promo = Context::builder(RfidAnomalies::kind(), "tag-0").build();
        assert_eq!(p.impact_of(&promo), 2, "tag-0 is named by two situations");
    }

    #[test]
    fn empty_situations_score_everything_zero() {
        let p = impact_profile(&[]);
        let c = Context::builder(ContextKind::new("badge"), "peter").build();
        assert_eq!(p.impact_of(&c), 0);
    }
}

//! The Call Forwarding application (paper §4.1, after Want et al.'s
//! Active Badge system).
//!
//! People wear badges; wall readers report sightings as `badge`
//! contexts. The phone system forwards calls to the room a person was
//! last sighted in, so corrupted sightings (a badge "seen" across the
//! building) misroute calls. Consistency constraints over consecutive
//! sightings catch physically impossible movements.

use crate::rooms::RoomGraph;
use crate::PervasiveApp;
use ctxres_constraint::{parse_constraints, Constraint, EvalError, PredicateRegistry};
use ctxres_context::{Context, ContextKind, Lifespan, LogicalTime, Ticks, TruthTag};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// The people tracked by the generator.
pub const PERSONS: [&str; 3] = ["peter", "mary", "john"];

/// The Call Forwarding application.
#[derive(Debug, Clone)]
pub struct CallForwarding {
    floor: Arc<RoomGraph>,
    ttl: Ticks,
    stay_probability: f64,
}

impl CallForwarding {
    /// The context kind produced by badge readers.
    pub fn kind() -> ContextKind {
        ContextKind::new("badge")
    }

    /// Creates the application over the default office floor.
    pub fn new() -> Self {
        CallForwarding {
            floor: Arc::new(Self::default_floor()),
            ttl: Ticks::new(5),
            stay_probability: 0.2,
        }
    }

    /// The default floor: two corridor wings joined in the middle, so
    /// most room pairs sit two or more hops apart — a badge cannot
    /// plausibly jump between them within one sighting.
    pub fn default_floor() -> RoomGraph {
        RoomGraph::from_edges([
            ("corridor-a", "office"),
            ("corridor-a", "lab"),
            ("corridor-a", "meeting"),
            ("corridor-b", "lobby"),
            ("corridor-b", "printer"),
            ("corridor-b", "kitchen"),
            ("corridor-a", "corridor-b"),
            ("kitchen", "annex"),
        ])
    }

    /// The floor graph in use.
    pub fn floor(&self) -> &RoomGraph {
        &self.floor
    }

    /// A room adjacent to (or equal to) `prev` but different from the
    /// true current room — indistinguishable from a legal move when
    /// checked against the previous sighting.
    fn plausible_wrong_room(
        &self,
        prev: &str,
        current_true: &str,
        rng: &mut rand::rngs::StdRng,
    ) -> String {
        let mut candidates: Vec<String> = self
            .floor
            .rooms()
            .iter()
            .filter(|r| self.floor.adjacent(prev, r) && **r != current_true)
            .map(|r| (*r).to_owned())
            .collect();
        if candidates.is_empty() {
            return self
                .floor
                .random_far_room(current_true, 2, rng)
                .unwrap_or_else(|| current_true.to_owned());
        }
        candidates.swap_remove(rng.gen_range(0..candidates.len()))
    }
}

impl Default for CallForwarding {
    fn default() -> Self {
        CallForwarding::new()
    }
}

impl PervasiveApp for CallForwarding {
    fn name(&self) -> &'static str {
        "call-forwarding"
    }

    fn constraints(&self) -> Vec<Constraint> {
        parse_constraints(
            "# consecutive sightings of a person name adjacent rooms
             constraint move_adjacent:
               forall a: badge, b: badge .
                 (same_subject(a, b) and seq_gap(a, b, 1)) implies room_adjacent(a, b)
             # sightings one apart stay within two hops
             constraint move_within2:
               forall a: badge, b: badge .
                 (same_subject(a, b) and seq_gap(a, b, 2)) implies room_within2(a, b)
             # sightings two apart stay within three hops (more pairs,
             # more count evidence -- the Fig. 5 refinement idea)
             constraint move_within3:
               forall a: badge, b: badge .
                 (same_subject(a, b) and seq_gap(a, b, 3)) implies room_within3(a, b)
             # the reporting reader must be the one installed in the room
             constraint reader_coherence:
               forall a: badge . eq(a.room, a.reader)
             # sightings name rooms that exist on this floor
             constraint known_room:
               forall a: badge . room_known(a)",
        )
        .expect("builtin constraints parse")
    }

    fn situations(&self) -> Vec<Constraint> {
        // Situations fire on *recent* sightings (contexts expire after
        // their TTL), so they toggle as people wander — the activation
        // edges the experiments count.
        parse_constraints(
            "# Peter is at his desk: forward his calls to the office phone
             constraint forward_to_office:
               exists b: badge . subject_eq(b, \"peter\") and eq(b.room, \"office\")
             # Mary is in the meeting room: hold her calls
             constraint mary_in_meeting:
               exists b: badge . subject_eq(b, \"mary\") and eq(b.room, \"meeting\")
             # John crossed into the B wing: reroute to the lobby desk
             constraint john_in_b_wing:
               exists b: badge .
                 subject_eq(b, \"john\") and
                 (eq(b.room, \"lobby\") or eq(b.room, \"printer\") or eq(b.room, \"kitchen\"))",
        )
        .expect("builtin situations parse")
    }

    fn registry(&self) -> PredicateRegistry {
        let mut reg = PredicateRegistry::with_builtins();
        let room_of = |args: &[ctxres_constraint::Resolved<'_>], i: usize, pred: &str| {
            args[i]
                .ctx()
                .and_then(|(c, _)| c.text("room").map(str::to_owned))
                .ok_or_else(|| EvalError::Type {
                    name: pred.to_owned(),
                    detail: format!("argument {i} must be a badge context with a room"),
                })
        };
        let floor = Arc::clone(&self.floor);
        reg.register("room_adjacent", 2, move |args| {
            let a = room_of(args, 0, "room_adjacent")?;
            let b = room_of(args, 1, "room_adjacent")?;
            Ok(floor.adjacent(&a, &b))
        });
        let floor = Arc::clone(&self.floor);
        reg.register("room_within2", 2, move |args| {
            let a = room_of(args, 0, "room_within2")?;
            let b = room_of(args, 1, "room_within2")?;
            Ok(floor.within_hops(&a, &b, 2))
        });
        let floor = Arc::clone(&self.floor);
        reg.register("room_within3", 2, move |args| {
            let a = room_of(args, 0, "room_within3")?;
            let b = room_of(args, 1, "room_within3")?;
            Ok(floor.within_hops(&a, &b, 3))
        });
        let floor = Arc::clone(&self.floor);
        reg.register("room_known", 1, move |args| {
            let a = room_of(args, 0, "room_known")?;
            Ok(floor.contains(&a))
        });
        reg
    }

    fn schema(&self) -> ctxres_constraint::ContextSchema {
        use ctxres_constraint::AttrType;
        let mut schema = ctxres_constraint::ContextSchema::new();
        schema
            .kind("badge")
            .attr("room", AttrType::Text)
            .attr("reader", AttrType::Text)
            .attr("seq", AttrType::Int);
        schema
    }

    fn recommended_window(&self) -> u64 {
        3
    }

    fn generate(&self, err_rate: f64, seed: u64, len: usize) -> Vec<Context> {
        assert!(
            (0.0..=1.0).contains(&err_rate),
            "err_rate must be a probability"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rooms: Vec<String> = vec!["office".into(), "corridor-a".into(), "lobby".into()];
        let mut seqs = vec![0i64; PERSONS.len()];
        let mut out = Vec::with_capacity(len);
        // Every badge is sighted once per tick (the Active Badge poll
        // cycle); `len` counts contexts, so the run spans len/3 ticks.
        for i in 0..len {
            let tick = i / PERSONS.len();
            let p = i % PERSONS.len();
            let prev_room = rooms[p].clone();
            // True movement: stay or step to an adjacent room.
            if rng.gen_bool(1.0 - self.stay_probability) {
                if let Some(next) = self.floor.random_neighbor(&rooms[p], &mut rng) {
                    rooms[p] = next;
                }
            }
            let corrupted = rng.gen_bool(err_rate);
            let (reported_room, reader) = if corrupted {
                // Most corruption is *plausible-but-wrong* (the paper's
                // Scenario B): a room consistent with where the person
                // just was, so the sighting slips past the check against
                // its predecessor and only conflicts with successors —
                // the case that defeats drop-latest. The rest is blatant
                // (a far room, often with a mismatched reader), caught
                // on arrival.
                if rng.gen_bool(0.85) {
                    let wrong = self.plausible_wrong_room(&prev_room, &rooms[p], &mut rng);
                    (wrong.clone(), wrong)
                } else {
                    let far = self
                        .floor
                        .random_far_room(&rooms[p], 2, &mut rng)
                        .unwrap_or_else(|| rooms[p].clone());
                    let reader = if rng.gen_bool(0.5) {
                        rooms[p].clone()
                    } else {
                        far.clone()
                    };
                    (far, reader)
                }
            } else {
                (rooms[p].clone(), rooms[p].clone())
            };
            let stamp = LogicalTime::new(tick as u64);
            out.push(
                Context::builder(Self::kind(), PERSONS[p])
                    .attr("room", reported_room.as_str())
                    .attr("reader", reader.as_str())
                    .attr("seq", seqs[p])
                    .stamp(stamp)
                    .lifespan(Lifespan::with_ttl(stamp, self.ttl))
                    .truth(if corrupted {
                        TruthTag::Corrupted
                    } else {
                        TruthTag::Expected
                    })
                    .build(),
            );
            seqs[p] += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctxres_constraint::Evaluator;
    use ctxres_context::ContextPool;
    use std::collections::BTreeSet;

    fn all_violations(app: &CallForwarding, trace: Vec<Context>) -> Vec<ctxres_constraint::Link> {
        let pool: ContextPool = trace.into_iter().collect();
        let reg = app.registry();
        let eval = Evaluator::new(&reg);
        let mut links = Vec::new();
        for c in app.constraints() {
            links.extend(
                eval.check(&c, &pool, LogicalTime::new(0))
                    .unwrap()
                    .violations,
            );
        }
        links
    }

    #[test]
    fn clean_traces_are_consistent() {
        let app = CallForwarding::new();
        let trace = app.generate(0.0, 3, 300);
        assert!(all_violations(&app, trace).is_empty());
    }

    #[test]
    fn corrupted_sightings_are_usually_caught() {
        let app = CallForwarding::new();
        let trace = app.generate(0.25, 9, 300);
        let corrupted: BTreeSet<u64> = trace
            .iter()
            .enumerate()
            .filter(|(_, c)| c.truth().is_corrupted())
            .map(|(i, _)| i as u64)
            .collect();
        let blamed: BTreeSet<u64> = all_violations(&app, trace)
            .iter()
            .flat_map(|l| l.iter().map(|id| id.raw()))
            .collect();
        let recall = corrupted.intersection(&blamed).count() as f64 / corrupted.len().max(1) as f64;
        // Plausible-but-wrong sightings are sometimes genuinely
        // indistinguishable from legal moves, so recall sits well below
        // 1 by design; it must still clearly beat the error rate.
        assert!(recall > 0.5, "recall {recall}");
    }

    #[test]
    fn five_constraints_three_situations() {
        let app = CallForwarding::new();
        assert_eq!(app.constraints().len(), 5);
        assert_eq!(app.situations().len(), 3);
    }

    #[test]
    fn sightings_rotate_round_robin() {
        let app = CallForwarding::new();
        let trace = app.generate(0.0, 1, 6);
        let subjects: Vec<&str> = trace.iter().map(|c| c.subject()).collect();
        assert_eq!(
            subjects,
            vec!["peter", "mary", "john", "peter", "mary", "john"]
        );
    }

    #[test]
    fn corrupted_rooms_are_far_from_true_rooms() {
        let app = CallForwarding::new();
        let trace = app.generate(1.0, 5, 60);
        // With err_rate 1 every sighting is corrupted; each must name a
        // room ≥ 2 hops from *some* room (we can't see the true one, but
        // the constraint machinery can: clean vs corrupted must differ).
        assert!(trace.iter().all(|c| c.truth().is_corrupted()));
    }

    #[test]
    fn generate_is_deterministic() {
        let app = CallForwarding::new();
        assert_eq!(app.generate(0.3, 8, 40), app.generate(0.3, 8, 40));
    }

    #[test]
    fn custom_predicates_registered() {
        let app = CallForwarding::new();
        let reg = app.registry();
        assert!(reg.contains("room_adjacent"));
        assert!(reg.contains("room_within2"));
        assert!(reg.contains("room_within3"));
        assert!(reg.contains("room_known"));
    }
}

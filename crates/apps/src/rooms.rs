//! A small named-node adjacency graph, shared by the badge and RFID
//! applications (rooms on a floor; shelf zones in a store).

use rand::Rng;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// An undirected graph over string-named nodes with hop-distance
/// queries — the topology that makes "Peter cannot jump from the office
/// to the lobby in one step" checkable.
#[derive(Debug, Clone, Default)]
pub struct RoomGraph {
    adjacency: BTreeMap<String, BTreeSet<String>>,
}

impl RoomGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        RoomGraph::default()
    }

    /// Builds a graph from an edge list, adding nodes implicitly.
    pub fn from_edges<'a>(edges: impl IntoIterator<Item = (&'a str, &'a str)>) -> Self {
        let mut g = RoomGraph::new();
        for (a, b) in edges {
            g.add_edge(a, b);
        }
        g
    }

    /// Adds an undirected edge (and its endpoints).
    pub fn add_edge(&mut self, a: &str, b: &str) {
        self.adjacency
            .entry(a.to_owned())
            .or_default()
            .insert(b.to_owned());
        self.adjacency
            .entry(b.to_owned())
            .or_default()
            .insert(a.to_owned());
    }

    /// The node names, sorted.
    pub fn rooms(&self) -> Vec<&str> {
        self.adjacency.keys().map(String::as_str).collect()
    }

    /// Whether `name` is a node.
    pub fn contains(&self, name: &str) -> bool {
        self.adjacency.contains_key(name)
    }

    /// Whether `a` and `b` are the same node or share an edge.
    pub fn adjacent(&self, a: &str, b: &str) -> bool {
        a == b
            || self
                .adjacency
                .get(a)
                .map(|n| n.contains(b))
                .unwrap_or(false)
    }

    /// Hop distance between two nodes (`None` if disconnected or
    /// unknown).
    pub fn distance(&self, a: &str, b: &str) -> Option<usize> {
        if !self.contains(a) || !self.contains(b) {
            return None;
        }
        if a == b {
            return Some(0);
        }
        let mut seen: BTreeSet<&str> = BTreeSet::from([a]);
        let mut queue: VecDeque<(&str, usize)> = VecDeque::from([(a, 0)]);
        while let Some((node, d)) = queue.pop_front() {
            for next in &self.adjacency[node] {
                if next == b {
                    return Some(d + 1);
                }
                if seen.insert(next) {
                    queue.push_back((next, d + 1));
                }
            }
        }
        None
    }

    /// Whether `b` is reachable from `a` within `hops` edges.
    pub fn within_hops(&self, a: &str, b: &str, hops: usize) -> bool {
        self.distance(a, b).map(|d| d <= hops).unwrap_or(false)
    }

    /// A uniformly random neighbour of `room` (staying put excluded);
    /// `None` for isolated or unknown nodes.
    pub fn random_neighbor(&self, room: &str, rng: &mut impl Rng) -> Option<String> {
        let neighbors: Vec<&String> = self.adjacency.get(room)?.iter().collect();
        if neighbors.is_empty() {
            return None;
        }
        Some(neighbors[rng.gen_range(0..neighbors.len())].clone())
    }

    /// A uniformly random node at hop distance `>= min_hops` from
    /// `room` — the shape of a corrupted sighting (a badge cannot jump
    /// there). `None` when no such node exists.
    pub fn random_far_room(
        &self,
        room: &str,
        min_hops: usize,
        rng: &mut impl Rng,
    ) -> Option<String> {
        let far: Vec<&str> = self
            .adjacency
            .keys()
            .map(String::as_str)
            .filter(|r| {
                self.distance(room, r)
                    .map(|d| d >= min_hops)
                    .unwrap_or(false)
            })
            .collect();
        if far.is_empty() {
            None
        } else {
            Some(far[rng.gen_range(0..far.len())].to_owned())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn line() -> RoomGraph {
        // a - b - c - d
        RoomGraph::from_edges([("a", "b"), ("b", "c"), ("c", "d")])
    }

    #[test]
    fn adjacency_is_symmetric_and_reflexive() {
        let g = line();
        assert!(g.adjacent("a", "b"));
        assert!(g.adjacent("b", "a"));
        assert!(g.adjacent("a", "a"));
        assert!(!g.adjacent("a", "c"));
    }

    #[test]
    fn distances_follow_the_line() {
        let g = line();
        assert_eq!(g.distance("a", "a"), Some(0));
        assert_eq!(g.distance("a", "b"), Some(1));
        assert_eq!(g.distance("a", "d"), Some(3));
        assert_eq!(g.distance("a", "zzz"), None);
    }

    #[test]
    fn within_hops_bounds() {
        let g = line();
        assert!(g.within_hops("a", "c", 2));
        assert!(!g.within_hops("a", "d", 2));
    }

    #[test]
    fn random_neighbor_is_adjacent() {
        let g = line();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            let n = g.random_neighbor("b", &mut rng).unwrap();
            assert!(g.adjacent("b", &n) && n != "b");
        }
    }

    #[test]
    fn random_far_room_respects_min_hops() {
        let g = line();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..20 {
            let far = g.random_far_room("a", 2, &mut rng).unwrap();
            assert!(g.distance("a", &far).unwrap() >= 2);
        }
        assert_eq!(g.random_far_room("a", 10, &mut rng), None);
    }

    #[test]
    fn disconnected_nodes_have_no_distance() {
        let mut g = line();
        g.add_edge("x", "y");
        assert_eq!(g.distance("a", "x"), None);
        assert!(!g.within_hops("a", "x", 100));
    }
}

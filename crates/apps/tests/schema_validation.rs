//! Every application's constraints and situations must validate against
//! its declared schema and registry — the deploy-time check a real
//! installation would run.

use ctxres_apps::call_forwarding::CallForwarding;
use ctxres_apps::location_tracking::LocationTracking;
use ctxres_apps::rfid_anomalies::RfidAnomalies;
use ctxres_apps::PervasiveApp;
use ctxres_constraint::validate;

fn assert_valid(app: &dyn PervasiveApp) {
    let schema = app.schema();
    let registry = app.registry();
    let mut all = app.constraints();
    all.extend(app.situations());
    let violations = validate(&all, &schema, &registry);
    assert!(
        violations.is_empty(),
        "{}: {:?}",
        app.name(),
        violations
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
    );
}

#[test]
fn call_forwarding_validates() {
    assert_valid(&CallForwarding::new());
}

#[test]
fn rfid_anomalies_validates() {
    assert_valid(&RfidAnomalies::new());
}

#[test]
fn location_tracking_validates() {
    assert_valid(&LocationTracking::new());
}

#[test]
fn a_typo_would_be_caught() {
    use ctxres_constraint::parse_constraints;
    let app = CallForwarding::new();
    let broken =
        parse_constraints("constraint typo: forall a: badge . eq(a.rom, \"office\")").unwrap();
    let violations = validate(&broken, &app.schema(), &app.registry());
    assert_eq!(violations.len(), 1);
    assert!(violations[0].to_string().contains("rom"));
}

//! Guards against dead situations: every application's situations must
//! actually activate on its own clean workloads (otherwise the
//! `sitActRate` experiments would be dividing by zero epochs).

use ctxres_apps::call_forwarding::CallForwarding;
use ctxres_apps::location_tracking::LocationTracking;
use ctxres_apps::rfid_anomalies::RfidAnomalies;
use ctxres_apps::smart_ringer::SmartRinger;
use ctxres_apps::PervasiveApp;
use ctxres_context::Ticks;
use ctxres_core::strategies::Oracle;
use ctxres_middleware::{Middleware, MiddlewareConfig};

fn activations(app: &dyn PervasiveApp, err_rate: f64, len: usize) -> (u64, u64) {
    let mut mw = Middleware::builder()
        .constraints(app.constraints())
        .situations(app.situations())
        .registry(app.registry())
        .strategy(Box::new(Oracle::new()))
        .config(MiddlewareConfig {
            window: Ticks::new(app.recommended_window()),
            track_ground_truth: true,
            retention: None,
        })
        .build();
    for ctx in app.generate(err_rate, 31, len) {
        mw.submit(ctx);
    }
    mw.drain();
    (mw.stats().situation_activations, mw.matched_activations())
}

#[test]
fn call_forwarding_situations_are_live() {
    let (raw, matched) = activations(&CallForwarding::new(), 0.0, 600);
    assert!(raw >= 10, "raw {raw}");
    assert!(matched >= 10, "matched {matched}");
}

#[test]
fn rfid_situations_are_live() {
    // Per-tag situations on a 100-tick clean run fire sparsely but must
    // fire: zero epochs would make sitActRate meaningless.
    let (raw, matched) = activations(&RfidAnomalies::new(), 0.0, 600);
    assert!(raw >= 2, "raw {raw}");
    assert!(matched >= 2, "matched {matched}");
}

#[test]
fn location_tracking_situations_are_live() {
    let (raw, matched) = activations(&LocationTracking::new(), 0.0, 600);
    assert!(raw >= 3, "raw {raw}");
    assert!(matched >= 3, "matched {matched}");
}

#[test]
fn smart_ringer_situations_are_live() {
    let (raw, matched) = activations(&SmartRinger::new(), 0.0, 600);
    assert!(raw >= 10, "raw {raw}");
    assert!(matched >= 10, "matched {matched}");
}

#[test]
fn oracle_covers_epochs_on_clean_traces() {
    // With no corruption the oracle's view is complete: it must cover a
    // healthy number of ground-truth epochs. (matched can legitimately
    // exceed raw rising edges: the eager oracle's availability starts at
    // submit and one continuous active interval can cover several
    // ground-truth epochs.)
    for app in [
        Box::new(CallForwarding::new()) as Box<dyn PervasiveApp>,
        Box::new(RfidAnomalies::new()),
        Box::new(SmartRinger::new()),
    ] {
        let (raw, matched) = activations(app.as_ref(), 0.0, 450);
        assert!(
            raw > 0 && matched > 0,
            "{}: raw {raw} matched {matched}",
            app.name()
        );
    }
}

//! The §5.2 Landmarc case study: survival rate, removal precision, and
//! how often the heuristic rules held.
//!
//! Paper reference values (real Landmarc testbed): survival 96.5 %,
//! removal precision 84.7 %, Rule 1 held always, Rule 2′ held in 91.7 %
//! of cases.

use crate::runner::{run_with, DEFAULT_WINDOW};
use ctxres_apps::location_tracking::LocationTracking;
use ctxres_apps::PervasiveApp;
use ctxres_context::{ContextId, Ticks, TruthTag};
use ctxres_core::strategies::DropBad;
use ctxres_core::theory::{hold_rates, rule_report};
use ctxres_core::Inconsistency;
use ctxres_landmarc::{EstimatorKind, LandmarcConfig};
use ctxres_middleware::{Middleware, MiddlewareConfig};
use serde::{Deserialize, Serialize};

/// Aggregated case-study results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CaseStudy {
    /// Corruption probability used.
    pub err_rate: f64,
    /// Seeds aggregated.
    pub runs: usize,
    /// Mean location-context survival rate.
    pub survival: f64,
    /// Mean removal precision.
    pub precision: f64,
    /// Fraction of detected inconsistencies containing ≥ 1 corrupted
    /// context (Rule 1).
    pub rule1_rate: f64,
    /// Fraction where every corrupted member out-counted every expected
    /// member (Rule 2).
    pub rule2_rate: f64,
    /// Fraction where some corrupted member out-counted every expected
    /// member (Rule 2′).
    pub rule2_relaxed_rate: f64,
    /// Total inconsistencies inspected.
    pub inconsistencies: u64,
}

/// Runs the drop-bad case study on the Landmarc location workload.
///
/// Rule rates are measured over each run's full detection log with
/// counts computed across that log — the "how do the heuristic rules
/// hold in practice?" question of §5.2.
pub fn run_case_study(err_rate: f64, runs: usize, len: usize) -> CaseStudy {
    run_case_study_with(LocationTracking::new(), err_rate, runs, len)
}

/// The §5.2 case study with the localization technique swapped — does
/// drop-bad's performance depend on *how* locations are estimated, or
/// only on the error-injection profile? (§6 positions drop-bad as
/// orthogonal to technique-level redundancy; this measures it.)
pub fn run_case_study_for_estimator(
    estimator: EstimatorKind,
    err_rate: f64,
    runs: usize,
    len: usize,
) -> CaseStudy {
    let base = LocationTracking::new();
    let config = LandmarcConfig {
        estimator,
        ..base.config().clone()
    };
    run_case_study_with(base.with_config(config), err_rate, runs, len)
}

fn run_case_study_with(app: LocationTracking, err_rate: f64, runs: usize, len: usize) -> CaseStudy {
    let mut survival_sum = 0.0;
    let mut precision_sum = 0.0;
    let mut verdicts = Vec::new();
    let mut inconsistencies = 0u64;
    for seed in 0..runs as u64 {
        // Metrics run.
        let m = run_with(
            &app,
            Box::new(DropBad::new()),
            err_rate,
            seed,
            len,
            DEFAULT_WINDOW,
        );
        survival_sum += m.survival;
        precision_sum += m.precision;
        // Rule-monitoring run (needs the detection log + ground truth).
        let mut mw = Middleware::builder()
            .constraints(app.constraints())
            .registry(app.registry())
            .strategy(Box::new(DropBad::new()))
            .config(MiddlewareConfig {
                window: Ticks::new(DEFAULT_WINDOW),
                track_ground_truth: false,
                retention: None,
            })
            .build();
        let trace = app.generate(err_rate, seed, len);
        let truth: Vec<bool> = trace
            .iter()
            .map(|c| c.truth() == TruthTag::Corrupted)
            .collect();
        for ctx in trace {
            mw.submit(ctx);
        }
        mw.drain();
        let detections: Vec<Inconsistency> = mw.detections().to_vec();
        inconsistencies += detections.len() as u64;
        let is_corrupted = |id: ContextId| truth.get(id.raw() as usize).copied().unwrap_or(false);
        verdicts.extend(rule_report(&detections, is_corrupted));
    }
    let (rule1_rate, rule2_rate, rule2_relaxed_rate) = hold_rates(&verdicts);
    CaseStudy {
        err_rate,
        runs,
        survival: survival_sum / runs as f64,
        precision: precision_sum / runs as f64,
        rule1_rate,
        rule2_rate,
        rule2_relaxed_rate,
        inconsistencies,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_study_shape_matches_the_paper() {
        // Small-scale run; the binary uses more seeds and longer traces.
        let cs = run_case_study(0.2, 3, 200);
        assert!(cs.inconsistencies > 0, "no inconsistencies detected");
        // Paper: survival 96.5 %, precision 84.7 % — survival should be
        // high and exceed precision.
        assert!(cs.survival > 0.9, "survival {}", cs.survival);
        assert!(cs.precision > 0.5, "precision {}", cs.precision);
        assert!(cs.survival > cs.precision, "survival below precision");
        // Paper: Rule 1 always held; Rule 2' held in 91.7 % of cases.
        assert!(cs.rule1_rate > 0.95, "rule1 {}", cs.rule1_rate);
        assert!(
            cs.rule2_relaxed_rate > 0.6,
            "rule2' {}",
            cs.rule2_relaxed_rate
        );
        assert!(cs.rule2_relaxed_rate >= cs.rule2_rate);
    }
}

#[cfg(test)]
mod estimator_tests {
    use super::*;

    #[test]
    fn fusion_recovers_rule1_that_trilateration_loses() {
        let tri = run_case_study_for_estimator(EstimatorKind::Trilateration, 0.2, 2, 150);
        let fused = run_case_study_for_estimator(EstimatorKind::Fused, 0.2, 2, 150);
        assert!(
            fused.rule1_rate > tri.rule1_rate,
            "fused {:.3} vs trilateration {:.3}",
            fused.rule1_rate,
            tri.rule1_rate
        );
        assert!(fused.survival > tri.survival);
    }
}

//! Bench-history pipeline: every `shard_bench` run appends one record
//! to `results/bench_history.jsonl`, and `bench_report` turns the tail
//! of that history into a pass/fail regression verdict for CI.
//!
//! One measurement means nothing on shared runners — throughput moves
//! with the machine, the shard count, and the workload scale. So the
//! history keys every record by `(bench, shards, quick, host)` and a
//! verdict only ever compares a run against the **median of recent
//! prior runs with the same key**. A fresh machine (or a new shard
//! count) yields [`ThroughputVerdict::NoBaseline`]: pass with a
//! warning, and the run itself becomes the first baseline row.
//!
//! The second gate is absolute, not relative: the passive observability
//! cost (`obs_overhead_pct`, disabled registry), the full export
//! path (`obs_export_overhead_pct`, metrics-only registry plus a live
//! scraped `/metrics` endpoint), and the marginal cost of causal
//! provenance over plain tracing (`obs_prov_overhead_pct`) must each
//! stay under [`Thresholds::obs_overhead_pct`] — telemetry that taxes
//! the engine it watches is a defect regardless of what the machine is
//! doing.

use crate::trace_io::load_lines;
use serde::{Deserialize, Serialize};
use std::io::Write;
use std::path::Path;

/// Where `shard_bench` appends and `bench_report` reads by default
/// (relative to the repo root). Override with `CTXRES_BENCH_HISTORY`.
pub const DEFAULT_HISTORY_PATH: &str = "results/bench_history.jsonl";

/// Environment variable overriding the history file location.
pub const HISTORY_PATH_ENV: &str = "CTXRES_BENCH_HISTORY";

/// How many most-recent matching prior runs feed the baseline median.
pub const BASELINE_WINDOW: usize = 5;

/// One shard's slice of a bench run, from
/// [`ctxres_middleware::ShardedMiddleware::shard_stats`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardThroughput {
    /// Shard index in the plan.
    pub shard: usize,
    /// `true` for the dedicated shared-scope shard.
    pub shared_scope: bool,
    /// Contexts this shard ingested.
    pub ingested: u64,
    /// This shard's share of total ingest, in percent.
    pub share_pct: f64,
    /// Contexts/second attributed to this shard (its share of the
    /// timed run's aggregate rate).
    pub contexts_per_sec: f64,
}

/// One phase's share of a run's cross-shard profiler self time, as
/// recorded by a profile-on bench configuration. Shares sum to ~100
/// over the phases that ran; [`attribute_regression`] compares them
/// against the baseline to name the phase a regression moved.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseShare {
    /// The phase's stable snake-case name (`ctxres_obs::Phase::name`).
    pub phase: String,
    /// The phase's share of total profiler self time, in percent.
    pub share_pct: f64,
}

/// One `shard_bench` run: a row of `results/bench_history.jsonl`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchRecord {
    /// Bench identifier (`shard_throughput`).
    pub bench: String,
    /// Short commit hash the bench ran at (`unknown` outside a work
    /// tree).
    pub commit: String,
    /// Hostname the bench ran on — baselines never cross machines.
    pub host: String,
    /// UTC date of the run (`YYYY-MM-DD`).
    pub date: String,
    /// Whether `CTXRES_BENCH_QUICK` shrank the workload.
    pub quick: bool,
    /// Subject-shard count.
    pub shards: usize,
    /// Contexts per rep in the workload.
    pub contexts: usize,
    /// Sharded-engine throughput (the headline number).
    pub contexts_per_sec: f64,
    /// Sharded vs global-mutex speedup.
    pub speedup_vs_mutex: f64,
    /// Fused batch checking vs the sequential per-submit path, as a
    /// median of paired per-rep ratios (unfused seconds / fused
    /// seconds) on otherwise identical engines. `None` for rows
    /// written before batch fusion existed, for benches that do not
    /// measure it, and for the `city_unfused` control series itself.
    pub fused_speedup: Option<f64>,
    /// Passive cost of a *disabled* registry, percent vs unobserved.
    pub obs_overhead_pct: f64,
    /// Cost of full event tracing, percent vs unobserved.
    pub obs_enabled_overhead_pct: f64,
    /// Cost of the live export pipeline (metrics-only registry plus a
    /// scraped `/metrics` endpoint), percent vs unobserved.
    pub obs_export_overhead_pct: f64,
    /// Marginal cost of causal-provenance emission on top of full
    /// tracing, percent vs the tracing-only configuration. `None` for
    /// history rows written before provenance existed and for benches
    /// that do not measure it (a missing field deserializes as `None`,
    /// so old histories keep loading).
    pub obs_prov_overhead_pct: Option<f64>,
    /// Cost of live health telemetry (metrics-only registry with
    /// per-kind quality counters and batch-boundary pool/watermark
    /// publishing), percent vs unobserved, as a median of paired
    /// obs-on/obs-off reps. `None` for rows written before health
    /// telemetry existed and for benches that do not measure it.
    pub obs_health_overhead_pct: Option<f64>,
    /// Marginal cost of the hierarchical phase profiler over the
    /// metrics-only registry, percent, as a median of paired reps.
    /// `None` for rows written before the profiler existed and for
    /// benches that do not measure it.
    pub obs_profile_overhead_pct: Option<f64>,
    /// Marginal cost of end-to-end tail spans (per-context stamps,
    /// outcome histograms, exemplar reservoirs, speculation counters)
    /// over the metrics-only registry, percent, as a median of paired
    /// reps. Joins the absolute overhead gate. `None` for rows written
    /// before tail telemetry existed and benches that do not measure
    /// it.
    pub obs_tail_overhead_pct: Option<f64>,
    /// End-to-end p50 latency of the tail-on configuration,
    /// nanoseconds — reported context for the gated p99 series.
    /// `None` for pre-tail rows and benches that do not measure it.
    pub e2e_p50_ns: Option<f64>,
    /// End-to-end p95 latency of the tail-on configuration,
    /// nanoseconds — reported context for the gated p99 series.
    /// `None` for pre-tail rows and benches that do not measure it.
    pub e2e_p95_ns: Option<f64>,
    /// End-to-end p99 latency of the tail-on configuration,
    /// nanoseconds, from the run's folded per-outcome histograms.
    /// Gated as its own regression series
    /// ([`Thresholds::e2e_p99_regression_pct`]). `None` for pre-tail
    /// rows and benches that do not measure it.
    pub e2e_p99_ns: Option<f64>,
    /// Share of speculated fused-batch groups whose verdicts were
    /// consumed rather than wasted on dirty collisions, in `0..=1`. A
    /// steep drop means speculation stopped paying
    /// ([`Thresholds::spec_consumed_drop_pp`]). `None` for pre-tail
    /// rows and benches that do not measure it.
    pub spec_consumed_rate: Option<f64>,
    /// Share of speculated fused-batch groups whose verdicts were
    /// wasted on dirty collisions, in `0..=1` — the gated consumed
    /// rate's complement, reported for context. `None` for pre-tail
    /// rows and benches that do not measure it.
    pub spec_wasted_rate: Option<f64>,
    /// Per-phase self-time shares from the profile-on configuration,
    /// the input to [`attribute_regression`]. `None` for pre-profiler
    /// rows (they still load) and benches that do not profile.
    pub phase_shares: Option<Vec<PhaseShare>>,
    /// Per-shard ingest breakdown of the sharded configuration.
    pub per_shard: Vec<ShardThroughput>,
}

impl BenchRecord {
    /// Two records are comparable when they measured the same bench at
    /// the same scale on the same machine. `contexts` is part of the
    /// key so a workload-size change starts a fresh series instead of
    /// reading as a throughput regression against the old size.
    pub fn same_series(&self, other: &BenchRecord) -> bool {
        self.bench == other.bench
            && self.shards == other.shards
            && self.quick == other.quick
            && self.host == other.host
            && self.contexts == other.contexts
    }
}

/// Appends one record to a JSONL history file, creating the file and
/// its parent directory on first use. Append-only: concurrent benches
/// never clobber each other's rows.
///
/// # Errors
///
/// Returns a string describing any I/O or serialization failure.
pub fn append_history(path: &Path, record: &BenchRecord) -> Result<(), String> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(|e| format!("create {parent:?}: {e}"))?;
        }
    }
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| format!("open {path:?} for append: {e}"))?;
    let line = serde_json::to_string(record).map_err(|e| e.to_string())?;
    writeln!(file, "{line}").map_err(|e| e.to_string())
}

/// Loads a bench history (oldest first). A missing file is an empty
/// history, not an error — the first run has nothing to compare to.
///
/// # Errors
///
/// Returns a string describing any parse failure (with line number).
pub fn load_history(path: &Path) -> Result<Vec<BenchRecord>, String> {
    if !path.exists() {
        return Ok(Vec::new());
    }
    load_lines(path)
}

/// The history file to use: `CTXRES_BENCH_HISTORY` or the default.
pub fn history_path_from_env() -> std::path::PathBuf {
    std::env::var(HISTORY_PATH_ENV)
        .ok()
        .filter(|v| !v.trim().is_empty())
        .unwrap_or_else(|| DEFAULT_HISTORY_PATH.to_owned())
        .into()
}

/// Regression gates for [`evaluate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Thresholds {
    /// Maximum tolerated throughput drop vs the baseline median, in
    /// percent.
    pub regression_pct: f64,
    /// Maximum tolerated observability overhead (passive registry and
    /// live export path each), in percent.
    pub obs_overhead_pct: f64,
    /// Maximum tolerated growth of the end-to-end p99 latency series
    /// vs its baseline median, in percent. Looser than the throughput
    /// gate: a tail quantile inherits both the throughput's noise and
    /// the histogram's bucket granularity.
    pub e2e_p99_regression_pct: f64,
    /// Maximum tolerated drop of the speculation consumed rate vs its
    /// baseline median, in percentage points.
    pub spec_consumed_drop_pp: f64,
}

impl Default for Thresholds {
    fn default() -> Self {
        Thresholds {
            regression_pct: 10.0,
            obs_overhead_pct: 3.0,
            e2e_p99_regression_pct: 25.0,
            spec_consumed_drop_pp: 20.0,
        }
    }
}

/// Throughput vs the baseline median of the same series.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum ThroughputVerdict {
    /// Within the regression threshold.
    Pass {
        /// Baseline median contexts/second.
        baseline: f64,
        /// Change vs baseline, percent (negative = slower).
        change_pct: f64,
        /// Prior runs behind the median.
        baseline_runs: usize,
    },
    /// No prior run with the same `(bench, shards, quick, host)` key —
    /// passes with a warning; this run seeds the series.
    NoBaseline,
    /// Slower than the baseline median by more than the threshold.
    Regression {
        /// Baseline median contexts/second.
        baseline: f64,
        /// Change vs baseline, percent (negative = slower).
        change_pct: f64,
        /// Prior runs behind the median.
        baseline_runs: usize,
    },
}

/// Observability overhead vs the absolute threshold.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum OverheadVerdict {
    /// The passive registry, the export path, and the provenance
    /// margin are all under the threshold.
    Pass {
        /// The largest of the gated overheads, percent.
        worst_pct: f64,
    },
    /// At least one gated overhead exceeds the threshold.
    Exceeded {
        /// The largest of the gated overheads, percent.
        worst_pct: f64,
    },
}

/// The end-to-end tail series vs its baseline: p99 latency growth and
/// speculation-efficiency drop, judged together because both come from
/// the same tail-on bench configuration.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum TailVerdict {
    /// The current run records no tail series (a pre-tail row or a
    /// bench that does not measure it) — nothing to judge.
    NotMeasured,
    /// No prior same-series run carries tail data; this run seeds the
    /// series and passes.
    NoBaseline {
        /// The seeding run's end-to-end p99, nanoseconds.
        p99_ns: f64,
    },
    /// p99 within its threshold and the consumed rate within its drop
    /// bound.
    Pass {
        /// Baseline median end-to-end p99, nanoseconds.
        baseline_p99_ns: f64,
        /// p99 change vs baseline, percent (positive = slower).
        p99_change_pct: f64,
        /// Consumed-rate drop vs baseline, percentage points (positive
        /// = less speculation paying off); `None` when either side
        /// lacks the rate.
        consumed_drop_pp: Option<f64>,
        /// Prior runs behind the medians.
        baseline_runs: usize,
    },
    /// p99 grew past the threshold and/or the consumed rate fell past
    /// its drop bound.
    Regression {
        /// Baseline median end-to-end p99, nanoseconds.
        baseline_p99_ns: f64,
        /// p99 change vs baseline, percent (positive = slower).
        p99_change_pct: f64,
        /// Whether the p99 gate tripped.
        p99_regressed: bool,
        /// Consumed-rate drop vs baseline, percentage points.
        consumed_drop_pp: Option<f64>,
        /// Whether the speculation-efficiency gate tripped.
        spec_dropped: bool,
        /// Prior runs behind the medians.
        baseline_runs: usize,
    },
}

/// The combined verdict `bench_report` prints and CI gates on.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Verdict {
    /// Throughput gate.
    pub throughput: ThroughputVerdict,
    /// Observability-overhead gate.
    pub overhead: OverheadVerdict,
    /// End-to-end tail latency / speculation-efficiency gate.
    pub tail: TailVerdict,
}

impl Verdict {
    /// `true` when CI should fail the build.
    pub fn is_failure(&self) -> bool {
        matches!(self.throughput, ThroughputVerdict::Regression { .. })
            || matches!(self.overhead, OverheadVerdict::Exceeded { .. })
            || matches!(self.tail, TailVerdict::Regression { .. })
    }
}

/// The baseline pool for `current`: contexts/second of the most recent
/// [`BASELINE_WINDOW`] prior runs in the same series.
fn baseline_pool(current: &BenchRecord, prior: &[BenchRecord]) -> Vec<f64> {
    prior
        .iter()
        .rev()
        .filter(|r| r.same_series(current))
        .take(BASELINE_WINDOW)
        .map(|r| r.contexts_per_sec)
        .collect()
}

fn median(values: &mut [f64]) -> f64 {
    values.sort_by(|a, b| a.total_cmp(b));
    let mid = values.len() / 2;
    if values.len() % 2 == 1 {
        values[mid]
    } else {
        (values[mid - 1] + values[mid]) / 2.0
    }
}

/// Judges `current` against the prior history under `thresholds`.
///
/// `prior` is every earlier row (any series — filtering happens here);
/// noise robustness comes from comparing against the **median** of up
/// to [`BASELINE_WINDOW`] same-series runs rather than the single
/// latest one.
pub fn evaluate(current: &BenchRecord, prior: &[BenchRecord], thresholds: &Thresholds) -> Verdict {
    let mut pool = baseline_pool(current, prior);
    let throughput = if pool.is_empty() {
        ThroughputVerdict::NoBaseline
    } else {
        let baseline_runs = pool.len();
        let baseline = median(&mut pool);
        let change_pct = (current.contexts_per_sec / baseline - 1.0) * 100.0;
        if change_pct < -thresholds.regression_pct {
            ThroughputVerdict::Regression {
                baseline,
                change_pct,
                baseline_runs,
            }
        } else {
            ThroughputVerdict::Pass {
                baseline,
                change_pct,
                baseline_runs,
            }
        }
    };
    // Full tracing (`obs_enabled_overhead_pct`) is the debugging
    // configuration and is deliberately not gated; the always-on costs
    // are — plus provenance's *marginal* cost over tracing, so the
    // explain pipeline can never quietly tax the engine it explains.
    let worst_pct = current
        .obs_overhead_pct
        .max(current.obs_export_overhead_pct)
        .max(current.obs_prov_overhead_pct.unwrap_or(0.0))
        .max(current.obs_health_overhead_pct.unwrap_or(0.0))
        .max(current.obs_profile_overhead_pct.unwrap_or(0.0))
        .max(current.obs_tail_overhead_pct.unwrap_or(0.0));
    let overhead = if worst_pct > thresholds.obs_overhead_pct {
        OverheadVerdict::Exceeded { worst_pct }
    } else {
        OverheadVerdict::Pass { worst_pct }
    };
    let tail = evaluate_tail(current, prior, thresholds);
    Verdict {
        throughput,
        overhead,
        tail,
    }
}

/// The tail leg of [`evaluate`]: the current run's `e2e_p99_ns` and
/// `spec_consumed_rate` against the medians of the most recent
/// [`BASELINE_WINDOW`] same-series prior rows that carry them —
/// pre-tail history rows contribute nothing instead of zeroing the
/// baseline.
fn evaluate_tail(
    current: &BenchRecord,
    prior: &[BenchRecord],
    thresholds: &Thresholds,
) -> TailVerdict {
    let Some(p99) = current.e2e_p99_ns else {
        return TailVerdict::NotMeasured;
    };
    let mut p99s: Vec<f64> = prior
        .iter()
        .rev()
        .filter(|r| r.same_series(current))
        .filter_map(|r| r.e2e_p99_ns)
        .take(BASELINE_WINDOW)
        .collect();
    if p99s.is_empty() {
        return TailVerdict::NoBaseline { p99_ns: p99 };
    }
    let baseline_runs = p99s.len();
    let baseline_p99_ns = median(&mut p99s);
    let p99_change_pct = (p99 / baseline_p99_ns - 1.0) * 100.0;
    let p99_regressed = p99_change_pct > thresholds.e2e_p99_regression_pct;
    let consumed_drop_pp = current.spec_consumed_rate.and_then(|cur| {
        let mut rates: Vec<f64> = prior
            .iter()
            .rev()
            .filter(|r| r.same_series(current))
            .filter_map(|r| r.spec_consumed_rate)
            .take(BASELINE_WINDOW)
            .collect();
        (!rates.is_empty()).then(|| (median(&mut rates) - cur) * 100.0)
    });
    let spec_dropped = consumed_drop_pp.is_some_and(|d| d > thresholds.spec_consumed_drop_pp);
    if p99_regressed || spec_dropped {
        TailVerdict::Regression {
            baseline_p99_ns,
            p99_change_pct,
            p99_regressed,
            consumed_drop_pp,
            spec_dropped,
            baseline_runs,
        }
    } else {
        TailVerdict::Pass {
            baseline_p99_ns,
            p99_change_pct,
            consumed_drop_pp,
            baseline_runs,
        }
    }
}

/// One phase's movement between a run and its series baseline, from
/// [`attribute_regression`].
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PhaseShift {
    /// The phase's stable snake-case name.
    pub phase: String,
    /// The current run's share of profiler self time, percent.
    pub share_pct: f64,
    /// The baseline median share over the same window the throughput
    /// verdict uses, percent (0 when the phase never appeared before).
    pub baseline_share_pct: f64,
    /// `share_pct - baseline_share_pct`, in percentage points: positive
    /// means the phase grew — the prime regression suspect.
    pub delta_pp: f64,
}

/// Per-phase share movement of `current` vs the median of the same
/// [`BASELINE_WINDOW`] same-series prior runs the throughput verdict
/// compares against, sorted by growth (largest `delta_pp` first) so a
/// regression report can name the phase(s) that moved most. Empty when
/// the current run carries no phase shares or no baseline row does —
/// pre-profiler histories attribute nothing rather than failing.
pub fn attribute_regression(current: &BenchRecord, prior: &[BenchRecord]) -> Vec<PhaseShift> {
    let Some(cur_shares) = &current.phase_shares else {
        return Vec::new();
    };
    let baselines: Vec<&Vec<PhaseShare>> = prior
        .iter()
        .rev()
        .filter(|r| r.same_series(current))
        .take(BASELINE_WINDOW)
        .filter_map(|r| r.phase_shares.as_ref())
        .collect();
    if baselines.is_empty() {
        return Vec::new();
    }
    let mut shifts: Vec<PhaseShift> = cur_shares
        .iter()
        .map(|s| {
            let mut base: Vec<f64> = baselines
                .iter()
                .filter_map(|b| b.iter().find(|p| p.phase == s.phase).map(|p| p.share_pct))
                .collect();
            let baseline_share_pct = if base.is_empty() {
                0.0
            } else {
                median(&mut base)
            };
            PhaseShift {
                phase: s.phase.clone(),
                share_pct: s.share_pct,
                baseline_share_pct,
                delta_pp: s.share_pct - baseline_share_pct,
            }
        })
        .collect();
    shifts.sort_by(|a, b| b.delta_pp.total_cmp(&a.delta_pp));
    shifts
}

/// Overhead of `num` over `den` as the **median of per-rep paired
/// ratios**, in percent. Rep *i* of the two configurations ran
/// back-to-back (interleaving), so each ratio sees the same machine
/// conditions and the median shrugs off the odd rep where a scrape,
/// page fault, or noisy neighbor landed — far more stable than the
/// ratio of two independently-chosen bests.
///
/// # Panics
///
/// Panics when either slice is empty or a timing is not finite.
pub fn median_paired_overhead_pct(num: &[f64], den: &[f64]) -> f64 {
    let mut ratios: Vec<f64> = num
        .iter()
        .zip(den)
        .map(|(n, d)| (n / d - 1.0) * 100.0)
        .collect();
    assert!(!ratios.is_empty(), "paired overhead needs at least one rep");
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    ratios[ratios.len() / 2]
}

/// Short commit hash for stamping records: `git rev-parse --short
/// HEAD`, falling back to a truncated `GITHUB_SHA`, then `unknown`.
pub fn commit_stamp() -> String {
    if let Ok(out) = std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
    {
        if out.status.success() {
            let hash = String::from_utf8_lossy(&out.stdout).trim().to_owned();
            if !hash.is_empty() {
                return hash;
            }
        }
    }
    if let Ok(sha) = std::env::var("GITHUB_SHA") {
        let sha = sha.trim().to_owned();
        if !sha.is_empty() {
            return sha.chars().take(9).collect();
        }
    }
    "unknown".to_owned()
}

/// Hostname for keying baselines: `HOSTNAME`, then `uname -n`, then
/// `unknown`.
pub fn host_stamp() -> String {
    if let Ok(host) = std::env::var("HOSTNAME") {
        let host = host.trim().to_owned();
        if !host.is_empty() {
            return host;
        }
    }
    if let Ok(out) = std::process::Command::new("uname").arg("-n").output() {
        if out.status.success() {
            let host = String::from_utf8_lossy(&out.stdout).trim().to_owned();
            if !host.is_empty() {
                return host;
            }
        }
    }
    "unknown".to_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(contexts_per_sec: f64) -> BenchRecord {
        BenchRecord {
            bench: "shard_throughput".to_owned(),
            commit: "abc1234".to_owned(),
            host: "ci-runner".to_owned(),
            date: "2026-08-06".to_owned(),
            quick: true,
            shards: 4,
            contexts: 320,
            contexts_per_sec,
            speedup_vs_mutex: 2.0,
            fused_speedup: Some(2.1),
            obs_overhead_pct: 0.5,
            obs_enabled_overhead_pct: 8.0,
            obs_export_overhead_pct: 1.0,
            obs_prov_overhead_pct: Some(0.8),
            obs_health_overhead_pct: Some(0.6),
            obs_profile_overhead_pct: Some(0.4),
            obs_tail_overhead_pct: Some(0.7),
            e2e_p50_ns: Some(200_000.0),
            e2e_p95_ns: Some(700_000.0),
            e2e_p99_ns: Some(1_000_000.0),
            spec_consumed_rate: Some(0.9),
            spec_wasted_rate: Some(0.05),
            phase_shares: Some(vec![
                PhaseShare {
                    phase: "ingest".to_owned(),
                    share_pct: 40.0,
                },
                PhaseShare {
                    phase: "constraint_check".to_owned(),
                    share_pct: 35.0,
                },
                PhaseShare {
                    phase: "resolution".to_owned(),
                    share_pct: 25.0,
                },
            ]),
            per_shard: vec![ShardThroughput {
                shard: 0,
                shared_scope: false,
                ingested: 320,
                share_pct: 100.0,
                contexts_per_sec,
            }],
        }
    }

    #[test]
    fn history_round_trips_through_append_and_load() {
        let dir = std::env::temp_dir().join("ctxres-bench-history-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.jsonl");
        std::fs::remove_file(&path).ok();
        let rows = [record(1000.0), record(1100.0), record(900.0)];
        for row in &rows {
            append_history(&path, row).unwrap();
        }
        let loaded = load_history(&path).unwrap();
        assert_eq!(loaded, rows);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_history_is_empty_not_an_error() {
        assert_eq!(
            load_history(Path::new("/definitely/not/here.jsonl")).unwrap(),
            Vec::new()
        );
    }

    #[test]
    fn first_run_has_no_baseline_and_passes() {
        let v = evaluate(&record(1000.0), &[], &Thresholds::default());
        assert_eq!(v.throughput, ThroughputVerdict::NoBaseline);
        assert!(!v.is_failure());
    }

    #[test]
    fn synthetic_regression_fails() {
        // The fixture CI exercises: a healthy baseline, then a run 50%
        // slower. The verdict must flag it.
        let prior = [record(1000.0), record(1020.0), record(980.0)];
        let v = evaluate(&record(500.0), &prior, &Thresholds::default());
        match v.throughput {
            ThroughputVerdict::Regression {
                baseline,
                change_pct,
                baseline_runs,
            } => {
                assert_eq!(baseline, 1000.0);
                assert_eq!(baseline_runs, 3);
                assert!((change_pct - -50.0).abs() < 1e-9);
            }
            other => panic!("expected regression, got {other:?}"),
        }
        assert!(v.is_failure());
    }

    #[test]
    fn noise_within_threshold_passes() {
        let prior = [record(1000.0)];
        let v = evaluate(&record(950.0), &prior, &Thresholds::default());
        assert!(matches!(v.throughput, ThroughputVerdict::Pass { .. }));
        assert!(!v.is_failure());
    }

    #[test]
    fn baseline_is_a_median_of_recent_same_series_runs() {
        // One wild outlier among the priors must not drag the baseline:
        // median(900, 1000, 5000) = 1000.
        let prior = [record(900.0), record(5000.0), record(1000.0)];
        let v = evaluate(&record(950.0), &prior, &Thresholds::default());
        match v.throughput {
            ThroughputVerdict::Pass { baseline, .. } => assert_eq!(baseline, 1000.0),
            other => panic!("{other:?}"),
        }
        // And only the most recent BASELINE_WINDOW rows count.
        let mut many: Vec<BenchRecord> = (0..10).map(|i| record(100.0 * (i + 1) as f64)).collect();
        let current = record(790.0);
        let v = evaluate(&current, &many, &Thresholds::default());
        match v.throughput {
            // Last 5 priors: 600..1000 → median 800; 790 is within 10%.
            ThroughputVerdict::Pass { baseline, .. } => assert_eq!(baseline, 800.0),
            other => panic!("{other:?}"),
        }
        // A different series never contributes a baseline.
        for r in &mut many {
            r.shards = 8;
        }
        let v = evaluate(&current, &many, &Thresholds::default());
        assert_eq!(v.throughput, ThroughputVerdict::NoBaseline);
    }

    #[test]
    fn export_overhead_gate_is_absolute() {
        let mut r = record(1000.0);
        r.obs_export_overhead_pct = 4.5;
        let v = evaluate(&r, &[], &Thresholds::default());
        assert_eq!(v.overhead, OverheadVerdict::Exceeded { worst_pct: 4.5 });
        assert!(v.is_failure());
        // Full-tracing overhead alone never fails the gate.
        let mut r = record(1000.0);
        r.obs_enabled_overhead_pct = 50.0;
        assert!(!evaluate(&r, &[], &Thresholds::default()).is_failure());
    }

    #[test]
    fn provenance_overhead_gate_is_absolute() {
        let mut r = record(1000.0);
        r.obs_prov_overhead_pct = Some(3.2);
        let v = evaluate(&r, &[], &Thresholds::default());
        assert_eq!(v.overhead, OverheadVerdict::Exceeded { worst_pct: 3.2 });
        assert!(v.is_failure());
    }

    #[test]
    fn health_overhead_gate_is_absolute() {
        let mut r = record(1000.0);
        r.obs_health_overhead_pct = Some(3.7);
        let v = evaluate(&r, &[], &Thresholds::default());
        assert_eq!(v.overhead, OverheadVerdict::Exceeded { worst_pct: 3.7 });
        assert!(v.is_failure());
    }

    #[test]
    fn rows_predating_health_telemetry_still_load() {
        // Same back-compat contract as the provenance field below: rows
        // appended before the health series existed must parse with no
        // margin and pass the gate.
        let line = serde_json::to_string(&record(1000.0)).unwrap();
        let stripped = line.replace(",\"obs_health_overhead_pct\":0.6", "");
        assert_ne!(line, stripped, "fixture must actually drop the field");
        let row: BenchRecord = serde_json::from_str(&stripped).unwrap();
        assert_eq!(row.obs_health_overhead_pct, None);
        assert!(!evaluate(&row, &[], &Thresholds::default()).is_failure());
    }

    #[test]
    fn profile_overhead_gate_is_absolute() {
        let mut r = record(1000.0);
        r.obs_profile_overhead_pct = Some(3.4);
        let v = evaluate(&r, &[], &Thresholds::default());
        assert_eq!(v.overhead, OverheadVerdict::Exceeded { worst_pct: 3.4 });
        assert!(v.is_failure());
    }

    #[test]
    fn tail_overhead_gate_is_absolute() {
        let mut r = record(1000.0);
        r.obs_tail_overhead_pct = Some(3.9);
        let v = evaluate(&r, &[], &Thresholds::default());
        assert_eq!(v.overhead, OverheadVerdict::Exceeded { worst_pct: 3.9 });
        assert!(v.is_failure());
    }

    #[test]
    fn synthetic_p99_regression_is_caught_and_quantified() {
        // The fixture CI exercises: a healthy tail baseline at 1 ms,
        // then a run whose p99 doubled while throughput stayed put.
        // The tail gate alone must fail the build and carry the
        // numbers a report needs to attribute the slide.
        let prior = [record(1000.0), record(1005.0), record(995.0)];
        let mut slow = record(1000.0);
        slow.e2e_p99_ns = Some(2_000_000.0);
        let v = evaluate(&slow, &prior, &Thresholds::default());
        assert!(matches!(v.throughput, ThroughputVerdict::Pass { .. }));
        match v.tail {
            TailVerdict::Regression {
                baseline_p99_ns,
                p99_change_pct,
                p99_regressed,
                spec_dropped,
                baseline_runs,
                ..
            } => {
                assert_eq!(baseline_p99_ns, 1_000_000.0);
                assert!((p99_change_pct - 100.0).abs() < 1e-9);
                assert!(p99_regressed);
                assert!(!spec_dropped);
                assert_eq!(baseline_runs, 3);
            }
            other => panic!("expected tail regression, got {other:?}"),
        }
        assert!(v.is_failure());
    }

    #[test]
    fn spec_consumed_rate_collapse_fails_the_tail_gate() {
        // Consumed rate sliding 0.9 → 0.5 (40 points) means nearly
        // half the speculated verdicts are being thrown away; that is
        // a speculation regression even when p99 holds.
        let prior = [record(1000.0), record(1010.0)];
        let mut wasted = record(1000.0);
        wasted.spec_consumed_rate = Some(0.5);
        let v = evaluate(&wasted, &prior, &Thresholds::default());
        match v.tail {
            TailVerdict::Regression {
                p99_regressed,
                consumed_drop_pp,
                spec_dropped,
                ..
            } => {
                assert!(!p99_regressed);
                assert!(spec_dropped);
                assert!((consumed_drop_pp.unwrap() - 40.0).abs() < 1e-9);
            }
            other => panic!("expected spec-efficiency regression, got {other:?}"),
        }
        assert!(v.is_failure());
    }

    #[test]
    fn tail_series_seeds_and_passes_within_thresholds() {
        // No tail data at all: nothing to judge.
        let mut bare = record(1000.0);
        bare.e2e_p99_ns = None;
        bare.spec_consumed_rate = None;
        bare.obs_tail_overhead_pct = None;
        let v = evaluate(&bare, &[], &Thresholds::default());
        assert_eq!(v.tail, TailVerdict::NotMeasured);
        // First row with tail data seeds the series, even against
        // priors that predate it.
        let v = evaluate(&record(1000.0), &[bare.clone()], &Thresholds::default());
        assert_eq!(
            v.tail,
            TailVerdict::NoBaseline {
                p99_ns: 1_000_000.0
            }
        );
        // Ordinary noise passes with the margins reported.
        let prior = [record(1000.0), record(1002.0)];
        let mut noisy = record(1000.0);
        noisy.e2e_p99_ns = Some(1_100_000.0);
        noisy.spec_consumed_rate = Some(0.85);
        let v = evaluate(&noisy, &prior, &Thresholds::default());
        match v.tail {
            TailVerdict::Pass {
                p99_change_pct,
                consumed_drop_pp,
                baseline_runs,
                ..
            } => {
                assert!((p99_change_pct - 10.0).abs() < 1e-9);
                assert!((consumed_drop_pp.unwrap() - 5.0).abs() < 1e-6);
                assert_eq!(baseline_runs, 2);
            }
            other => panic!("{other:?}"),
        }
        assert!(!v.is_failure());
    }

    #[test]
    fn rows_predating_tail_telemetry_still_load() {
        let line = serde_json::to_string(&record(1000.0)).unwrap();
        let stripped = line
            .replace(",\"obs_tail_overhead_pct\":0.7", "")
            .replace(",\"e2e_p50_ns\":200000.0", "")
            .replace(",\"e2e_p95_ns\":700000.0", "")
            .replace(",\"e2e_p99_ns\":1000000.0", "")
            .replace(",\"spec_consumed_rate\":0.9", "")
            .replace(",\"spec_wasted_rate\":0.05", "");
        assert_ne!(line, stripped, "fixture must actually drop the fields");
        assert!(!stripped.contains("e2e_p99_ns"), "fixture fully stripped");
        let row: BenchRecord = serde_json::from_str(&stripped).unwrap();
        assert_eq!(row.obs_tail_overhead_pct, None);
        assert_eq!(row.e2e_p99_ns, None);
        assert_eq!(row.spec_consumed_rate, None);
        assert!(!evaluate(&row, &[], &Thresholds::default()).is_failure());
    }

    #[test]
    fn regression_is_attributed_to_the_phase_that_grew() {
        // Healthy baselines: checking dominates. The regressed run's
        // resolution share jumps by 20 points; attribution must rank
        // resolution first with roughly that delta.
        let prior = [record(1000.0), record(1020.0), record(980.0)];
        let mut slow = record(500.0);
        slow.phase_shares = Some(vec![
            PhaseShare {
                phase: "ingest".to_owned(),
                share_pct: 30.0,
            },
            PhaseShare {
                phase: "constraint_check".to_owned(),
                share_pct: 25.0,
            },
            PhaseShare {
                phase: "resolution".to_owned(),
                share_pct: 45.0,
            },
        ]);
        let shifts = attribute_regression(&slow, &prior);
        assert_eq!(shifts[0].phase, "resolution");
        assert!((shifts[0].delta_pp - 20.0).abs() < 1e-9);
        assert_eq!(shifts[0].baseline_share_pct, 25.0);
        // Shrinking phases rank last.
        assert!(shifts.last().unwrap().delta_pp < 0.0);
    }

    #[test]
    fn attribution_is_empty_without_phase_data() {
        // Pre-profiler current run: nothing to attribute.
        let prior = [record(1000.0)];
        let mut bare = record(500.0);
        bare.phase_shares = None;
        assert!(attribute_regression(&bare, &prior).is_empty());
        // Pre-profiler baselines: nothing to compare against.
        let mut old = record(1000.0);
        old.phase_shares = None;
        assert!(attribute_regression(&record(500.0), &[old]).is_empty());
        // Different series never contributes.
        let mut other = record(1000.0);
        other.shards = 8;
        assert!(attribute_regression(&record(500.0), &[other]).is_empty());
    }

    #[test]
    fn rows_predating_the_profiler_still_load() {
        let r = record(1000.0);
        let line = serde_json::to_string(&r).unwrap();
        let shares_json = serde_json::to_string(&r.phase_shares).unwrap();
        let overhead_json = serde_json::to_string(&r.obs_profile_overhead_pct).unwrap();
        let stripped = line
            .replace(
                &format!(",\"obs_profile_overhead_pct\":{overhead_json}"),
                "",
            )
            .replace(&format!(",\"phase_shares\":{shares_json}"), "");
        assert_ne!(line, stripped, "fixture must actually drop the fields");
        assert!(!stripped.contains("phase_shares"), "fixture fully stripped");
        let row: BenchRecord = serde_json::from_str(&stripped).unwrap();
        assert_eq!(row.obs_profile_overhead_pct, None);
        assert_eq!(row.phase_shares, None);
        assert!(!evaluate(&row, &[], &Thresholds::default()).is_failure());
    }

    #[test]
    fn rows_predating_batch_fusion_still_load() {
        // Rows appended before fused batch checking existed carry no
        // `fused_speedup`; they must parse as None and pass the gate.
        let line = serde_json::to_string(&record(1000.0)).unwrap();
        let stripped = line.replace(",\"fused_speedup\":2.1", "");
        assert_ne!(line, stripped, "fixture must actually drop the field");
        let row: BenchRecord = serde_json::from_str(&stripped).unwrap();
        assert_eq!(row.fused_speedup, None);
        assert!(!evaluate(&row, &[], &Thresholds::default()).is_failure());
    }

    #[test]
    fn rows_predating_provenance_still_load() {
        // History rows written before the provenance series existed
        // have no `obs_prov_overhead_pct` field; they must parse with
        // no margin instead of poisoning the whole history.
        let line = serde_json::to_string(&record(1000.0)).unwrap();
        let stripped = line.replace(",\"obs_prov_overhead_pct\":0.8", "");
        assert_ne!(line, stripped, "fixture must actually drop the field");
        let row: BenchRecord = serde_json::from_str(&stripped).unwrap();
        assert_eq!(row.obs_prov_overhead_pct, None);
        assert!(!evaluate(&row, &[], &Thresholds::default()).is_failure());
    }
}

//! Driving one application trace through one middleware configuration.

use crate::metrics::RunMetrics;
use crate::telemetry::CellTelemetry;
use ctxres_apps::PervasiveApp;
use ctxres_context::Ticks;
use ctxres_core::strategies::by_name;
use ctxres_core::ResolutionStrategy;
use ctxres_middleware::{Middleware, MiddlewareConfig};
use ctxres_obs::{MetricsServer, ObsConfig, ObsRegistry, ShardObs, METRICS_ADDR_ENV};
use std::sync::Arc;

/// The middleware time window used by the figure experiments: long
/// enough for drop-bad to accumulate count evidence across each
/// subject's next few contexts (subjects emit every 3–6 ticks).
pub const DEFAULT_WINDOW: u64 = 12;

/// Runs `app`'s workload through a freshly built middleware using the
/// given strategy instance, and harvests metrics.
pub fn run_with(
    app: &dyn PervasiveApp,
    strategy: Box<dyn ResolutionStrategy + Send>,
    err_rate: f64,
    seed: u64,
    len: usize,
    window: u64,
) -> RunMetrics {
    run_instrumented(
        app,
        strategy,
        err_rate,
        seed,
        len,
        window,
        ShardObs::disabled(),
    )
}

/// [`run_with`] recording a full observability record: the run's
/// middleware gets a handle into a fresh single-shard [`ObsRegistry`],
/// and the harvested [`CellTelemetry`] tags the drained trace and
/// metrics snapshot with the `(strategy, err_rate, seed)` cell they
/// came from.
pub fn run_with_observed(
    app: &dyn PervasiveApp,
    strategy: Box<dyn ResolutionStrategy + Send>,
    err_rate: f64,
    seed: u64,
    len: usize,
    window: u64,
    config: ObsConfig,
) -> (RunMetrics, CellTelemetry) {
    let registry = ObsRegistry::shared(config, 1);
    let metrics = run_instrumented(
        app,
        strategy,
        err_rate,
        seed,
        len,
        window,
        registry.handle(0),
    );
    let telemetry = CellTelemetry::collect(&metrics.strategy, err_rate, seed, &registry);
    (metrics, telemetry)
}

/// [`run_with_observed`] ingesting through the fused batch path in
/// `chunk`-sized batches instead of per-context submits. Single submits
/// never fuse, so this is the variant that exercises batch speculation
/// telemetry — and, with
/// [`ctxres_obs::ObsConfig::with_slow_batch_bound`] set, slow-batch
/// postmortems.
///
/// # Panics
///
/// Panics when `chunk` is zero or the strategy name is unknown.
#[allow(clippy::too_many_arguments)]
pub fn run_named_observed_batched(
    app: &dyn PervasiveApp,
    strategy: &str,
    err_rate: f64,
    seed: u64,
    len: usize,
    window: u64,
    chunk: usize,
    config: ObsConfig,
) -> (RunMetrics, CellTelemetry) {
    assert!(chunk > 0, "batched ingestion needs a chunk size");
    let strategy =
        by_name(strategy, seed).unwrap_or_else(|| panic!("unknown strategy {strategy:?}"));
    let registry = ObsRegistry::shared(config, 1);
    let name = strategy.name().to_owned();
    let mut mw = build_middleware(app, strategy, window, registry.handle(0));
    let mut batch = Vec::with_capacity(chunk);
    for ctx in app.generate(err_rate, seed, len) {
        batch.push(ctx);
        if batch.len() == chunk {
            mw.batch_add(std::mem::take(&mut batch));
        }
    }
    if !batch.is_empty() {
        mw.batch_add(batch);
    }
    mw.drain();
    let metrics = harvest_metrics(&mut mw, name, err_rate, seed);
    let telemetry = CellTelemetry::collect(&metrics.strategy, err_rate, seed, &registry);
    (metrics, telemetry)
}

fn run_instrumented(
    app: &dyn PervasiveApp,
    strategy: Box<dyn ResolutionStrategy + Send>,
    err_rate: f64,
    seed: u64,
    len: usize,
    window: u64,
    obs: ShardObs,
) -> RunMetrics {
    let name = strategy.name().to_owned();
    let mut mw = build_middleware(app, strategy, window, obs);
    for ctx in app.generate(err_rate, seed, len) {
        mw.submit(ctx);
    }
    mw.drain();
    harvest_metrics(&mut mw, name, err_rate, seed)
}

/// The middleware every runner variant deploys: the app's constraints,
/// situations and registry, ground-truth tracking on.
fn build_middleware(
    app: &dyn PervasiveApp,
    strategy: Box<dyn ResolutionStrategy + Send>,
    window: u64,
    obs: ShardObs,
) -> Middleware {
    Middleware::builder()
        .constraints(app.constraints())
        .situations(app.situations())
        .registry(app.registry())
        .strategy(strategy)
        .config(MiddlewareConfig {
            window: Ticks::new(window),
            track_ground_truth: true,
            retention: None,
        })
        .obs(obs)
        .build()
}

/// Folds a drained middleware's counters into the cell's [`RunMetrics`].
fn harvest_metrics(mw: &mut Middleware, name: String, err_rate: f64, seed: u64) -> RunMetrics {
    let stats = *mw.stats();
    RunMetrics {
        strategy: name,
        err_rate,
        seed,
        used_expected: stats.delivered_expected,
        used_corrupted: stats.delivered_corrupted,
        matched_activations: mw.matched_activations(),
        raw_activations: stats.situation_activations,
        discarded: stats.discarded,
        discarded_expected: stats.discarded_expected,
        discarded_corrupted: stats.discarded_corrupted,
        inconsistencies: stats.inconsistencies,
        survival: stats.survival_rate(),
        precision: stats.removal_precision(),
        activation_latency: mw.mean_activation_latency(),
    }
}

/// [`run_with`] for a strategy identified by its paper name.
///
/// # Panics
///
/// Panics on an unknown strategy name (the experiment grids only use
/// the fixed set of §4).
pub fn run_named(
    app: &dyn PervasiveApp,
    strategy: &str,
    err_rate: f64,
    seed: u64,
    len: usize,
    window: u64,
) -> RunMetrics {
    let strategy =
        by_name(strategy, seed).unwrap_or_else(|| panic!("unknown strategy {strategy:?}"));
    run_with(app, strategy, err_rate, seed, len, window)
}

/// [`run_with_observed`] for a strategy identified by its paper name.
///
/// # Panics
///
/// Panics on an unknown strategy name.
pub fn run_named_observed(
    app: &dyn PervasiveApp,
    strategy: &str,
    err_rate: f64,
    seed: u64,
    len: usize,
    window: u64,
    config: ObsConfig,
) -> (RunMetrics, CellTelemetry) {
    let strategy =
        by_name(strategy, seed).unwrap_or_else(|| panic!("unknown strategy {strategy:?}"));
    run_with_observed(app, strategy, err_rate, seed, len, window, config)
}

/// One cell of an experiment grid: a strategy at an error rate with a
/// seed. The unit of work the parallel runner fans out.
#[derive(Debug, Clone, PartialEq)]
pub struct RunJob {
    /// Strategy paper name (`opt-r`, `d-bad`, …).
    pub strategy: String,
    /// Workload corruption probability.
    pub err_rate: f64,
    /// Workload seed.
    pub seed: u64,
}

/// Runs a list of jobs across `threads` worker threads and returns the
/// metrics **in job order** — every run is seeded, so the result of
/// each job is independent of scheduling, and reassembling in input
/// order makes the output bit-identical to a serial loop over the same
/// jobs (asserted in `figures::tests`).
///
/// `threads <= 1` runs the jobs serially on the calling thread.
///
/// # Panics
///
/// Panics if a worker panics (the panic is propagated) or on an unknown
/// strategy name.
pub fn run_jobs_parallel(
    app: &(dyn PervasiveApp + Sync),
    jobs: &[RunJob],
    len: usize,
    window: u64,
    threads: usize,
) -> Vec<RunMetrics> {
    fan_out(jobs, threads, |job| {
        run_named(app, &job.strategy, job.err_rate, job.seed, len, window)
    })
}

/// [`run_jobs_parallel`] recording live metrics into a shared
/// [`ObsRegistry`]: worker `w` writes into registry slot
/// `w % registry.shards()`, so a [`ctxres_obs::Sampler`] or
/// [`MetricsServer`] scraping the registry *while the grid runs* sees
/// per-worker ingest/discard/delivery rates. Results stay in job order
/// and bit-identical to the serial loop — the registry only observes.
///
/// Use [`ObsConfig::metrics_only`] for the registry unless the event
/// timeline is wanted too: counters and histograms are atomics, so
/// workers sharing a slot never contend on a lock.
///
/// # Panics
///
/// Panics if a worker panics or on an unknown strategy name.
pub fn run_jobs_parallel_exported(
    app: &(dyn PervasiveApp + Sync),
    jobs: &[RunJob],
    len: usize,
    window: u64,
    threads: usize,
    registry: &Arc<ObsRegistry>,
) -> Vec<RunMetrics> {
    fan_out_indexed(jobs, threads, |worker, job| {
        let strategy = by_name(&job.strategy, job.seed)
            .unwrap_or_else(|| panic!("unknown strategy {:?}", job.strategy));
        run_instrumented(
            app,
            strategy,
            job.err_rate,
            job.seed,
            len,
            window,
            registry.handle(worker % registry.shards()),
        )
    })
}

/// Opt-in live telemetry for experiment binaries: when
/// [`METRICS_ADDR_ENV`] (`CTXRES_METRICS_ADDR`) is set, builds a
/// metrics-only registry with `slots` shards (one per worker thread)
/// and serves it at that address. Returns `None` — run unobserved —
/// when the variable is unset; a bind failure is reported on stderr and
/// also degrades to `None` rather than killing the run.
pub fn export_registry_from_env(slots: usize) -> Option<(Arc<ObsRegistry>, MetricsServer)> {
    if std::env::var(METRICS_ADDR_ENV).map_or(true, |v| v.trim().is_empty()) {
        return None;
    }
    let registry = ObsRegistry::shared(ObsConfig::metrics_only(), slots.max(1));
    let server = MetricsServer::from_env(&registry)?;
    Some((registry, server))
}

/// [`run_jobs_parallel`] with per-cell telemetry: each worker drives its
/// job through its own single-shard registry, so cells never contend on
/// instrumentation, and every returned [`CellTelemetry`] is tagged with
/// the `(strategy, err_rate, seed)` cell it measured.
pub fn run_jobs_parallel_observed(
    app: &(dyn PervasiveApp + Sync),
    jobs: &[RunJob],
    len: usize,
    window: u64,
    threads: usize,
    config: ObsConfig,
) -> Vec<(RunMetrics, CellTelemetry)> {
    fan_out(jobs, threads, |job| {
        run_named_observed(
            app,
            &job.strategy,
            job.err_rate,
            job.seed,
            len,
            window,
            config,
        )
    })
}

/// The shared fan-out skeleton of the parallel runners: a work queue
/// feeding `threads` workers, results reassembled **in job order** so
/// the output is bit-identical to a serial loop over the same jobs
/// (every run is seeded; scheduling cannot leak into results).
///
/// `threads <= 1` runs the jobs serially on the calling thread.
///
/// # Panics
///
/// Panics if a worker panics (the panic is propagated).
fn fan_out<T: Send>(jobs: &[RunJob], threads: usize, run: impl Fn(&RunJob) -> T + Sync) -> Vec<T> {
    fan_out_indexed(jobs, threads, |_, job| run(job))
}

/// [`fan_out`], passing each invocation the index of the worker thread
/// running it (`0..threads`; always `0` on the serial path). The
/// exported runner uses the index to pick a stable registry slot per
/// worker, so live rates decompose by worker rather than smearing over
/// one counter.
fn fan_out_indexed<T: Send>(
    jobs: &[RunJob],
    threads: usize,
    run: impl Fn(usize, &RunJob) -> T + Sync,
) -> Vec<T> {
    if threads <= 1 || jobs.len() <= 1 {
        return jobs.iter().map(|job| run(0, job)).collect();
    }
    let workers = threads.min(jobs.len());
    let (job_tx, job_rx) = crossbeam::channel::unbounded::<(usize, RunJob)>();
    let (out_tx, out_rx) = crossbeam::channel::unbounded::<(usize, T)>();
    for pair in jobs.iter().cloned().enumerate() {
        job_tx.send(pair).expect("queue jobs");
    }
    drop(job_tx);

    let mut slots: Vec<Option<T>> = Vec::new();
    slots.resize_with(jobs.len(), || None);
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for worker in 0..workers {
            let job_rx = job_rx.clone();
            let out_tx = out_tx.clone();
            let run = &run;
            handles.push(scope.spawn(move || {
                for (idx, job) in job_rx {
                    let result = run(worker, &job);
                    if out_tx.send((idx, result)).is_err() {
                        break;
                    }
                }
            }));
        }
        drop(out_tx);
        for (idx, result) in out_rx {
            slots[idx] = Some(result);
        }
        for h in handles {
            if let Err(payload) = h.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
    slots
        .into_iter()
        .map(|m| m.expect("every job produced a result"))
        .collect()
}

/// Worker-thread count for parallel experiment grids:
/// `CTXRES_THREADS` when set, otherwise the machine's available
/// parallelism.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("CTXRES_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctxres_apps::call_forwarding::CallForwarding;
    use ctxres_apps::rfid_anomalies::RfidAnomalies;

    #[test]
    fn oracle_run_has_perfect_rates() {
        let app = CallForwarding::new();
        let m = run_named(&app, "opt-r", 0.2, 7, 120, app.recommended_window());
        assert_eq!(m.used_corrupted, 0);
        assert_eq!(m.discarded_expected, 0);
        assert_eq!(m.survival, 1.0);
        assert_eq!(m.precision, 1.0);
        assert!(m.used_expected > 0);
    }

    #[test]
    fn drop_bad_beats_drop_all_on_used_contexts() {
        let app = CallForwarding::new();
        let bad = run_named(&app, "d-bad", 0.3, 3, 200, app.recommended_window());
        let all = run_named(&app, "d-all", 0.3, 3, 200, app.recommended_window());
        assert!(
            bad.used_expected > all.used_expected,
            "d-bad {} vs d-all {}",
            bad.used_expected,
            all.used_expected
        );
    }

    #[test]
    fn runs_are_reproducible() {
        let app = RfidAnomalies::new();
        let a = run_named(&app, "d-bad", 0.2, 5, 150, app.recommended_window());
        let b = run_named(&app, "d-bad", 0.2, 5, 150, app.recommended_window());
        assert_eq!(a, b);
    }

    #[test]
    fn zero_error_rate_all_strategies_agree_with_oracle() {
        let app = RfidAnomalies::new();
        let oracle = run_named(&app, "opt-r", 0.0, 9, 150, app.recommended_window());
        for s in ["d-bad", "d-lat", "d-all"] {
            let m = run_named(&app, s, 0.0, 9, 150, app.recommended_window());
            assert_eq!(m.used_expected, oracle.used_expected, "{s}");
            assert_eq!(m.discarded, 0, "{s} discarded on a clean trace");
        }
    }

    #[test]
    #[should_panic(expected = "unknown strategy")]
    fn unknown_strategy_panics() {
        let app = CallForwarding::new();
        let _ = run_named(&app, "d-nope", 0.1, 1, 10, DEFAULT_WINDOW);
    }

    #[test]
    fn exported_grid_matches_serial_and_counts_every_submission() {
        let app = CallForwarding::new();
        let jobs: Vec<RunJob> = ["d-bad", "d-all", "d-lat", "opt-r"]
            .iter()
            .flat_map(|s| {
                (0..3).map(|seed| RunJob {
                    strategy: (*s).to_owned(),
                    err_rate: 0.2,
                    seed,
                })
            })
            .collect();
        let len = 80;
        let window = app.recommended_window();
        let serial = run_jobs_parallel(&app, &jobs, len, window, 1);

        let registry = ObsRegistry::shared(ObsConfig::metrics_only(), 3);
        let exported = run_jobs_parallel_exported(&app, &jobs, len, window, 3, &registry);
        assert_eq!(serial, exported, "observation must not perturb results");
        // Every submitted context of every job landed in the shared
        // registry: the live endpoint sees the whole grid.
        let agg = registry.snapshot().aggregate();
        assert_eq!(
            agg.counter(ctxres_obs::CounterKind::Ingested),
            (jobs.len() * len) as u64
        );
        // Metrics-only: no per-event ring traffic from the grid.
        assert!(registry.drain().is_empty());
    }

    #[test]
    fn export_registry_from_env_is_none_when_unset() {
        // The test runner does not set CTXRES_METRICS_ADDR (and tests
        // must not mutate the process environment); the helper must
        // degrade to unobserved.
        if std::env::var(METRICS_ADDR_ENV).is_err() {
            assert!(export_registry_from_env(4).is_none());
        }
    }
}

//! Replaying the Figure 1–5 scenario traces against each strategy.

use ctxres_apps::scenarios;
use ctxres_constraint::Constraint;
use ctxres_context::{ContextState, Ticks};
use ctxres_core::strategies::by_name;
use ctxres_middleware::{Middleware, MiddlewareConfig};
use serde::{Deserialize, Serialize};

/// The fate of the five scenario contexts under one strategy.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScenarioOutcome {
    /// Strategy name.
    pub strategy: String,
    /// Final state of each of `d1 … d5` (as lowercase strings).
    pub states: Vec<String>,
    /// Which contexts (1-based, as in the paper) were discarded.
    pub discarded: Vec<usize>,
}

impl ScenarioOutcome {
    /// Whether the resolution was *correct*: exactly the corrupted `d3`
    /// was discarded.
    pub fn is_correct(&self) -> bool {
        self.discarded == vec![3]
    }
}

/// Replays a scenario trace (from [`ctxres_apps::scenarios`]) under the
/// named strategy with the given constraints.
///
/// # Panics
///
/// Panics on an unknown strategy name.
pub fn replay(trace_name: &str, constraints: Vec<Constraint>, strategy: &str) -> ScenarioOutcome {
    let trace = match trace_name {
        "A" => scenarios::scenario_a(),
        "B" => scenarios::scenario_b(),
        other => panic!("unknown scenario {other:?} (use \"A\" or \"B\")"),
    };
    let mut mw = Middleware::builder()
        .constraints(constraints)
        .strategy(by_name(strategy, 0).unwrap_or_else(|| panic!("unknown strategy {strategy:?}")))
        .config(MiddlewareConfig {
            window: Ticks::new(10),
            track_ground_truth: true,
            retention: None,
        })
        .build();
    for ctx in trace {
        mw.submit(ctx);
    }
    mw.drain();
    let states: Vec<String> = mw
        .pool()
        .iter()
        .map(|(_, c)| c.state().to_string())
        .collect();
    let discarded: Vec<usize> = mw
        .pool()
        .iter()
        .enumerate()
        .filter(|(_, (_, c))| c.state() == ContextState::Inconsistent)
        .map(|(i, _)| i + 1)
        .collect();
    ScenarioOutcome {
        strategy: strategy.to_owned(),
        states,
        discarded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctxres_apps::scenarios::{adjacent_constraint, refined_constraints};

    #[test]
    fn scenario_a_drop_latest_is_correct() {
        // §2.2: "the strategy correctly discards d3 for Scenario A".
        let out = replay("A", vec![adjacent_constraint()], "d-lat");
        assert_eq!(out.discarded, vec![3]);
        assert!(out.is_correct());
    }

    #[test]
    fn scenario_b_drop_latest_discards_the_wrong_context() {
        // §2.2: "context d4 instead of d3 is discarded … an incorrect
        // resolution".
        let out = replay("B", vec![adjacent_constraint()], "d-lat");
        assert_eq!(out.discarded, vec![4]);
        assert!(!out.is_correct());
    }

    #[test]
    fn scenario_a_drop_all_loses_d2_as_well() {
        // §2.3 / Fig. 3: both d2 and d3 are discarded.
        let out = replay("A", vec![adjacent_constraint()], "d-all");
        assert_eq!(out.discarded, vec![2, 3]);
    }

    #[test]
    fn scenario_b_drop_all_loses_d4_as_well() {
        // Fig. 3 right: both d3 and d4 discarded.
        let out = replay("B", vec![adjacent_constraint()], "d-all");
        assert_eq!(out.discarded, vec![3, 4]);
    }

    #[test]
    fn drop_bad_is_correct_in_both_scenarios_with_refined_constraints() {
        // §3.1 / Fig. 5: with gap-2 refinement, d3 carries the largest
        // count in both scenarios and is the only discard.
        for scenario in ["A", "B"] {
            let out = replay(scenario, refined_constraints(), "d-bad");
            assert!(
                out.is_correct(),
                "scenario {scenario}: discarded {:?}",
                out.discarded
            );
        }
    }

    #[test]
    fn oracle_is_always_correct() {
        for scenario in ["A", "B"] {
            let out = replay(scenario, vec![adjacent_constraint()], "opt-r");
            assert!(out.is_correct());
        }
    }

    #[test]
    #[should_panic(expected = "unknown scenario")]
    fn unknown_scenario_panics() {
        let _ = replay("C", vec![], "d-bad");
    }
}

//! Regenerates the **§5.2 case study**: drop-bad on the LANDMARC
//! location workload — survival rate, removal precision, and how often
//! heuristic Rules 1, 2 and 2′ held.
//!
//! Usage: `case_study [--quick]`.

use ctxres_experiments::case_study::run_case_study;
use ctxres_experiments::render::{render_case_study, write_json};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (runs, len) = if quick { (3, 200) } else { (10, 600) };
    eprintln!("§5.2 case study: landmarc + drop-bad, {runs} runs × {len} fixes …");
    let cs = run_case_study(0.2, runs, len);
    println!("{}", render_case_study(&cs));
    match write_json("case_study", &cs) {
        Ok(path) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("could not write results json: {e}"),
    }
}

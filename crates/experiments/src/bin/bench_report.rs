//! Judges the latest run of **every** bench series in the history and
//! exits nonzero on any regression — the blocking CI gate behind
//! `results/bench_history.jsonl`.
//!
//! Usage:
//!
//! ```text
//! bench_report [--history <path>] [--threshold-pct <pct>] [--obs-threshold-pct <pct>]
//!              [--p99-threshold-pct <pct>] [--spec-drop-pp <pp>]
//! ```
//!
//! The history interleaves rows from independent series —
//! `shard_throughput` at each shard count, `eval_bench/<deployment>`,
//! `city` (the city-scale batch-ingestion bench, which measures the
//! live health-telemetry overhead as `obs_health_overhead_pct` and the
//! sampled phase-profiler overhead as `obs_profile_overhead_pct`; its
//! other obs-overhead fields are zero/`None` and never trip the gate),
//! `city_unfused` (the same workload with batch fusion disabled, so
//! the sequential checking path keeps its own baseline and a
//! regression there cannot hide behind the fused headline) —
//! distinguished by the `(bench, shards, quick, host, contexts)` key.
//!
//! When a series regresses and its rows carry `phase_shares` (the
//! profiler's per-phase self-time shares), the report also prints a
//! **phase attribution** line naming the phase(s) whose share grew the
//! most against the baseline median — pointing at the subsystem to
//! profile first rather than leaving a bare percentage.
//! For each distinct series, the most recent row is the run under
//! judgment; its baseline is the median of up to 5 most recent
//! **prior** rows of the same series, so cross-machine, cross-scale,
//! and cross-bench rows never skew a verdict. Exit codes: `0` all
//! series pass (a first run on a fresh series passes with a
//! `no baseline` warning), `1` any series regressed — throughput more
//! than `--threshold-pct` (default 10%) below baseline,
//! observability/export/provenance/tail overhead above
//! `--obs-threshold-pct` (default 3%), end-to-end p99 latency more
//! than `--p99-threshold-pct` (default 25%) above its baseline median,
//! or the speculation consumed rate more than `--spec-drop-pp`
//! (default 20 percentage points) below its baseline median — `2`
//! usage or unreadable/empty history. Rows that predate tail telemetry
//! contribute nothing to the tail baselines and are judged `n/a`.

use ctxres_experiments::bench_history::{
    attribute_regression, evaluate, history_path_from_env, load_history, OverheadVerdict,
    TailVerdict, Thresholds, ThroughputVerdict,
};
use std::path::PathBuf;

fn parse_args() -> Result<(PathBuf, Thresholds), String> {
    let mut history = history_path_from_env();
    let mut thresholds = Thresholds::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().ok_or_else(|| format!("{flag} needs a value"));
        match arg.as_str() {
            "--history" => history = value("--history")?.into(),
            "--threshold-pct" => {
                thresholds.regression_pct = value("--threshold-pct")?
                    .parse()
                    .map_err(|e| format!("--threshold-pct: {e}"))?;
            }
            "--obs-threshold-pct" => {
                thresholds.obs_overhead_pct = value("--obs-threshold-pct")?
                    .parse()
                    .map_err(|e| format!("--obs-threshold-pct: {e}"))?;
            }
            "--p99-threshold-pct" => {
                thresholds.e2e_p99_regression_pct = value("--p99-threshold-pct")?
                    .parse()
                    .map_err(|e| format!("--p99-threshold-pct: {e}"))?;
            }
            "--spec-drop-pp" => {
                thresholds.spec_consumed_drop_pp = value("--spec-drop-pp")?
                    .parse()
                    .map_err(|e| format!("--spec-drop-pp: {e}"))?;
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok((history, thresholds))
}

/// Optional overhead margin (provenance, health) for display:
/// `+1.20%`, or `n/a` when the row predates the series or the bench
/// does not measure it.
fn opt_pct_label(pct: Option<f64>) -> String {
    match pct {
        Some(p) => format!("{p:+.2}%"),
        None => "n/a".to_owned(),
    }
}

fn main() {
    let (history_path, thresholds) = match parse_args() {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("bench_report: {e}");
            std::process::exit(2);
        }
    };
    let history = match load_history(&history_path) {
        Ok(rows) => rows,
        Err(e) => {
            eprintln!("bench_report: {e}");
            std::process::exit(2);
        }
    };
    if history.is_empty() {
        eprintln!(
            "bench_report: {} is empty — run shard_bench, eval_bench, or city_bench first",
            history_path.display()
        );
        std::process::exit(2);
    }

    // A row is a series tail when no later row belongs to the same
    // series; each tail is the run under judgment for that series.
    let tails: Vec<usize> = (0..history.len())
        .filter(|&i| {
            history[i + 1..]
                .iter()
                .all(|later| !history[i].same_series(later))
        })
        .collect();

    println!(
        "bench_report: {} series over {} rows of history",
        tails.len(),
        history.len(),
    );
    let mut failed = false;
    for idx in tails {
        let current = &history[idx];
        let prior = &history[..idx];
        println!(
            "{} @ {} on {} ({} shards, {} contexts{})",
            current.bench,
            current.commit,
            current.host,
            current.shards,
            current.contexts,
            if current.quick { ", quick" } else { "" },
        );
        let verdict = evaluate(current, prior, &thresholds);
        match &verdict.throughput {
            ThroughputVerdict::Pass {
                baseline,
                change_pct,
                baseline_runs,
            } => println!(
                "  throughput: PASS — {:.1} ctx/s vs median {:.1} of {} prior run(s) ({:+.2}%, threshold -{:.1}%)",
                current.contexts_per_sec, baseline, baseline_runs, change_pct, thresholds.regression_pct,
            ),
            ThroughputVerdict::NoBaseline => println!(
                "  throughput: PASS (no baseline) — {:.1} ctx/s seeds the series for ({}, {} shards, quick={}, {})",
                current.contexts_per_sec, current.bench, current.shards, current.quick, current.host,
            ),
            ThroughputVerdict::Regression {
                baseline,
                change_pct,
                baseline_runs,
            } => {
                println!(
                    "  throughput: REGRESSION — {:.1} ctx/s vs median {:.1} of {} prior run(s) ({:+.2}%, threshold -{:.1}%)",
                    current.contexts_per_sec, baseline, baseline_runs, change_pct, thresholds.regression_pct,
                );
                // Phase attribution: compare this run's self-time shares
                // against the baseline medians and name the phase(s)
                // whose share grew the most — the first place to look.
                let shifts = attribute_regression(current, prior);
                let grew: Vec<String> = shifts
                    .iter()
                    .filter(|s| s.delta_pp > 1.0)
                    .take(3)
                    .map(|s| {
                        format!(
                            "{} ({:+.1}pp, {:.1}% vs baseline {:.1}%)",
                            s.phase, s.delta_pp, s.share_pct, s.baseline_share_pct
                        )
                    })
                    .collect();
                if grew.is_empty() {
                    println!("  phase attribution: no phase data on this series");
                } else {
                    println!("  phase attribution: likely phase(s): {}", grew.join(", "));
                }
            }
        }
        match &verdict.overhead {
            OverheadVerdict::Pass { worst_pct } => println!(
                "  obs overhead: PASS — disabled {:+.2}%, export {:+.2}%, provenance {}, health {}, profile {}, tail {} (worst {:+.2}%, threshold {:.1}%)",
                current.obs_overhead_pct,
                current.obs_export_overhead_pct,
                opt_pct_label(current.obs_prov_overhead_pct),
                opt_pct_label(current.obs_health_overhead_pct),
                opt_pct_label(current.obs_profile_overhead_pct),
                opt_pct_label(current.obs_tail_overhead_pct),
                worst_pct,
                thresholds.obs_overhead_pct,
            ),
            OverheadVerdict::Exceeded { worst_pct } => println!(
                "  obs overhead: EXCEEDED — disabled {:+.2}%, export {:+.2}%, provenance {}, health {}, profile {}, tail {} (worst {:+.2}%, threshold {:.1}%)",
                current.obs_overhead_pct,
                current.obs_export_overhead_pct,
                opt_pct_label(current.obs_prov_overhead_pct),
                opt_pct_label(current.obs_health_overhead_pct),
                opt_pct_label(current.obs_profile_overhead_pct),
                opt_pct_label(current.obs_tail_overhead_pct),
                worst_pct,
                thresholds.obs_overhead_pct,
            ),
        }
        let drop_label = |drop: &Option<f64>| match drop {
            Some(pp) => format!("{pp:+.1}pp drop"),
            None => "n/a".to_owned(),
        };
        match &verdict.tail {
            TailVerdict::NotMeasured => {}
            TailVerdict::NoBaseline { p99_ns } => println!(
                "  e2e tail: PASS (no baseline) — p99 {:.0} µs seeds the tail series",
                p99_ns / 1000.0,
            ),
            TailVerdict::Pass {
                baseline_p99_ns,
                p99_change_pct,
                consumed_drop_pp,
                baseline_runs,
            } => println!(
                "  e2e tail: PASS — p99 {} µs vs median {:.0} of {} prior run(s) ({:+.2}%, threshold +{:.1}%); spec consumed {} (threshold {:.1}pp)",
                current
                    .e2e_p99_ns
                    .map(|ns| format!("{:.0}", ns / 1000.0))
                    .unwrap_or_else(|| "?".into()),
                baseline_p99_ns / 1000.0,
                baseline_runs,
                p99_change_pct,
                thresholds.e2e_p99_regression_pct,
                drop_label(consumed_drop_pp),
                thresholds.spec_consumed_drop_pp,
            ),
            TailVerdict::Regression {
                baseline_p99_ns,
                p99_change_pct,
                p99_regressed,
                consumed_drop_pp,
                spec_dropped,
                baseline_runs,
            } => {
                let mut gates = Vec::new();
                if *p99_regressed {
                    gates.push(format!(
                        "p99 {} µs vs median {:.0} of {} prior run(s) ({:+.2}%, threshold +{:.1}%)",
                        current
                            .e2e_p99_ns
                            .map(|ns| format!("{:.0}", ns / 1000.0))
                            .unwrap_or_else(|| "?".into()),
                        baseline_p99_ns / 1000.0,
                        baseline_runs,
                        p99_change_pct,
                        thresholds.e2e_p99_regression_pct,
                    ));
                }
                if *spec_dropped {
                    gates.push(format!(
                        "spec consumed rate {} vs baseline median (threshold {:.1}pp)",
                        drop_label(consumed_drop_pp),
                        thresholds.spec_consumed_drop_pp,
                    ));
                }
                println!("  e2e tail: REGRESSION — {}", gates.join("; "));
                // The tail gate reuses the same phase attribution as
                // throughput: a p99 that moved without throughput
                // moving still names the phase whose share grew.
                let shifts = attribute_regression(current, prior);
                let grew: Vec<String> = shifts
                    .iter()
                    .filter(|s| s.delta_pp > 1.0)
                    .take(3)
                    .map(|s| {
                        format!(
                            "{} ({:+.1}pp, {:.1}% vs baseline {:.1}%)",
                            s.phase, s.delta_pp, s.share_pct, s.baseline_share_pct
                        )
                    })
                    .collect();
                if grew.is_empty() {
                    println!("  phase attribution: no phase data on this series");
                } else {
                    println!("  phase attribution: likely phase(s): {}", grew.join(", "));
                }
            }
        }
        failed |= verdict.is_failure();
    }
    if failed {
        eprintln!("bench_report: FAIL");
        std::process::exit(1);
    }
    println!("bench_report: OK");
}

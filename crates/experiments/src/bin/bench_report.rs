//! Judges the latest `shard_bench` run against the bench history and
//! exits nonzero on a regression — the blocking CI gate behind
//! `results/bench_history.jsonl`.
//!
//! Usage:
//!
//! ```text
//! bench_report [--history <path>] [--threshold-pct <pct>] [--obs-threshold-pct <pct>]
//! ```
//!
//! The last row of the history is the run under judgment; its baseline
//! is the median of up to 5 most recent **prior** rows with the same
//! `(bench, shards, quick, host)` key, so cross-machine and
//! cross-scale rows never skew the verdict. Exit codes: `0` pass (a
//! first run on a fresh series passes with a `no baseline` warning),
//! `1` regression — throughput more than `--threshold-pct` (default
//! 10%) below baseline, or observability/export overhead above
//! `--obs-threshold-pct` (default 3%) — `2` usage or unreadable
//! history.

use ctxres_experiments::bench_history::{
    evaluate, history_path_from_env, load_history, OverheadVerdict, Thresholds, ThroughputVerdict,
};
use std::path::PathBuf;

fn parse_args() -> Result<(PathBuf, Thresholds), String> {
    let mut history = history_path_from_env();
    let mut thresholds = Thresholds::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().ok_or_else(|| format!("{flag} needs a value"));
        match arg.as_str() {
            "--history" => history = value("--history")?.into(),
            "--threshold-pct" => {
                thresholds.regression_pct = value("--threshold-pct")?
                    .parse()
                    .map_err(|e| format!("--threshold-pct: {e}"))?;
            }
            "--obs-threshold-pct" => {
                thresholds.obs_overhead_pct = value("--obs-threshold-pct")?
                    .parse()
                    .map_err(|e| format!("--obs-threshold-pct: {e}"))?;
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok((history, thresholds))
}

fn main() {
    let (history_path, thresholds) = match parse_args() {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("bench_report: {e}");
            std::process::exit(2);
        }
    };
    let history = match load_history(&history_path) {
        Ok(rows) => rows,
        Err(e) => {
            eprintln!("bench_report: {e}");
            std::process::exit(2);
        }
    };
    let Some((current, prior)) = history.split_last() else {
        eprintln!(
            "bench_report: {} is empty — run shard_bench first",
            history_path.display()
        );
        std::process::exit(2);
    };

    println!(
        "bench_report: {} @ {} on {} ({} shards{}, {} rows of history)",
        current.bench,
        current.commit,
        current.host,
        current.shards,
        if current.quick { ", quick" } else { "" },
        history.len(),
    );
    let verdict = evaluate(current, prior, &thresholds);
    match &verdict.throughput {
        ThroughputVerdict::Pass {
            baseline,
            change_pct,
            baseline_runs,
        } => println!(
            "  throughput: PASS — {:.1} ctx/s vs median {:.1} of {} prior run(s) ({:+.2}%, threshold -{:.1}%)",
            current.contexts_per_sec, baseline, baseline_runs, change_pct, thresholds.regression_pct,
        ),
        ThroughputVerdict::NoBaseline => println!(
            "  throughput: PASS (no baseline) — {:.1} ctx/s seeds the series for ({}, {} shards, quick={}, {})",
            current.contexts_per_sec, current.bench, current.shards, current.quick, current.host,
        ),
        ThroughputVerdict::Regression {
            baseline,
            change_pct,
            baseline_runs,
        } => println!(
            "  throughput: REGRESSION — {:.1} ctx/s vs median {:.1} of {} prior run(s) ({:+.2}%, threshold -{:.1}%)",
            current.contexts_per_sec, baseline, baseline_runs, change_pct, thresholds.regression_pct,
        ),
    }
    match &verdict.overhead {
        OverheadVerdict::Pass { worst_pct } => println!(
            "  obs overhead: PASS — disabled {:+.2}%, export {:+.2}% (worst {:+.2}%, threshold {:.1}%)",
            current.obs_overhead_pct,
            current.obs_export_overhead_pct,
            worst_pct,
            thresholds.obs_overhead_pct,
        ),
        OverheadVerdict::Exceeded { worst_pct } => println!(
            "  obs overhead: EXCEEDED — disabled {:+.2}%, export {:+.2}% (worst {:+.2}%, threshold {:.1}%)",
            current.obs_overhead_pct,
            current.obs_export_overhead_pct,
            worst_pct,
            thresholds.obs_overhead_pct,
        ),
    }
    if verdict.is_failure() {
        eprintln!("bench_report: FAIL");
        std::process::exit(1);
    }
    println!("bench_report: OK");
}

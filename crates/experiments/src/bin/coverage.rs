//! Prints the **constraint coverage** report for every application:
//! which deployed constraints actually fire, and whether their
//! detections involve corrupted contexts (the per-constraint Rule 1
//! picture). Flags constraints that never fire.
//!
//! Usage: `coverage [--quick]`.

use ctxres_apps::call_forwarding::CallForwarding;
use ctxres_apps::location_tracking::LocationTracking;
use ctxres_apps::rfid_anomalies::RfidAnomalies;
use ctxres_apps::smart_ringer::SmartRinger;
use ctxres_apps::PervasiveApp;
use ctxres_experiments::coverage::{constraint_coverage, render_coverage};
use ctxres_experiments::render::write_json;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (runs, len) = if quick { (2, 240) } else { (5, 600) };
    let mut all = Vec::new();
    for app in [
        Box::new(CallForwarding::new()) as Box<dyn PervasiveApp>,
        Box::new(RfidAnomalies::new()),
        Box::new(LocationTracking::new()),
        Box::new(SmartRinger::new()),
    ] {
        let report = constraint_coverage(app.as_ref(), 0.3, runs, len);
        println!("{}", render_coverage(&report));
        all.push(report);
    }
    match write_json("coverage", &all) {
        Ok(path) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("could not write results json: {e}"),
    }
}

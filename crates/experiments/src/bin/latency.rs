//! Runs the **latency/accuracy dial** (paper §3.3's unquantified
//! trade-off): drop-bad across use windows, reporting total activation
//! latency next to the accuracy metrics, on both subject applications.
//!
//! Terminology: *activation latency* here is the paper's §3.3 notion —
//! how many **logical ticks** a context sits in the use window before
//! the application may act on it, a property of the resolution policy,
//! not of the machine. It is unrelated to the engine's **wall-clock
//! end-to-end latency** telemetry (nanosecond span stamps, p99
//! histograms, exemplars), which lives in `ctxres_obs::tail` and
//! surfaces through `/snapshot`, `obs_top`, `soak`, and the
//! `city_bench` `e2e_p99_ns` series. This bin never touches a clock.
//!
//! Usage: `latency [--quick]`.

use ctxres_apps::call_forwarding::CallForwarding;
use ctxres_apps::rfid_anomalies::RfidAnomalies;
use ctxres_apps::PervasiveApp;
use ctxres_experiments::latency::{latency_window_tradeoff, render_latency};
use ctxres_experiments::render::write_json;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (runs, len) = if quick { (3, 240) } else { (10, 600) };
    let windows = [0u64, 1, 2, 3, 4];
    let mut all = Vec::new();
    for app in [
        Box::new(CallForwarding::new()) as Box<dyn PervasiveApp>,
        Box::new(RfidAnomalies::new()),
    ] {
        eprintln!("latency dial: {} …", app.name());
        let points = latency_window_tradeoff(app.as_ref(), 0.3, &windows, runs, len);
        println!("{}", render_latency(&points, app.name(), 0.3));
        all.push((app.name().to_owned(), points));
    }
    match write_json("latency", &all) {
        Ok(path) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("could not write results json: {e}"),
    }
}

//! Regenerates the **§5.3 time-window study**: drop-bad effectiveness
//! as the use window varies, with the window-0 point degenerating to
//! drop-latest.
//!
//! Usage: `ablation_window [--quick]`.

use ctxres_apps::call_forwarding::CallForwarding;
use ctxres_experiments::ablation::window_sweep;
use ctxres_experiments::render::{render_window_ablation, write_json};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (runs, len) = if quick { (2, 180) } else { (10, 600) };
    // Windows are bounded by the workload's context TTL (5 ticks):
    // beyond it every context expires before the application can use it.
    let windows = [0u64, 1, 2, 3, 4];
    eprintln!("§5.3 window ablation: call forwarding + drop-bad, {runs} runs × {len} contexts …");
    let ab = window_sweep(&CallForwarding::new(), &windows, 0.3, runs, len);
    println!("{}", render_window_ablation(&ab));
    match write_json("ablation_window", &ab) {
        Ok(path) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("could not write results json: {e}"),
    }
}

//! Renders an observability event trace (JSONL of `TraceRecord`s) as a
//! human-readable timeline, a per-strategy state-transition summary
//! table, and the reconstructed life cycle of every discarded context.
//!
//! ```text
//! trace_dump [--json] <events.jsonl> [strategy-label]
//! trace_dump [--json] [--slow] --demo [out.jsonl]
//! ```
//!
//! `--demo` runs a seeded drop-bad Call Forwarding cell (err 0.3,
//! seed 3) with tracing enabled, writes its event trace to
//! `out.jsonl` (default `results/demo_trace.jsonl`), then dumps it —
//! the smoke artifact CI archives. `--json` replaces the human
//! rendering with one machine-readable document (full timeline,
//! transition rows, SLO alert timeline, slow-batch postmortems,
//! discarded-context life cycles) on stdout; it combines with `--demo`.
//! `--slow` makes the demo ingest through the fused batch path under a
//! 1 ns slow-batch bound, so every batch breaches and the trace carries
//! `slow_batch` postmortem events — the latency-smoke artifact.

use ctxres_apps::call_forwarding::CallForwarding;
use ctxres_apps::PervasiveApp;
use ctxres_context::ContextState;
use ctxres_experiments::runner::{run_named_observed, run_named_observed_batched};
use ctxres_experiments::telemetry::{
    json_dump, json_dump_with_snapshot, reconstruct_lifecycles, render_timeline,
    render_transition_table, transition_counts,
};
use ctxres_experiments::trace_io::{load_events, save_events};
use ctxres_obs::{ObsConfig, ObsSnapshot, TraceEvent, TraceRecord};
use std::path::Path;
use std::process::ExitCode;

/// Timeline lines printed before eliding (the demo cell alone produces
/// hundreds of events).
const TIMELINE_LIMIT: usize = 60;

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let slow = args.iter().any(|a| a == "--slow");
    args.retain(|a| a != "--json" && a != "--slow");
    match run(&args, json, slow) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!(
                "usage:\n  trace_dump [--json] <events.jsonl> [strategy-label]\n  \
                 trace_dump [--json] [--slow] --demo [out.jsonl]"
            );
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String], json: bool, slow: bool) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("--demo") => {
            let out = args
                .get(1)
                .map(String::as_str)
                .unwrap_or("results/demo_trace.jsonl");
            demo(Path::new(out), json, slow)
        }
        Some(path) => {
            let label = args.get(1).map(String::as_str).unwrap_or("trace");
            let trace = load_events(Path::new(path))?;
            render(&trace, label, json, None)?;
            Ok(())
        }
        None => Err("missing arguments".into()),
    }
}

/// Dispatches between the human views and the `--json` document. With a
/// metrics snapshot (the `--demo` path has one), the JSON document also
/// carries the aggregated counters — including the compiled-eval and
/// situation-cache figures.
fn render(
    trace: &[ctxres_obs::TraceRecord],
    label: &str,
    json: bool,
    snapshot: Option<&ObsSnapshot>,
) -> Result<(), String> {
    if json {
        let doc = match snapshot {
            Some(s) => json_dump_with_snapshot(trace, label, s),
            None => json_dump(trace, label),
        };
        let text = serde_json::to_string_pretty(&doc).map_err(|e| e.to_string())?;
        println!("{text}");
    } else {
        dump(trace, label);
    }
    Ok(())
}

/// Runs the seeded demo cell, saves its event trace, and dumps it.
/// With `slow`, ingestion goes through the fused batch path under a
/// 1 ns slow-batch bound so the trace carries postmortems.
fn demo(out: &Path, json: bool, slow: bool) -> Result<(), String> {
    let app = CallForwarding::new();
    let (metrics, telemetry) = if slow {
        run_named_observed_batched(
            &app,
            "d-bad",
            0.3,
            3,
            200,
            app.recommended_window(),
            50,
            ObsConfig::enabled().with_slow_batch_bound(1),
        )
    } else {
        run_named_observed(
            &app,
            "d-bad",
            0.3,
            3,
            200,
            app.recommended_window(),
            ObsConfig::enabled(),
        )
    };
    if let Some(dir) = out.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(|e| format!("create {dir:?}: {e}"))?;
        }
    }
    save_events(out, &telemetry.trace)?;
    eprintln!(
        "demo cell: strategy={} err_rate={} seed={} -> {} events ({} dropped), {} discarded",
        telemetry.strategy,
        telemetry.err_rate,
        telemetry.seed,
        telemetry.trace.len(),
        telemetry.dropped,
        metrics.discarded,
    );
    eprintln!("wrote {}", out.display());
    render(
        &telemetry.trace,
        &telemetry.strategy,
        json,
        Some(&telemetry.snapshot),
    )?;
    if telemetry.dropped > 0 {
        return Err(format!(
            "{} events were dropped; the trace is incomplete",
            telemetry.dropped
        ));
    }
    Ok(())
}

/// Prints the three views of a trace: timeline, transition table, and
/// discarded-context life cycles.
fn dump(trace: &[TraceRecord], label: &str) {
    println!("== timeline ({} events) ==", trace.len());
    print!("{}", render_timeline(trace, TIMELINE_LIMIT));

    println!();
    println!("== state transitions ==");
    print!(
        "{}",
        render_transition_table(&[(label.to_owned(), transition_counts(trace))])
    );

    println!();
    println!("== slo alerts ==");
    let mut alerts = 0;
    for record in trace {
        if matches!(record.event, TraceEvent::Alert { .. }) {
            alerts += 1;
            println!("{record}");
        }
    }
    if alerts == 0 {
        println!("(none)");
    }

    println!();
    println!("== slow-batch postmortems ==");
    let mut postmortems = 0;
    for record in trace {
        if matches!(record.event, TraceEvent::SlowBatch { .. }) {
            postmortems += 1;
            println!("{record}");
        }
    }
    if postmortems == 0 {
        println!("(none)");
    }

    println!();
    println!("== discarded-context life cycles ==");
    let lifecycles = reconstruct_lifecycles(trace);
    let mut discarded = 0;
    for l in &lifecycles {
        if l.final_state() != Some(ContextState::Inconsistent) {
            continue;
        }
        discarded += 1;
        println!("{}", l.summary());
        for record in &l.events {
            println!("    {record}");
        }
    }
    if discarded == 0 {
        println!("(none)");
    }
    println!();
    println!(
        "{} contexts traced, {} discarded",
        lifecycles.len(),
        discarded
    );
}

//! Explains resolution decisions end-to-end from causal provenance.
//!
//! ```text
//! explain [--json] [cell options] [--context <id>] [--discarded]
//! explain [--json] [cell options] --diff <strategyA> <strategyB>
//! explain [--json] --trace <events.jsonl> [--context <id>] [--discarded]
//!
//! cell options: --strategy <name> --err <rate> --seed <n> --len <n>
//!               (defaults: d-bad 0.3 3 200, Call Forwarding workload)
//! ```
//!
//! With no selection flags the graph summary plus every discarded
//! context's chain is printed. `--context` accepts `12`, `ctx#12` or
//! `s0/ctx#12` (bare ids match across shards). `--diff` runs both
//! strategies over the *same* seeded workload, joins their provenance
//! graphs on content identity, and reports the first context they
//! disagree on — e.g. where D-LAT first throws away a context D-BAD's
//! count evidence saves. `--json` replaces the human rendering with one
//! machine-readable document.

use ctxres_apps::call_forwarding::CallForwarding;
use ctxres_apps::PervasiveApp;
use ctxres_experiments::explain::{
    diff_doc, nodes_for_raw_id, render_chain, render_divergence, ExplainDoc,
};
use ctxres_experiments::runner::run_named_observed;
use ctxres_experiments::trace_io::load_events;
use ctxres_obs::{NodeId, ObsConfig, ProvenanceGraph, TraceRecord};
use std::path::Path;
use std::process::ExitCode;

struct Options {
    json: bool,
    trace: Option<String>,
    strategy: String,
    err_rate: f64,
    seed: u64,
    len: usize,
    context: Option<String>,
    discarded: bool,
    diff: Option<(String, String)>,
}

fn parse(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        json: false,
        trace: None,
        strategy: "d-bad".to_owned(),
        err_rate: 0.3,
        seed: 3,
        len: 200,
        context: None,
        discarded: false,
        diff: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--json" => opts.json = true,
            "--discarded" => opts.discarded = true,
            "--trace" => opts.trace = Some(value("--trace")?),
            "--strategy" => opts.strategy = value("--strategy")?,
            "--err" => {
                opts.err_rate = value("--err")?.parse().map_err(|e| format!("--err: {e}"))?;
            }
            "--seed" => {
                opts.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--len" => {
                opts.len = value("--len")?.parse().map_err(|e| format!("--len: {e}"))?;
            }
            "--context" => opts.context = Some(value("--context")?),
            "--diff" => {
                let a = value("--diff")?;
                let b = value("--diff")?;
                opts.diff = Some((a, b));
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if opts.diff.is_some() && opts.trace.is_some() {
        return Err("--diff reruns both strategies; it cannot take --trace".into());
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse(&args).and_then(run) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!(
                "usage:\n  explain [--json] [--strategy <name>] [--err <rate>] [--seed <n>] \
                 [--len <n>] [--context <id>] [--discarded]\n  \
                 explain [--json] --diff <strategyA> <strategyB> [--err <rate>] [--seed <n>] [--len <n>]\n  \
                 explain [--json] --trace <events.jsonl> [--context <id>] [--discarded]"
            );
            ExitCode::FAILURE
        }
    }
}

/// Runs one observed cell and returns its label and complete trace.
fn run_cell(
    strategy: &str,
    err_rate: f64,
    seed: u64,
    len: usize,
) -> Result<(String, Vec<TraceRecord>), String> {
    let app = CallForwarding::new();
    let (_, telemetry) = run_named_observed(
        &app,
        strategy,
        err_rate,
        seed,
        len,
        app.recommended_window(),
        ObsConfig::enabled(),
    );
    if telemetry.dropped > 0 {
        return Err(format!(
            "{} events dropped; raise the ring capacity or shorten the run",
            telemetry.dropped
        ));
    }
    let label = format!("{strategy} err={err_rate} seed={seed}");
    Ok((label, telemetry.trace))
}

fn run(opts: Options) -> Result<(), String> {
    if let Some((a, b)) = &opts.diff {
        return diff(&opts, a, b);
    }
    let (label, trace) = match &opts.trace {
        Some(path) => (path.clone(), load_events(Path::new(path))?),
        None => run_cell(&opts.strategy, opts.err_rate, opts.seed, opts.len)?,
    };
    let graph = ProvenanceGraph::from_records(&trace);
    let selected = select(&graph, &opts)?;
    if opts.json {
        let doc = ExplainDoc::new(&label, &graph, selected);
        println!(
            "{}",
            serde_json::to_string_pretty(&doc).map_err(|e| e.to_string())?
        );
    } else {
        let stats = graph.stats();
        println!(
            "{label}: {} contexts, {} cause edges, {} complete chains, {} discarded",
            stats.nodes, stats.edges, stats.complete_chains, stats.discarded
        );
        println!();
        if selected.is_empty() {
            println!("(no matching contexts)");
        }
        for node in selected {
            print!("{}", render_chain(node));
        }
    }
    Ok(())
}

/// Applies `--context` / `--discarded`; defaults to the discarded set.
fn select<'a>(
    graph: &'a ProvenanceGraph,
    opts: &Options,
) -> Result<Vec<&'a ctxres_obs::ProvNode>, String> {
    let spec = match &opts.context {
        Some(spec) if !opts.discarded => spec,
        // --discarded, and also the default view.
        _ => return Ok(graph.discarded()),
    };
    let (shard, raw) = parse_context(spec)?;
    let nodes: Vec<&ctxres_obs::ProvNode> = match shard {
        Some(shard) => graph
            .node(NodeId {
                shard,
                ctx: ctxres_context::ContextId::from_raw(raw),
            })
            .into_iter()
            .collect(),
        None => nodes_for_raw_id(graph, raw),
    };
    if nodes.is_empty() {
        return Err(format!("no context matching {spec:?} in the trace"));
    }
    Ok(nodes)
}

/// Accepts `12`, `ctx#12`, or `s0/ctx#12`.
fn parse_context(spec: &str) -> Result<(Option<u32>, u64), String> {
    let (shard, rest) = match spec.split_once('/') {
        Some((s, rest)) => {
            let shard = s
                .strip_prefix('s')
                .unwrap_or(s)
                .parse::<u32>()
                .map_err(|e| format!("shard in {spec:?}: {e}"))?;
            (Some(shard), rest)
        }
        None => (None, spec),
    };
    let raw = rest
        .strip_prefix("ctx#")
        .unwrap_or(rest)
        .parse::<u64>()
        .map_err(|e| format!("context id in {spec:?}: {e}"))?;
    Ok((shard, raw))
}

fn diff(opts: &Options, a: &str, b: &str) -> Result<(), String> {
    let (label_a, trace_a) = run_cell(a, opts.err_rate, opts.seed, opts.len)?;
    let (label_b, trace_b) = run_cell(b, opts.err_rate, opts.seed, opts.len)?;
    let graph_a = ProvenanceGraph::from_records(&trace_a);
    let graph_b = ProvenanceGraph::from_records(&trace_b);
    let doc = diff_doc(&label_a, &graph_a, &label_b, &graph_b);
    if opts.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&doc).map_err(|e| e.to_string())?
        );
        return Ok(());
    }
    println!(
        "{label_a}: {} contexts / {} discarded   {label_b}: {} contexts / {} discarded   ({} shared identities)",
        doc.a_stats.nodes, doc.a_stats.discarded, doc.b_stats.nodes, doc.b_stats.discarded, doc.compared
    );
    match &doc.divergence {
        Some(d) => print!("{}", render_divergence(d)),
        None => println!("no divergence: both strategies decided every shared context identically"),
    }
    Ok(())
}

//! Runs the **estimator-robustness check**: the §5.2 case study with the
//! localization technique swapped between LANDMARC k-NN, trilateration,
//! and their fusion. §6 positions drop-bad as orthogonal to
//! technique-level redundancy — the survival/precision/rule numbers
//! should hold across techniques.
//!
//! Usage: `estimator_robustness [--quick]`.

use ctxres_experiments::case_study::run_case_study_for_estimator;
use ctxres_experiments::render::write_json;
use ctxres_landmarc::EstimatorKind;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (runs, len) = if quick { (3, 200) } else { (10, 600) };
    println!(
        "{:<16}{:>10}{:>11}{:>9}{:>9}{:>10}",
        "estimator", "survival", "precision", "rule1", "rule2'", "incons."
    );
    let mut all = Vec::new();
    for kind in [
        EstimatorKind::Knn,
        EstimatorKind::Trilateration,
        EstimatorKind::Fused,
    ] {
        eprintln!("estimator robustness: {kind:?} …");
        let cs = run_case_study_for_estimator(kind, 0.2, runs, len);
        println!(
            "{:<16}{:>9.1}%{:>10.1}%{:>8.1}%{:>8.1}%{:>10}",
            format!("{kind:?}").to_lowercase(),
            cs.survival * 100.0,
            cs.precision * 100.0,
            cs.rule1_rate * 100.0,
            cs.rule2_relaxed_rate * 100.0,
            cs.inconsistencies
        );
        all.push((format!("{kind:?}").to_lowercase(), cs));
    }
    match write_json("estimator_robustness", &all) {
        Ok(path) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("could not write results json: {e}"),
    }
}

//! Stand-alone consistency checker: parse a constraint file, load a
//! trace, report every inconsistency.
//!
//! ```text
//! check_dsl <constraints.ctx> <trace.jsonl>
//! ```
//!
//! The constraint file uses the `ctxres-constraint` DSL (any number of
//! `constraint name: …` declarations, `#` comments). Exit code 1 when
//! inconsistencies are found, 2 on usage/parse errors — usable in
//! scripts and CI.

use ctxres_constraint::{parse_constraints, Evaluator, PredicateRegistry};
use ctxres_context::{ContextPool, LogicalTime};
use ctxres_experiments::trace_io::load_trace;
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [constraints_path, trace_path] = args.as_slice() else {
        eprintln!("usage: check_dsl <constraints.ctx> <trace.jsonl>");
        return ExitCode::from(2);
    };
    let source = match std::fs::read_to_string(constraints_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot read {constraints_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let constraints = match parse_constraints(&source) {
        Ok(cs) => cs,
        Err(e) => {
            eprintln!("error: {constraints_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let trace = match load_trace(Path::new(trace_path)) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let now = trace
        .iter()
        .map(|c| c.stamp())
        .max()
        .unwrap_or(LogicalTime::ZERO);
    let pool: ContextPool = trace.into_iter().collect();
    let registry = PredicateRegistry::with_builtins();
    let evaluator = Evaluator::new(&registry);
    let mut total = 0usize;
    for constraint in &constraints {
        match evaluator.check(constraint, &pool, now) {
            Ok(outcome) => {
                for link in &outcome.violations {
                    total += 1;
                    let members: Vec<String> = link.iter().map(|id| id.to_string()).collect();
                    println!("{}: {{{}}}", constraint.name(), members.join(", "));
                }
            }
            Err(e) => {
                eprintln!("error: evaluating {}: {e}", constraint.name());
                return ExitCode::from(2);
            }
        }
    }
    eprintln!(
        "{} constraints, {} contexts, {total} inconsistencies",
        constraints.len(),
        pool.len()
    );
    if total > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

//! Runs the **high-error stress sweep**: the strategy comparison pushed
//! to error rates the paper never tested (up to 80 %), on both subject
//! applications — probing where the count-value heuristic (Rule 2)
//! starts to erode.
//!
//! Usage: `sensitivity [--quick]`.

use ctxres_apps::call_forwarding::CallForwarding;
use ctxres_apps::rfid_anomalies::RfidAnomalies;
use ctxres_apps::PervasiveApp;
use ctxres_experiments::render::write_json;
use ctxres_experiments::sensitivity::{render_stress, stress_error_rates};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (runs, len) = if quick { (3, 240) } else { (10, 600) };
    let rates = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8];
    let mut all = Vec::new();
    for app in [
        Box::new(CallForwarding::new()) as Box<dyn PervasiveApp>,
        Box::new(RfidAnomalies::new()),
    ] {
        eprintln!("stress sweep: {} …", app.name());
        let sweep = stress_error_rates(app.as_ref(), &rates, runs, len);
        println!("{}", render_stress(&sweep));
        all.push(sweep);
    }
    match write_json("sensitivity", &all) {
        Ok(path) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("could not write results json: {e}"),
    }
}

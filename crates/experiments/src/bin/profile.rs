//! Hierarchical phase profiling of the real workloads, exported as a
//! flamegraph and a Chrome trace.
//!
//! Usage:
//!
//! ```text
//! profile [city|figure9|figure10] [--quick] [--sample N] [--out DIR]
//! ```
//!
//! Runs the chosen workload once with the sampled phase profiler on
//! (`city` is the default; `--sample` overrides the root-sampling
//! divisor, default 8 — `--sample 1` records every root), then writes
//! two artifacts and prints a self-time table:
//!
//! - `profile_<workload>.trace.json` — Chrome trace-event JSON; load it
//!   in Perfetto or `chrome://tracing` to scrub through nested phase
//!   spans per shard on a common timeline.
//! - `profile_<workload>.folded` — inferno-compatible folded stacks
//!   (`shard0;ingest;constraint_check <self_ns>`); pipe through
//!   `inferno-flamegraph` (or any FlameGraph port) for an SVG.
//! - stderr: per-phase calls, total time, self time, and self-time
//!   share, aggregated over shards — the quick look that tells you
//!   which subsystem to open the flamegraph on.
//!
//! Both artifacts are validated before the process exits —
//! [`validate_trace_json`] must parse the trace and [`parse_folded`]
//! must round-trip the stacks — so a CI smoke run catches a malformed
//! export without a browser in the loop.

use ctxres_apps::call_forwarding::CallForwarding;
use ctxres_apps::rfid_anomalies::RfidAnomalies;
use ctxres_apps::PervasiveApp;
use ctxres_constraint::parse_constraints;
use ctxres_context::Ticks;
use ctxres_core::strategies::DropBad;
use ctxres_experiments::city::{CityConfig, CityWorkload};
use ctxres_experiments::figures::figure_for_parallel_exported;
use ctxres_experiments::runner::default_threads;
use ctxres_middleware::{Middleware, MiddlewareConfig, ShardPlan, ShardedMiddleware};
use ctxres_obs::{
    chrome_trace_json, folded_stacks, parse_folded, validate_trace_json, ObsConfig, ObsRegistry,
    SpanRecord,
};
use std::path::{Path, PathBuf};
use std::sync::Arc;

const SPEED: &str = "constraint speed:
    forall a: location, b: location .
      (same_subject(a, b) and seq_gap(a, b, 1)) implies velocity_le(a, b, 1.5)";

/// City ingestion knobs — smaller than `city_bench` (this is a one-shot
/// profiling pass, not a best-of-N throughput measurement).
const CITY_SHARDS: usize = 4;
const CITY_BATCH: usize = 4096;
const CITY_REBALANCE_EVERY: usize = 8;
const CITY_HOT_FACTOR: f64 = 1.2;
const CITY_RETENTION: u64 = 512;
/// Default root-sampling divisor; `--sample` overrides it.
const DEFAULT_SAMPLE: u32 = 8;

struct Options {
    workload: String,
    quick: bool,
    sample: u32,
    out: PathBuf,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        workload: "city".to_owned(),
        quick: false,
        sample: DEFAULT_SAMPLE,
        out: PathBuf::from("."),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().ok_or_else(|| format!("{flag} needs a value"));
        match arg.as_str() {
            "city" | "figure9" | "figure10" => opts.workload = arg,
            "--quick" => opts.quick = true,
            "--sample" => {
                opts.sample = value("--sample")?
                    .parse::<u32>()
                    .map_err(|e| format!("--sample: {e}"))?
                    .max(1);
            }
            "--out" => opts.out = value("--out")?.into(),
            other => {
                return Err(format!(
                    "unknown argument {other:?} (expected city|figure9|figure10, --quick, --sample N, --out DIR)"
                ))
            }
        }
    }
    Ok(opts)
}

/// One profiled sharded ingestion pass over a city trace — the same
/// batch/rebalance discipline as `city_bench`, sized for a quick
/// profiling run. Returns the registry holding the recorded spans.
fn run_city(quick: bool, sample: u32) -> Arc<ObsRegistry> {
    // Same scales as `city_bench`: shrinking the subject pool further
    // would *lengthen* the hot subjects' tracks (Zipf skew), making the
    // per-reading incremental check quadratically slower, not faster.
    let (subjects, total) = if quick {
        (20_000, 80_000)
    } else {
        (100_000, 400_000)
    };
    run_city_sized(subjects, total, sample)
}

/// The city pass with explicit sizing — the tests drive a miniature
/// trace through the identical code path (debug builds make the real
/// quick sizes too slow for a unit test).
fn run_city_sized(subjects: usize, total: usize, sample: u32) -> Arc<ObsRegistry> {
    let cfg = CityConfig {
        subjects,
        ..CityConfig::default()
    };
    let mut city = CityWorkload::new(cfg);
    let trace = city.batch(total);
    eprintln!(
        "profiling city: {} contexts, {subjects} subjects, {CITY_SHARDS} shards, sample 1/{sample}",
        trace.len()
    );
    let plan = ShardPlan::analyze(&parse_constraints(SPEED).unwrap(), CITY_SHARDS);
    let registry =
        ShardedMiddleware::obs_registry(&plan, ObsConfig::metrics_only().with_profile(sample));
    let mut sharded = ShardedMiddleware::new_observed(plan, &registry, |_, obs| {
        Middleware::builder()
            .constraints(parse_constraints(SPEED).unwrap())
            .strategy(Box::new(DropBad::new()))
            .config(MiddlewareConfig {
                window: Ticks::new(0),
                track_ground_truth: false,
                retention: Some(Ticks::new(CITY_RETENTION)),
            })
            .obs(obs)
            .build()
    });
    for (i, chunk) in trace.chunks(CITY_BATCH).enumerate() {
        sharded.batch_add(chunk);
        if (i + 1) % CITY_REBALANCE_EVERY == 0 {
            sharded.drain();
            let loads = sharded.subject_loads();
            if let Some(new_plan) = sharded.plan().rebalance(&loads, CITY_HOT_FACTOR) {
                sharded.apply_plan(new_plan);
            }
        }
    }
    sharded.drain();
    eprintln!(
        "  {} inconsistencies found",
        sharded.stats().inconsistencies
    );
    registry
}

/// One profiled figure-grid pass: the full seeded (rate × strategy ×
/// seed) grid fanned over worker threads, each worker's engine wired to
/// a profiled registry slot. Returns the registry with recorded spans.
fn run_figure(app: &(dyn PervasiveApp + Sync), quick: bool, sample: u32) -> Arc<ObsRegistry> {
    let (runs, len) = if quick { (2, 120) } else { (5, 600) };
    run_figure_sized(app, runs, len, sample)
}

/// The figure pass with explicit sizing, shared with the tests.
fn run_figure_sized(
    app: &(dyn PervasiveApp + Sync),
    runs: usize,
    len: usize,
    sample: u32,
) -> Arc<ObsRegistry> {
    let threads = default_threads();
    eprintln!(
        "profiling {}: {runs} runs/point, {len} contexts/run, {threads} thread(s), sample 1/{sample}",
        app.name()
    );
    let registry = ObsRegistry::shared(
        ObsConfig::metrics_only().with_profile(sample),
        threads.max(1),
    );
    let fig = figure_for_parallel_exported(app, runs, len, threads, &registry);
    eprintln!("  {} grid points evaluated", fig.points.len());
    registry
}

/// Writes both artifacts, validates them, and prints the self-time
/// table. Returns the artifact paths.
fn export(
    registry: &ObsRegistry,
    workload: &str,
    out: &Path,
) -> Result<(PathBuf, PathBuf), String> {
    let spans = registry.drain_spans();
    if spans.is_empty() {
        return Err("no spans recorded — the workload never entered a profiled phase".to_owned());
    }
    std::fs::create_dir_all(out).map_err(|e| format!("{}: {e}", out.display()))?;
    let trace_path = out.join(format!("profile_{workload}.trace.json"));
    let folded_path = out.join(format!("profile_{workload}.folded"));

    let trace = chrome_trace_json(&spans);
    let events = validate_trace_json(&trace)?;
    std::fs::write(&trace_path, &trace).map_err(|e| format!("{}: {e}", trace_path.display()))?;

    let folded = folded_stacks(&spans);
    let rows = parse_folded(&folded)?;
    if rows.is_empty() {
        return Err("folded stacks came out empty despite recorded spans".to_owned());
    }
    std::fs::write(&folded_path, &folded).map_err(|e| format!("{}: {e}", folded_path.display()))?;

    eprintln!(
        "wrote {} ({events} events) and {} ({} stacks)",
        trace_path.display(),
        folded_path.display(),
        rows.len(),
    );
    print_table(registry, &spans);
    Ok((trace_path, folded_path))
}

/// Per-phase self-time table aggregated over shards, widest share
/// first — the terminal answer to "where did the time go".
fn print_table(registry: &ObsRegistry, spans: &[SpanRecord]) {
    let snap = registry.profile_snapshot();
    let mut agg = snap.aggregate();
    agg.retain(|s| s.calls > 0);
    agg.sort_by_key(|s| std::cmp::Reverse(s.self_ns));
    let total_self: u64 = agg.iter().map(|s| s.self_ns).sum();
    let total_self = total_self.max(1) as f64;
    eprintln!(
        "{:>16} {:>10} {:>12} {:>12} {:>7}",
        "phase", "calls", "total ms", "self ms", "self %"
    );
    for s in &agg {
        eprintln!(
            "{:>16} {:>10} {:>12.3} {:>12.3} {:>6.2}%",
            s.phase,
            s.calls,
            s.total_ns as f64 / 1e6,
            s.self_ns as f64 / 1e6,
            s.self_ns as f64 * 100.0 / total_self,
        );
    }
    let (roots, sampled, dropped) = snap.shards.iter().fold((0u64, 0u64, 0u64), |acc, sh| {
        (
            acc.0 + sh.roots,
            acc.1 + sh.sampled_roots,
            acc.2 + sh.spans_dropped,
        )
    });
    eprintln!(
        "{roots} roots seen, {sampled} sampled, {} spans exported, {dropped} dropped (ring full)",
        spans.len(),
    );
}

fn main() {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("profile: {e}");
            std::process::exit(2);
        }
    };
    let registry = match opts.workload.as_str() {
        "city" => run_city(opts.quick, opts.sample),
        "figure9" => run_figure(&CallForwarding::new(), opts.quick, opts.sample),
        "figure10" => run_figure(&RfidAnomalies::new(), opts.quick, opts.sample),
        other => unreachable!("parse_args admits only known workloads, got {other:?}"),
    };
    if let Err(e) = export(&registry, &opts.workload, &opts.out) {
        eprintln!("profile: {e}");
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The full artifact path: run a small city workload, export, and
    /// re-parse both files. This is the assertion CI's profile-smoke
    /// job depends on — a malformed trace or empty flamegraph fails
    /// here before any browser is involved.
    #[test]
    fn city_profile_artifacts_validate_and_round_trip() {
        let registry = run_city_sized(200, 2_000, 1);
        let dir = std::env::temp_dir().join("ctxres_profile_test");
        std::fs::create_dir_all(&dir).unwrap();
        let (trace_path, folded_path) = export(&registry, "city_test", &dir).expect("export");

        let trace = std::fs::read_to_string(&trace_path).unwrap();
        let events = validate_trace_json(&trace).expect("trace JSON validates");
        assert!(events > 0, "trace must contain events");

        let folded = std::fs::read_to_string(&folded_path).unwrap();
        let rows = parse_folded(&folded).expect("folded stacks parse");
        assert!(!rows.is_empty(), "folded stacks must be non-empty");
        // Every stack is rooted at a shard frame and every count is a
        // self-time the flamegraph can sum without double counting.
        for (frames, _) in &rows {
            assert!(
                frames[0].starts_with("shard"),
                "stack roots at a shard frame, got {frames:?}"
            );
        }
        let _ = std::fs::remove_file(trace_path);
        let _ = std::fs::remove_file(folded_path);
    }

    /// A second workload exercises the single-engine (non-sharded)
    /// profiling path the figure grids use.
    #[test]
    fn figure_profile_records_phases() {
        let registry = run_figure_sized(&CallForwarding::new(), 1, 60, 1);
        let snap = registry.profile_snapshot();
        assert!(!snap.is_empty(), "figure run must record phase spans");
        let agg = snap.aggregate();
        let check = agg
            .iter()
            .find(|s| s.phase == "constraint_check")
            .expect("figure runs check constraints");
        assert!(check.calls > 0);
    }
}

//! Runs the **cross-kind generality check** (paper §3.4 / §7): the
//! smart-ringer workload, whose key constraint relates *different kinds*
//! of contexts (venue fixes vs noise samples), through the full strategy
//! grid. Drop-bad's count values are kind-agnostic, so its advantage
//! should persist — "our approach applies to different types and numbers
//! of contexts".
//!
//! Usage: `cross_kind [--quick]`.

use ctxres_apps::smart_ringer::SmartRinger;
use ctxres_experiments::figures::figure_for;
use ctxres_experiments::render::{render_figure, write_json};
use ctxres_experiments::{RUNS_PER_POINT, TRACE_LEN};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (runs, len) = if quick {
        (3, 240)
    } else {
        (RUNS_PER_POINT, TRACE_LEN)
    };
    eprintln!("cross-kind generality: smart ringer, {runs} runs/point, {len} contexts/run …");
    let fig = figure_for(&SmartRinger::new(), runs, len);
    println!("{}", render_figure(&fig));
    match write_json("cross_kind", &fig) {
        Ok(path) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("could not write results json: {e}"),
    }
}

//! Regenerates **Figure 9**: resolution comparison for the Call
//! Forwarding application (`ctxUseRate` and `sitActRate` vs error rate).
//!
//! Usage: `figure9 [--quick]` — `--quick` runs 3 seeds × 240 contexts
//! instead of the paper-scale 20 × 600.

use ctxres_apps::call_forwarding::CallForwarding;
use ctxres_experiments::figures::figure_for;
use ctxres_experiments::render::{render_figure, write_json};
use ctxres_experiments::{RUNS_PER_POINT, TRACE_LEN};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (runs, len) = if quick { (3, 240) } else { (RUNS_PER_POINT, TRACE_LEN) };
    eprintln!("figure 9: call forwarding, {runs} runs/point, {len} contexts/run …");
    let fig = figure_for(&CallForwarding::new(), runs, len);
    println!("{}", render_figure(&fig));
    match write_json("figure9", &fig) {
        Ok(path) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("could not write results json: {e}"),
    }
}

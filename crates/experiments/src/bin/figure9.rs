//! Regenerates **Figure 9**: resolution comparison for the Call
//! Forwarding application (`ctxUseRate` and `sitActRate` vs error rate).
//!
//! Usage: `figure9 [--quick]` — `--quick` runs 3 seeds × 240 contexts
//! instead of the paper-scale 20 × 600. The seeded grid is fanned over
//! worker threads (`CTXRES_THREADS` overrides the count); the output is
//! bit-identical to a serial run.
//!
//! Set `CTXRES_METRICS_ADDR` (e.g. `127.0.0.1:9900`) to serve live
//! Prometheus metrics (`/metrics`) and JSON snapshots (`/snapshot`)
//! while the grid runs — scrape mid-run to watch per-worker
//! ingest/discard/detection rates.

use ctxres_apps::call_forwarding::CallForwarding;
use ctxres_experiments::figures::{figure_for_parallel, figure_for_parallel_exported};
use ctxres_experiments::render::{render_figure, write_json};
use ctxres_experiments::runner::{default_threads, export_registry_from_env};
use ctxres_experiments::{RUNS_PER_POINT, TRACE_LEN};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (runs, len) = if quick {
        (3, 240)
    } else {
        (RUNS_PER_POINT, TRACE_LEN)
    };
    let threads = default_threads();
    eprintln!(
        "figure 9: call forwarding, {runs} runs/point, {len} contexts/run, {threads} thread(s) …"
    );
    let app = CallForwarding::new();
    let fig = match export_registry_from_env(threads) {
        Some((registry, server)) => {
            eprintln!(
                "serving live metrics at http://{}/metrics",
                server.local_addr()
            );
            figure_for_parallel_exported(&app, runs, len, threads, &registry)
        }
        None => figure_for_parallel(&app, runs, len, threads),
    };
    println!("{}", render_figure(&fig));
    match write_json("figure9", &fig) {
        Ok(path) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("could not write results json: {e}"),
    }
}

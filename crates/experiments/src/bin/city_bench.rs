//! City-scale ingestion benchmark: Zipf-skewed traffic from 10^5
//! subjects with churn, streamed in amortized batches through the
//! sharded engine with hot-shard rebalancing between batches, recorded
//! as `BENCH_city.json` (run it from the repo root).
//!
//! Where `shard_bench` measures a dense 32-subject stream (every
//! incremental check quantifies over everyone), this bench measures the
//! regime the arena/SoA pool and the per-subject indexes were built
//! for: a huge sparse population where each reading only ever has to be
//! checked against its own subject's track. The workload comes from
//! [`ctxres_experiments::city`] — deterministic Zipf traffic, subject
//! churn, and a teleport rate that plants genuine speed-constraint
//! violations throughout the trace.
//!
//! Three configurations are timed: the global-mutex engine submitting
//! contexts one at a time (the paper's deployment model), the sharded
//! engine ingesting via `batch_add` with a periodic rebalancing cycle
//! — every few batches the engine drains, reads per-shard subject
//! loads, asks [`ShardPlan::rebalance`] for a better placement, and
//! applies it before continuing — and the same sharded engines with
//! **batch fusion disabled** (`MiddlewareBuilder::fused(false)`), the
//! sequential per-submit checking path. All must report the identical
//! inconsistency count. `fused_speedup` is the median of paired
//! within-rep unfused/fused ratios, and the fused-off run appends its
//! own `city_unfused` history row so the sequential path stays a gated
//! regression series in its own right.
//!
//! Two further configurations measure **live health telemetry** on the
//! city series, mirroring how `shard_bench` isolates the provenance
//! margin: a metrics-only registry with the health layer switched off
//! (`ObsConfig::metrics_only().with_health(false)` — counters,
//! histograms, and a [`Sampler`] tick per rebalance cycle, but no
//! kind-quality cells or arena/watermark gauges), and the same
//! registry with health on — the exact always-on monitoring
//! configuration the soak harness runs. A fourth configuration adds the
//! **sampled phase profiler** (`with_profile(PROFILE_SAMPLE)`) on top
//! of metrics-only: every [`PROFILE_SAMPLE`]-th root span records full
//! nested phase timings, and the run's aggregated self-time shares are
//! written out as `phase_shares`. All configurations are interleaved
//! within each rep; `obs_health_overhead_pct` and
//! `obs_profile_overhead_pct` are each the **median of paired per-rep
//! ratios** against the metrics-only baseline — the *marginal* cost of
//! that layer, not the price of metrics as a whole — which CI gates
//! under 3% via `bench_report`.
//!
//! A sixth configuration turns on **end-to-end tail telemetry**
//! (`ObsConfig::metrics_only().with_tail(true)`): per-context
//! monotonic span stamps, per-(shard, outcome) log-bucketed
//! histograms, bounded exemplar reservoirs, and the fused-path
//! speculation counters. Its marginal cost over metrics-only is
//! `obs_tail_overhead_pct` (same paired-median discipline, same <3%
//! gate), and the run's folded histograms yield the gated
//! `e2e_p99_ns` regression series plus reported p50/p95 context and
//! the speculation consumed/wasted rates `bench_report` watches for
//! collapse.
//!
//! Every run appends one [`BenchRecord`] row with `bench: "city"` to
//! `results/bench_history.jsonl` (override with `CTXRES_BENCH_HISTORY`)
//! — a separate series from `shard_throughput`, judged by the same
//! `bench_report` gate. The remaining observability-overhead fields
//! (disabled registry, export, provenance) stay zero/`None`: those
//! configurations are `shard_bench`'s job. `CTXRES_BENCH_QUICK=1`
//! shrinks the workload for CI smoke runs; the shard count comes from
//! the first CLI argument, then `CTXRES_SHARDS`, then a default of 4.

use ctxres_constraint::parse_constraints;
use ctxres_context::{Context, Ticks};
use ctxres_core::strategies::DropBad;
use ctxres_experiments::bench_history::{
    append_history, commit_stamp, history_path_from_env, host_stamp, median_paired_overhead_pct,
    BenchRecord, PhaseShare, ShardThroughput,
};
use ctxres_experiments::city::{CityConfig, CityWorkload};
use ctxres_middleware::{
    Middleware, MiddlewareConfig, ShardPlan, ShardedMiddleware, SharedMiddleware,
};
use ctxres_obs::{ObsConfig, Sampler, TailSample};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

const SPEED: &str = "constraint speed:
    forall a: location, b: location .
      (same_subject(a, b) and seq_gap(a, b, 1)) implies velocity_le(a, b, 1.5)";

const DEFAULT_SHARDS: usize = 4;
/// Contexts per `batch_add` call.
const BATCH: usize = 4096;
/// A rebalancing cycle runs every this many batches.
const REBALANCE_EVERY: usize = 8;
/// Shards hotter than this factor × mean load trigger a rebalance.
const HOT_FACTOR: f64 = 1.2;
/// Sliding retention window, in ticks. A city stream never keeps the
/// full history: readings older than this are compacted away, which
/// also bounds the per-subject track each incremental check scans.
const RETENTION: u64 = 512;
/// Timed repetitions of the sharded configuration (best-of for
/// throughput, median-of-paired-ratios for the overhead columns).
/// Seven, not three: single-pass timings on this class of box swing
/// several percent, and the median of three paired ratios inherits
/// enough of that noise to trip the 3% overhead gate on a true ~0%
/// cost. Seven reps roughly halves the median's spread.
const REPS: usize = 7;
/// Root-sampling divisor for the profile-on configuration: every 32nd
/// batch/maintenance root records full nested spans; the rest pay one
/// lock-free counter bump. Batch fusion made the bare path ~1.5x
/// faster, which turned the divisor-8 recording cost into >3% of the
/// (now shorter) run — the budget is relative, so the divisor scales
/// with the engine. Hundreds of sampled roots per run still give
/// stable shares.
const PROFILE_SAMPLE: u32 = 32;

/// Shard count: first CLI argument, then `CTXRES_SHARDS`, then 4.
fn shard_count() -> usize {
    let parse = |s: String| s.trim().parse::<usize>().ok().filter(|n| *n >= 1);
    std::env::args()
        .nth(1)
        .and_then(parse)
        .or_else(|| std::env::var("CTXRES_SHARDS").ok().and_then(parse))
        .unwrap_or(DEFAULT_SHARDS)
}

fn engine_builder(fused: bool) -> ctxres_middleware::MiddlewareBuilder {
    Middleware::builder()
        .constraints(parse_constraints(SPEED).unwrap())
        .strategy(Box::new(DropBad::new()))
        .fused(fused)
        .config(MiddlewareConfig {
            window: Ticks::new(0),
            track_ground_truth: false,
            retention: Some(Ticks::new(RETENTION)),
        })
}

/// One sharded ingestion pass over the trace: amortized batches with a
/// rebalancing cycle every [`REBALANCE_EVERY`] batches. With an
/// [`ObsConfig`] the engines run observed — a registry attached to
/// every shard and a [`Sampler`] tick per rebalance cycle, the cadence
/// a live monitor scrapes at; whether the per-kind quality counters
/// and arena/watermark gauges also record is the config's
/// `with_health` lever. Returns the inconsistency count and how many
/// rebalances applied.
fn run_sharded(
    trace: &[Context],
    shards: usize,
    obs: Option<ObsConfig>,
    fused: bool,
) -> (u64, usize, ShardedMiddleware) {
    let plan = ShardPlan::analyze(&parse_constraints(SPEED).unwrap(), shards);
    let (mut sharded, mut sampler) = if let Some(config) = obs {
        let registry = ShardedMiddleware::obs_registry(&plan, config);
        let sharded = ShardedMiddleware::new_observed(plan, &registry, |_, obs| {
            engine_builder(fused).obs(obs).build()
        });
        (sharded, Some(Sampler::new(registry)))
    } else {
        let sharded = ShardedMiddleware::new(plan, |_| engine_builder(fused).build());
        (sharded, None)
    };
    let mut rebalances = 0usize;
    for (i, chunk) in trace.chunks(BATCH).enumerate() {
        sharded.batch_add(chunk);
        if (i + 1) % REBALANCE_EVERY == 0 {
            // apply_plan requires drained shards, and rebalancing off
            // stale loads would chase last cycle's traffic anyway.
            sharded.drain();
            let loads = sharded.subject_loads();
            if let Some(new_plan) = sharded.plan().rebalance(&loads, HOT_FACTOR) {
                sharded.apply_plan(new_plan);
                rebalances += 1;
            }
            if let Some(sampler) = &mut sampler {
                let _ = sampler.sample();
            }
        }
    }
    sharded.drain();
    if let Some(sampler) = &mut sampler {
        let _ = sampler.sample();
    }
    let found = sharded.stats().inconsistencies;
    (found, rebalances, sharded)
}

/// Days-since-epoch to civil date (Howard Hinnant's algorithm); avoids
/// pulling in a date crate for one timestamp.
fn today_utc() -> String {
    let days = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs() / 86_400)
        .unwrap_or(0) as i64;
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

fn round1(x: f64) -> f64 {
    (x * 10.0).round() / 10.0
}

fn round2(x: f64) -> f64 {
    (x * 100.0).round() / 100.0
}

/// Four decimals — enough for speculation rates in `0..=1`, where two
/// decimals would quantize the gated consumed-drop comparison to whole
/// percentage points.
fn round4(x: f64) -> f64 {
    (x * 10_000.0).round() / 10_000.0
}

/// Everything one run writes to `BENCH_city.json`.
#[derive(serde::Serialize)]
struct BenchFile {
    bench: String,
    contexts_per_sec: f64,
    shards: usize,
    speedup_vs_mutex: f64,
    /// Fused batch checking vs the same engines with fusion disabled,
    /// as a median of paired within-rep ratios.
    fused_speedup: f64,
    /// Best-rep throughput of the fused-off control configuration.
    unfused_contexts_per_sec: f64,
    subjects: usize,
    zipf_exponent: f64,
    churned_subjects: u64,
    teleports: u64,
    inconsistencies: u64,
    rebalances: usize,
    obs_health_overhead_pct: f64,
    obs_profile_overhead_pct: f64,
    /// Marginal cost of end-to-end tail telemetry over metrics-only.
    obs_tail_overhead_pct: f64,
    /// End-to-end p50 from the tail-on run's folded histograms, ns.
    e2e_p50_ns: Option<f64>,
    /// End-to-end p95 from the tail-on run's folded histograms, ns.
    e2e_p95_ns: Option<f64>,
    /// End-to-end p99 from the tail-on run's folded histograms, ns.
    e2e_p99_ns: Option<f64>,
    /// Consumed share of speculated fused-batch groups, `0..=1`.
    spec_consumed_rate: Option<f64>,
    /// Wasted (dirty-collision) share of speculated groups, `0..=1`.
    spec_wasted_rate: Option<f64>,
    phase_shares: Vec<PhaseShare>,
    batch_size: usize,
    commit: String,
    host: String,
    quick: bool,
    contexts: usize,
    date: String,
    per_shard: Vec<ShardThroughput>,
}

fn main() {
    let quick = std::env::var("CTXRES_BENCH_QUICK").is_ok();
    let shards = shard_count();
    let (subjects, total) = if quick {
        (20_000, 80_000)
    } else {
        (100_000, 400_000)
    };
    let cfg = CityConfig {
        subjects,
        ..CityConfig::default()
    };
    let mut city = CityWorkload::new(cfg.clone());
    let trace = city.batch(total);
    let n = trace.len();
    eprintln!(
        "city bench: {n} contexts, {subjects} subjects (zipf {:.1}), {} churned, {} teleports, {shards} shards, best of {REPS}",
        cfg.zipf_exponent,
        city.churned(),
        city.teleports(),
    );

    // Mutex baseline: one rep of one-at-a-time submission under a
    // global lock — the deployment model the paper assumes. One rep
    // suffices; the headline number is the sharded batch rate, and a
    // second baseline rep would double the bench's wall time for a
    // denominator that only feeds `speedup_vs_mutex`.
    let mutex_start = Instant::now();
    let shared = SharedMiddleware::new(engine_builder(true).build());
    for ctx in &trace {
        shared.lock().submit(ctx.clone());
    }
    shared.lock().drain();
    let mutex_secs = mutex_start.elapsed().as_secs_f64();
    let mutex_found = shared.lock().stats().inconsistencies;
    drop(shared);
    eprintln!("  mutex: {:.1} ctx/s", n as f64 / mutex_secs);

    let mut best_secs = f64::INFINITY;
    let mut best_unfused_secs = f64::INFINITY;
    let mut shard_found = 0u64;
    let mut unfused_found = 0u64;
    let mut metrics_found = 0u64;
    let mut health_found = 0u64;
    let mut profile_found = 0u64;
    let mut tail_found = 0u64;
    let mut rebalances = 0usize;
    let mut last_run: Option<ShardedMiddleware> = None;
    let mut last_unfused: Option<ShardedMiddleware> = None;
    let mut last_profiled: Option<ShardedMiddleware> = None;
    let mut last_tail: Option<ShardedMiddleware> = None;
    let mut fused_secs = Vec::with_capacity(REPS);
    let mut unfused_secs = Vec::with_capacity(REPS);
    let mut metrics_secs = Vec::with_capacity(REPS);
    let mut health_secs = Vec::with_capacity(REPS);
    let mut profile_secs = Vec::with_capacity(REPS);
    let mut tail_secs = Vec::with_capacity(REPS);
    for rep in 0..REPS {
        // All six configurations run back-to-back within each rep, so
        // each paired ratio sees the same machine conditions — the same
        // interleaving discipline `shard_bench` uses for provenance.
        let start = Instant::now();
        let (found, rebs, sharded) = run_sharded(&trace, shards, None, true);
        let secs = start.elapsed().as_secs_f64();
        best_secs = best_secs.min(secs);
        fused_secs.push(secs);
        shard_found = found;
        rebalances = rebs;
        last_run = Some(sharded);

        // The fused-off control: the same engines with batch fusion
        // disabled, so `fused_speedup` is a paired within-rep ratio and
        // the sequential path keeps its own gated throughput series.
        let start = Instant::now();
        let (found, _, sharded) = run_sharded(&trace, shards, None, false);
        let u_secs = start.elapsed().as_secs_f64();
        best_unfused_secs = best_unfused_secs.min(u_secs);
        unfused_secs.push(u_secs);
        unfused_found = found;
        last_unfused = Some(sharded);

        let start = Instant::now();
        let (found, _, _) = run_sharded(
            &trace,
            shards,
            Some(ObsConfig::metrics_only().with_health(false)),
            true,
        );
        let m_secs = start.elapsed().as_secs_f64();
        metrics_found = found;
        metrics_secs.push(m_secs);

        let start = Instant::now();
        let (found, _, _) = run_sharded(&trace, shards, Some(ObsConfig::metrics_only()), true);
        let h_secs = start.elapsed().as_secs_f64();
        health_found = found;
        health_secs.push(h_secs);

        let start = Instant::now();
        let (found, _, sharded) = run_sharded(
            &trace,
            shards,
            Some(ObsConfig::metrics_only().with_profile(PROFILE_SAMPLE)),
            true,
        );
        let p_secs = start.elapsed().as_secs_f64();
        profile_found = found;
        profile_secs.push(p_secs);
        last_profiled = Some(sharded);

        let start = Instant::now();
        let (found, _, sharded) = run_sharded(
            &trace,
            shards,
            Some(ObsConfig::metrics_only().with_tail(true)),
            true,
        );
        let t_secs = start.elapsed().as_secs_f64();
        tail_found = found;
        tail_secs.push(t_secs);
        last_tail = Some(sharded);
        eprintln!(
            "  sharded rep {}: {:.1} ctx/s, {rebs} rebalance(s) | unfused: {:.1} ctx/s ({:.2}x) | metrics: {:.1} ctx/s | +health: {:.1} ctx/s ({:+.2}%) | +profile: {:.1} ctx/s ({:+.2}%) | +tail: {:.1} ctx/s ({:+.2}%)",
            rep + 1,
            n as f64 / secs,
            n as f64 / u_secs,
            u_secs / secs,
            n as f64 / m_secs,
            n as f64 / h_secs,
            (h_secs / m_secs - 1.0) * 100.0,
            n as f64 / p_secs,
            (p_secs / m_secs - 1.0) * 100.0,
            n as f64 / t_secs,
            (t_secs / m_secs - 1.0) * 100.0,
        );
    }

    assert_eq!(
        mutex_found, shard_found,
        "sharded batch ingestion must find the same inconsistencies as the mutex baseline"
    );
    assert_eq!(
        shard_found, unfused_found,
        "fused and sequential batch checking must find the same inconsistencies"
    );
    assert_eq!(
        shard_found, metrics_found,
        "the metrics registry must not change results"
    );
    assert_eq!(
        shard_found, health_found,
        "health telemetry must not change results"
    );
    assert_eq!(
        shard_found, profile_found,
        "the phase profiler must not change results"
    );
    assert_eq!(
        shard_found, tail_found,
        "tail telemetry must not change results"
    );
    assert!(
        shard_found > 0,
        "the city trace plants teleports; a zero count means detection broke"
    );
    let obs_health_overhead_pct = median_paired_overhead_pct(&health_secs, &metrics_secs);
    let obs_profile_overhead_pct = median_paired_overhead_pct(&profile_secs, &metrics_secs);
    let obs_tail_overhead_pct = median_paired_overhead_pct(&tail_secs, &metrics_secs);
    // Fused-over-sequential speedup as a median of paired within-rep
    // ratios, the same noise discipline as the overhead columns:
    // `median_paired_overhead_pct` returns (unfused/fused - 1) × 100.
    let fused_speedup =
        round2(median_paired_overhead_pct(&unfused_secs, &fused_secs) / 100.0 + 1.0);

    // Self-time shares from the last profiled rep: these feed regression
    // attribution in `bench_report` — when throughput drops, the phase
    // whose share moved the most names the suspect subsystem.
    let phase_shares: Vec<PhaseShare> = {
        let sharded = last_profiled.expect("at least one profiled rep ran");
        let registry = sharded
            .registry()
            .expect("the profiled configuration builds an obs registry");
        let agg = registry.profile_snapshot().aggregate();
        let total_self: u64 = agg.iter().map(|s| s.self_ns).sum();
        let total_self = total_self.max(1) as f64;
        agg.iter()
            .filter(|s| s.calls > 0)
            .map(|s| PhaseShare {
                phase: s.phase.clone(),
                share_pct: round2(s.self_ns as f64 * 100.0 / total_self),
            })
            .collect()
    };

    // End-to-end tail figures from the last tail-on rep: the whole
    // run's folded per-outcome histograms ("since the beginning"), so
    // the quantiles summarize every context the rep ingested, and the
    // cumulative speculation counters as consumed/wasted rates.
    let tail_sample = {
        let sharded = last_tail.expect("at least one tail-on rep ran");
        let registry = sharded
            .registry()
            .expect("the tail-on configuration builds an obs registry");
        TailSample::between(None, registry.tail_snapshot())
    };
    let e2e_p50_ns = tail_sample.all.p50_ns.map(round1);
    let e2e_p95_ns = tail_sample.all.p95_ns.map(round1);
    let e2e_p99_ns = tail_sample.all.p99_ns.map(round1);
    let spec_consumed_rate = tail_sample.spec.consumed_rate.map(round4);
    let spec_wasted_rate = tail_sample.spec.wasted_rate.map(round4);

    let contexts_per_sec = n as f64 / best_secs;
    let unfused_contexts_per_sec = n as f64 / best_unfused_secs;
    let speedup = mutex_secs / best_secs;
    eprintln!(
        "mutex: {:.1} ctx/s | sharded({shards}): {:.1} ctx/s | speedup {:.2}x | fused {fused_speedup:.2}x over sequential ({:.1} ctx/s) | health overhead {:+.2}% | profile overhead {:+.2}% | tail overhead {:+.2}% | {} inconsistencies | {} rebalances",
        n as f64 / mutex_secs,
        contexts_per_sec,
        speedup,
        unfused_contexts_per_sec,
        obs_health_overhead_pct,
        obs_profile_overhead_pct,
        obs_tail_overhead_pct,
        shard_found,
        rebalances,
    );
    let us = |v: Option<f64>| match v {
        Some(ns) => format!("{:.0}", ns / 1000.0),
        None => "-".to_owned(),
    };
    let pct = |v: Option<f64>| match v {
        Some(r) => format!("{:.1}%", r * 100.0),
        None => "-".to_owned(),
    };
    eprintln!(
        "  e2e tail (µs): p50 {} | p95 {} | p99 {} | spec consumed {} wasted {} over {} speculated groups",
        us(e2e_p50_ns),
        us(e2e_p95_ns),
        us(e2e_p99_ns),
        pct(spec_consumed_rate),
        pct(spec_wasted_rate),
        tail_sample.spec.groups_speculated,
    );
    for s in &phase_shares {
        eprintln!(
            "  phase {:>16}: {:>5.2}% of self-time",
            s.phase, s.share_pct
        );
    }

    // Per-shard breakdown from the last timed run: which shards carried
    // the city after rebalancing settled.
    let shard_breakdown = |sharded: &ShardedMiddleware, rate: f64| -> Vec<ShardThroughput> {
        let stats = sharded.shard_stats();
        let total_ingested: u64 = stats.iter().map(|s| s.ingested).sum::<u64>().max(1);
        stats
            .iter()
            .map(|s| {
                let share = s.ingested as f64 / total_ingested as f64;
                ShardThroughput {
                    shard: s.shard,
                    shared_scope: s.shared_scope,
                    ingested: s.ingested,
                    share_pct: round2(share * 100.0),
                    contexts_per_sec: round1(rate * share),
                }
            })
            .collect()
    };
    let per_shard = shard_breakdown(
        &last_run.expect("at least one sharded rep ran"),
        contexts_per_sec,
    );
    let unfused_per_shard = shard_breakdown(
        &last_unfused.expect("at least one unfused rep ran"),
        unfused_contexts_per_sec,
    );
    for s in &per_shard {
        eprintln!(
            "  shard {:>2}{}: {:>7} ingested ({:>5.2}%) ≈ {:.1} ctx/s",
            s.shard,
            if s.shared_scope {
                " (shared-scope)"
            } else {
                ""
            },
            s.ingested,
            s.share_pct,
            s.contexts_per_sec,
        );
    }

    let commit = commit_stamp();
    let host = host_stamp();
    let date = today_utc();

    let file = BenchFile {
        bench: "city".to_owned(),
        contexts_per_sec: round1(contexts_per_sec),
        shards,
        speedup_vs_mutex: round2(speedup),
        fused_speedup,
        unfused_contexts_per_sec: round1(unfused_contexts_per_sec),
        subjects,
        zipf_exponent: cfg.zipf_exponent,
        churned_subjects: city.churned(),
        teleports: city.teleports(),
        inconsistencies: shard_found,
        rebalances,
        obs_health_overhead_pct: round2(obs_health_overhead_pct),
        obs_profile_overhead_pct: round2(obs_profile_overhead_pct),
        obs_tail_overhead_pct: round2(obs_tail_overhead_pct),
        e2e_p50_ns,
        e2e_p95_ns,
        e2e_p99_ns,
        spec_consumed_rate,
        spec_wasted_rate,
        phase_shares: phase_shares.clone(),
        batch_size: BATCH,
        commit: commit.clone(),
        host: host.clone(),
        quick,
        contexts: n,
        date: date.clone(),
        per_shard: per_shard.clone(),
    };
    let json = serde_json::to_string_pretty(&file).expect("serialize bench file");
    match std::fs::write("BENCH_city.json", format!("{json}\n")) {
        Ok(()) => eprintln!("wrote BENCH_city.json"),
        Err(e) => eprintln!("could not write BENCH_city.json: {e}"),
    }

    let record = BenchRecord {
        bench: "city".to_owned(),
        commit: commit.clone(),
        host: host.clone(),
        date: date.clone(),
        quick,
        shards,
        contexts: n,
        contexts_per_sec: round1(contexts_per_sec),
        speedup_vs_mutex: round2(speedup),
        fused_speedup: Some(fused_speedup),
        // Not measured here — zero/None keeps those gates inert for
        // this series (shard_bench owns the disabled/export/provenance
        // overhead measurements).
        obs_overhead_pct: 0.0,
        obs_enabled_overhead_pct: 0.0,
        obs_export_overhead_pct: 0.0,
        obs_prov_overhead_pct: None,
        // Measured above: the marginal cost of the health layer over
        // the metrics-only registry, gated under 3% by bench_report
        // like the other obs overheads.
        obs_health_overhead_pct: Some(round2(obs_health_overhead_pct)),
        // Marginal cost of the sampled phase profiler over the same
        // metrics-only registry, plus the self-time shares the profiler
        // attributed — bench_report uses the shares to name the phase
        // that moved when a regression fires.
        obs_profile_overhead_pct: Some(round2(obs_profile_overhead_pct)),
        // Measured above: the marginal cost of end-to-end tail spans
        // over the same metrics-only registry (absolute <3% gate), the
        // gated p99 regression series with its p50/p95 context, and the
        // speculation-efficiency rates bench_report watches for
        // collapse.
        obs_tail_overhead_pct: Some(round2(obs_tail_overhead_pct)),
        e2e_p50_ns,
        e2e_p95_ns,
        e2e_p99_ns,
        spec_consumed_rate,
        spec_wasted_rate,
        phase_shares: Some(phase_shares),
        per_shard,
    };
    // The fused-off control gets its own history row under a distinct
    // bench name, so `bench_report` baselines and gates the sequential
    // path as its own series: a regression that batch fusion happens to
    // mask cannot hide inside the fused headline number.
    let unfused_record = BenchRecord {
        bench: "city_unfused".to_owned(),
        commit,
        host,
        date,
        quick,
        shards,
        contexts: n,
        contexts_per_sec: round1(unfused_contexts_per_sec),
        speedup_vs_mutex: round2(mutex_secs / best_unfused_secs),
        fused_speedup: None,
        obs_overhead_pct: 0.0,
        obs_enabled_overhead_pct: 0.0,
        obs_export_overhead_pct: 0.0,
        obs_prov_overhead_pct: None,
        obs_health_overhead_pct: None,
        obs_profile_overhead_pct: None,
        obs_tail_overhead_pct: None,
        e2e_p50_ns: None,
        e2e_p95_ns: None,
        e2e_p99_ns: None,
        spec_consumed_rate: None,
        spec_wasted_rate: None,
        phase_shares: None,
        per_shard: unfused_per_shard,
    };
    let history = history_path_from_env();
    for row in [&record, &unfused_record] {
        match append_history(&history, row) {
            Ok(()) => eprintln!("appended {} run to {}", row.bench, history.display()),
            Err(e) => eprintln!("could not append bench history: {e}"),
        }
    }

    println!("{json}");
}

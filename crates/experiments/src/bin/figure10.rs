//! Regenerates **Figure 10**: resolution comparison for the RFID data
//! anomalies application (`ctxUseRate` and `sitActRate` vs error rate).
//!
//! Usage: `figure10 [--quick]`. The seeded grid is fanned over worker
//! threads (`CTXRES_THREADS` overrides the count); the output is
//! bit-identical to a serial run.

use ctxres_apps::rfid_anomalies::RfidAnomalies;
use ctxres_experiments::figures::figure_for_parallel;
use ctxres_experiments::render::{render_figure, write_json};
use ctxres_experiments::runner::default_threads;
use ctxres_experiments::{RUNS_PER_POINT, TRACE_LEN};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (runs, len) = if quick {
        (3, 240)
    } else {
        (RUNS_PER_POINT, TRACE_LEN)
    };
    let threads = default_threads();
    eprintln!(
        "figure 10: rfid data anomalies, {runs} runs/point, {len} contexts/run, {threads} thread(s) …"
    );
    let fig = figure_for_parallel(&RfidAnomalies::new(), runs, len, threads);
    println!("{}", render_figure(&fig));
    match write_json("figure10", &fig) {
        Ok(path) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("could not write results json: {e}"),
    }
}

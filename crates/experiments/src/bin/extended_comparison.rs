//! Runs the **extended strategy comparison**: the paper's four plus
//! drop-random, user-policy (§2.3's "unreliable" baselines) and the
//! impact-aware drop-bad extension (§5.1/§7 future work), on both
//! subject applications.
//!
//! Usage: `extended_comparison [--quick]`.

use ctxres_apps::call_forwarding::CallForwarding;
use ctxres_apps::rfid_anomalies::RfidAnomalies;
use ctxres_apps::PervasiveApp;
use ctxres_experiments::extended::{extended_comparison, render_extended};
use ctxres_experiments::render::write_json;
use ctxres_experiments::ERROR_RATES;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (runs, len) = if quick { (3, 240) } else { (10, 600) };
    let mut all = Vec::new();
    for app in [
        Box::new(CallForwarding::new()) as Box<dyn PervasiveApp>,
        Box::new(RfidAnomalies::new()),
    ] {
        eprintln!("extended comparison: {} …", app.name());
        let cmp = extended_comparison(app.as_ref(), &ERROR_RATES, runs, len);
        println!("{}", render_extended(&cmp, &ERROR_RATES));
        all.push(cmp);
    }
    match write_json("extended_comparison", &all) {
        Ok(path) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("could not write results json: {e}"),
    }
}

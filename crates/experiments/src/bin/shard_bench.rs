//! Measures sharded-engine ingestion throughput against the
//! global-mutex baseline and records the result as
//! `BENCH_shard_throughput.json` (run it from the repo root).
//!
//! The workload is a synthetic 32-subject location stream under the
//! paper's speed constraint: with one engine every incremental check
//! quantifies over the whole population, while `shards` subject shards
//! cut each check's quantifier domain proportionally — so the sharded
//! engine wins even on a single core. The shard count comes from the
//! first CLI argument, then `CTXRES_SHARDS`, then a default of 4, and
//! is recorded in the JSON.
//!
//! Six configurations are timed: the mutex baseline, the bare sharded
//! engine, the sharded engine with a *disabled* observability registry
//! (`obs_overhead_pct` — the cost every deployment pays), with tracing
//! on but provenance off (`obs_enabled_overhead_pct`), with tracing
//! *and* causal-provenance emission on (`obs_prov_overhead_pct` — the
//! marginal cost of the explain pipeline, measured against the
//! tracing-only configuration; CI gates it under 3%), and with the
//! **live export pipeline** — a metrics-only registry behind a real
//! `/metrics` HTTP endpoint being scraped from another thread
//! throughout the run (`obs_export_overhead_pct`, measured against the
//! obs-disabled configuration; CI gates it under 3%).
//!
//! Every run also appends one [`BenchRecord`] row — commit, host, date,
//! per-shard ingest breakdown — to `results/bench_history.jsonl`
//! (override with `CTXRES_BENCH_HISTORY`), the series `bench_report`
//! judges for regressions. The final scrape of the live endpoint lands
//! in `results/metrics_snapshot.txt`. `CTXRES_BENCH_QUICK=1` shrinks
//! the workload for CI smoke runs; `CTXRES_METRICS_ADDR` pins the
//! export endpoint to a fixed address (default: an ephemeral port).

use ctxres_constraint::parse_constraints;
use ctxres_context::{Context, ContextKind, LogicalTime, Point, Ticks};
use ctxres_core::strategies::DropBad;
use ctxres_experiments::bench_history::{
    append_history, commit_stamp, history_path_from_env, host_stamp, median_paired_overhead_pct,
    BenchRecord, ShardThroughput,
};
use ctxres_middleware::{
    Middleware, MiddlewareConfig, ShardPlan, ShardedMiddleware, SharedMiddleware,
};
use ctxres_obs::{MetricsServer, ObsConfig, METRICS_ADDR_ENV};
use std::io::{Read, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

const SPEED: &str = "constraint speed:
    forall a: location, b: location .
      (same_subject(a, b) and seq_gap(a, b, 1)) implies velocity_le(a, b, 1.5)";

const DEFAULT_SHARDS: usize = 4;
const REPS: usize = 7;

/// Shard count: first CLI argument, then `CTXRES_SHARDS`, then 4.
fn shard_count() -> usize {
    let parse = |s: String| s.trim().parse::<usize>().ok().filter(|n| *n >= 1);
    std::env::args()
        .nth(1)
        .and_then(parse)
        .or_else(|| std::env::var("CTXRES_SHARDS").ok().and_then(parse))
        .unwrap_or(DEFAULT_SHARDS)
}

fn trace(subjects: usize, per_subject: usize) -> Vec<Context> {
    let mut out = Vec::with_capacity(subjects * per_subject);
    for seq in 0..per_subject {
        for s in 0..subjects {
            // Every ~10th reading teleports, violating the speed bound.
            let x = if seq % 10 == 9 {
                400.0
            } else {
                seq as f64 * 0.5
            };
            out.push(
                Context::builder(ContextKind::new("location"), &format!("subj-{s:02}"))
                    .attr("pos", Point::new(x, 0.0))
                    .attr("seq", seq as i64)
                    .stamp(LogicalTime::new(seq as u64))
                    .build(),
            );
        }
    }
    out
}

fn engine_builder() -> ctxres_middleware::MiddlewareBuilder {
    Middleware::builder()
        .constraints(parse_constraints(SPEED).unwrap())
        .strategy(Box::new(DropBad::new()))
        .config(MiddlewareConfig {
            window: Ticks::new(0),
            track_ground_truth: false,
            retention: None,
        })
}

fn engine() -> Middleware {
    engine_builder().build()
}

/// Per-configuration timing: best-of-`REPS` seconds (for throughput
/// claims), the inconsistency count, and every individual rep time
/// (for paired overhead ratios).
struct Timed {
    best_secs: f64,
    found: u64,
    rep_secs: Vec<f64>,
}

impl Timed {
    fn fresh() -> Self {
        Timed {
            best_secs: f64::INFINITY,
            found: 0,
            rep_secs: Vec::with_capacity(REPS),
        }
    }
}

/// Times `reps` more repetitions per configuration, accumulating into
/// `results` (same index order as `configs`); fresh engines each rep
/// so no run benefits from a warm pool.
///
/// Reps are **interleaved round-robin** across all configurations
/// rather than timed in per-config blocks: machine drift (CI-runner
/// neighbors, thermal throttling) then hits every configuration alike
/// instead of biasing whichever one happened to run during the slow
/// minute — the overhead percentages are comparisons of these numbers,
/// so block-ordered timing turns drift straight into phantom overhead.
#[allow(clippy::type_complexity)]
fn time_interleaved(
    configs: &mut [(&str, Box<dyn FnMut() -> u64 + '_>)],
    results: &mut [Timed],
    reps: usize,
) {
    for _ in 0..reps {
        for (i, (_, run)) in configs.iter_mut().enumerate() {
            let start = Instant::now();
            let found = run();
            let secs = start.elapsed().as_secs_f64();
            let r = &mut results[i];
            r.best_secs = r.best_secs.min(secs);
            r.found = found;
            r.rep_secs.push(secs);
        }
    }
}

/// Days-since-epoch to civil date (Howard Hinnant's algorithm); avoids
/// pulling in a date crate for one timestamp.
fn today_utc() -> String {
    let days = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs() / 86_400)
        .unwrap_or(0) as i64;
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

/// One blocking HTTP GET against the bench's own metrics endpoint.
fn http_get(addr: std::net::SocketAddr, path: &str) -> Option<String> {
    let mut stream = std::net::TcpStream::connect(addr).ok()?;
    write!(stream, "GET {path} HTTP/1.1\r\nHost: bench\r\n\r\n").ok()?;
    let mut response = String::new();
    stream.read_to_string(&mut response).ok()?;
    Some(response.split_once("\r\n\r\n")?.1.to_owned())
}

fn round1(x: f64) -> f64 {
    (x * 10.0).round() / 10.0
}

fn round2(x: f64) -> f64 {
    (x * 100.0).round() / 100.0
}

/// Everything one run writes to `BENCH_shard_throughput.json`: the
/// [`BenchRecord`] history fields plus the per-configuration absolute
/// rates.
#[derive(serde::Serialize)]
struct BenchFile {
    bench: String,
    contexts_per_sec: f64,
    shards: usize,
    speedup_vs_mutex: f64,
    obs_disabled_contexts_per_sec: f64,
    obs_overhead_pct: f64,
    obs_enabled_contexts_per_sec: f64,
    obs_enabled_overhead_pct: f64,
    obs_prov_contexts_per_sec: f64,
    obs_prov_overhead_pct: f64,
    obs_export_contexts_per_sec: f64,
    obs_export_overhead_pct: f64,
    commit: String,
    host: String,
    quick: bool,
    contexts: usize,
    date: String,
    per_shard: Vec<ShardThroughput>,
}

fn main() {
    let quick = std::env::var("CTXRES_BENCH_QUICK").is_ok();
    let shards = shard_count();
    let (subjects, per_subject) = if quick { (16, 20) } else { (32, 40) };
    let contexts = trace(subjects, per_subject);
    let n = contexts.len();
    eprintln!("shard bench: {n} contexts, {subjects} subjects, {shards} shards, best of {REPS}");

    // The live-telemetry registry and endpoint exist for the whole
    // timed phase: a metrics-only registry behind a real `/metrics`
    // endpoint, scraped from another thread — the complete cost of
    // watching the engine live. The registry is shared across reps
    // (counters accumulate; only the engine is rebuilt) so the scraper
    // always has a live target. The scraper only issues GETs while an
    // export rep is actually running: `obs_export_overhead_pct` claims
    // to measure scrape load, so the load must land on the export
    // configuration and not tax the other four (on a single-core
    // runner a free-running scraper preempts whatever is being timed).
    let export_plan = ShardPlan::analyze(&parse_constraints(SPEED).unwrap(), shards);
    let export_registry = ShardedMiddleware::obs_registry(&export_plan, ObsConfig::metrics_only());
    let export_addr = std::env::var(METRICS_ADDR_ENV)
        .ok()
        .filter(|v| !v.trim().is_empty())
        .unwrap_or_else(|| "127.0.0.1:0".to_owned());
    let server = MetricsServer::spawn(Arc::clone(&export_registry), &export_addr)
        .expect("bind metrics endpoint");
    let scrape_addr = server.local_addr();
    let stop_scraper = Arc::new(AtomicBool::new(false));
    let scrape_active = Arc::new(AtomicBool::new(false));
    let scraper = {
        let stop = Arc::clone(&stop_scraper);
        let active = Arc::clone(&scrape_active);
        std::thread::spawn(move || {
            let mut scrapes = 0u64;
            while !stop.load(Ordering::Relaxed) {
                if active.load(Ordering::Relaxed) && http_get(scrape_addr, "/metrics").is_some() {
                    scrapes += 1;
                }
                std::thread::sleep(Duration::from_millis(50));
            }
            scrapes
        })
    };

    type TimedConfig<'a> = (&'a str, Box<dyn FnMut() -> u64 + 'a>);
    let mut configs: Vec<TimedConfig<'_>> = vec![
        (
            "mutex",
            Box::new(|| {
                let shared = SharedMiddleware::new(engine());
                for ctx in &contexts {
                    shared.lock().submit(ctx.clone());
                }
                shared.lock().drain();
                let found = shared.lock().stats().inconsistencies;
                found
            }),
        ),
        (
            "sharded",
            Box::new(|| {
                let plan = ShardPlan::analyze(&parse_constraints(SPEED).unwrap(), shards);
                let sharded = ShardedMiddleware::new(plan, |_| engine());
                sharded.batch_add(&contexts);
                sharded.drain();
                sharded.stats().inconsistencies
            }),
        ),
        // The same sharded configuration with a *disabled*
        // observability registry wired through every shard: the cost
        // every production deployment pays whether or not anyone turns
        // tracing on.
        (
            "obs-off",
            Box::new(|| {
                let plan = ShardPlan::analyze(&parse_constraints(SPEED).unwrap(), shards);
                let registry = ShardedMiddleware::obs_registry(&plan, ObsConfig::disabled());
                let sharded = ShardedMiddleware::new_observed(plan, &registry, |_, obs| {
                    engine_builder().obs(obs).build()
                });
                sharded.batch_add(&contexts);
                sharded.drain();
                sharded.stats().inconsistencies
            }),
        ),
        // The live export path, under scrape load. Runs immediately
        // after obs-off within each rep because the gated
        // `obs_export_overhead_pct` pairs these two — adjacency keeps
        // each paired ratio's machine conditions as equal as possible.
        (
            "export",
            Box::new(|| {
                scrape_active.store(true, Ordering::Relaxed);
                let plan = ShardPlan::analyze(&parse_constraints(SPEED).unwrap(), shards);
                let sharded = ShardedMiddleware::new_observed(plan, &export_registry, |_, obs| {
                    engine_builder().obs(obs).build()
                });
                sharded.batch_add(&contexts);
                sharded.drain();
                let found = sharded.stats().inconsistencies;
                scrape_active.store(false, Ordering::Relaxed);
                found
            }),
        ),
        // With tracing on but provenance off — the debugging
        // configuration (reported, not gated).
        (
            "obs-on",
            Box::new(|| {
                let plan = ShardPlan::analyze(&parse_constraints(SPEED).unwrap(), shards);
                let registry = ShardedMiddleware::obs_registry(
                    &plan,
                    ObsConfig::enabled().with_provenance(false),
                );
                let sharded = ShardedMiddleware::new_observed(plan, &registry, |_, obs| {
                    engine_builder().obs(obs).build()
                });
                sharded.batch_add(&contexts);
                sharded.drain();
                sharded.stats().inconsistencies
            }),
        ),
        // Tracing plus causal-provenance emission. Paired against the
        // adjacent obs-on rep for `obs_prov_overhead_pct` — the
        // marginal cost of the explain pipeline, gated in CI.
        (
            "prov-on",
            Box::new(|| {
                let plan = ShardPlan::analyze(&parse_constraints(SPEED).unwrap(), shards);
                let registry = ShardedMiddleware::obs_registry(&plan, ObsConfig::enabled());
                let sharded = ShardedMiddleware::new_observed(plan, &registry, |_, obs| {
                    engine_builder().obs(obs).build()
                });
                sharded.batch_add(&contexts);
                sharded.drain();
                sharded.stats().inconsistencies
            }),
        ),
    ];
    let mut timed: Vec<Timed> = configs.iter().map(|_| Timed::fresh()).collect();
    time_interleaved(&mut configs, &mut timed, REPS);

    // Adaptive refinement: the CI gate fails above 3%, and a median
    // over 7 short reps on a busy runner can land within noise of
    // that line. While any gated overhead estimate sits above 2%,
    // run extra interleaved reps of every configuration behind a
    // gated pair (sharded / obs-off / export / obs-on / prov-on,
    // indices 1..6) so the medians settle — bounded at `MAX_PASSES`
    // so a genuine regression still fails instead of refining forever.
    const GATED: std::ops::Range<usize> = 1..6;
    const REFINE_ABOVE_PCT: f64 = 2.0;
    const MAX_PASSES: usize = 3;
    for pass in 1.. {
        let obs = median_paired_overhead_pct(&timed[2].rep_secs, &timed[1].rep_secs);
        let exp = median_paired_overhead_pct(&timed[3].rep_secs, &timed[2].rep_secs);
        let prov = median_paired_overhead_pct(&timed[5].rep_secs, &timed[4].rep_secs);
        if obs.max(exp).max(prov) <= REFINE_ABOVE_PCT || pass >= MAX_PASSES {
            break;
        }
        eprintln!(
            "refining: obs-off {obs:+.2}% / export {exp:+.2}% / prov {prov:+.2}% near the 3% gate, {REPS} more reps"
        );
        time_interleaved(&mut configs[GATED], &mut timed[GATED], REPS);
    }
    drop(configs);
    let [mutex_t, shard_t, obs_off_t, export_t, obs_on_t, prov_t] = &timed[..] else {
        unreachable!("six timed configurations");
    };
    let (mutex_secs, mutex_found) = (mutex_t.best_secs, mutex_t.found);
    let (shard_secs, shard_found) = (shard_t.best_secs, shard_t.found);
    let (obs_off_secs, obs_off_found) = (obs_off_t.best_secs, obs_off_t.found);
    let (obs_on_secs, obs_on_found) = (obs_on_t.best_secs, obs_on_t.found);
    let (prov_secs, prov_found) = (prov_t.best_secs, prov_t.found);
    let (export_secs, export_found) = (export_t.best_secs, export_t.found);

    let snapshot = http_get(scrape_addr, "/metrics");
    stop_scraper.store(true, Ordering::Relaxed);
    let scrapes = scraper.join().unwrap_or(0);

    assert_eq!(
        mutex_found, shard_found,
        "sharded engine must find the same inconsistencies as the baseline"
    );
    assert_eq!(
        shard_found, obs_off_found,
        "a disabled observability registry must not change results"
    );
    assert_eq!(
        shard_found, obs_on_found,
        "an enabled observability registry must not change results"
    );
    assert_eq!(
        shard_found, prov_found,
        "provenance emission must not change results"
    );
    assert_eq!(
        shard_found, export_found,
        "the live export pipeline must not change results"
    );

    let contexts_per_sec = n as f64 / shard_secs;
    let speedup = mutex_secs / shard_secs;
    let obs_off_per_sec = n as f64 / obs_off_secs;
    let obs_on_per_sec = n as f64 / obs_on_secs;
    let prov_per_sec = n as f64 / prov_secs;
    let export_per_sec = n as f64 / export_secs;
    let obs_overhead_pct = median_paired_overhead_pct(&obs_off_t.rep_secs, &shard_t.rep_secs);
    let obs_enabled_overhead_pct =
        median_paired_overhead_pct(&obs_on_t.rep_secs, &shard_t.rep_secs);
    // Provenance overhead vs the tracing-only configuration: the
    // marginal cost of emitting causal edges on a deployment already
    // paying for full tracing.
    let obs_prov_overhead_pct = median_paired_overhead_pct(&prov_t.rep_secs, &obs_on_t.rep_secs);
    // Export overhead vs the obs-disabled configuration: what turning
    // the live endpoint on costs a deployment already wired for obs.
    let obs_export_overhead_pct =
        median_paired_overhead_pct(&export_t.rep_secs, &obs_off_t.rep_secs);
    eprintln!(
        "mutex: {:.1} ctx/s | sharded({shards}): {:.1} ctx/s | speedup {:.2}x | obs-off: {:.1} ctx/s ({:+.2}%) | obs-on: {:.1} ctx/s ({:+.2}%) | prov-on: {:.1} ctx/s ({:+.2}%) | export: {:.1} ctx/s ({:+.2}%, {scrapes} scrapes) | {} inconsistencies",
        n as f64 / mutex_secs,
        contexts_per_sec,
        speedup,
        obs_off_per_sec,
        obs_overhead_pct,
        obs_on_per_sec,
        obs_enabled_overhead_pct,
        prov_per_sec,
        obs_prov_overhead_pct,
        export_per_sec,
        obs_export_overhead_pct,
        shard_found,
    );

    // Untimed run for the per-shard ingest breakdown: which shards
    // carried the workload, and each one's share of the aggregate rate.
    let per_shard: Vec<ShardThroughput> = {
        let plan = ShardPlan::analyze(&parse_constraints(SPEED).unwrap(), shards);
        let sharded = ShardedMiddleware::new(plan, |_| engine());
        sharded.batch_add(&contexts);
        sharded.drain();
        let stats = sharded.shard_stats();
        let total: u64 = stats.iter().map(|s| s.ingested).sum::<u64>().max(1);
        stats
            .iter()
            .map(|s| {
                let share = s.ingested as f64 / total as f64;
                ShardThroughput {
                    shard: s.shard,
                    shared_scope: s.shared_scope,
                    ingested: s.ingested,
                    share_pct: round2(share * 100.0),
                    contexts_per_sec: round1(contexts_per_sec * share),
                }
            })
            .collect()
    };
    for s in &per_shard {
        eprintln!(
            "  shard {:>2}{}: {:>6} ingested ({:>5.2}%) ≈ {:.1} ctx/s",
            s.shard,
            if s.shared_scope {
                " (shared-scope)"
            } else {
                ""
            },
            s.ingested,
            s.share_pct,
            s.contexts_per_sec,
        );
    }

    let commit = commit_stamp();
    let host = host_stamp();
    let date = today_utc();

    let file = BenchFile {
        bench: "shard_throughput".to_owned(),
        contexts_per_sec: round1(contexts_per_sec),
        shards,
        speedup_vs_mutex: round2(speedup),
        obs_disabled_contexts_per_sec: round1(obs_off_per_sec),
        obs_overhead_pct: round2(obs_overhead_pct),
        obs_enabled_contexts_per_sec: round1(obs_on_per_sec),
        obs_enabled_overhead_pct: round2(obs_enabled_overhead_pct),
        obs_prov_contexts_per_sec: round1(prov_per_sec),
        obs_prov_overhead_pct: round2(obs_prov_overhead_pct),
        obs_export_contexts_per_sec: round1(export_per_sec),
        obs_export_overhead_pct: round2(obs_export_overhead_pct),
        commit: commit.clone(),
        host: host.clone(),
        quick,
        contexts: n,
        date: date.clone(),
        per_shard: per_shard.clone(),
    };
    let json = serde_json::to_string_pretty(&file).expect("serialize bench file");
    match std::fs::write("BENCH_shard_throughput.json", format!("{json}\n")) {
        Ok(()) => eprintln!("wrote BENCH_shard_throughput.json"),
        Err(e) => eprintln!("could not write BENCH_shard_throughput.json: {e}"),
    }

    let record = BenchRecord {
        bench: "shard_throughput".to_owned(),
        commit,
        host,
        date,
        quick,
        shards,
        contexts: n,
        contexts_per_sec: round1(contexts_per_sec),
        speedup_vs_mutex: round2(speedup),
        // Batch fusion is measured by city_bench, whose workload is the
        // regime it targets; this series leaves the field empty.
        fused_speedup: None,
        obs_overhead_pct: round2(obs_overhead_pct),
        obs_enabled_overhead_pct: round2(obs_enabled_overhead_pct),
        obs_export_overhead_pct: round2(obs_export_overhead_pct),
        obs_prov_overhead_pct: Some(round2(obs_prov_overhead_pct)),
        // Not measured separately here: the obs-on configurations above
        // already pay the per-kind health counters, so their gated
        // overheads subsume it. `city_bench` owns the dedicated
        // health-telemetry measurement.
        obs_health_overhead_pct: None,
        // shard_bench's dense workload does not run the profiler;
        // `city_bench` owns the profile-overhead measurement.
        obs_profile_overhead_pct: None,
        obs_tail_overhead_pct: None,
        e2e_p50_ns: None,
        e2e_p95_ns: None,
        e2e_p99_ns: None,
        spec_consumed_rate: None,
        spec_wasted_rate: None,
        phase_shares: None,
        per_shard,
    };
    let history = history_path_from_env();
    match append_history(&history, &record) {
        Ok(()) => eprintln!("appended run to {}", history.display()),
        Err(e) => eprintln!("could not append bench history: {e}"),
    }

    if let Some(body) = snapshot {
        match std::fs::create_dir_all("results")
            .map_err(|e| e.to_string())
            .and_then(|()| {
                std::fs::write("results/metrics_snapshot.txt", &body).map_err(|e| e.to_string())
            }) {
            Ok(()) => eprintln!("wrote results/metrics_snapshot.txt"),
            Err(e) => eprintln!("could not write metrics snapshot: {e}"),
        }
    }

    println!("{json}");
}

//! Measures sharded-engine ingestion throughput against the
//! global-mutex baseline and records the result as
//! `BENCH_shard_throughput.json` (run it from the repo root).
//!
//! The workload is a synthetic 32-subject location stream under the
//! paper's speed constraint: with one engine every incremental check
//! quantifies over the whole population, while `shards` subject shards
//! cut each check's quantifier domain proportionally — so the sharded
//! engine wins even on a single core. The shard count comes from the
//! first CLI argument, then `CTXRES_SHARDS`, then a default of 4, and
//! is recorded in the JSON. A third timed configuration wires a
//! *disabled* observability registry through every shard and reports
//! its overhead as `obs_overhead_pct` (CI asserts it stays under 2%).
//! `CTXRES_BENCH_QUICK=1` shrinks the workload for CI smoke runs.

use ctxres_constraint::parse_constraints;
use ctxres_context::{Context, ContextKind, LogicalTime, Point, Ticks};
use ctxres_core::strategies::DropBad;
use ctxres_middleware::{
    Middleware, MiddlewareConfig, ShardPlan, ShardedMiddleware, SharedMiddleware,
};
use ctxres_obs::ObsConfig;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

const SPEED: &str = "constraint speed:
    forall a: location, b: location .
      (same_subject(a, b) and seq_gap(a, b, 1)) implies velocity_le(a, b, 1.5)";

const DEFAULT_SHARDS: usize = 4;
const REPS: usize = 3;

/// Shard count: first CLI argument, then `CTXRES_SHARDS`, then 4.
fn shard_count() -> usize {
    let parse = |s: String| s.trim().parse::<usize>().ok().filter(|n| *n >= 1);
    std::env::args()
        .nth(1)
        .and_then(parse)
        .or_else(|| std::env::var("CTXRES_SHARDS").ok().and_then(parse))
        .unwrap_or(DEFAULT_SHARDS)
}

fn trace(subjects: usize, per_subject: usize) -> Vec<Context> {
    let mut out = Vec::with_capacity(subjects * per_subject);
    for seq in 0..per_subject {
        for s in 0..subjects {
            // Every ~10th reading teleports, violating the speed bound.
            let x = if seq % 10 == 9 {
                400.0
            } else {
                seq as f64 * 0.5
            };
            out.push(
                Context::builder(ContextKind::new("location"), &format!("subj-{s:02}"))
                    .attr("pos", Point::new(x, 0.0))
                    .attr("seq", seq as i64)
                    .stamp(LogicalTime::new(seq as u64))
                    .build(),
            );
        }
    }
    out
}

fn engine_builder() -> ctxres_middleware::MiddlewareBuilder {
    Middleware::builder()
        .constraints(parse_constraints(SPEED).unwrap())
        .strategy(Box::new(DropBad::new()))
        .config(MiddlewareConfig {
            window: Ticks::new(0),
            track_ground_truth: false,
            retention: None,
        })
}

fn engine() -> Middleware {
    engine_builder().build()
}

/// Best-of-`REPS` wall-clock seconds; fresh engines each rep so no run
/// benefits from a warm pool.
fn best_secs(mut run: impl FnMut() -> u64) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut found = 0;
    for _ in 0..REPS {
        let start = Instant::now();
        found = run();
        best = best.min(start.elapsed().as_secs_f64());
    }
    (best, found)
}

/// Days-since-epoch to civil date (Howard Hinnant's algorithm); avoids
/// pulling in a date crate for one timestamp.
fn today_utc() -> String {
    let days = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs() / 86_400)
        .unwrap_or(0) as i64;
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

fn main() {
    let quick = std::env::var("CTXRES_BENCH_QUICK").is_ok();
    let shards = shard_count();
    let (subjects, per_subject) = if quick { (16, 20) } else { (32, 40) };
    let contexts = trace(subjects, per_subject);
    let n = contexts.len();
    eprintln!("shard bench: {n} contexts, {subjects} subjects, {shards} shards, best of {REPS}");

    let (mutex_secs, mutex_found) = best_secs(|| {
        let shared = SharedMiddleware::new(engine());
        for ctx in &contexts {
            shared.lock().submit(ctx.clone());
        }
        shared.lock().drain();
        let found = shared.lock().stats().inconsistencies;
        found
    });

    let (shard_secs, shard_found) = best_secs(|| {
        let plan = ShardPlan::analyze(&parse_constraints(SPEED).unwrap(), shards);
        let sharded = ShardedMiddleware::new(plan, |_| engine());
        sharded.batch_add(&contexts);
        sharded.drain();
        sharded.stats().inconsistencies
    });

    // The same sharded configuration with a *disabled* observability
    // registry wired through every shard: the cost every production
    // deployment pays whether or not anyone turns tracing on.
    let (obs_off_secs, obs_off_found) = best_secs(|| {
        let plan = ShardPlan::analyze(&parse_constraints(SPEED).unwrap(), shards);
        let registry = ShardedMiddleware::obs_registry(&plan, ObsConfig::disabled());
        let sharded = ShardedMiddleware::new_observed(plan, &registry, |_, obs| {
            engine_builder().obs(obs).build()
        });
        sharded.batch_add(&contexts);
        sharded.drain();
        sharded.stats().inconsistencies
    });

    // And with tracing fully on — the debugging configuration.
    let (obs_on_secs, obs_on_found) = best_secs(|| {
        let plan = ShardPlan::analyze(&parse_constraints(SPEED).unwrap(), shards);
        let registry = ShardedMiddleware::obs_registry(&plan, ObsConfig::enabled());
        let sharded = ShardedMiddleware::new_observed(plan, &registry, |_, obs| {
            engine_builder().obs(obs).build()
        });
        sharded.batch_add(&contexts);
        sharded.drain();
        sharded.stats().inconsistencies
    });

    assert_eq!(
        mutex_found, shard_found,
        "sharded engine must find the same inconsistencies as the baseline"
    );
    assert_eq!(
        shard_found, obs_off_found,
        "a disabled observability registry must not change results"
    );
    assert_eq!(
        shard_found, obs_on_found,
        "an enabled observability registry must not change results"
    );

    let contexts_per_sec = n as f64 / shard_secs;
    let speedup = mutex_secs / shard_secs;
    let obs_off_per_sec = n as f64 / obs_off_secs;
    let obs_on_per_sec = n as f64 / obs_on_secs;
    let obs_overhead_pct = (obs_off_secs / shard_secs - 1.0) * 100.0;
    let obs_enabled_overhead_pct = (obs_on_secs / shard_secs - 1.0) * 100.0;
    eprintln!(
        "mutex: {:.1} ctx/s | sharded({shards}): {:.1} ctx/s | speedup {:.2}x | obs-off: {:.1} ctx/s ({:+.2}%) | obs-on: {:.1} ctx/s ({:+.2}%) | {} inconsistencies",
        n as f64 / mutex_secs,
        contexts_per_sec,
        speedup,
        obs_off_per_sec,
        obs_overhead_pct,
        obs_on_per_sec,
        obs_enabled_overhead_pct,
        shard_found,
    );

    let json = format!(
        "{{\n  \"bench\": \"shard_throughput\",\n  \"contexts_per_sec\": {:.1},\n  \"shards\": {},\n  \"speedup_vs_mutex\": {:.2},\n  \"obs_disabled_contexts_per_sec\": {:.1},\n  \"obs_overhead_pct\": {:.2},\n  \"obs_enabled_contexts_per_sec\": {:.1},\n  \"obs_enabled_overhead_pct\": {:.2},\n  \"date\": \"{}\"\n}}\n",
        contexts_per_sec,
        shards,
        speedup,
        obs_off_per_sec,
        obs_overhead_pct,
        obs_on_per_sec,
        obs_enabled_overhead_pct,
        today_utc(),
    );
    match std::fs::write("BENCH_shard_throughput.json", &json) {
        Ok(()) => eprintln!("wrote BENCH_shard_throughput.json"),
        Err(e) => eprintln!("could not write BENCH_shard_throughput.json: {e}"),
    }
    print!("{json}");
}

//! Runs the LANDMARC estimator ablation (error vs k and grid density) —
//! the substrate-validity check behind the §5.2 case study.
//!
//! Usage: `landmarc_knn [--quick]`.

use ctxres_experiments::landmarc_knn::{knn_sweep, render_knn};
use ctxres_experiments::render::write_json;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let samples = if quick { 300 } else { 2000 };
    eprintln!("landmarc estimator ablation, {samples} fixes per configuration …");
    let points = knn_sweep(&[1, 2, 3, 4, 6, 8], &[1.0, 2.0, 4.0, 6.0], samples, 11);
    println!("{}", render_knn(&points));
    match write_json("landmarc_knn", &points) {
        Ok(path) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("could not write results json: {e}"),
    }
}

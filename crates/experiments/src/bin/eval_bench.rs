//! Measures situation-evaluation **round throughput** on the figure 9
//! and figure 10 application workloads across the three evaluation
//! paths and records the result as `BENCH_eval.json` (run it from the
//! repo root).
//!
//! A *round* is one arriving context followed by a full refresh of
//! every deployed situation — the hot loop the compiled-constraint
//! tentpole optimizes. Three configurations are timed per application:
//!
//! - **naive** — the tree-walking [`Evaluator`] re-checks every
//!   situation's AST each round (the pre-compilation behaviour:
//!   `String`-keyed environments, per-round domain allocations, full
//!   violation evidence built even though only `satisfied` is read);
//! - **compiled** — every situation is lowered once to its
//!   [`CompiledConstraint`] and re-checked each round through the
//!   evidence-free `CompiledEvaluator::holds` fast path (slot-indexed
//!   environments via a reused [`EvalScratch`], short-circuiting
//!   quantifiers and connectives, zero hot-path allocations);
//! - **compiled+cache** — compiled, plus the dirty-kind skip the
//!   middleware applies: a situation only re-evaluates when the round
//!   touched (or expired) a context kind its constraint quantifies
//!   over; otherwise its memoized verdict is replayed.
//!
//! Three deployments are measured: each application alone (single-kind
//! streams, so the dirty-kind cache never skips and any win is pure
//! compilation), and a combined `figure9+figure10` deployment that runs
//! both applications' situations over one pool with their streams
//! merged by stamp — the realistic multi-application middleware setting
//! where kind-disjoint arrivals make the cache earn its keep.
//!
//! Every configuration produces the complete per-round verdict matrix
//! and the bench asserts all three agree bit-for-bit, so a reported
//! speedup can never come from skipping work that mattered. Reps are
//! interleaved round-robin so machine drift hits each configuration
//! alike.
//!
//! Each run appends one [`BenchRecord`] row per deployment —
//! `bench: "eval_bench/<deployment>"`, commit/host/date stamped, headline
//! rate = compiled+cache rounds/second, `speedup_vs_mutex` carrying
//! the compiled+cache-vs-naive speedup — to
//! `results/bench_history.jsonl` for the same `bench_report`
//! regression gate that judges the shard series. `CTXRES_BENCH_QUICK=1`
//! shrinks the workload for CI smoke runs.

use ctxres_apps::call_forwarding::CallForwarding;
use ctxres_apps::rfid_anomalies::RfidAnomalies;
use ctxres_apps::PervasiveApp;
use ctxres_constraint::{
    CompiledConstraint, CompiledEvaluator, Constraint, DomainMode, EvalScratch, Evaluator,
    PredicateRegistry,
};
use ctxres_context::{Context, ContextKind, ContextPool, ContextState, LogicalTime};
use ctxres_experiments::bench_history::{
    append_history, commit_stamp, history_path_from_env, host_stamp, BenchRecord,
};
use std::collections::{BTreeMap, HashMap};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

const REPS: usize = 5;
const ERR_RATE: f64 = 0.3;
const SEED: u64 = 7;

/// Contexts older than this many ticks are compacted out of the pool at
/// every tick boundary, mirroring the middleware's retention sweep —
/// without it the `by_kind` id lists grow without bound and every
/// configuration degenerates into scanning dead ids.
const RETENTION: u64 = 10;

/// The three evaluation paths under measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Naive,
    Compiled,
    Cached,
}

impl Mode {
    const ALL: [Mode; 3] = [Mode::Naive, Mode::Compiled, Mode::Cached];

    fn label(self) -> &'static str {
        match self {
            Mode::Naive => "naive",
            Mode::Compiled => "compiled",
            Mode::Cached => "compiled+cache",
        }
    }
}

/// What one pass over the stream produces: the flattened
/// per-round-per-situation verdict matrix (for the cross-configuration
/// equivalence assert) and the evaluate/skip split (for the hit rate).
struct PassOutput {
    verdicts: Vec<bool>,
    evals: u64,
    skips: u64,
}

/// Replays `stream` (consumed: arrivals move into the pool without a
/// timed clone) as rounds against a fresh pool, refreshing every
/// situation after each arrival via the path `mode` selects.
///
/// Dirtiness is tracked as situation bitmasks: each kind maps to the
/// set of situations quantifying over it, a round ORs the masks of the
/// kinds it touched (arrival + lapsed expiry deadlines), and a
/// situation is stale when its bit is set — the same kind-set
/// intersection the middleware computes, without per-round set walks.
fn run_pass(
    mode: Mode,
    stream: Vec<Context>,
    situations: &[Constraint],
    compiled: &[CompiledConstraint],
    registry: &PredicateRegistry,
) -> PassOutput {
    let naive = Evaluator::with_domain(registry, DomainMode::AvailableOnly);
    let fast = CompiledEvaluator::with_domain(registry, DomainMode::AvailableOnly);
    let mut scratch = EvalScratch::new();
    let mut pool = ContextPool::new();
    let mut now = LogicalTime::ZERO;

    let n = situations.len();
    assert!(n <= 64, "situation masks are u64 bitsets");
    let mut kind_mask: HashMap<ContextKind, u64> = HashMap::new();
    for (i, situation) in situations.iter().enumerate() {
        for kind in situation.kinds() {
            *kind_mask.entry(kind.clone()).or_default() |= 1 << i;
        }
    }
    let mut verdict = vec![false; n];
    let mut evaluated_mask: u64 = 0;
    let mut expiries: BTreeMap<LogicalTime, u64> = BTreeMap::new();
    let mut last_compact = 0u64;

    let rounds = stream.len();
    let mut out = PassOutput {
        verdicts: Vec::with_capacity(rounds * n),
        evals: 0,
        skips: 0,
    };
    for ctx in stream {
        if ctx.stamp() > now {
            now = ctx.stamp();
            // Periodically drop contexts past retention, as the
            // middleware's retention sweep does. Everything removed
            // expired ticks ago, so no verdict can depend on it and no
            // situation needs dirtying.
            if now.tick() >= last_compact + RETENTION && now.tick() > RETENTION {
                pool.compact(LogicalTime::new(now.tick() - RETENTION));
                last_compact = now.tick();
            }
        }
        let mask = kind_mask.get(ctx.kind()).copied().unwrap_or(0);
        let mut dirty_mask = mask;
        if let Some(at) = ctx.lifespan().expires_at() {
            *expiries.entry(at).or_default() |= mask;
        }
        // Expiry is exclusive (dead once `now >= expires_at`), so every
        // deadline that has passed dirties its kinds exactly once.
        while let Some(entry) = expiries.first_entry() {
            if *entry.key() > now {
                break;
            }
            dirty_mask |= entry.remove();
        }
        let id = pool.insert(ctx);
        pool.set_state(id, ContextState::Consistent)
            .expect("undecided contexts accept the consistent state");

        for i in 0..n {
            let bit = 1u64 << i;
            let stale = evaluated_mask & bit == 0 || dirty_mask & bit != 0;
            let fresh = match mode {
                Mode::Naive => Some(
                    naive
                        .check(&situations[i], &pool, now)
                        .expect("app situations evaluate")
                        .satisfied,
                ),
                Mode::Compiled => Some(
                    fast.holds(&compiled[i], &pool, now, &mut scratch)
                        .expect("app situations evaluate"),
                ),
                Mode::Cached if stale => Some(
                    fast.holds(&compiled[i], &pool, now, &mut scratch)
                        .expect("app situations evaluate"),
                ),
                Mode::Cached => None,
            };
            match fresh {
                Some(v) => {
                    verdict[i] = v;
                    evaluated_mask |= bit;
                    out.evals += 1;
                }
                None => out.skips += 1,
            }
            out.verdicts.push(verdict[i]);
        }
    }
    out
}

/// One application's timed results, as written to `BENCH_eval.json`.
#[derive(serde::Serialize)]
struct AppResult {
    app: String,
    rounds: usize,
    situations: usize,
    naive_rounds_per_sec: f64,
    compiled_rounds_per_sec: f64,
    cached_rounds_per_sec: f64,
    speedup_compiled_vs_naive: f64,
    speedup_cached_vs_naive: f64,
    cache_hit_rate: f64,
    situation_evals: u64,
    cache_skips: u64,
}

#[derive(serde::Serialize)]
struct BenchFile {
    bench: String,
    commit: String,
    host: String,
    date: String,
    quick: bool,
    apps: Vec<AppResult>,
}

fn round1(x: f64) -> f64 {
    (x * 10.0).round() / 10.0
}

fn round2(x: f64) -> f64 {
    (x * 100.0).round() / 100.0
}

fn round3(x: f64) -> f64 {
    (x * 1000.0).round() / 1000.0
}

/// Days-since-epoch to civil date (Howard Hinnant's algorithm); avoids
/// pulling in a date crate for one timestamp.
fn today_utc() -> String {
    let days = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs() / 86_400)
        .unwrap_or(0) as i64;
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

/// One benchmarked deployment: a set of situations, the registry they
/// resolve against, and the context stream replayed as rounds.
struct Deployment {
    name: String,
    situations: Vec<Constraint>,
    registry: PredicateRegistry,
    stream: Vec<Context>,
}

impl Deployment {
    /// A single application's own situations over its own stream.
    fn single(app: &dyn PervasiveApp, len: usize) -> Deployment {
        Deployment {
            name: app.name().to_owned(),
            situations: app.situations(),
            registry: app.registry(),
            stream: app.generate(ERR_RATE, SEED, len),
        }
    }

    /// Both applications sharing one middleware — the paper's setting,
    /// and the headline row: each arriving context touches one kind, so
    /// the dirty-kind cache skips the other application's situations.
    fn combined(apps: &[Box<dyn PervasiveApp>], len: usize) -> Deployment {
        let mut situations = Vec::new();
        let mut stream = Vec::new();
        for app in apps {
            situations.extend(app.situations());
            stream.extend(app.generate(ERR_RATE, SEED, len));
        }
        // Merge the streams by tick; the sort is stable, so arrivals
        // within a tick keep each app's order and the interleave is
        // deterministic.
        stream.sort_by_key(Context::stamp);
        Deployment {
            name: "figure9+figure10".to_owned(),
            situations,
            // The situation constraints only use builtin predicates, so
            // one builtins registry serves both applications.
            registry: PredicateRegistry::with_builtins(),
            stream,
        }
    }
}

fn bench_deployment(d: &Deployment) -> AppResult {
    let Deployment {
        name,
        situations,
        registry,
        stream,
    } = d;
    let compiled: Vec<CompiledConstraint> = situations
        .iter()
        .map(|s| CompiledConstraint::compile(s).expect("app situations compile"))
        .collect();
    let rounds = stream.len();

    let mut best = [f64::INFINITY; 3];
    let mut outputs: [Option<PassOutput>; 3] = [None, None, None];
    for _ in 0..REPS {
        for (i, mode) in Mode::ALL.into_iter().enumerate() {
            // Cloning the arrivals happens outside the timed region:
            // context construction is the generator's cost, not the
            // evaluation path's.
            let arrivals = stream.clone();
            let start = Instant::now();
            let out = run_pass(mode, arrivals, situations, &compiled, registry);
            best[i] = best[i].min(start.elapsed().as_secs_f64());
            outputs[i] = Some(out);
        }
    }
    let [naive, compiled_out, cached] = outputs.map(|o| o.expect("all modes ran"));
    assert_eq!(
        naive.verdicts, compiled_out.verdicts,
        "compiled evaluation must agree with the tree-walking evaluator"
    );
    assert_eq!(
        naive.verdicts, cached.verdicts,
        "the dirty-kind cache must replay the exact naive verdicts"
    );

    let per_sec = |secs: f64| rounds as f64 / secs;
    let total = cached.evals + cached.skips;
    let result = AppResult {
        app: name.clone(),
        rounds,
        situations: situations.len(),
        naive_rounds_per_sec: round1(per_sec(best[0])),
        compiled_rounds_per_sec: round1(per_sec(best[1])),
        cached_rounds_per_sec: round1(per_sec(best[2])),
        speedup_compiled_vs_naive: round2(best[0] / best[1]),
        speedup_cached_vs_naive: round2(best[0] / best[2]),
        cache_hit_rate: round3(cached.skips as f64 / total.max(1) as f64),
        situation_evals: cached.evals,
        cache_skips: cached.skips,
    };
    eprintln!(
        "{}: {} rounds x {} situations | {} {:.1} r/s | {} {:.1} r/s ({:.2}x) | {} {:.1} r/s ({:.2}x, hit rate {:.1}%)",
        result.app,
        rounds,
        situations.len(),
        Mode::Naive.label(),
        result.naive_rounds_per_sec,
        Mode::Compiled.label(),
        result.compiled_rounds_per_sec,
        result.speedup_compiled_vs_naive,
        Mode::Cached.label(),
        result.cached_rounds_per_sec,
        result.speedup_cached_vs_naive,
        result.cache_hit_rate * 100.0,
    );
    result
}

fn main() {
    let quick = std::env::var("CTXRES_BENCH_QUICK").is_ok();
    let len = if quick { 300 } else { 1200 };
    eprintln!("eval bench: {len} rounds per app, best of {REPS}");

    let apps: [Box<dyn PervasiveApp>; 2] = [
        Box::new(CallForwarding::new()),
        Box::new(RfidAnomalies::new()),
    ];
    let mut deployments: Vec<Deployment> = apps
        .iter()
        .map(|app| Deployment::single(app.as_ref(), len))
        .collect();
    deployments.push(Deployment::combined(&apps, len));
    let results: Vec<AppResult> = deployments.iter().map(bench_deployment).collect();

    let commit = commit_stamp();
    let host = host_stamp();
    let date = today_utc();

    let history = history_path_from_env();
    for r in &results {
        let record = BenchRecord {
            bench: format!("eval_bench/{}", r.app),
            commit: commit.clone(),
            host: host.clone(),
            date: date.clone(),
            quick,
            shards: 1,
            contexts: r.rounds,
            contexts_per_sec: r.cached_rounds_per_sec,
            // For eval rows this field carries the headline
            // compiled+cache-vs-naive speedup (there is no mutex
            // baseline in this bench).
            speedup_vs_mutex: r.speedup_cached_vs_naive,
            fused_speedup: None,
            // This bench runs no observability registry; zero keeps the
            // absolute overhead gate trivially satisfied for eval rows.
            obs_overhead_pct: 0.0,
            obs_enabled_overhead_pct: 0.0,
            obs_export_overhead_pct: 0.0,
            obs_prov_overhead_pct: None,
            obs_health_overhead_pct: None,
            obs_profile_overhead_pct: None,
            obs_tail_overhead_pct: None,
            e2e_p50_ns: None,
            e2e_p95_ns: None,
            e2e_p99_ns: None,
            spec_consumed_rate: None,
            spec_wasted_rate: None,
            phase_shares: None,
            per_shard: Vec::new(),
        };
        match append_history(&history, &record) {
            Ok(()) => eprintln!("appended {} to {}", record.bench, history.display()),
            Err(e) => eprintln!("could not append bench history: {e}"),
        }
    }

    let file = BenchFile {
        bench: "eval_bench".to_owned(),
        commit,
        host,
        date,
        quick,
        apps: results,
    };
    let json = serde_json::to_string_pretty(&file).expect("serialize bench file");
    match std::fs::write("BENCH_eval.json", format!("{json}\n")) {
        Ok(()) => eprintln!("wrote BENCH_eval.json"),
        Err(e) => eprintln!("could not write BENCH_eval.json: {e}"),
    }
    println!("{json}");
}

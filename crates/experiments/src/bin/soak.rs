//! Soak harness: sustained city traffic through the sharded engine
//! with the full live-telemetry stack attached, rotating injected
//! error-rate regressions and a mid-run strategy swap, asserting the
//! SLO engine fires on each regression and recovers afterwards while
//! the pool/ring/RSS watermarks stay bounded.
//!
//! ```text
//! soak [--quick] [--inject-leak] [--minutes N]
//! ```
//!
//! The run cycles through five phases — clean traffic, an injected
//! teleport-rate regression, recovery, a second regression combined
//! with a live [`ShardedMiddleware::swap_strategy`], and a final
//! recovery. Each phase streams a fixed number of sampler windows
//! (one `batch_add` + `drain` + [`Sampler::sample_after`] per window),
//! so SLO evaluation runs at exactly the cadence a live monitor
//! scrapes at. The checks:
//!
//! - **clean_quiet** — the settled clean phase raises no transitions;
//! - **regression_fires** — every injected regression raises a FIRING
//!   [`HealthAlert`] within 2 sampler windows of the injection;
//! - **recovery_clears** — every recovery phase emits a cleared
//!   transition and ends with no rule active;
//! - **clean_p99_bounded** — every clean-phase window's end-to-end
//!   p99 (wall clock, from the tail-span layer) stays under an
//!   absolute ceiling;
//! - **latency_fires / latency_clears** — an `e2e_p99_ms` SLO rule,
//!   its threshold calibrated off the first clean phase's steady-state
//!   p99, fires during each injected teleport regression and clears
//!   again in the following recovery. A teleport storm arrives with
//!   proportionate sensor chatter (an implausible jump makes the
//!   reader re-sample), so regression phases carry
//!   [`STORM_CHATTER`]× the reading volume — that extra per-window
//!   work is what genuinely stretches the batches' wall-clock tail;
//! - **detections_present** — the workload genuinely planted
//!   inconsistencies (a zero count means detection broke, not health);
//! - **ring_bounded** — no trace events were dropped;
//! - **pool_bounded** — the arena's live-slot watermark at the end of
//!   the run stays within a small factor of its first-phase baseline
//!   (retention + TTL make steady state O(window), not O(stream)).
//!
//! `--inject-leak` is the synthetic leak fixture: it strips both the
//! readings' TTL and the engine's retention window, so live slots grow
//! with the stream and **pool_bounded must fail** — CI asserts this
//! mode exits nonzero, proving the watermark check actually bites.
//! `--quick` shrinks the workload for CI smoke runs (well under 90 s);
//! `--minutes N` repeats the five-phase cycle until N minutes of wall
//! clock have elapsed. Exit code 0 = all checks passed, 1 = any
//! failed; one JSON summary document (phases, alert timeline, checks,
//! watermarks) goes to stdout either way.

use ctxres_constraint::parse_constraints;
use ctxres_context::Ticks;
use ctxres_core::strategies::{DropBad, DropLatest};
use ctxres_core::ResolutionStrategy;
use ctxres_experiments::city::{CityConfig, CityWorkload};
use ctxres_middleware::{Middleware, MiddlewareConfig, ShardPlan, ShardedMiddleware};
use ctxres_obs::{HealthAlert, ObsConfig, Sampler, SloEngine};
use serde::Serialize;
use std::process::ExitCode;
use std::time::Instant;

const SPEED: &str = "constraint speed:
    forall a: location, b: location .
      (same_subject(a, b) and seq_gap(a, b, 1)) implies velocity_le(a, b, 1.5)";

/// The rules under soak: windowed discard and violation rates on the
/// city's location stream. `for 2` gives each a 2-window burn, so a
/// regression must fire within 2 sampler windows and a recovery must
/// clear within 2 (plus the 10% hysteresis deadband).
const SLO_RULES: &str = "discard_rate{kind=\"location\"} > 0.15 for 2
violation_rate{kind=\"location\"} > 0.15 for 2";

const SHARDS: usize = 4;
/// Sliding retention (and reading TTL), in sampler windows. One tick
/// is one reading, so retention must span a couple of windows — else a
/// cold subject's track is compacted before its next reading arrives
/// and the planted violation pair never forms.
const RETENTION_WINDOWS: u64 = 2;
/// Teleport probability of healthy city traffic.
const CLEAN_RATE: f64 = 0.02;
/// Injected regression: roughly every other reading of a warmed-up
/// subject violates the speed bound.
const HOT_RATE: f64 = 0.45;
/// `pool_bounded` allows this factor of growth over the first-phase
/// baseline (plus a small absolute slack for tiny pools).
const POOL_GROWTH_FACTOR: f64 = 3.0;
const POOL_GROWTH_SLACK: u64 = 64;
/// Absolute ceiling on any clean-phase window's end-to-end p99, in
/// milliseconds. Generous on purpose: it catches pathological stalls
/// (lock convoys, runaway pools), not ordinary scheduler jitter.
const CLEAN_P99_BOUND_MS: f64 = 400.0;
/// Reading-volume multiplier of a regression phase: the teleport
/// storm's sensor chatter. Sized so a storm window's batch takes
/// roughly `STORM_CHATTER`× the clean wall clock — comfortably past
/// the latency threshold — while recovery windows drop straight back.
const STORM_CHATTER: usize = 3;
/// The latency SLO threshold as a multiple of the first clean phase's
/// steady-state windowed p99 — regressions must slow batches past
/// this, recoveries must come back under the 10% hysteresis deadband.
/// Sits between the clean ceiling (1×) and the storm floor
/// (~[`STORM_CHATTER`]×) with wide margins on both sides.
const LATENCY_FIRE_FACTOR: f64 = 1.75;
/// Absolute floor (ms) added to the calibrated latency threshold so a
/// sub-millisecond clean baseline doesn't arm a hair-trigger rule.
const LATENCY_FLOOR_MS: f64 = 0.5;

/// One phase of the soak cycle.
struct PhaseSpec {
    name: &'static str,
    teleport_rate: f64,
    /// Reading-volume multiplier (1 = clean traffic,
    /// [`STORM_CHATTER`] = a teleport storm's re-sampling chatter).
    chatter: usize,
    /// Hot-swap the resolution strategy at the phase boundary.
    swap: bool,
    /// What the phase must demonstrate.
    expect: Expect,
}

enum Expect {
    /// No SLO transitions at all.
    Quiet,
    /// A FIRING transition within 2 windows of the phase start.
    Fires,
    /// A cleared transition, and no rule active at the phase end.
    Clears,
}

const PHASES: [PhaseSpec; 5] = [
    PhaseSpec {
        name: "clean",
        teleport_rate: CLEAN_RATE,
        chatter: 1,
        swap: false,
        expect: Expect::Quiet,
    },
    PhaseSpec {
        name: "regression",
        teleport_rate: HOT_RATE,
        chatter: STORM_CHATTER,
        swap: false,
        expect: Expect::Fires,
    },
    PhaseSpec {
        name: "recovery",
        teleport_rate: CLEAN_RATE,
        chatter: 1,
        swap: false,
        expect: Expect::Clears,
    },
    PhaseSpec {
        name: "regression-swap",
        teleport_rate: HOT_RATE,
        chatter: STORM_CHATTER,
        swap: true,
        expect: Expect::Fires,
    },
    PhaseSpec {
        name: "recovery-final",
        teleport_rate: CLEAN_RATE,
        chatter: 1,
        swap: false,
        expect: Expect::Clears,
    },
];

fn engine_builder(leak: bool, retention: u64) -> ctxres_middleware::MiddlewareBuilder {
    Middleware::builder()
        .constraints(parse_constraints(SPEED).unwrap())
        .strategy(Box::new(DropBad::new()))
        .config(MiddlewareConfig {
            window: Ticks::new(0),
            track_ground_truth: false,
            retention: if leak {
                None
            } else {
                Some(Ticks::new(retention))
            },
        })
}

/// Resident set size from `/proc/self/statm`, when the platform has it.
fn rss_bytes() -> Option<u64> {
    let statm = std::fs::read_to_string("/proc/self/statm").ok()?;
    let pages: u64 = statm.split_whitespace().nth(1)?.parse().ok()?;
    Some(pages * 4096)
}

/// One SLO transition in the run's timeline.
#[derive(Debug, Clone, Serialize)]
struct AlertRow {
    cycle: usize,
    phase: String,
    /// Window index within the phase (0-based).
    window: usize,
    firing: bool,
    /// The transition, rendered (`slo FIRING <rule>: <metric> = ...`).
    alert: String,
}

/// One pass/fail verdict of the harness.
#[derive(Debug, Clone, Serialize)]
struct Check {
    name: String,
    pass: bool,
    detail: String,
}

/// High-water marks tracked across the whole run.
#[derive(Debug, Clone, Serialize)]
struct Watermarks {
    pool_live_max: u64,
    pool_free_max: u64,
    pool_occupancy_max: f64,
    /// Live slots at the end of the first (clean) phase — the
    /// steady-state baseline `pool_bounded` measures growth against.
    pool_live_baseline: u64,
    pool_live_final: u64,
    ring_dropped: u64,
    staleness_max: f64,
    oldest_age_ticks_max: u64,
    rss_baseline_bytes: Option<u64>,
    rss_max_bytes: Option<u64>,
}

/// The end-to-end latency leg of the run: the calibrated SLO rule and
/// the phase-level p99 extremes it was judged against.
#[derive(Debug, Clone, Serialize)]
struct LatencySummary {
    /// The calibrated `e2e_p99_ms` rule line (`None` when the first
    /// clean phase recorded no tail windows).
    rule: Option<String>,
    /// Steady-state (worst-window) p99 of the first clean phase,
    /// milliseconds — the calibration base.
    baseline_p99_ms: Option<f64>,
    /// Worst clean-phase window p99 seen anywhere in the run.
    clean_p99_ms_max: Option<f64>,
    /// Worst regression-phase window p99 seen anywhere in the run.
    regression_p99_ms_max: Option<f64>,
    /// The absolute clean-phase ceiling the bound check used.
    clean_p99_bound_ms: f64,
}

/// The JSON document the harness prints.
#[derive(Debug, Clone, Serialize)]
struct SoakSummary {
    quick: bool,
    inject_leak: bool,
    cycles: usize,
    windows: usize,
    window_contexts: usize,
    contexts: u64,
    inconsistencies: u64,
    strategy_swaps: usize,
    elapsed_secs: f64,
    alerts: Vec<AlertRow>,
    checks: Vec<Check>,
    watermarks: Watermarks,
    latency: LatencySummary,
    passed: bool,
}

/// Folds a window's p99 into a running per-phase-kind maximum.
fn fold_max(slot: &mut Option<f64>, p99: f64) {
    *slot = Some(slot.map_or(p99, |m: f64| m.max(p99)));
}

struct Args {
    quick: bool,
    inject_leak: bool,
    minutes: Option<f64>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        quick: false,
        inject_leak: false,
        minutes: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => args.quick = true,
            "--inject-leak" => args.inject_leak = true,
            "--minutes" => {
                let v = it.next().ok_or("--minutes needs a value")?;
                args.minutes = Some(v.parse().map_err(|e| format!("--minutes: {e}"))?);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("usage: soak [--quick] [--inject-leak] [--minutes N]");
            return ExitCode::FAILURE;
        }
    };
    let (subjects, window_contexts, windows_per_phase) = if args.quick {
        (10_000, 2048, 5)
    } else {
        (50_000, 4096, 6)
    };
    let leak = args.inject_leak;
    let retention = RETENTION_WINDOWS * window_contexts as u64;

    let mut city = CityWorkload::new(CityConfig {
        subjects,
        teleport_rate: CLEAN_RATE,
        ttl_ticks: if leak { None } else { Some(retention) },
        seed: 0x50a6,
        ..CityConfig::default()
    });
    let plan = ShardPlan::analyze(&parse_constraints(SPEED).unwrap(), SHARDS);
    // Tail spans stay on for the whole soak: the latency leg reads the
    // windowed end-to-end p99 off the sampler's tail view.
    let registry =
        ShardedMiddleware::obs_registry(&plan, ObsConfig::metrics_only().with_tail(true));
    let sharded = ShardedMiddleware::new_observed(plan, &registry, |_, obs| {
        engine_builder(leak, retention).obs(obs).build()
    });
    let engine = SloEngine::from_spec(SLO_RULES).expect("built-in SLO rules parse");
    let mut sampler = Sampler::new(registry).with_slo(engine);

    eprintln!(
        "soak: {subjects} subjects, {SHARDS} shards, {windows_per_phase} windows/phase × {window_contexts} ctx, rules:\n{SLO_RULES}",
    );
    if leak {
        eprintln!("soak: LEAK INJECTED — no TTL, no retention; pool_bounded must fail");
    }

    let start = Instant::now();
    let rss_baseline = rss_bytes();
    let mut marks = Watermarks {
        pool_live_max: 0,
        pool_free_max: 0,
        pool_occupancy_max: 0.0,
        pool_live_baseline: 0,
        pool_live_final: 0,
        ring_dropped: 0,
        staleness_max: 0.0,
        oldest_age_ticks_max: 0,
        rss_baseline_bytes: rss_baseline,
        rss_max_bytes: rss_baseline,
    };
    let mut alerts: Vec<AlertRow> = Vec::new();
    let mut checks: Vec<Check> = Vec::new();
    let mut windows = 0usize;
    let mut swaps = 0usize;
    let mut cycles = 0usize;
    let mut final_active: Vec<String> = Vec::new();
    // The latency leg: a second SLO engine carrying one `e2e_p99_ms`
    // rule, armed once the first clean phase has calibrated a baseline.
    let mut latency_engine: Option<SloEngine> = None;
    let mut latency = LatencySummary {
        rule: None,
        baseline_p99_ms: None,
        clean_p99_ms_max: None,
        regression_p99_ms_max: None,
        clean_p99_bound_ms: CLEAN_P99_BOUND_MS,
    };

    loop {
        for phase in &PHASES {
            city.set_teleport_rate(phase.teleport_rate);
            if phase.swap {
                // Hot-swap every shard's strategy mid-run; alternate so
                // repeated cycles exercise both directions.
                sharded.drain();
                let to_latest = swaps.is_multiple_of(2);
                sharded.swap_strategy(|_| -> Box<dyn ResolutionStrategy + Send> {
                    if to_latest {
                        Box::new(DropLatest::new())
                    } else {
                        Box::new(DropBad::new())
                    }
                });
                swaps += 1;
                eprintln!(
                    "  [{}] swapped strategy to {}",
                    phase.name,
                    if to_latest { "drop-latest" } else { "d-bad" }
                );
            }
            let mut phase_alerts: Vec<(usize, HealthAlert)> = Vec::new();
            let mut active_at_end: Vec<String> = Vec::new();
            let mut phase_p99s: Vec<f64> = Vec::new();
            let mut phase_latency: Vec<HealthAlert> = Vec::new();
            for w in 0..windows_per_phase {
                let batch = city.batch(window_contexts * phase.chatter);
                sharded.batch_add(&batch);
                sharded.drain();
                let sample = sampler.sample_after(1.0);
                windows += 1;
                let p99_ms = sample
                    .tail
                    .as_ref()
                    .and_then(|t| t.all.p99_ns)
                    .map(|ns| ns / 1e6);
                if let Some(p99) = p99_ms {
                    eprintln!("  [{} w{w}] e2e p99 {p99:.2} ms", phase.name);
                    phase_p99s.push(p99);
                    match phase.expect {
                        Expect::Fires => fold_max(&mut latency.regression_p99_ms_max, p99),
                        Expect::Quiet | Expect::Clears => {
                            fold_max(&mut latency.clean_p99_ms_max, p99);
                        }
                    }
                }
                if let (Some(engine), Some(health)) = (latency_engine.as_mut(), &sample.health) {
                    for alert in
                        engine.evaluate_with_tail(health, sample.tail.as_ref(), windows as u64)
                    {
                        eprintln!("  [{} w{w}] {alert}", phase.name);
                        alerts.push(AlertRow {
                            cycle: cycles,
                            phase: phase.name.to_owned(),
                            window: w,
                            firing: alert.firing,
                            alert: alert.to_string(),
                        });
                        phase_latency.push(alert);
                    }
                }
                if let Some(health) = &sample.health {
                    if let Some(pool) = &health.pool {
                        marks.pool_live_max = marks.pool_live_max.max(pool.live_slots);
                        marks.pool_free_max = marks.pool_free_max.max(pool.free_slots);
                        if let Some(occ) = pool.occupancy {
                            marks.pool_occupancy_max = marks.pool_occupancy_max.max(occ);
                        }
                        marks.pool_live_final = pool.live_slots;
                    }
                    for row in &health.kinds {
                        if let Some(staleness) = row.staleness {
                            marks.staleness_max = marks.staleness_max.max(staleness);
                        }
                        if let Some(age) = row.oldest_age_ticks {
                            marks.oldest_age_ticks_max = marks.oldest_age_ticks_max.max(age);
                        }
                    }
                    for alert in &health.alerts {
                        eprintln!("  [{} w{w}] {alert}", phase.name);
                        alerts.push(AlertRow {
                            cycle: cycles,
                            phase: phase.name.to_owned(),
                            window: w,
                            firing: alert.firing,
                            alert: alert.to_string(),
                        });
                        phase_alerts.push((w, alert.clone()));
                    }
                    active_at_end = health.active_alerts.clone();
                }
                marks.ring_dropped = marks.ring_dropped.max(sample.total.events_dropped);
                if let Some(rss) = rss_bytes() {
                    marks.rss_max_bytes = Some(marks.rss_max_bytes.unwrap_or(0).max(rss));
                }
            }
            if cycles == 0 && phase.name == "clean" {
                marks.pool_live_baseline = marks.pool_live_final;
                // Calibrate the latency rule off this phase's worst
                // windowed p99 — early clean windows ramp up while the
                // pool fills, so the maximum is the steady state.
                // Machine-independent, yet the storm phases (running
                // STORM_CHATTER× the per-window work) must breach it.
                let baseline = phase_p99s.iter().copied().fold(f64::NAN, f64::max);
                if baseline.is_finite() {
                    let threshold =
                        (baseline * LATENCY_FIRE_FACTOR).max(baseline + LATENCY_FLOOR_MS);
                    let rule = format!("e2e_p99_ms > {threshold:.3} for 2");
                    eprintln!("  [clean] latency baseline p99 {baseline:.3} ms -> rule {rule:?}");
                    latency_engine =
                        Some(SloEngine::from_spec(&rule).expect("calibrated latency rule parses"));
                    latency.baseline_p99_ms = Some(baseline);
                    latency.rule = Some(rule);
                }
            }
            final_active = active_at_end.clone();
            let tag = |name: &str| format!("cycle{cycles}/{}/{name}", phase.name);
            match phase.expect {
                Expect::Quiet => {
                    checks.push(Check {
                        name: tag("clean_quiet"),
                        pass: phase_alerts.is_empty(),
                        detail: format!("{} transition(s) in a clean phase", phase_alerts.len()),
                    });
                    let worst = phase_p99s.iter().copied().fold(0.0f64, f64::max);
                    checks.push(Check {
                        name: tag("clean_p99_bounded"),
                        pass: !phase_p99s.is_empty() && worst <= CLEAN_P99_BOUND_MS,
                        detail: format!(
                            "worst clean window p99 {worst:.3} ms vs bound {CLEAN_P99_BOUND_MS} ms \
                             ({} tail window(s))",
                            phase_p99s.len(),
                        ),
                    });
                }
                Expect::Fires => {
                    let fired_at = phase_alerts.iter().find(|(_, a)| a.firing).map(|(w, _)| *w);
                    checks.push(Check {
                        name: tag("regression_fires"),
                        pass: fired_at.is_some_and(|w| w < 2),
                        detail: match fired_at {
                            Some(w) => format!("first FIRING alert in window {w} (need < 2)"),
                            None => "no FIRING alert in the regression phase".to_owned(),
                        },
                    });
                    let fired = phase_latency.iter().any(|a| a.firing);
                    checks.push(Check {
                        name: tag("latency_fires"),
                        pass: latency_engine.is_some() && fired,
                        detail: match &latency.rule {
                            Some(rule) => format!(
                                "latency rule {rule:?} {} during the regression",
                                if fired { "fired" } else { "did not fire" },
                            ),
                            None => "no calibrated latency rule (clean phase had no tail windows)"
                                .to_owned(),
                        },
                    });
                }
                Expect::Clears => {
                    let cleared = phase_alerts.iter().any(|(_, a)| !a.firing);
                    checks.push(Check {
                        name: tag("recovery_clears"),
                        pass: cleared && active_at_end.is_empty(),
                        detail: format!(
                            "cleared transition: {cleared}; still firing at phase end: {active_at_end:?}",
                        ),
                    });
                    let lat_cleared = phase_latency.iter().any(|a| !a.firing);
                    let lat_active = latency_engine
                        .as_ref()
                        .map(|e| e.active())
                        .unwrap_or_default();
                    checks.push(Check {
                        name: tag("latency_clears"),
                        pass: lat_cleared && lat_active.is_empty(),
                        detail: format!(
                            "latency cleared transition: {lat_cleared}; still firing at phase end: {lat_active:?}",
                        ),
                    });
                }
            }
        }
        cycles += 1;
        let elapsed = start.elapsed().as_secs_f64();
        let more = args.minutes.is_some_and(|m| elapsed < m * 60.0);
        if !more {
            break;
        }
    }

    let stats = sharded.stats();
    checks.push(Check {
        name: "detections_present".to_owned(),
        pass: stats.inconsistencies > 0,
        detail: format!("{} inconsistencies detected", stats.inconsistencies),
    });
    checks.push(Check {
        name: "ring_bounded".to_owned(),
        pass: marks.ring_dropped == 0,
        detail: format!("{} trace events dropped", marks.ring_dropped),
    });
    let pool_cap =
        (marks.pool_live_baseline as f64 * POOL_GROWTH_FACTOR) as u64 + POOL_GROWTH_SLACK;
    checks.push(Check {
        name: "pool_bounded".to_owned(),
        pass: marks.pool_live_final <= pool_cap,
        detail: format!(
            "final {} live slots vs baseline {} (cap {pool_cap})",
            marks.pool_live_final, marks.pool_live_baseline,
        ),
    });
    checks.push(Check {
        name: "settled_at_end".to_owned(),
        pass: final_active.is_empty(),
        detail: format!("active rules after the last recovery: {final_active:?}"),
    });

    let passed = checks.iter().all(|c| c.pass);
    let summary = SoakSummary {
        quick: args.quick,
        inject_leak: leak,
        cycles,
        windows,
        window_contexts,
        contexts: city.emitted(),
        inconsistencies: stats.inconsistencies,
        strategy_swaps: swaps,
        elapsed_secs: start.elapsed().as_secs_f64(),
        alerts,
        checks,
        watermarks: marks,
        latency,
        passed,
    };
    for c in &summary.checks {
        eprintln!(
            "  {} {}: {}",
            if c.pass { "PASS" } else { "FAIL" },
            c.name,
            c.detail
        );
    }
    eprintln!(
        "soak: {} — {} windows, {} contexts, {} alert transition(s), {:.1}s",
        if passed { "OK" } else { "FAIL" },
        summary.windows,
        summary.contexts,
        summary.alerts.len(),
        summary.elapsed_secs,
    );
    let json = serde_json::to_string_pretty(&summary).expect("serialize soak summary");
    println!("{json}");
    if passed {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

//! Workload-trace utility: generate, inspect, and replay recorded
//! context traces.
//!
//! ```text
//! trace_tool generate <app> <err_rate> <seed> <len> <out.jsonl>
//! trace_tool inspect  <trace.jsonl>
//! trace_tool stats    <trace.jsonl>
//! trace_tool replay   <trace.jsonl> <strategy> [constraints-app]
//! ```
//!
//! `<app>` is `call-forwarding`, `rfid-anomalies`, `location-tracking` or
//! `smart-ringer`.

use ctxres_apps::call_forwarding::CallForwarding;
use ctxres_apps::location_tracking::LocationTracking;
use ctxres_apps::rfid_anomalies::RfidAnomalies;
use ctxres_apps::smart_ringer::SmartRinger;
use ctxres_apps::PervasiveApp;
use ctxres_context::{Ticks, TruthTag};
use ctxres_core::strategies::by_name;
use ctxres_experiments::trace_io::{load_trace, save_trace};
use ctxres_middleware::{Middleware, MiddlewareConfig};
use std::path::Path;
use std::process::ExitCode;

fn app_by_name(name: &str) -> Option<Box<dyn PervasiveApp>> {
    match name {
        "call-forwarding" => Some(Box::new(CallForwarding::new())),
        "rfid-anomalies" => Some(Box::new(RfidAnomalies::new())),
        "location-tracking" => Some(Box::new(LocationTracking::new())),
        "smart-ringer" => Some(Box::new(SmartRinger::new())),
        _ => None,
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!(
                "usage:\n  trace_tool generate <app> <err_rate> <seed> <len> <out.jsonl>\n  \
                 trace_tool inspect <trace.jsonl>\n  \
                 trace_tool stats <trace.jsonl>\n  \
                 trace_tool replay <trace.jsonl> <strategy> [constraints-app]"
            );
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("generate") => {
            let [_, app, err, seed, len, out] = args else {
                return Err("generate needs 5 arguments".into());
            };
            let app = app_by_name(app).ok_or_else(|| format!("unknown app {app:?}"))?;
            let err: f64 = err.parse().map_err(|e| format!("err_rate: {e}"))?;
            let seed: u64 = seed.parse().map_err(|e| format!("seed: {e}"))?;
            let len: usize = len.parse().map_err(|e| format!("len: {e}"))?;
            let trace = app.generate(err, seed, len);
            save_trace(Path::new(out), &trace)?;
            println!("wrote {len} contexts to {out}");
            Ok(())
        }
        Some("inspect") => {
            let [_, path] = args else {
                return Err("inspect needs 1 argument".into());
            };
            let trace = load_trace(Path::new(path))?;
            let corrupted = trace
                .iter()
                .filter(|c| c.truth() == TruthTag::Corrupted)
                .count();
            let kinds: std::collections::BTreeSet<&str> =
                trace.iter().map(|c| c.kind().name()).collect();
            let subjects: std::collections::BTreeSet<&str> =
                trace.iter().map(|c| c.subject()).collect();
            println!("{} contexts ({corrupted} corrupted)", trace.len());
            println!("kinds: {kinds:?}");
            println!("subjects: {subjects:?}");
            if let (Some(first), Some(last)) = (trace.first(), trace.last()) {
                println!("stamps: {} .. {}", first.stamp(), last.stamp());
            }
            Ok(())
        }
        Some("stats") => {
            let [_, path] = args else {
                return Err("stats needs 1 argument".into());
            };
            let trace = load_trace(Path::new(path))?;
            // Per-kind and per-subject breakdowns with corruption rates.
            let mut by_kind: std::collections::BTreeMap<String, (usize, usize)> =
                std::collections::BTreeMap::new();
            let mut by_subject: std::collections::BTreeMap<String, (usize, usize)> =
                std::collections::BTreeMap::new();
            for c in &trace {
                let k = by_kind.entry(c.kind().name().to_owned()).or_default();
                k.0 += 1;
                let s = by_subject.entry(c.subject().to_owned()).or_default();
                s.0 += 1;
                if c.truth() == TruthTag::Corrupted {
                    k.1 += 1;
                    s.1 += 1;
                }
            }
            println!("{:<16}{:>8}{:>12}", "kind", "count", "corrupted");
            for (kind, (n, bad)) in &by_kind {
                println!("{kind:<16}{n:>8}{:>11.1}%", *bad as f64 / *n as f64 * 100.0);
            }
            println!();
            println!("{:<16}{:>8}{:>12}", "subject", "count", "corrupted");
            for (subject, (n, bad)) in &by_subject {
                println!(
                    "{subject:<16}{n:>8}{:>11.1}%",
                    *bad as f64 / *n as f64 * 100.0
                );
            }
            let span = trace
                .last()
                .zip(trace.first())
                .map(|(l, f)| (l.stamp() - f.stamp()).count() + 1)
                .unwrap_or(0);
            println!();
            println!(
                "{} contexts over {span} ticks ({:.2} contexts/tick)",
                trace.len(),
                trace.len() as f64 / span.max(1) as f64
            );
            Ok(())
        }
        Some("replay") => {
            let (path, strategy, capp) = match args {
                [_, path, strategy] => (path, strategy, "call-forwarding".to_owned()),
                [_, path, strategy, capp] => (path, strategy, capp.clone()),
                _ => return Err("replay needs 2-3 arguments".into()),
            };
            let trace = load_trace(Path::new(path))?;
            let app = app_by_name(&capp).ok_or_else(|| format!("unknown app {capp:?}"))?;
            let strategy =
                by_name(strategy, 0).ok_or_else(|| format!("unknown strategy {strategy:?}"))?;
            let mut mw = Middleware::builder()
                .constraints(app.constraints())
                .situations(app.situations())
                .registry(app.registry())
                .strategy(strategy)
                .config(MiddlewareConfig {
                    window: Ticks::new(app.recommended_window()),
                    track_ground_truth: true,
                    retention: None,
                })
                .build();
            for ctx in trace {
                mw.submit(ctx);
            }
            mw.drain();
            let s = mw.stats();
            println!(
                "delivered {} ({} expected, {} corrupted), discarded {} ({} corrupted), \
                 {} inconsistencies, survival {:.1}%, precision {:.1}%",
                s.delivered,
                s.delivered_expected,
                s.delivered_corrupted,
                s.discarded,
                s.discarded_corrupted,
                s.inconsistencies,
                s.survival_rate() * 100.0,
                s.removal_precision() * 100.0,
            );
            Ok(())
        }
        _ => Err("unknown subcommand".into()),
    }
}

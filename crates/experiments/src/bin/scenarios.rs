//! Replays the paper's **Figures 1–5** scenario traces against every
//! strategy, printing the per-context outcomes the figures illustrate.

use ctxres_apps::scenarios::{adjacent_constraint, refined_constraints};
use ctxres_experiments::scenario_replay::replay;

fn main() {
    println!("Scenario traces of Figures 1-5 (d3 is the corrupted context)\n");
    for (label, constraints_of) in [
        ("adjacent constraint only (Figs. 2-4)", false),
        ("refined constraints with gap-2 (Fig. 5)", true),
    ] {
        println!("== {label} ==");
        println!(
            "{:<10}{:<12}{:<24}correct?",
            "scenario", "strategy", "discarded"
        );
        for scenario in ["A", "B"] {
            for strategy in ["opt-r", "d-bad", "d-lat", "d-all"] {
                let constraints = if constraints_of {
                    refined_constraints()
                } else {
                    vec![adjacent_constraint()]
                };
                let out = replay(scenario, constraints, strategy);
                let discarded = if out.discarded.is_empty() {
                    "-".to_owned()
                } else {
                    out.discarded
                        .iter()
                        .map(|d| format!("d{d}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                };
                println!(
                    "{:<10}{:<12}{:<24}{}",
                    scenario,
                    strategy,
                    discarded,
                    if out.is_correct() { "yes" } else { "NO" }
                );
            }
        }
        println!();
    }
}

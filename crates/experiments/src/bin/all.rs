//! Runs every experiment in sequence (the full reproduction pass used
//! to fill EXPERIMENTS.md).
//!
//! Usage: `all [--quick]`.

use ctxres_apps::call_forwarding::CallForwarding;
use ctxres_apps::rfid_anomalies::RfidAnomalies;
use ctxres_experiments::ablation::window_sweep;
use ctxres_experiments::case_study::run_case_study;
use ctxres_experiments::figures::figure_for;
use ctxres_experiments::render::{
    render_case_study, render_figure, render_window_ablation, write_json,
};
use ctxres_experiments::{RUNS_PER_POINT, TRACE_LEN};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (runs, len) = if quick {
        (3, 240)
    } else {
        (RUNS_PER_POINT, TRACE_LEN)
    };

    eprintln!("[1/4] figure 9 (call forwarding) …");
    let fig9 = figure_for(&CallForwarding::new(), runs, len);
    println!("{}", render_figure(&fig9));
    let _ = write_json("figure9", &fig9);

    eprintln!("[2/4] figure 10 (rfid data anomalies) …");
    let fig10 = figure_for(&RfidAnomalies::new(), runs, len);
    println!("{}", render_figure(&fig10));
    let _ = write_json("figure10", &fig10);

    eprintln!("[3/4] §5.2 case study …");
    let cs = run_case_study(
        0.2,
        if quick { 3 } else { 10 },
        if quick { 200 } else { 600 },
    );
    println!("{}", render_case_study(&cs));
    let _ = write_json("case_study", &cs);

    eprintln!("[4/4] §5.3 window ablation …");
    let ab = window_sweep(
        &CallForwarding::new(),
        &[0, 1, 2, 3, 4],
        0.3,
        if quick { 2 } else { 10 },
        if quick { 180 } else { 600 },
    );
    println!("{}", render_window_ablation(&ab));
    let _ = write_json("ablation_window", &ab);
}

//! Regenerates the **§5.1 tie-case ablation**: what drop-bad should do
//! when the used context ties for the maximal count value — discard it
//! (`DoomUsed`, the default) or deliver it and mark a tied rival bad
//! (`BlamePeer`). The paper leaves this open; the table answers it for
//! both subject applications.
//!
//! Usage: `ablation_tie [--quick]`.

use ctxres_apps::call_forwarding::CallForwarding;
use ctxres_apps::rfid_anomalies::RfidAnomalies;
use ctxres_apps::PervasiveApp;
use ctxres_experiments::ablation::tie_policy_comparison;
use ctxres_experiments::render::write_json;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (runs, len) = if quick { (3, 240) } else { (10, 600) };
    let mut all = Vec::new();
    for app in [
        Box::new(CallForwarding::new()) as Box<dyn PervasiveApp>,
        Box::new(RfidAnomalies::new()),
    ] {
        eprintln!("§5.1 tie ablation: {} …", app.name());
        let points = tie_policy_comparison(
            app.as_ref(),
            &[0.2, 0.4],
            runs,
            len,
            app.recommended_window(),
        );
        println!("{} (used_expected / survival / precision):", app.name());
        println!(
            "{:>10}{:>10}{:>12}{:>10}{:>10}",
            "policy", "err", "used", "surv", "prec"
        );
        for p in &points {
            println!(
                "{:>10}{:>9.0}%{:>12.1}{:>9.1}%{:>9.1}%",
                p.policy,
                p.err_rate * 100.0,
                p.used_expected,
                p.survival * 100.0,
                p.precision * 100.0
            );
        }
        println!();
        all.push((app.name().to_owned(), points));
    }
    match write_json("ablation_tie", &all) {
        Ok(path) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("could not write results json: {e}"),
    }
}

//! `obs_top` — a live per-shard console dashboard over the telemetry
//! pipeline, in the spirit of `top(1)`.
//!
//! Two modes:
//!
//! * **demo** (default): spins up a sharded engine under the paper's
//!   speed constraint, drives a synthetic 32-subject location stream
//!   from a background producer thread, and samples the engine's own
//!   registry in-process — a self-contained way to see the dashboard
//!   move.
//! * **watch** (`--watch <addr>`): scrapes `/snapshot` from any live
//!   `CTXRES_METRICS_ADDR` endpoint (`figure9`, `shard_bench`, a
//!   production deployment) and renders the same dashboard remotely.
//!
//! Flags: `--interval-ms <n>` (default 500), `--iters <n>` (frames to
//! render; default: run until interrupted), `--once` (single frame, no
//! ANSI clear — CI-safe), `--serve <addr>` (demo mode only: expose the
//! demo registry's `/metrics` and `/snapshot` on a background thread,
//! so a second `obs_top --watch` — or a CI curl — can scrape the same
//! engine live; port `0` picks an ephemeral port and the bound address
//! is printed to stderr), `--phases` (profile the demo engine and add
//! a per-shard phase self-time panel; in watch mode the panel appears
//! automatically whenever the remote endpoint samples with its phase
//! profiler on). The end-to-end tail panel (wall-clock delivery
//! quantiles, speculation efficiency, queue wait share, exemplar
//! reservoir fill) renders whenever the sampled registry has tail
//! spans enabled — always true for the demo engine.

use ctxres_constraint::parse_constraints;
use ctxres_context::{Context, ContextKind, LogicalTime, Point, Ticks};
use ctxres_core::strategies::DropBad;
use ctxres_middleware::{Middleware, MiddlewareConfig, ShardPlan, ShardedMiddleware};
use ctxres_obs::{CounterKind, MetricKind, MetricsServer, ObsConfig, Sample, Sampler};
use std::io::{Read, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const SPEED: &str = "constraint speed:
    forall a: location, b: location .
      (same_subject(a, b) and seq_gap(a, b, 1)) implies velocity_le(a, b, 1.5)";

struct Options {
    watch: Option<String>,
    serve: Option<String>,
    interval: Duration,
    iters: Option<u64>,
    once: bool,
    phases: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        watch: None,
        serve: None,
        interval: Duration::from_millis(500),
        iters: None,
        once: false,
        phases: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().ok_or_else(|| format!("{flag} needs a value"));
        match arg.as_str() {
            "--watch" => opts.watch = Some(value("--watch")?),
            "--serve" => opts.serve = Some(value("--serve")?),
            "--interval-ms" => {
                let ms: u64 = value("--interval-ms")?
                    .parse()
                    .map_err(|e| format!("--interval-ms: {e}"))?;
                opts.interval = Duration::from_millis(ms.max(10));
            }
            "--iters" => {
                opts.iters = Some(
                    value("--iters")?
                        .parse()
                        .map_err(|e| format!("--iters: {e}"))?,
                );
            }
            "--once" => opts.once = true,
            "--phases" => opts.phases = true,
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if opts.once {
        opts.iters = Some(1);
    }
    Ok(opts)
}

/// `host:port` from a `--watch` operand that may carry a scheme/path.
fn watch_addr(raw: &str) -> String {
    let s = raw.trim();
    let s = s.strip_prefix("http://").unwrap_or(s);
    s.split('/').next().unwrap_or(s).to_owned()
}

fn fetch_sample(addr: &str) -> Result<Sample, String> {
    let mut stream =
        std::net::TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    write!(stream, "GET /snapshot HTTP/1.1\r\nHost: obs-top\r\n\r\n").map_err(|e| e.to_string())?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| e.to_string())?;
    let body = response
        .split_once("\r\n\r\n")
        .ok_or("malformed HTTP response")?
        .1;
    serde_json::from_str(body).map_err(|e| format!("parse /snapshot: {e}"))
}

fn fmt_rate(v: f64) -> String {
    if v >= 10_000.0 {
        format!("{:.1}k", v / 1000.0)
    } else {
        format!("{v:.1}")
    }
}

/// p95 of a windowed latency histogram, as microseconds (`-` when the
/// window recorded nothing). Uses the interpolated estimate rather than
/// the raw bucket upper bound so the column moves smoothly instead of
/// snapping between power-of-two bucket edges.
fn p95_us(rates: &ctxres_obs::ShardRates, kind: MetricKind) -> String {
    match rates.window(kind).quantile_est(0.95) {
        Some(ns) => format!("{:.0}", ns / 1000.0),
        None => "-".to_owned(),
    }
}

/// Situation-cache hit rate over the sample window: the share of
/// situation rounds the dirty-kind cache answered without re-evaluating
/// (`-` when the window saw no situation activity at all).
fn sit_hit_pct(evals: f64, skips: f64) -> String {
    if evals + skips <= 0.0 {
        "-".to_owned()
    } else {
        format!("{:.0}%", skips / (evals + skips) * 100.0)
    }
}

/// Predicate-memo hit rate over the sample window: the share of
/// predicate probes the fused batch path answered from the memo table
/// (`-` when the window ran no fused batches).
fn memo_hit_pct(hits: f64, misses: f64) -> String {
    if hits + misses <= 0.0 {
        "-".to_owned()
    } else {
        format!("{:.0}%", hits / (hits + misses) * 100.0)
    }
}

fn shard_row(label: &str, r: &ctxres_obs::ShardRates) -> String {
    format!(
        "{:<9} {:>8}  {:>9}  {:>9}  {:>8}  {:>7}  {:>8}  {:>7}  {:>8}  {:>7}  {:>11}\n",
        label,
        fmt_rate(r.rate(CounterKind::Ingested)),
        fmt_rate(r.rate(CounterKind::Deliveries)),
        fmt_rate(r.rate(CounterKind::Discards)),
        fmt_rate(r.rate(CounterKind::Detections)),
        sit_hit_pct(
            r.rate(CounterKind::SituationEvals),
            r.rate(CounterKind::SituationCacheSkips),
        ),
        memo_hit_pct(
            r.rate(CounterKind::PredMemoHits),
            r.rate(CounterKind::PredMemoMisses),
        ),
        fmt_rate(r.rate(CounterKind::CompiledEvals)),
        r.events_buffered,
        r.events_dropped,
        p95_us(r, MetricKind::CheckLatency),
    )
}

fn render(sample: &Sample, frame: u64, source: &str) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "ctxres obs_top — {source} — frame {frame}, window {:.2}s{}\n\n",
        sample.elapsed_secs,
        if sample.first { " (baseline)" } else { "" },
    ));
    let header =
        "shard     ingest/s  deliver/s  discard/s  detect/s  sit-hit  memo-hit  ceval/s  buffered  dropped  p95 chk(µs)\n";
    let divider = format!("{}\n", "-".repeat(header.len() - 1));
    out.push_str(header);
    out.push_str(&divider);
    for s in &sample.shards {
        out.push_str(&shard_row(&format!("shard {}", s.shard), s));
    }
    out.push_str(&divider);
    out.push_str(&shard_row("total", &sample.total));
    let agg = sample.snapshot.aggregate();
    out.push_str(&format!(
        "\ncumulative: {} ingested, {} delivered, {} discarded, {} detections, \
         {} situation evals ({} cache-skipped), {} compiled evals, \
         {} fused batches ({} memo hits / {} misses)\n",
        agg.counter(CounterKind::Ingested),
        agg.counter(CounterKind::Deliveries),
        agg.counter(CounterKind::Discards),
        agg.counter(CounterKind::Detections),
        agg.counter(CounterKind::SituationEvals),
        agg.counter(CounterKind::SituationCacheSkips),
        agg.counter(CounterKind::CompiledEvals),
        agg.counter(CounterKind::FusedBatchEvals),
        agg.counter(CounterKind::PredMemoHits),
        agg.counter(CounterKind::PredMemoMisses),
    ));
    if let Some(health) = &sample.health {
        out.push_str(&render_health(health));
    }
    if let Some(phases) = &sample.phases {
        out.push_str(&render_phases(phases));
    }
    if let Some(tail) = &sample.tail {
        out.push_str(&render_tail(tail));
    }
    out
}

/// One quantile cell of the tail panel: interpolated nanosecond figure
/// rendered as microseconds, `-` when the window has no estimate.
fn tail_q_us(q: Option<f64>) -> String {
    match q {
        Some(ns) => format!("{:.0}", ns / 1000.0),
        None => "-".to_owned(),
    }
}

/// The end-to-end tail panel: windowed wall-clock quantiles per terminal
/// outcome, speculation efficiency for the fused batch path, the
/// engine-queue wait/service decomposition, and the exemplar reservoir
/// fill — rendered only when the sampled registry has tail spans on.
fn render_tail(tail: &ctxres_obs::TailSample) -> String {
    let mut out = String::new();
    out.push_str("\ne2e tail this window (µs)\n");
    out.push_str("outcome        count      p50      p95      p99     p999\n");
    for ow in &tail.outcomes {
        if ow.window.count == 0 {
            continue;
        }
        out.push_str(&format!(
            "{:<12} {:>7} {:>8} {:>8} {:>8} {:>8}\n",
            ow.outcome.name(),
            ow.window.count,
            tail_q_us(ow.window.p50_ns),
            tail_q_us(ow.window.p95_ns),
            tail_q_us(ow.window.p99_ns),
            tail_q_us(ow.window.p999_ns),
        ));
    }
    out.push_str(&format!(
        "{:<12} {:>7} {:>8} {:>8} {:>8} {:>8}\n",
        "all",
        tail.all.count,
        tail_q_us(tail.all.p50_ns),
        tail_q_us(tail.all.p95_ns),
        tail_q_us(tail.all.p99_ns),
        tail_q_us(tail.all.p999_ns),
    ));
    if tail.spec.batches > 0 {
        out.push_str(&format!(
            "spec: {} batches, {} groups speculated ({} consumed / {} wasted / {} inline), \
             consumed {} wasted {}, avg workers {}\n",
            tail.spec.batches,
            tail.spec.groups_speculated,
            tail.spec.consumed,
            tail.spec.wasted_dirty,
            tail.spec.inline_checks,
            ratio_pct(tail.spec.consumed_rate),
            ratio_pct(tail.spec.wasted_rate),
            match tail.spec.avg_workers {
                Some(w) => format!("{w:.1}"),
                None => "-".to_owned(),
            },
        ));
    }
    if tail.queue.wait_count > 0 || tail.queue.service_count > 0 {
        out.push_str(&format!(
            "queue: avg wait {} µs, avg service {} µs, wait share {}\n",
            tail_q_us(tail.queue.avg_wait_ns),
            tail_q_us(tail.queue.avg_service_ns),
            ratio_pct(tail.queue.wait_share),
        ));
    }
    let captured: u64 = tail.snapshot.shards.iter().map(|s| s.captured).sum();
    let held = tail.snapshot.exemplars().len();
    out.push_str(&format!(
        "exemplars: {held} held / {captured} captured total (capacity {} per shard)\n",
        ctxres_obs::EXEMPLAR_CAPACITY,
    ));
    out
}

/// Short column labels for the phase panel, aligned with
/// [`ctxres_obs::PHASES`] order.
const PHASE_SHORT: [&str; 9] = [
    "ingest", "idxmnt", "check", "resolve", "siteval", "prov", "health", "rebal", "export",
];

/// One phase-panel cell: window self-time in milliseconds, `-` when
/// the phase recorded nothing this window.
fn phase_cell(stats: &[ctxres_obs::PhaseStat], phase: ctxres_obs::Phase) -> String {
    let self_ns = stats
        .iter()
        .find(|s| s.phase == phase.name())
        .map(|s| s.self_ns)
        .unwrap_or(0);
    if self_ns == 0 {
        "-".to_owned()
    } else {
        format!("{:.2}", self_ns as f64 / 1e6)
    }
}

/// The phase panel: per-shard self-time by phase over the sample
/// window, plus the window totals and each phase's share of all
/// self-time — the live view of where the engines spend their cycles.
fn render_phases(phases: &ctxres_obs::PhaseSample) -> String {
    let mut out = String::new();
    out.push_str("\nphase self-time this window (ms)\n");
    out.push_str(&format!("{:<9}", "shard"));
    for name in PHASE_SHORT {
        out.push_str(&format!("{name:>9}"));
    }
    out.push('\n');
    for sh in &phases.shards {
        out.push_str(&format!("{:<9}", format!("shard {}", sh.shard)));
        for p in ctxres_obs::PHASES {
            out.push_str(&format!("{:>9}", phase_cell(&sh.window, p)));
        }
        out.push('\n');
    }
    out.push_str(&format!("{:<9}", "total"));
    for p in ctxres_obs::PHASES {
        out.push_str(&format!("{:>9}", phase_cell(&phases.window_total, p)));
    }
    out.push('\n');
    out.push_str(&format!("{:<9}", "share"));
    for p in ctxres_obs::PHASES {
        let cell = match phases.self_share(p) {
            Some(share) => format!("{:.1}%", share * 100.0),
            None => "-".to_owned(),
        };
        out.push_str(&format!("{cell:>9}"));
    }
    out.push('\n');
    out
}

/// Windowed ratio for the heatmap: percent with one decimal, `-` when
/// the window defined no value.
fn ratio_pct(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{:.1}", x * 100.0),
        None => "-".to_owned(),
    }
}

/// The health panel: arena occupancy, the per-kind quality heatmap
/// (windowed rates from the streaming estimators), and firing SLOs.
fn render_health(health: &ctxres_obs::HealthSample) -> String {
    let mut out = String::new();
    if let Some(pool) = &health.pool {
        out.push_str(&format!(
            "\npool: {} live / {} free slots ({} occupied), {} recycles (+{} this window), tick {}\n",
            pool.live_slots,
            pool.free_slots,
            match pool.occupancy {
                Some(o) => format!("{:.0}%", o * 100.0),
                None => "-".to_owned(),
            },
            pool.recycles,
            pool.recycles_delta,
            pool.now_tick,
        ));
    }
    if !health.kinds.is_empty() {
        out.push_str(
            "\nkind            disc%    viol%     use%    ewma%    stale     live   oldest\n",
        );
        for k in &health.kinds {
            out.push_str(&format!(
                "{:<14} {:>7} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}\n",
                k.kind,
                ratio_pct(k.discard_rate),
                ratio_pct(k.violation_rate),
                ratio_pct(k.use_rate),
                ratio_pct(k.use_rate_ewma),
                match k.staleness {
                    Some(s) => format!("{s:.2}"),
                    None => "-".to_owned(),
                },
                k.live,
                match k.oldest_age_ticks {
                    Some(t) => t.to_string(),
                    None => "-".to_owned(),
                },
            ));
        }
    }
    if health.active_alerts.is_empty() {
        out.push_str("\nslo: all clear\n");
    } else {
        out.push_str(&format!("\nslo: {} FIRING\n", health.active_alerts.len()));
        for rule in &health.active_alerts {
            out.push_str(&format!("  ! {rule}\n"));
        }
    }
    for alert in &health.alerts {
        out.push_str(&format!("  {alert}\n"));
    }
    out
}

/// The demo workload: an endless teleporting location stream, chunked
/// so seq stamps keep increasing across chunks.
fn demo_chunk(base_seq: u64, subjects: usize, per_subject: usize) -> Vec<Context> {
    let mut out = Vec::with_capacity(subjects * per_subject);
    for seq in base_seq..base_seq + per_subject as u64 {
        for s in 0..subjects {
            let x = if seq % 10 == 9 {
                400.0
            } else {
                seq as f64 * 0.5
            };
            out.push(
                Context::builder(ContextKind::new("location"), &format!("subj-{s:02}"))
                    .attr("pos", Point::new(x, 0.0))
                    .attr("seq", seq as i64)
                    .stamp(LogicalTime::new(seq))
                    .build(),
            );
        }
    }
    out
}

fn run_loop(opts: &Options, source: &str, mut next: impl FnMut() -> Result<Sample, String>) {
    let mut frame = 0u64;
    loop {
        match next() {
            Ok(sample) => {
                frame += 1;
                if !opts.once {
                    print!("\x1b[2J\x1b[H");
                }
                print!("{}", render(&sample, frame, source));
                std::io::stdout().flush().ok();
            }
            Err(e) => {
                eprintln!("obs_top: {e}");
                std::process::exit(1);
            }
        }
        if let Some(iters) = opts.iters {
            if frame >= iters {
                return;
            }
        }
        std::thread::sleep(opts.interval);
    }
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("obs_top: {e}");
            eprintln!(
                "usage: obs_top [--watch <addr>] [--serve <addr>] [--interval-ms <n>] [--iters <n>] [--once] [--phases]"
            );
            std::process::exit(2);
        }
    };

    if let Some(raw) = &opts.watch {
        if opts.serve.is_some() {
            eprintln!("obs_top: --serve only applies to the in-process demo");
            std::process::exit(2);
        }
        let addr = watch_addr(raw);
        run_loop(&opts, &format!("watching {addr}"), || fetch_sample(&addr));
        return;
    }

    // Demo: a 4-shard engine fed by a background producer until the
    // dashboard exits.
    let constraints = parse_constraints(SPEED).unwrap();
    let plan = ShardPlan::analyze(&constraints, 4);
    // --phases profiles every root in the demo: the stream is small
    // enough that sampling would just make the panel jittery.
    // Tail spans stay on in the demo so the e2e panel has data; watch
    // mode simply renders whatever the remote endpoint samples.
    let config = if opts.phases {
        ObsConfig::metrics_only().with_profile(1).with_tail(true)
    } else {
        ObsConfig::metrics_only().with_tail(true)
    };
    let registry = ShardedMiddleware::obs_registry(&plan, config);
    let sharded = Arc::new(ShardedMiddleware::new_observed(
        plan,
        &registry,
        |_, obs| {
            Middleware::builder()
                .constraints(parse_constraints(SPEED).unwrap())
                .strategy(Box::new(DropBad::new()))
                .config(MiddlewareConfig {
                    window: Ticks::new(0),
                    track_ground_truth: false,
                    // The demo runs until interrupted: bound the pool so
                    // check latency stays flat instead of creeping as the
                    // population grows.
                    retention: Some(Ticks::new(50)),
                })
                .obs(obs)
                .build()
        },
    ));
    let stop = Arc::new(AtomicBool::new(false));
    let producer = {
        let sharded = Arc::clone(&sharded);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut seq = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let chunk = demo_chunk(seq, 32, 5);
                seq += 5;
                sharded.batch_add(&chunk);
                sharded.drain();
                std::thread::sleep(Duration::from_millis(20));
            }
        })
    };

    // --serve exposes the demo registry's /metrics and /snapshot on a
    // background thread — a self-contained live endpoint to point a
    // second `obs_top --watch` (or the CI latency smoke's curl) at.
    let _server = opts.serve.as_deref().map(|addr| {
        let server = MetricsServer::spawn(Arc::clone(&registry), addr).unwrap_or_else(|e| {
            eprintln!("obs_top: could not bind {addr}: {e}");
            std::process::exit(2);
        });
        eprintln!(
            "obs_top: serving /metrics and /snapshot on http://{}",
            server.local_addr()
        );
        server
    });

    let mut sampler = Sampler::new(Arc::clone(&registry));
    // Let the producer put something on the board before the first
    // frame (mostly for --once, which gets exactly one window).
    let _ = sampler.sample();
    std::thread::sleep(opts.interval.max(Duration::from_millis(100)));
    run_loop(&opts, "in-process demo", || Ok(sampler.sample()));

    stop.store(true, Ordering::Relaxed);
    producer.join().ok();
}

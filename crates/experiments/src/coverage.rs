//! Constraint coverage analysis: which deployed constraints actually do
//! work on a given workload?
//!
//! §5.3 asks "how does one design correct consistency constraints?" —
//! the complementary operational question is whether the constraints one
//! *did* design ever fire. A constraint that never detects anything on
//! realistic traces is either vacuous (its antecedent never holds) or
//! redundant (another constraint subsumes it); either way the designer
//! should know.

use ctxres_apps::PervasiveApp;
use ctxres_context::Ticks;
use ctxres_core::strategies::DropBad;
use ctxres_middleware::{Middleware, MiddlewareConfig};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Per-constraint firing statistics over a workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConstraintCoverage {
    /// Constraint name.
    pub constraint: String,
    /// Inconsistencies this constraint detected.
    pub detections: u64,
    /// How many of them involved at least one corrupted context
    /// (a proxy for Rule 1 per constraint).
    pub with_corrupted: u64,
}

/// Coverage report for one application workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoverageReport {
    /// Application name.
    pub application: String,
    /// Error rate used.
    pub err_rate: f64,
    /// Per-constraint rows, deployment order.
    pub rows: Vec<ConstraintCoverage>,
}

impl CoverageReport {
    /// Constraints that never fired (candidates for review).
    pub fn dead_constraints(&self) -> Vec<&str> {
        self.rows
            .iter()
            .filter(|r| r.detections == 0)
            .map(|r| r.constraint.as_str())
            .collect()
    }
}

/// Measures constraint coverage by replaying `runs` seeded workloads.
pub fn constraint_coverage(
    app: &dyn PervasiveApp,
    err_rate: f64,
    runs: usize,
    len: usize,
) -> CoverageReport {
    let mut counts: BTreeMap<String, (u64, u64)> = app
        .constraints()
        .iter()
        .map(|c| (c.name().to_owned(), (0, 0)))
        .collect();
    for seed in 0..runs as u64 {
        let mut mw = Middleware::builder()
            .constraints(app.constraints())
            .registry(app.registry())
            .strategy(Box::new(DropBad::new()))
            .config(MiddlewareConfig {
                window: Ticks::new(app.recommended_window()),
                track_ground_truth: false,
                retention: None,
            })
            .build();
        let trace = app.generate(err_rate, seed, len);
        let corrupted: Vec<bool> = trace.iter().map(|c| c.truth().is_corrupted()).collect();
        for ctx in trace {
            mw.submit(ctx);
        }
        mw.drain();
        for inc in mw.detections() {
            if let Some(entry) = counts.get_mut(inc.constraint()) {
                entry.0 += 1;
                if inc
                    .contexts()
                    .iter()
                    .any(|id| corrupted.get(id.raw() as usize).copied().unwrap_or(false))
                {
                    entry.1 += 1;
                }
            }
        }
    }
    // Report in deployment order.
    let rows = app
        .constraints()
        .iter()
        .map(|c| {
            let (detections, with_corrupted) = counts[c.name()];
            ConstraintCoverage {
                constraint: c.name().to_owned(),
                detections,
                with_corrupted,
            }
        })
        .collect();
    CoverageReport {
        application: app.name().to_owned(),
        err_rate,
        rows,
    }
}

/// Renders a coverage report as a text table.
pub fn render_coverage(report: &CoverageReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "constraint coverage — {} at err_rate {:.0}%",
        report.application,
        report.err_rate * 100.0
    );
    let _ = writeln!(
        out,
        "{:<24}{:>12}{:>16}",
        "constraint", "detections", "w/ corrupted"
    );
    for r in &report.rows {
        let _ = writeln!(
            out,
            "{:<24}{:>12}{:>16}",
            r.constraint, r.detections, r.with_corrupted
        );
    }
    let dead = report.dead_constraints();
    if !dead.is_empty() {
        let _ = writeln!(out, "never fired: {}", dead.join(", "));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctxres_apps::call_forwarding::CallForwarding;
    use ctxres_apps::rfid_anomalies::RfidAnomalies;

    #[test]
    fn pairwise_constraints_fire_on_noisy_traces() {
        let app = CallForwarding::new();
        let report = constraint_coverage(&app, 0.3, 2, 240);
        let by = |name: &str| report.rows.iter().find(|r| r.constraint == name).unwrap();
        assert!(by("move_adjacent").detections > 0);
        assert!(by("move_within2").detections > 0);
        // Almost every detection involves a corrupted context (Rule 1).
        for r in &report.rows {
            assert!(
                r.with_corrupted * 10 >= r.detections * 9,
                "{}: {}/{}",
                r.constraint,
                r.with_corrupted,
                r.detections
            );
        }
    }

    #[test]
    fn clean_traces_have_full_dead_list() {
        let app = RfidAnomalies::new();
        let report = constraint_coverage(&app, 0.0, 1, 120);
        assert_eq!(report.dead_constraints().len(), report.rows.len());
        let rendered = render_coverage(&report);
        assert!(rendered.contains("never fired"));
    }
}

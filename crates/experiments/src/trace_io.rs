//! Trace persistence: save and reload workload traces as JSON Lines.
//!
//! The paper's experiments replay recorded context streams; this module
//! gives the harness the same capability — generate once, share the
//! exact trace, replay anywhere. One JSON object per line, one line per
//! context, in stream order.

use ctxres_context::Context;
use std::io::{BufRead, Write};
use std::path::Path;

/// Serializes a trace to JSON Lines.
///
/// # Errors
///
/// Returns a string describing any I/O or serialization failure.
pub fn save_trace(path: &Path, trace: &[Context]) -> Result<(), String> {
    let file = std::fs::File::create(path).map_err(|e| format!("create {path:?}: {e}"))?;
    let mut out = std::io::BufWriter::new(file);
    for ctx in trace {
        let line = serde_json::to_string(ctx).map_err(|e| e.to_string())?;
        writeln!(out, "{line}").map_err(|e| e.to_string())?;
    }
    Ok(())
}

/// Loads a JSON Lines trace.
///
/// # Errors
///
/// Returns a string describing any I/O or parse failure (with the line
/// number).
pub fn load_trace(path: &Path) -> Result<Vec<Context>, String> {
    let file = std::fs::File::open(path).map_err(|e| format!("open {path:?}: {e}"))?;
    let reader = std::io::BufReader::new(file);
    let mut out = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| format!("line {}: {e}", i + 1))?;
        if line.trim().is_empty() {
            continue;
        }
        let ctx: Context =
            serde_json::from_str(&line).map_err(|e| format!("line {}: {e}", i + 1))?;
        out.push(ctx);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctxres_apps::call_forwarding::CallForwarding;
    use ctxres_apps::PervasiveApp;

    #[test]
    fn round_trip_preserves_the_trace() {
        let app = CallForwarding::new();
        let trace = app.generate(0.3, 5, 60);
        let dir = std::env::temp_dir().join("ctxres-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        save_trace(&path, &trace).unwrap();
        let loaded = load_trace(&path).unwrap();
        assert_eq!(trace, loaded);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_reports_bad_lines() {
        let dir = std::env::temp_dir().join("ctxres-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.jsonl");
        std::fs::write(&path, "{not json}\n").unwrap();
        let err = load_trace(&path).unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_an_error() {
        assert!(load_trace(Path::new("/definitely/not/here.jsonl")).is_err());
    }

    #[test]
    fn empty_lines_are_skipped() {
        let app = CallForwarding::new();
        let trace = app.generate(0.0, 1, 3);
        let dir = std::env::temp_dir().join("ctxres-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("gaps.jsonl");
        let mut body = String::new();
        for c in &trace {
            body.push_str(&serde_json::to_string(c).unwrap());
            body.push_str("\n\n");
        }
        std::fs::write(&path, body).unwrap();
        assert_eq!(load_trace(&path).unwrap(), trace);
        std::fs::remove_file(&path).ok();
    }
}

//! Trace persistence: save and reload workload traces and
//! observability event traces as JSON Lines.
//!
//! The paper's experiments replay recorded context streams; this module
//! gives the harness the same capability — generate once, share the
//! exact trace, replay anywhere. One JSON object per line, one line per
//! context (or per [`TraceRecord`] for event traces), in stream order.

use ctxres_context::Context;
use ctxres_obs::TraceRecord;
use std::io::{BufRead, Write};
use std::path::Path;

pub(crate) fn save_lines<T: serde::Serialize>(path: &Path, items: &[T]) -> Result<(), String> {
    let file = std::fs::File::create(path).map_err(|e| format!("create {path:?}: {e}"))?;
    let mut out = std::io::BufWriter::new(file);
    for item in items {
        let line = serde_json::to_string(item).map_err(|e| e.to_string())?;
        writeln!(out, "{line}").map_err(|e| e.to_string())?;
    }
    Ok(())
}

pub(crate) fn load_lines<T: serde::de::DeserializeOwned>(path: &Path) -> Result<Vec<T>, String> {
    let file = std::fs::File::open(path).map_err(|e| format!("open {path:?}: {e}"))?;
    let reader = std::io::BufReader::new(file);
    let mut out = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| format!("line {}: {e}", i + 1))?;
        if line.trim().is_empty() {
            continue;
        }
        let item: T = serde_json::from_str(&line).map_err(|e| format!("line {}: {e}", i + 1))?;
        out.push(item);
    }
    Ok(out)
}

/// Serializes a trace to JSON Lines.
///
/// # Errors
///
/// Returns a string describing any I/O or serialization failure.
pub fn save_trace(path: &Path, trace: &[Context]) -> Result<(), String> {
    save_lines(path, trace)
}

/// Loads a JSON Lines trace.
///
/// # Errors
///
/// Returns a string describing any I/O or parse failure (with the line
/// number).
pub fn load_trace(path: &Path) -> Result<Vec<Context>, String> {
    load_lines(path)
}

/// Serializes an observability event trace to JSON Lines — one
/// [`TraceRecord`] object per line, in trace order. This is the format
/// `trace_dump` consumes and CI archives as a smoke artifact.
///
/// # Errors
///
/// Returns a string describing any I/O or serialization failure.
pub fn save_events(path: &Path, events: &[TraceRecord]) -> Result<(), String> {
    save_lines(path, events)
}

/// Loads a JSON Lines observability event trace.
///
/// # Errors
///
/// Returns a string describing any I/O or parse failure (with the line
/// number).
pub fn load_events(path: &Path) -> Result<Vec<TraceRecord>, String> {
    load_lines(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctxres_apps::call_forwarding::CallForwarding;
    use ctxres_apps::PervasiveApp;

    #[test]
    fn round_trip_preserves_the_trace() {
        let app = CallForwarding::new();
        let trace = app.generate(0.3, 5, 60);
        let dir = std::env::temp_dir().join("ctxres-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        save_trace(&path, &trace).unwrap();
        let loaded = load_trace(&path).unwrap();
        assert_eq!(trace, loaded);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn event_round_trip_preserves_the_trace() {
        use crate::runner::run_named_observed;
        use ctxres_obs::ObsConfig;
        let app = CallForwarding::new();
        let (_, telemetry) = run_named_observed(
            &app,
            "d-bad",
            0.3,
            5,
            80,
            app.recommended_window(),
            ObsConfig::enabled(),
        );
        assert!(!telemetry.trace.is_empty());
        let dir = std::env::temp_dir().join("ctxres-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        save_events(&path, &telemetry.trace).unwrap();
        let loaded = load_events(&path).unwrap();
        assert_eq!(telemetry.trace, loaded);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_reports_bad_lines() {
        let dir = std::env::temp_dir().join("ctxres-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.jsonl");
        std::fs::write(&path, "{not json}\n").unwrap();
        let err = load_trace(&path).unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_an_error() {
        assert!(load_trace(Path::new("/definitely/not/here.jsonl")).is_err());
    }

    #[test]
    fn empty_lines_are_skipped() {
        let app = CallForwarding::new();
        let trace = app.generate(0.0, 1, 3);
        let dir = std::env::temp_dir().join("ctxres-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("gaps.jsonl");
        let mut body = String::new();
        for c in &trace {
            body.push_str(&serde_json::to_string(c).unwrap());
            body.push_str("\n\n");
        }
        std::fs::write(&path, body).unwrap();
        assert_eq!(load_trace(&path).unwrap(), trace);
        std::fs::remove_file(&path).ok();
    }
}

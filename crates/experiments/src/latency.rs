//! The accuracy-vs-latency trade-off (paper §3.3).
//!
//! Drop-bad's deferral "enables the middleware to use the additional
//! time to collect more count value information" — that additional time
//! is a real cost the paper does not quantify. Under this middleware the
//! cost is the use window: every context (and hence every situation
//! activation) lags the physical event by the window, plus any residual
//! delay when an epoch's first supporting context was withheld and
//! coverage had to wait for a later one. This experiment sweeps the
//! window for drop-bad and reports **total activation latency**
//! (window + residual, in ticks) next to the accuracy metrics — making
//! the §5.3 window choice a visible latency/accuracy dial.

use crate::runner::run_with;
use ctxres_apps::PervasiveApp;
use ctxres_core::strategies::DropBad;
use serde::{Deserialize, Serialize};

/// One window setting's latency/accuracy summary for drop-bad.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyPoint {
    /// The middleware window, ticks.
    pub window: u64,
    /// Total mean activation latency: window + residual coverage delay.
    pub total_latency: f64,
    /// Mean expected contexts used.
    pub used_expected: f64,
    /// Mean survival rate.
    pub survival: f64,
    /// Mean removal precision.
    pub precision: f64,
}

/// Sweeps drop-bad's window, measuring the latency/accuracy dial.
pub fn latency_window_tradeoff(
    app: &dyn PervasiveApp,
    err_rate: f64,
    windows: &[u64],
    runs: usize,
    len: usize,
) -> Vec<LatencyPoint> {
    windows
        .iter()
        .map(|&window| {
            let mut residuals = Vec::new();
            let mut used = 0.0;
            let mut survival = 0.0;
            let mut precision = 0.0;
            for seed in 0..runs as u64 {
                let m = run_with(app, Box::new(DropBad::new()), err_rate, seed, len, window);
                if let Some(l) = m.activation_latency {
                    residuals.push(l);
                }
                used += m.used_expected as f64;
                survival += m.survival;
                precision += m.precision;
            }
            let residual = if residuals.is_empty() {
                0.0
            } else {
                residuals.iter().sum::<f64>() / residuals.len() as f64
            };
            LatencyPoint {
                window,
                total_latency: window as f64 + residual,
                used_expected: used / runs as f64,
                survival: survival / runs as f64,
                precision: precision / runs as f64,
            }
        })
        .collect()
}

/// Renders the trade-off table.
pub fn render_latency(points: &[LatencyPoint], app: &str, err_rate: f64) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "drop-bad latency/accuracy dial — {app} at err_rate {:.0}%",
        err_rate * 100.0
    );
    let _ = writeln!(
        out,
        "{:>8}{:>18}{:>16}{:>11}{:>11}",
        "window", "latency (ticks)", "used_expected", "survival", "precision"
    );
    for p in points {
        let _ = writeln!(
            out,
            "{:>8}{:>18.2}{:>16.1}{:>10.1}%{:>10.1}%",
            p.window,
            p.total_latency,
            p.used_expected,
            p.survival * 100.0,
            p.precision * 100.0
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctxres_apps::call_forwarding::CallForwarding;

    #[test]
    fn latency_grows_with_the_window_while_accuracy_improves() {
        let app = CallForwarding::new();
        let points = latency_window_tradeoff(&app, 0.3, &[0, 3], 3, 240);
        assert!(points[1].total_latency > points[0].total_latency);
        assert!(points[1].precision > points[0].precision);
        assert!(points[1].used_expected > points[0].used_expected);
    }

    #[test]
    fn rendering_includes_every_window() {
        let app = CallForwarding::new();
        let points = latency_window_tradeoff(&app, 0.2, &[0, 2], 1, 90);
        let s = render_latency(&points, app.name(), 0.2);
        assert_eq!(s.lines().count(), 2 + points.len());
    }
}

//! Plain-text rendering of regenerated figures and tables.

use crate::ablation::WindowAblation;
use crate::case_study::CaseStudy;
use crate::figures::Figure;
use crate::ERROR_RATES;
use ctxres_core::strategies::EXPERIMENT_STRATEGIES;
use std::fmt::Write as _;

/// Renders one metric of a figure as the paper lays it out: error rates
/// down the side, strategies across the top.
pub fn render_figure_metric(fig: &Figure, metric: &str) -> String {
    let mut out = String::new();
    let title = match metric {
        "ctx_use_rate" => "ctxUseRate (%)",
        "sit_act_rate" => "sitActRate (%)",
        other => other,
    };
    let _ = writeln!(out, "{title} — {}", fig.application);
    let _ = write!(out, "{:>10}", "err_rate");
    for s in EXPERIMENT_STRATEGIES {
        let _ = write!(out, "{:>9}", s.to_uppercase());
    }
    let _ = writeln!(out);
    for &err in &ERROR_RATES {
        let _ = write!(out, "{:>9.0}%", err * 100.0);
        for s in EXPERIMENT_STRATEGIES {
            let v = fig
                .point(s, err)
                .map(|p| match metric {
                    "ctx_use_rate" => p.ctx_use_rate,
                    "sit_act_rate" => p.sit_act_rate,
                    _ => f64::NAN,
                })
                .unwrap_or(f64::NAN);
            let _ = write!(out, "{:>8.1} ", v * 100.0);
        }
        let _ = writeln!(out);
    }
    out
}

/// Renders both metrics of a figure (top and bottom panels).
pub fn render_figure(fig: &Figure) -> String {
    format!(
        "{}\n{}",
        render_figure_metric(fig, "ctx_use_rate"),
        render_figure_metric(fig, "sit_act_rate")
    )
}

/// Renders the §5.2 case-study table next to the paper's numbers.
pub fn render_case_study(cs: &CaseStudy) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Landmarc case study (§5.2) — err_rate {:.0}%, {} runs, {} inconsistencies",
        cs.err_rate * 100.0,
        cs.runs,
        cs.inconsistencies
    );
    let _ = writeln!(out, "{:<28}{:>10}{:>10}", "metric", "measured", "paper");
    let _ = writeln!(
        out,
        "{:<28}{:>9.1}%{:>9.1}%",
        "context survival rate",
        cs.survival * 100.0,
        96.5
    );
    let _ = writeln!(
        out,
        "{:<28}{:>9.1}%{:>9.1}%",
        "removal precision",
        cs.precision * 100.0,
        84.7
    );
    let _ = writeln!(
        out,
        "{:<28}{:>9.1}%{:>9.1}%",
        "Rule 1 held",
        cs.rule1_rate * 100.0,
        100.0
    );
    let _ = writeln!(
        out,
        "{:<28}{:>9.1}%{:>10}",
        "Rule 2 held",
        cs.rule2_rate * 100.0,
        "n/a"
    );
    let _ = writeln!(
        out,
        "{:<28}{:>9.1}%{:>9.1}%",
        "Rule 2' held",
        cs.rule2_relaxed_rate * 100.0,
        91.7
    );
    out
}

/// Renders the window ablation sweep.
pub fn render_window_ablation(ab: &WindowAblation) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Drop-bad time-window sweep (§5.3) — err_rate {:.0}%",
        ab.err_rate * 100.0
    );
    let _ = writeln!(
        out,
        "{:>8}{:>16}{:>12}{:>12}",
        "window", "used_expected", "survival", "precision"
    );
    for p in &ab.points {
        let _ = writeln!(
            out,
            "{:>8}{:>16.1}{:>11.1}%{:>11.1}%",
            p.window,
            p.used_expected,
            p.survival * 100.0,
            p.precision * 100.0
        );
    }
    let _ = writeln!(
        out,
        "drop-latest reference: used_expected {:.1} (window-0 drop-bad must match)",
        ab.drop_latest_used_expected
    );
    out
}

/// Writes a serializable result under `results/<name>.json`, creating
/// the directory if needed. Returns the path written, or the error
/// message (result files are best-effort: the printed tables are the
/// primary artifact).
pub fn write_json<T: serde::Serialize>(name: &str, value: &T) -> Result<String, String> {
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
    let path = dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).map_err(|e| e.to_string())?;
    std::fs::write(&path, json).map_err(|e| e.to_string())?;
    Ok(path.display().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::FigurePoint;

    fn tiny_figure() -> Figure {
        Figure {
            application: "call-forwarding".into(),
            points: ERROR_RATES
                .iter()
                .flat_map(|&err| {
                    EXPERIMENT_STRATEGIES.iter().map(move |s| FigurePoint {
                        strategy: (*s).to_owned(),
                        err_rate: err,
                        ctx_use_rate: 0.9,
                        sit_act_rate: 0.8,
                        mean_used: 100.0,
                        mean_matched: 10.0,
                        runs: 2,
                    })
                })
                .collect(),
            trace_len: 10,
            runs_per_point: 2,
        }
    }

    #[test]
    fn figure_rendering_contains_all_strategies_and_rates() {
        let s = render_figure(&tiny_figure());
        for name in ["OPT-R", "D-BAD", "D-LAT", "D-ALL"] {
            assert!(s.contains(name), "{name} missing");
        }
        for rate in ["10%", "20%", "30%", "40%"] {
            assert!(s.contains(rate), "{rate} missing");
        }
        assert!(s.contains("ctxUseRate"));
        assert!(s.contains("sitActRate"));
    }

    #[test]
    fn case_study_rendering_quotes_paper_values() {
        let cs = CaseStudy {
            err_rate: 0.2,
            runs: 3,
            survival: 0.95,
            precision: 0.85,
            rule1_rate: 1.0,
            rule2_rate: 0.8,
            rule2_relaxed_rate: 0.92,
            inconsistencies: 123,
        };
        let s = render_case_study(&cs);
        assert!(s.contains("96.5"));
        assert!(s.contains("84.7"));
        assert!(s.contains("91.7"));
    }
}

//! Assembling Figures 9 and 10: strategy-vs-error-rate grids.

use crate::metrics::{normalize_against_oracle, FigurePoint, RunMetrics};
use crate::runner::{run_jobs_parallel, run_jobs_parallel_exported, run_named, RunJob};
use crate::{ERROR_RATES, RUNS_PER_POINT, TRACE_LEN};
use ctxres_apps::PervasiveApp;
use ctxres_core::strategies::EXPERIMENT_STRATEGIES;
use ctxres_obs::ObsRegistry;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A regenerated figure: every (strategy, error-rate) point of one
/// application's comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure {
    /// Which application the figure is about.
    pub application: String,
    /// All points, strategy-major in presentation order.
    pub points: Vec<FigurePoint>,
    /// Trace length per run.
    pub trace_len: usize,
    /// Seeds per point.
    pub runs_per_point: usize,
}

impl Figure {
    /// The point for a strategy at an error rate.
    pub fn point(&self, strategy: &str, err_rate: f64) -> Option<&FigurePoint> {
        self.points
            .iter()
            .find(|p| p.strategy == strategy && (p.err_rate - err_rate).abs() < 1e-9)
    }
}

/// Runs the full grid for one application (Figure 9 for Call
/// Forwarding, Figure 10 for RFID data anomalies).
///
/// `runs` seeds per point; the paper uses 20 ([`RUNS_PER_POINT`]). Every
/// strategy is paired per-seed against the OPT-R run with the same seed
/// and workload.
pub fn figure_for(app: &dyn PervasiveApp, runs: usize, len: usize) -> Figure {
    let window = app.recommended_window();
    let mut points = Vec::new();
    for &err_rate in &ERROR_RATES {
        let oracle_runs: Vec<RunMetrics> = (0..runs)
            .map(|i| run_named(app, "opt-r", err_rate, seed_for(err_rate, i), len, window))
            .collect();
        for strategy in EXPERIMENT_STRATEGIES {
            let strategy_runs: Vec<RunMetrics> = if strategy == "opt-r" {
                oracle_runs.clone()
            } else {
                (0..runs)
                    .map(|i| run_named(app, strategy, err_rate, seed_for(err_rate, i), len, window))
                    .collect()
            };
            points.push(normalize_against_oracle(
                strategy,
                err_rate,
                &strategy_runs,
                &oracle_runs,
            ));
        }
    }
    Figure {
        application: app.name().to_owned(),
        points,
        trace_len: len,
        runs_per_point: runs,
    }
}

/// [`figure_for`], fanning the seeded runs over `threads` worker
/// threads.
///
/// Every `(strategy, error rate, seed)` cell is one independent job
/// ([`RunJob`]); the workers race through the job queue and the results
/// are reassembled in the serial loop's order. Because each run is
/// deterministic in its seed, the returned figure — and its serialized
/// JSON — is **bit-identical** to the serial [`figure_for`] (asserted
/// by a test below). `threads <= 1` degrades to the serial path.
pub fn figure_for_parallel(
    app: &(dyn PervasiveApp + Sync),
    runs: usize,
    len: usize,
    threads: usize,
) -> Figure {
    let window = app.recommended_window();
    let jobs = grid_jobs(runs);
    let results = run_jobs_parallel(app, &jobs, len, window, threads);
    assemble_grid(app, &results, runs, len)
}

/// [`figure_for_parallel`] with the grid's runs recorded into a shared
/// live [`ObsRegistry`] (one slot per worker): a scraper hitting the
/// [`ctxres_obs::MetricsServer`] *during* the grid sees real-time
/// ingest/discard/detection rates per worker while the figure computes.
/// The output stays bit-identical to [`figure_for`] — observation never
/// perturbs results.
pub fn figure_for_parallel_exported(
    app: &(dyn PervasiveApp + Sync),
    runs: usize,
    len: usize,
    threads: usize,
    registry: &Arc<ObsRegistry>,
) -> Figure {
    let window = app.recommended_window();
    let jobs = grid_jobs(runs);
    let results = run_jobs_parallel_exported(app, &jobs, len, window, threads, registry);
    assemble_grid(app, &results, runs, len)
}

/// One job per (rate, strategy, seed) cell, opt-r first per rate so its
/// results double as the oracle baseline for that rate.
fn grid_jobs(runs: usize) -> Vec<RunJob> {
    let mut jobs = Vec::new();
    for &err_rate in &ERROR_RATES {
        for strategy in EXPERIMENT_STRATEGIES {
            for i in 0..runs {
                jobs.push(RunJob {
                    strategy: (*strategy).to_owned(),
                    err_rate,
                    seed: seed_for(err_rate, i),
                });
            }
        }
    }
    jobs
}

/// Reassembles fan-out results (in [`grid_jobs`] order) into the same
/// [`Figure`] the serial loop builds.
fn assemble_grid(
    app: &dyn PervasiveApp,
    results: &[RunMetrics],
    runs: usize,
    len: usize,
) -> Figure {
    let mut points = Vec::new();
    let mut cursor = results.chunks(runs);
    for &err_rate in &ERROR_RATES {
        let mut oracle_runs: Vec<RunMetrics> = Vec::new();
        for strategy in EXPERIMENT_STRATEGIES {
            let strategy_runs = cursor
                .next()
                .expect("a chunk per (rate, strategy)")
                .to_vec();
            if strategy == "opt-r" {
                oracle_runs = strategy_runs.clone();
            }
            points.push(normalize_against_oracle(
                strategy,
                err_rate,
                &strategy_runs,
                &oracle_runs,
            ));
        }
    }
    Figure {
        application: app.name().to_owned(),
        points,
        trace_len: len,
        runs_per_point: runs,
    }
}

/// Figure 9: Call Forwarding, at paper scale.
pub fn figure9() -> Figure {
    figure_for(
        &ctxres_apps::call_forwarding::CallForwarding::new(),
        RUNS_PER_POINT,
        TRACE_LEN,
    )
}

/// Figure 10: RFID data anomalies, at paper scale.
pub fn figure10() -> Figure {
    figure_for(
        &ctxres_apps::rfid_anomalies::RfidAnomalies::new(),
        RUNS_PER_POINT,
        TRACE_LEN,
    )
}

fn seed_for(err_rate: f64, run: usize) -> u64 {
    // Distinct, stable seeds per (rate, run index).
    (err_rate * 1000.0) as u64 * 10_000 + run as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctxres_apps::call_forwarding::CallForwarding;

    /// A reduced-scale grid still shows the paper's ordering:
    /// OPT-R ≥ D-BAD > D-LAT, D-ALL; D-ALL worst.
    #[test]
    fn small_grid_reproduces_strategy_ordering() {
        let app = CallForwarding::new();
        let fig = figure_for(&app, 3, 240);
        for &err in &[0.2, 0.3] {
            let opt = fig.point("opt-r", err).unwrap();
            let bad = fig.point("d-bad", err).unwrap();
            let lat = fig.point("d-lat", err).unwrap();
            let all = fig.point("d-all", err).unwrap();
            assert!((opt.ctx_use_rate - 1.0).abs() < 1e-9);
            assert!(
                bad.ctx_use_rate > lat.ctx_use_rate,
                "err {err}: d-bad {} vs d-lat {}",
                bad.ctx_use_rate,
                lat.ctx_use_rate
            );
            assert!(
                bad.ctx_use_rate > all.ctx_use_rate,
                "err {err}: d-bad {} vs d-all {}",
                bad.ctx_use_rate,
                all.ctx_use_rate
            );
            assert!(
                lat.ctx_use_rate > all.ctx_use_rate,
                "err {err}: d-lat {} vs d-all {}",
                lat.ctx_use_rate,
                all.ctx_use_rate
            );
        }
    }

    /// The acceptance bar for the parallel runner: scheduling must not
    /// leak into the output. Serialize both figures and compare the
    /// *bytes*.
    #[test]
    fn parallel_grid_json_is_byte_identical_to_serial() {
        let app = CallForwarding::new();
        let serial = figure_for(&app, 2, 60);
        let parallel = figure_for_parallel(&app, 2, 60, 3);
        assert_eq!(
            serde_json::to_string(&serial).unwrap(),
            serde_json::to_string(&parallel).unwrap()
        );
    }

    #[test]
    fn single_thread_parallel_path_matches_too() {
        let app = CallForwarding::new();
        assert_eq!(figure_for(&app, 1, 40), figure_for_parallel(&app, 1, 40, 1));
    }

    #[test]
    fn exported_grid_is_byte_identical_and_fills_the_registry() {
        let app = CallForwarding::new();
        let registry = ObsRegistry::shared(ctxres_obs::ObsConfig::metrics_only(), 3);
        let serial = figure_for(&app, 2, 60);
        let exported = figure_for_parallel_exported(&app, 2, 60, 3, &registry);
        assert_eq!(
            serde_json::to_string(&serial).unwrap(),
            serde_json::to_string(&exported).unwrap()
        );
        let ingested = registry
            .snapshot()
            .aggregate()
            .counter(ctxres_obs::CounterKind::Ingested);
        // 4 rates × 4 strategies × 2 seeds × 60 contexts each.
        assert_eq!(ingested, 4 * 4 * 2 * 60);
    }

    #[test]
    fn points_cover_the_full_grid() {
        let app = CallForwarding::new();
        let fig = figure_for(&app, 1, 60);
        assert_eq!(fig.points.len(), 16);
        for &err in &crate::ERROR_RATES {
            for s in ctxres_core::strategies::EXPERIMENT_STRATEGIES {
                assert!(fig.point(s, err).is_some(), "missing ({s}, {err})");
            }
        }
    }
}

//! LANDMARC estimator ablation: localization error vs. `k` and
//! reference-tag density.
//!
//! The paper's running example leans on the LANDMARC algorithm (Ni et
//! al.), whose own evaluation found `k = 4` the sweet spot and showed
//! denser reference grids improving accuracy. This ablation confirms
//! both properties hold in our simulated reimplementation — the
//! substrate-validity check behind the §5.2 case study.

use ctxres_landmarc::{Floorplan, KnnEstimator, PathLossModel, RandomWaypoint, Rect};
use serde::{Deserialize, Serialize};

/// Mean/95th-percentile localization error for one configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KnnPoint {
    /// Neighbours used by the estimator.
    pub k: usize,
    /// Reference-tag grid spacing, metres.
    pub grid_spacing: f64,
    /// Mean error over the walk, metres.
    pub mean_error: f64,
    /// 95th-percentile error, metres.
    pub p95_error: f64,
}

/// Measures estimation error for each `k` (fixed 2 m grid) and each
/// grid spacing (fixed k = 4), over `samples` fixes per configuration.
pub fn knn_sweep(ks: &[usize], spacings: &[f64], samples: usize, seed: u64) -> Vec<KnnPoint> {
    let mut out = Vec::new();
    for &k in ks {
        out.push(measure(k, 2.0, samples, seed));
    }
    for &spacing in spacings {
        if (spacing - 2.0).abs() > 1e-9 {
            out.push(measure(4, spacing, samples, seed));
        }
    }
    out
}

fn measure(k: usize, grid_spacing: f64, samples: usize, seed: u64) -> KnnPoint {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let area = Rect::new(0.0, 0.0, 40.0, 30.0);
    let plan = Floorplan::grid(area, grid_spacing, 2);
    let estimator = KnnEstimator::new(plan, PathLossModel::default(), k);
    let reference_map = estimator.reference_map();
    let mut walker = RandomWaypoint::new(area, 1.0, seed ^ 0xabcd);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut errors: Vec<f64> = (0..samples)
        .map(|_| {
            let truth = walker.step();
            estimator
                .locate(truth, &reference_map, &mut rng)
                .distance(truth)
        })
        .collect();
    errors.sort_by(f64::total_cmp);
    let mean = errors.iter().sum::<f64>() / errors.len() as f64;
    let p95_index = ((errors.len() as f64 * 0.95) as usize).min(errors.len() - 1);
    let p95 = errors[p95_index];
    KnnPoint {
        k,
        grid_spacing,
        mean_error: mean,
        p95_error: p95,
    }
}

/// Renders the sweep as a text table.
pub fn render_knn(points: &[KnnPoint]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "LANDMARC estimator ablation (error in metres)");
    let _ = writeln!(
        out,
        "{:>4}{:>10}{:>12}{:>12}",
        "k", "grid (m)", "mean err", "p95 err"
    );
    for p in points {
        let _ = writeln!(
            out,
            "{:>4}{:>10.1}{:>12.2}{:>12.2}",
            p.k, p.grid_spacing, p.mean_error, p.p95_error
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k_of_one_is_worse_than_k_of_four() {
        let points = knn_sweep(&[1, 4], &[], 300, 3);
        let k1 = points.iter().find(|p| p.k == 1).unwrap();
        let k4 = points.iter().find(|p| p.k == 4).unwrap();
        assert!(
            k4.mean_error < k1.mean_error,
            "k=4 {:.2} should beat k=1 {:.2}",
            k4.mean_error,
            k1.mean_error
        );
    }

    #[test]
    fn denser_grid_reduces_error() {
        let points = knn_sweep(&[4], &[2.0, 6.0], 300, 5);
        let dense = points
            .iter()
            .find(|p| (p.grid_spacing - 2.0).abs() < 1e-9)
            .unwrap();
        let sparse = points
            .iter()
            .find(|p| (p.grid_spacing - 6.0).abs() < 1e-9)
            .unwrap();
        assert!(
            dense.mean_error < sparse.mean_error,
            "2 m grid {:.2} should beat 6 m grid {:.2}",
            dense.mean_error,
            sparse.mean_error
        );
    }

    #[test]
    fn rendering_lists_every_point() {
        let points = knn_sweep(&[1, 4], &[4.0], 50, 1);
        let s = render_knn(&points);
        assert_eq!(s.lines().count(), 2 + points.len());
    }
}

//! City-scale workload generation: 10^5–10^6 subjects with
//! Zipf-distributed traffic and subject churn.
//!
//! The paper evaluates its heuristics on tens of subjects; the ROADMAP
//! north star is a city. This module synthesizes that load
//! deterministically: a fixed population of subjects emits location
//! readings with Zipf-skewed frequency (a few commuters dominate, a
//! long tail appears rarely), subjects churn in and out of the
//! population, and a tunable fraction of readings "teleport" —
//! violating the §2.2 speed constraint so the resolution pipeline has
//! real work. Everything is driven by a hand-rolled [`SplitMix64`]
//! so the same seed always yields the same byte-identical trace (no
//! dependency on an external RNG crate).

use ctxres_context::{Context, ContextKind, Lifespan, LogicalTime, Point, Ticks};

/// SplitMix64: a tiny, high-quality deterministic PRNG (Steele et al.,
/// "Fast splittable pseudorandom number generators", OOPSLA'14). Four
/// arithmetic ops per draw, full 2^64 period, and — unlike `RandomState`
/// — identical output on every platform and run, which the
/// batch-equivalence tests and bench reproducibility rely on.
#[derive(Debug, Clone)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// Seeds the generator.
    pub fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    /// The next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits, the standard conversion.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A uniform draw in `[0, bound)`.
    pub fn next_below(&mut self, bound: usize) -> usize {
        (self.next_f64() * bound as f64) as usize % bound.max(1)
    }
}

/// Parameters of a [`CityWorkload`].
#[derive(Debug, Clone)]
pub struct CityConfig {
    /// Population size (the paper's experiments use tens; a city uses
    /// 10^5–10^6).
    pub subjects: usize,
    /// Zipf exponent `s` of the traffic skew: rank-`r` subjects emit
    /// with weight `1/r^s`. `0.0` is uniform; `1.0` is classic Zipf.
    pub zipf_exponent: f64,
    /// Probability per emitted reading that its subject churns out of
    /// the population and a fresh subject takes over the rank slot.
    pub churn_per_event: f64,
    /// Probability per reading of a teleport — an implied speed above
    /// the §2.2 bound, i.e. a context inconsistency to resolve.
    pub teleport_rate: f64,
    /// Freshness of each reading, in ticks: readings expire this long
    /// after their stamp, as location fixes do. `None` means readings
    /// never expire — only suitable for small traces, since live
    /// per-subject tracks (and every check over them) then grow without
    /// bound.
    pub ttl_ticks: Option<u64>,
    /// RNG seed; equal seeds yield byte-identical traces.
    pub seed: u64,
}

impl Default for CityConfig {
    fn default() -> Self {
        CityConfig {
            subjects: 100_000,
            zipf_exponent: 1.0,
            churn_per_event: 0.001,
            teleport_rate: 0.02,
            ttl_ticks: Some(512),
            seed: 0x5eed,
        }
    }
}

/// Deterministic city-traffic generator. Produces location contexts in
/// globally nondecreasing stamp order (one logical tick per reading),
/// with per-subject monotonically increasing `seq` attributes — the
/// shape the speed constraint and the middleware's ordering invariants
/// expect.
#[derive(Debug)]
pub struct CityWorkload {
    cfg: CityConfig,
    rng: SplitMix64,
    kind: ContextKind,
    /// Cumulative Zipf weights over rank slots; sampled by binary search.
    cdf: Vec<f64>,
    /// Current occupant of each rank slot.
    names: Vec<String>,
    /// Per-slot reading counter (the `seq` attribute).
    seqs: Vec<i64>,
    /// Per-slot position and the tick of the last reading.
    xs: Vec<f64>,
    last_tick: Vec<u64>,
    tick: u64,
    emitted: u64,
    churned: u64,
    teleports: u64,
}

impl CityWorkload {
    /// Builds the generator, precomputing the Zipf CDF (O(subjects)).
    pub fn new(cfg: CityConfig) -> Self {
        assert!(cfg.subjects > 0, "a city needs at least one subject");
        let mut cdf = Vec::with_capacity(cfg.subjects);
        let mut acc = 0.0f64;
        for rank in 1..=cfg.subjects {
            acc += 1.0 / (rank as f64).powf(cfg.zipf_exponent);
            cdf.push(acc);
        }
        let mut rng = SplitMix64::new(cfg.seed);
        let names = (0..cfg.subjects).map(|i| format!("cit-{i}")).collect();
        let xs = (0..cfg.subjects).map(|_| rng.next_f64() * 1000.0).collect();
        CityWorkload {
            seqs: vec![0; cfg.subjects],
            last_tick: vec![0; cfg.subjects],
            names,
            xs,
            cdf,
            rng,
            kind: ContextKind::new("location"),
            cfg,
            tick: 0,
            emitted: 0,
            churned: 0,
            teleports: 0,
        }
    }

    /// Samples a rank slot from the Zipf CDF.
    fn sample_slot(&mut self) -> usize {
        let total = *self.cdf.last().expect("non-empty cdf");
        let u = self.rng.next_f64() * total;
        self.cdf
            .partition_point(|&c| c < u)
            .min(self.cfg.subjects - 1)
    }

    /// Emits the next reading.
    pub fn next_context(&mut self) -> Context {
        self.tick += 1;
        self.emitted += 1;
        let slot = self.sample_slot();
        if self.seqs[slot] > 0 && self.rng.next_f64() < self.cfg.churn_per_event {
            // The occupant leaves the city; a fresh subject inherits the
            // rank slot (same traffic weight, new identity and track).
            self.churned += 1;
            self.names[slot] = format!("cit-{}-{}", slot, self.churned);
            self.seqs[slot] = 0;
            self.xs[slot] = self.rng.next_f64() * 1000.0;
        }
        // Movement scales with the subject's stamp gap so the implied
        // speed stays well under the 1.5/tick bound — except for a
        // teleport, which jumps at 3×/tick regardless of gap.
        let dt = (self.tick - self.last_tick[slot]).max(1) as f64;
        if self.rng.next_f64() < self.cfg.teleport_rate && self.seqs[slot] > 0 {
            self.teleports += 1;
            self.xs[slot] += 3.0 * dt;
        } else {
            self.xs[slot] += 0.5 * dt * self.rng.next_f64();
        }
        self.last_tick[slot] = self.tick;
        let seq = self.seqs[slot];
        self.seqs[slot] += 1;
        let stamp = LogicalTime::new(self.tick);
        let mut builder = Context::builder(self.kind.clone(), self.names[slot].as_str())
            .attr("pos", Point::new(self.xs[slot], 0.0))
            .attr("seq", seq)
            .stamp(stamp);
        if let Some(ttl) = self.cfg.ttl_ticks {
            builder = builder.lifespan(Lifespan::with_ttl(stamp, Ticks::new(ttl)));
        }
        builder.build()
    }

    /// Emits the next `size` readings as one batch.
    pub fn batch(&mut self, size: usize) -> Vec<Context> {
        (0..size).map(|_| self.next_context()).collect()
    }

    /// Total readings emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Subjects that churned out of the population so far.
    pub fn churned(&self) -> u64 {
        self.churned
    }

    /// Teleporting (speed-violating) readings emitted so far.
    pub fn teleports(&self) -> u64 {
        self.teleports
    }

    /// Retunes the per-reading teleport probability mid-stream. The
    /// soak harness uses this to inject error-rate regressions (and
    /// recoveries) into an otherwise steady workload without resetting
    /// subject state or the RNG.
    pub fn set_teleport_rate(&mut self, rate: f64) {
        self.cfg.teleport_rate = rate;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn small() -> CityConfig {
        CityConfig {
            subjects: 500,
            churn_per_event: 0.01,
            teleport_rate: 0.05,
            ..CityConfig::default()
        }
    }

    #[test]
    fn same_seed_yields_identical_traces() {
        let a: Vec<Context> = CityWorkload::new(small()).batch(2_000);
        let b: Vec<Context> = CityWorkload::new(small()).batch(2_000);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.subject(), y.subject());
            assert_eq!(x.stamp(), y.stamp());
            assert_eq!(x.attr("seq"), y.attr("seq"));
            assert_eq!(x.attr("pos"), y.attr("pos"));
        }
    }

    #[test]
    fn traffic_is_zipf_skewed() {
        let mut city = CityWorkload::new(CityConfig {
            churn_per_event: 0.0,
            ..small()
        });
        let mut counts: BTreeMap<String, usize> = BTreeMap::new();
        for ctx in city.batch(10_000) {
            *counts.entry(ctx.subject().to_owned()).or_default() += 1;
        }
        let head = counts.get("cit-0").copied().unwrap_or(0);
        let mut tail: Vec<usize> = (400..500)
            .map(|i| counts.get(&format!("cit-{i}")).copied().unwrap_or(0))
            .collect();
        tail.sort_unstable();
        // Rank 1 must dwarf the rank 400+ tail.
        assert!(
            head > 10 * tail[tail.len() / 2].max(1),
            "head {head} vs tail median {}",
            tail[tail.len() / 2]
        );
    }

    #[test]
    fn churn_replaces_subjects_and_resets_their_tracks() {
        let mut city = CityWorkload::new(CityConfig {
            churn_per_event: 0.2,
            ..small()
        });
        let batch = city.batch(5_000);
        assert!(city.churned() > 0, "churn must occur at this rate");
        // Fresh occupants restart their seq counters at 0.
        let replacement = batch
            .iter()
            .find(|c| c.subject().matches('-').count() == 2)
            .expect("a churned-in subject appears");
        assert!(replacement.subject().starts_with("cit-"));
    }

    #[test]
    fn stamps_are_strictly_increasing_and_seqs_monotonic_per_subject() {
        let mut city = CityWorkload::new(small());
        let batch = city.batch(3_000);
        let mut last_stamp = LogicalTime::ZERO;
        let mut seqs: BTreeMap<String, i64> = BTreeMap::new();
        for c in &batch {
            assert!(c.stamp() > last_stamp, "global stamps strictly increase");
            last_stamp = c.stamp();
            let seq = c.number("seq").expect("seq attr present") as i64;
            if let Some(prev) = seqs.insert(c.subject().to_owned(), seq) {
                assert_eq!(seq, prev + 1, "per-subject seq increments by one");
            }
        }
        assert!(city.teleports() > 0, "violations exist in the trace");
    }
}

//! Extended strategy comparison beyond the paper's four.
//!
//! §2.3 dismisses drop-random and user-specified resolution as
//! "unreliable" without plotting them, and §5.1/§7 sketch an
//! impact-aware enhancement as future work. This module measures all of
//! them side by side with the paper's four, on both subject
//! applications.

use crate::metrics::{normalize_against_oracle, FigurePoint, RunMetrics};
use crate::runner::{run_named, run_with};
use ctxres_apps::{impact_profile, PervasiveApp};
use ctxres_core::strategies::{ImpactAwareDropBad, UserPolicy};
use ctxres_core::{ResolutionStrategy, TieBreak};
use serde::{Deserialize, Serialize};

/// The strategies of the extended comparison, in presentation order.
pub const EXTENDED_STRATEGIES: [&str; 7] = [
    "opt-r",
    "d-bad-impact",
    "d-bad",
    "d-lat",
    "d-all",
    "d-rand",
    "d-pol",
];

/// Result of the extended comparison for one application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExtendedComparison {
    /// Application name.
    pub application: String,
    /// One point per (strategy, error rate).
    pub points: Vec<FigurePoint>,
}

fn build(app: &dyn PervasiveApp, name: &str, seed: u64) -> Box<dyn ResolutionStrategy + Send> {
    match name {
        "d-bad-impact" => Box::new(ImpactAwareDropBad::new(impact_profile(&app.situations()))),
        "d-pol" => Box::new(UserPolicy::new([], TieBreak::Latest)),
        other => ctxres_core::strategies::by_name(other, seed)
            .unwrap_or_else(|| panic!("unknown strategy {other:?}")),
    }
}

/// Runs the extended grid for one application.
pub fn extended_comparison(
    app: &dyn PervasiveApp,
    err_rates: &[f64],
    runs: usize,
    len: usize,
) -> ExtendedComparison {
    let window = app.recommended_window();
    let mut points = Vec::new();
    for &err_rate in err_rates {
        let oracle_runs: Vec<RunMetrics> = (0..runs as u64)
            .map(|seed| run_named(app, "opt-r", err_rate, seed, len, window))
            .collect();
        for strategy in EXTENDED_STRATEGIES {
            let strategy_runs: Vec<RunMetrics> = if strategy == "opt-r" {
                oracle_runs.clone()
            } else {
                (0..runs as u64)
                    .map(|seed| {
                        run_with(app, build(app, strategy, seed), err_rate, seed, len, window)
                    })
                    .collect()
            };
            points.push(normalize_against_oracle(
                strategy,
                err_rate,
                &strategy_runs,
                &oracle_runs,
            ));
        }
    }
    ExtendedComparison {
        application: app.name().to_owned(),
        points,
    }
}

/// Renders the comparison as a text table.
pub fn render_extended(cmp: &ExtendedComparison, err_rates: &[f64]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "extended comparison — {} (ctxUseRate %)",
        cmp.application
    );
    let _ = write!(out, "{:>10}", "err_rate");
    for s in EXTENDED_STRATEGIES {
        let _ = write!(out, "{:>14}", s.to_uppercase());
    }
    let _ = writeln!(out);
    for &err in err_rates {
        let _ = write!(out, "{:>9.0}%", err * 100.0);
        for s in EXTENDED_STRATEGIES {
            let v = cmp
                .points
                .iter()
                .find(|p| p.strategy == s && (p.err_rate - err).abs() < 1e-9)
                .map(|p| p.ctx_use_rate)
                .unwrap_or(f64::NAN);
            let _ = write!(out, "{:>13.1} ", v * 100.0);
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctxres_apps::call_forwarding::CallForwarding;

    #[test]
    fn extended_grid_covers_all_strategies() {
        let app = CallForwarding::new();
        let cmp = extended_comparison(&app, &[0.3], 2, 150);
        assert_eq!(cmp.points.len(), EXTENDED_STRATEGIES.len());
        for s in EXTENDED_STRATEGIES {
            assert!(cmp.points.iter().any(|p| p.strategy == s), "missing {s}");
        }
        let rendered = render_extended(&cmp, &[0.3]);
        assert!(rendered.contains("D-BAD-IMPACT"));
        assert!(rendered.contains("D-RAND"));
    }

    #[test]
    fn impact_aware_is_at_least_as_good_as_plain_on_used_contexts() {
        // Impact only re-routes tie discards toward situation-irrelevant
        // contexts; used_expected should not degrade materially.
        let app = CallForwarding::new();
        let cmp = extended_comparison(&app, &[0.3], 3, 210);
        let plain = cmp.points.iter().find(|p| p.strategy == "d-bad").unwrap();
        let impact = cmp
            .points
            .iter()
            .find(|p| p.strategy == "d-bad-impact")
            .unwrap();
        assert!(
            impact.ctx_use_rate >= plain.ctx_use_rate - 0.02,
            "impact {} vs plain {}",
            impact.ctx_use_rate,
            plain.ctx_use_rate
        );
    }
}

//! Sensitivity analysis beyond the paper's grid.
//!
//! The paper evaluates at 10–40 % error ("designed based on real-life
//! observations about the RFID error rate"). Two natural questions it
//! leaves open: *where does drop-bad's heuristic break down* as errors
//! keep growing (Rule 2 assumes corrupted contexts out-participate
//! expected ones — at very high error rates corrupted contexts start
//! colliding with each other), and how sensitive the result is to the
//! *stream density* (contexts per subject per tick) that feeds the count
//! values.

use crate::metrics::{normalize_against_oracle, FigurePoint, RunMetrics};
use crate::runner::run_named;
use ctxres_apps::PervasiveApp;
use serde::{Deserialize, Serialize};

/// Results of the high-error stress sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StressSweep {
    /// Application name.
    pub application: String,
    /// One point per (strategy, error rate).
    pub points: Vec<FigurePoint>,
    /// The error rates swept.
    pub err_rates: Vec<f64>,
}

/// Sweeps the error rate well past the paper's 40 % ceiling.
pub fn stress_error_rates(
    app: &dyn PervasiveApp,
    err_rates: &[f64],
    runs: usize,
    len: usize,
) -> StressSweep {
    let window = app.recommended_window();
    let mut points = Vec::new();
    for &err in err_rates {
        let oracle: Vec<RunMetrics> = (0..runs as u64)
            .map(|seed| run_named(app, "opt-r", err, seed, len, window))
            .collect();
        for strategy in ["opt-r", "d-bad", "d-lat", "d-all"] {
            let rows: Vec<RunMetrics> = if strategy == "opt-r" {
                oracle.clone()
            } else {
                (0..runs as u64)
                    .map(|seed| run_named(app, strategy, err, seed, len, window))
                    .collect()
            };
            points.push(normalize_against_oracle(strategy, err, &rows, &oracle));
        }
    }
    StressSweep {
        application: app.name().to_owned(),
        points,
        err_rates: err_rates.to_vec(),
    }
}

/// Renders the stress sweep as a text table (ctxUseRate only).
pub fn render_stress(sweep: &StressSweep) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "high-error stress — {} (ctxUseRate %)",
        sweep.application
    );
    let _ = writeln!(
        out,
        "{:>10}{:>9}{:>9}{:>9}{:>9}",
        "err_rate", "OPT-R", "D-BAD", "D-LAT", "D-ALL"
    );
    for &err in &sweep.err_rates {
        let _ = write!(out, "{:>9.0}%", err * 100.0);
        for s in ["opt-r", "d-bad", "d-lat", "d-all"] {
            let v = sweep
                .points
                .iter()
                .find(|p| p.strategy == s && (p.err_rate - err).abs() < 1e-9)
                .map(|p| p.ctx_use_rate)
                .unwrap_or(f64::NAN);
            let _ = write!(out, "{:>9.1}", v * 100.0);
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctxres_apps::call_forwarding::CallForwarding;

    #[test]
    fn stress_covers_the_requested_grid() {
        let app = CallForwarding::new();
        let sweep = stress_error_rates(&app, &[0.2, 0.6], 1, 90);
        assert_eq!(sweep.points.len(), 8);
        let rendered = render_stress(&sweep);
        assert!(rendered.contains("60%"));
    }

    #[test]
    fn drop_bad_advantage_holds_at_moderate_error() {
        let app = CallForwarding::new();
        let sweep = stress_error_rates(&app, &[0.3], 3, 210);
        let bad = sweep.points.iter().find(|p| p.strategy == "d-bad").unwrap();
        let lat = sweep.points.iter().find(|p| p.strategy == "d-lat").unwrap();
        assert!(bad.ctx_use_rate > lat.ctx_use_rate);
    }
}

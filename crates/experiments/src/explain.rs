//! `explain` — end-to-end causal chains for resolution decisions.
//!
//! Folds a cell's event trace into a [`ProvenanceGraph`] and renders,
//! per context, the full story the paper's Fig. 7/8 life cycle implies
//! but aggregate counters hide: submission → violations (with the
//! constraint link and the bound partners) → count evolution → final
//! verdict. The cross-strategy diff joins two graphs on content
//! identity (`(kind, subject, received_at)` — independent of pool
//! numbering) and reports where two strategies running the *same*
//! seeded workload first disagree about a context's fate — e.g. the
//! first context D-LAT throws away that D-BAD's count evidence saves.

use ctxres_obs::{CauseEdge, NodeId, ProvNode, ProvStats, ProvenanceGraph};
use serde::Serialize;
use std::fmt::Write as _;

/// A context's one-word fate, judged from its provenance node.
pub fn fate(node: &ProvNode) -> &'static str {
    use ctxres_obs::TraceEvent;
    if node.discarded() {
        "discarded"
    } else if node
        .timeline
        .iter()
        .any(|r| matches!(r.event, TraceEvent::Delivered { .. }))
    {
        "delivered"
    } else if node
        .timeline
        .iter()
        .any(|r| matches!(r.event, TraceEvent::Expired { .. }))
    {
        "expired"
    } else {
        "pending"
    }
}

/// One edge as a human-readable line:
/// `t35.7 violated_by speed with [s0/ctx#9]`.
pub fn render_edge(edge: &CauseEdge) -> String {
    let mut out = format!("t{}.{} {}", edge.at, edge.seq, edge.cause);
    if let Some(c) = &edge.constraint {
        let _ = write!(out, " {c}");
    }
    if !edge.partners.is_empty() {
        let partners: Vec<String> = edge.partners.iter().map(ToString::to_string).collect();
        let _ = write!(out, " with [{}]", partners.join(", "));
    }
    if let Some(n) = edge.count {
        let _ = write!(out, " count={n}");
    }
    if let Some(v) = edge.verdict {
        let _ = write!(out, " => {v}");
    }
    out
}

/// Renders one context's full causal chain, one edge per line, with a
/// trailing completeness note (`chain complete` or the gaps).
pub fn render_chain(node: &ProvNode) -> String {
    let mut out = format!("{}", node.id);
    if let Some((kind, subject, at)) = node.identity() {
        let _ = write!(out, " {kind}/{subject} received t{at}");
    }
    let _ = writeln!(out, " — {}", fate(node));
    for edge in &node.chain {
        let _ = writeln!(out, "    {}", render_edge(edge));
    }
    let gaps = node.completeness_gaps();
    if gaps.is_empty() {
        let _ = writeln!(out, "    chain complete ({} edges)", node.chain_depth());
    } else {
        for gap in gaps {
            let _ = writeln!(out, "    ! {gap}");
        }
    }
    out
}

/// Every node whose shard-local context id is `raw`, across shards (a
/// bare `--context 12` does not know which shard pool numbered it).
pub fn nodes_for_raw_id(graph: &ProvenanceGraph, raw: u64) -> Vec<&ProvNode> {
    graph
        .nodes()
        .filter(|n| n.id.ctx == ctxres_context::ContextId::from_raw(raw))
        .collect()
}

/// The machine-readable `--json` document: the graph's summary counters
/// and the selected chains.
#[derive(Debug, Clone, Serialize)]
pub struct ExplainDoc {
    /// Cell or file label the chains came from.
    pub label: String,
    /// Graph summary counters.
    pub stats: ProvStats,
    /// Selected provenance nodes, full chains included.
    pub chains: Vec<ProvNode>,
}

impl ExplainDoc {
    /// Builds the document from a selection of nodes.
    pub fn new(label: &str, graph: &ProvenanceGraph, chains: Vec<&ProvNode>) -> Self {
        ExplainDoc {
            label: label.to_owned(),
            stats: graph.stats(),
            chains: chains.into_iter().cloned().collect(),
        }
    }
}

/// One side of a cross-strategy divergence.
#[derive(Debug, Clone, Serialize)]
pub struct DivergenceSide {
    /// Strategy label of this side.
    pub label: String,
    /// The node's id in this side's trace.
    pub id: NodeId,
    /// The context's fate under this strategy.
    pub fate: String,
    /// The full provenance node (chain + timeline).
    pub node: ProvNode,
}

/// The first context (by reception time) two strategies disagree on.
#[derive(Debug, Clone, Serialize)]
pub struct Divergence {
    /// Kind name of the diverging context.
    pub kind: String,
    /// Subject of the diverging context.
    pub subject: String,
    /// Tick the context entered both middlewares.
    pub received_at: u64,
    /// The first strategy's view.
    pub a: DivergenceSide,
    /// The second strategy's view.
    pub b: DivergenceSide,
}

/// Joins two graphs on content identity and returns the earliest
/// received context whose fate differs — `None` when the strategies
/// agree on every shared context.
pub fn first_divergence(
    label_a: &str,
    a: &ProvenanceGraph,
    label_b: &str,
    b: &ProvenanceGraph,
) -> Option<Divergence> {
    let index_a = a.by_identity();
    let index_b = b.by_identity();
    let mut shared: Vec<&(String, String, u64)> = index_a
        .keys()
        .filter(|k| index_b.contains_key(*k))
        .collect();
    shared.sort_by_key(|(kind, subject, at)| (*at, kind.clone(), subject.clone()));
    for key in shared {
        let node_a = a.node(index_a[key][0])?;
        let node_b = b.node(index_b[key][0])?;
        let (fate_a, fate_b) = (fate(node_a), fate(node_b));
        if fate_a != fate_b {
            return Some(Divergence {
                kind: key.0.clone(),
                subject: key.1.clone(),
                received_at: key.2,
                a: DivergenceSide {
                    label: label_a.to_owned(),
                    id: node_a.id,
                    fate: fate_a.to_owned(),
                    node: node_a.clone(),
                },
                b: DivergenceSide {
                    label: label_b.to_owned(),
                    id: node_b.id,
                    fate: fate_b.to_owned(),
                    node: node_b.clone(),
                },
            });
        }
    }
    None
}

/// The `--diff --json` document.
#[derive(Debug, Clone, Serialize)]
pub struct DiffDoc {
    /// First strategy label.
    pub a_label: String,
    /// Second strategy label.
    pub b_label: String,
    /// First-side graph summary.
    pub a_stats: ProvStats,
    /// Second-side graph summary.
    pub b_stats: ProvStats,
    /// Shared contexts compared.
    pub compared: usize,
    /// The earliest divergence, when one exists.
    pub divergence: Option<Divergence>,
}

/// Builds the diff document for two strategies' graphs over the same
/// seeded workload.
pub fn diff_doc(label_a: &str, a: &ProvenanceGraph, label_b: &str, b: &ProvenanceGraph) -> DiffDoc {
    let index_a = a.by_identity();
    let index_b = b.by_identity();
    let compared = index_a.keys().filter(|k| index_b.contains_key(*k)).count();
    DiffDoc {
        a_label: label_a.to_owned(),
        b_label: label_b.to_owned(),
        a_stats: a.stats(),
        b_stats: b.stats(),
        compared,
        divergence: first_divergence(label_a, a, label_b, b),
    }
}

/// Renders a divergence for humans: the join key, both fates, and both
/// full chains.
pub fn render_divergence(d: &Divergence) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "first divergence: {}/{} received t{} — {} says {}, {} says {}",
        d.kind, d.subject, d.received_at, d.a.label, d.a.fate, d.b.label, d.b.fate
    );
    let _ = writeln!(out, "--- {} ---", d.a.label);
    let _ = write!(out, "{}", render_chain(&d.a.node));
    let _ = writeln!(out, "--- {} ---", d.b.label);
    let _ = write!(out, "{}", render_chain(&d.b.node));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_named_observed;
    use ctxres_apps::call_forwarding::CallForwarding;
    use ctxres_apps::PervasiveApp;
    use ctxres_obs::ObsConfig;

    fn graph_for(strategy: &str) -> ProvenanceGraph {
        let app = CallForwarding::new();
        let (_, telemetry) = run_named_observed(
            &app,
            strategy,
            0.3,
            3,
            150,
            app.recommended_window(),
            ObsConfig::enabled(),
        );
        assert_eq!(telemetry.dropped, 0, "trace must be complete");
        ProvenanceGraph::from_records(&telemetry.trace)
    }

    #[test]
    fn every_discarded_context_has_a_complete_rendered_chain() {
        let graph = graph_for("d-bad");
        let discarded = graph.discarded();
        assert!(!discarded.is_empty(), "err 0.3 must discard something");
        for node in discarded {
            let gaps = node.completeness_gaps();
            assert!(gaps.is_empty(), "{}: {gaps:?}", node.id);
            let text = render_chain(node);
            assert!(text.contains("submission_of"), "{text}");
            assert!(text.contains("resolved_because"), "{text}");
            assert!(text.contains("chain complete"), "{text}");
        }
    }

    #[test]
    fn drop_bad_chains_carry_count_evidence() {
        let graph = graph_for("d-bad");
        let with_counts = graph
            .discarded()
            .iter()
            .filter(|n| n.chain.iter().any(|e| e.count.is_some()))
            .count();
        assert!(with_counts > 0, "d-bad verdicts cite count values");
    }

    #[test]
    fn diff_finds_where_dbad_and_dlat_diverge() {
        let a = graph_for("d-bad");
        let b = graph_for("d-lat");
        let doc = diff_doc("d-bad", &a, "d-lat", &b);
        assert!(doc.compared > 0, "same seed ⇒ shared identities");
        // And it serializes as one machine-readable document.
        let json = serde_json::to_string(&doc).unwrap();
        assert!(json.contains("\"divergence\""), "{json}");
        let d = doc
            .divergence
            .expect("err 0.3: the strategies disagree somewhere");
        assert_ne!(d.a.fate, d.b.fate);
        let text = render_divergence(&d);
        assert!(text.contains("first divergence"), "{text}");
        assert!(text.contains("d-bad"), "{text}");
    }

    #[test]
    fn same_strategy_never_diverges_from_itself() {
        let a = graph_for("d-bad");
        let b = graph_for("d-bad");
        assert!(first_divergence("a", &a, "b", &b).is_none());
    }

    #[test]
    fn explain_doc_selects_by_raw_id() {
        let graph = graph_for("d-bad");
        let first = graph.nodes().next().unwrap();
        let raw = format!("{}", first.id.ctx)
            .trim_start_matches("ctx#")
            .parse::<u64>()
            .unwrap();
        let picked = nodes_for_raw_id(&graph, raw);
        assert!(picked.iter().any(|n| n.id == first.id));
        let doc = ExplainDoc::new("cell", &graph, picked);
        assert!(!doc.chains.is_empty());
        assert_eq!(doc.stats.nodes, graph.len());
    }
}

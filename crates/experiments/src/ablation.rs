//! Ablations: the §5.3 time-window sweep and the §5.1 tie-breaker
//! comparison.

use crate::metrics::RunMetrics;
use crate::runner::run_with;
use ctxres_apps::PervasiveApp;
use ctxres_core::strategies::{DropBad, DropLatest};
use ctxres_core::{TieBreak, TiePolicy};
use serde::{Deserialize, Serialize};

/// One point of the window sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowPoint {
    /// The middleware window, in ticks.
    pub window: u64,
    /// Mean expected contexts used by drop-bad at this window.
    pub used_expected: f64,
    /// Mean survival rate.
    pub survival: f64,
    /// Mean removal precision.
    pub precision: f64,
}

/// Result of the window ablation: drop-bad across windows, plus the
/// drop-latest reference the zero window must degenerate to (§5.3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowAblation {
    /// Swept points, ascending window.
    pub points: Vec<WindowPoint>,
    /// Drop-latest at the same workload (reference line).
    pub drop_latest_used_expected: f64,
    /// Error rate used.
    pub err_rate: f64,
}

/// Sweeps the drop-bad time window over `windows` (paper §5.3: "the
/// study of impact of time window on the effectiveness of the drop-bad
/// resolution strategy would deserve exploring" — this is that study).
pub fn window_sweep(
    app: &dyn PervasiveApp,
    windows: &[u64],
    err_rate: f64,
    runs: usize,
    len: usize,
) -> WindowAblation {
    let mut points = Vec::new();
    for &window in windows {
        let mut used = 0.0;
        let mut survival = 0.0;
        let mut precision = 0.0;
        for seed in 0..runs as u64 {
            let m = run_with(app, Box::new(DropBad::new()), err_rate, seed, len, window);
            used += m.used_expected as f64;
            survival += m.survival;
            precision += m.precision;
        }
        let n = runs as f64;
        points.push(WindowPoint {
            window,
            used_expected: used / n,
            survival: survival / n,
            precision: precision / n,
        });
    }
    let mut lat_used = 0.0;
    for seed in 0..runs as u64 {
        let m = run_with(app, Box::new(DropLatest::new()), err_rate, seed, len, 0);
        lat_used += m.used_expected as f64;
    }
    WindowAblation {
        points,
        drop_latest_used_expected: lat_used / runs as f64,
        err_rate,
    }
}

/// Picks the window maximizing drop-bad's expected-context throughput
/// for a workload — how the per-application
/// [`PervasiveApp::recommended_window`] values in `ctxres-apps` were
/// chosen. Returns `(best_window, its mean used_expected)`.
pub fn calibrate_window(
    app: &dyn PervasiveApp,
    candidates: &[u64],
    err_rate: f64,
    runs: usize,
    len: usize,
) -> (u64, f64) {
    let sweep = window_sweep(app, candidates, err_rate, runs, len);
    sweep
        .points
        .into_iter()
        .map(|p| (p.window, p.used_expected))
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .expect("at least one candidate window")
}

/// Compares drop-bad tie-breaking policies (§5.1's open tie case).
pub fn tie_break_comparison(
    app: &dyn PervasiveApp,
    err_rate: f64,
    runs: usize,
    len: usize,
    window: u64,
) -> Vec<(String, Vec<RunMetrics>)> {
    [TieBreak::Latest, TieBreak::Earliest]
        .into_iter()
        .map(|tie| {
            let metrics: Vec<RunMetrics> = (0..runs as u64)
                .map(|seed| {
                    run_with(
                        app,
                        Box::new(DropBad::with_tie_break(tie)),
                        err_rate,
                        seed,
                        len,
                        window,
                    )
                })
                .collect();
            (format!("{tie:?}").to_lowercase(), metrics)
        })
        .collect()
}

/// One aggregated row of the tie-policy ablation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TiePolicyPoint {
    /// Policy name (`doomused` / `blamepeer`).
    pub policy: String,
    /// Error rate.
    pub err_rate: f64,
    /// Mean expected contexts used.
    pub used_expected: f64,
    /// Mean survival rate.
    pub survival: f64,
    /// Mean removal precision.
    pub precision: f64,
}

/// Compares the two §5.1 tie *policies* (what to do when the used
/// context ties at the maximal count value): discard it, or deliver it
/// and mark a tied rival bad.
pub fn tie_policy_comparison(
    app: &dyn PervasiveApp,
    err_rates: &[f64],
    runs: usize,
    len: usize,
    window: u64,
) -> Vec<TiePolicyPoint> {
    let mut out = Vec::new();
    for &err_rate in err_rates {
        for policy in [TiePolicy::DoomUsed, TiePolicy::BlamePeer] {
            let mut used = 0.0;
            let mut survival = 0.0;
            let mut precision = 0.0;
            for seed in 0..runs as u64 {
                let m = run_with(
                    app,
                    Box::new(DropBad::with_tie_policy(policy)),
                    err_rate,
                    seed,
                    len,
                    window,
                );
                used += m.used_expected as f64;
                survival += m.survival;
                precision += m.precision;
            }
            let n = runs as f64;
            out.push(TiePolicyPoint {
                policy: format!("{policy:?}").to_lowercase(),
                err_rate,
                used_expected: used / n,
                survival: survival / n,
                precision: precision / n,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctxres_apps::call_forwarding::CallForwarding;

    #[test]
    fn zero_window_matches_drop_latest() {
        let app = CallForwarding::new();
        let ab = window_sweep(&app, &[0, 3], 0.3, 2, 180);
        let zero = &ab.points[0];
        assert_eq!(zero.window, 0);
        assert!(
            (zero.used_expected - ab.drop_latest_used_expected).abs() < 1e-9,
            "window 0 drop-bad {} vs drop-latest {}",
            zero.used_expected,
            ab.drop_latest_used_expected
        );
    }

    #[test]
    fn wider_window_recovers_expected_contexts() {
        // §5.3: the window is what lets drop-bad outperform drop-latest;
        // with it, fewer expected contexts are lost.
        let app = CallForwarding::new();
        let ab = window_sweep(&app, &[0, 3], 0.3, 2, 180);
        assert!(
            ab.points[1].used_expected > ab.points[0].used_expected,
            "window 12 used {} not above window 0 {}",
            ab.points[1].used_expected,
            ab.points[0].used_expected
        );
    }

    #[test]
    fn calibration_recovers_the_recommended_window() {
        let app = CallForwarding::new();
        let (best, used) = calibrate_window(&app, &[0, 2, 3, 4], 0.3, 3, 240);
        assert!(used > 0.0);
        let recommended = app.recommended_window();
        assert!(
            (best as i64 - recommended as i64).abs() <= 1,
            "calibrated {best} vs recommended {recommended}"
        );
    }

    #[test]
    fn tie_policy_comparison_covers_grid() {
        let app = CallForwarding::new();
        let points = tie_policy_comparison(&app, &[0.2, 0.4], 1, 90, 3);
        assert_eq!(points.len(), 4);
        assert!(points.iter().any(|p| p.policy == "doomused"));
        assert!(points.iter().any(|p| p.policy == "blamepeer"));
    }

    #[test]
    fn tie_break_comparison_runs_both_policies() {
        let app = CallForwarding::new();
        let cmp = tie_break_comparison(&app, 0.2, 1, 90, 3);
        assert_eq!(cmp.len(), 2);
        assert_eq!(cmp[0].0, "latest");
        assert_eq!(cmp[1].0, "earliest");
        assert_eq!(cmp[0].1.len(), 1);
    }
}

//! Experiment harness regenerating every figure and table of the
//! ICDCS'08 drop-bad paper.
//!
//! | paper artifact | module | binary |
//! |----------------|--------|--------|
//! | Figure 9 (Call Forwarding: `ctxUseRate`, `sitActRate` vs error rate) | [`figures`] | `figure9` |
//! | Figure 10 (RFID data anomalies: same metrics) | [`figures`] | `figure10` |
//! | Figures 1–5 (scenario traces and per-strategy outcomes) | [`scenario_replay`] | `scenarios` |
//! | §5.2 case study (survival 96.5 %, precision 84.7 %, Rule 1 100 %, Rule 2′ 91.7 %) | [`case_study`] | `case_study` |
//! | §5.3 time-window discussion (window → 0 ⇒ drop-latest) | [`ablation`] | `ablation_window` |
//! | §5.1 tie case (open in the paper; both policies measured) | [`ablation`] | `ablation_tie` |
//! | §2.3 "unreliable" baselines + §5.1/§7 impact-aware future work | [`extended`] | `extended_comparison` |
//! | §3.4 cross-kind generality (smart-ringer workload) | [`figures`] | `cross_kind` |
//! | LANDMARC substrate validity (error vs k / grid density) | [`landmarc_knn`] | `landmarc_knn` |
//!
//! | beyond-paper sensitivity (error rates to 80 %) | [`sensitivity`] | `sensitivity` |
//! | §3.3 latency/accuracy dial (window sweep) | [`latency`] | `latency` |
//! | constraint coverage devtool | [`coverage`] | `coverage` |
//!
//! Everything at once: `all`; combined markdown: `report`. Utilities:
//! `trace_tool` (generate/inspect/stats/replay recorded traces),
//! `explain` (causal provenance chains and cross-strategy divergence
//! diffs, module [`explain`]) and `check_dsl` (stand-alone constraint
//! checking, CI-friendly).
//!
//! Each binary prints the regenerated table(s) and writes a JSON record
//! under `results/`. Absolute numbers differ from the paper (their
//! testbed was Cabot on Windows XP; ours is a simulator), but the
//! *shape* — who wins, by how much, where the gaps sit — is the
//! reproduction target (see EXPERIMENTS.md).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod bench_history;
pub mod case_study;
pub mod city;
pub mod coverage;
pub mod explain;
pub mod extended;
pub mod figures;
pub mod landmarc_knn;
pub mod latency;
pub mod metrics;
pub mod render;
pub mod runner;
pub mod scenario_replay;
pub mod sensitivity;
pub mod telemetry;
pub mod trace_io;

/// The error rates of the paper's experiments (§4.1).
pub const ERROR_RATES: [f64; 4] = [0.10, 0.20, 0.30, 0.40];

/// Runs per point ("averaged over 20 groups of experiments", §4.2).
pub const RUNS_PER_POINT: usize = 20;

/// Contexts per run (the paper does not state its trace length; 600
/// gives every subject a long history while keeping a full figure under
/// a minute in release mode).
pub const TRACE_LEN: usize = 600;

//! Per-cell telemetry: tagging one experiment cell's observability
//! record, reconstructing context life cycles from its trace, and
//! rendering the human-readable views `trace_dump` prints.
//!
//! An experiment grid is a set of `(strategy, err_rate, seed)` cells;
//! with [`crate::runner::run_named_observed`] each cell yields a
//! [`CellTelemetry`] carrying the drained event trace and the metrics
//! snapshot of that one run. From a trace, [`reconstruct_lifecycles`]
//! rebuilds each context's journey through the Fig. 8 life cycle —
//! creation, detections, count bumps, bad-marking, and the final
//! delivery/discard — which is how the acceptance check "every discarded
//! context's life cycle is reconstructable" is implemented.

use ctxres_context::{ContextId, ContextState};
use ctxres_obs::{ObsRegistry, ObsSnapshot, TailSnapshot, TraceEvent, TraceRecord, COUNTER_KINDS};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One experiment cell's full observability record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellTelemetry {
    /// Strategy paper name of the cell.
    pub strategy: String,
    /// Workload corruption probability of the cell.
    pub err_rate: f64,
    /// Workload seed of the cell.
    pub seed: u64,
    /// Point-in-time metrics (counters + histograms), taken before the
    /// trace drain so `events_buffered` reflects the run.
    pub snapshot: ObsSnapshot,
    /// The drained event trace, ordered by logical time.
    pub trace: Vec<TraceRecord>,
    /// Events evicted from full rings during the run (0 means the trace
    /// is complete).
    pub dropped: u64,
    /// The end-to-end tail-latency view (per-outcome histograms,
    /// over-p99 exemplars, speculation and queue stats), when the cell
    /// ran with [`ctxres_obs::ObsConfig::with_tail`]. `None` for
    /// tail-off runs and for records written before the field existed.
    pub tail: Option<TailSnapshot>,
}

impl CellTelemetry {
    /// Drains `registry` into a telemetry record tagged with its cell.
    pub fn collect(strategy: &str, err_rate: f64, seed: u64, registry: &ObsRegistry) -> Self {
        let snapshot = registry.snapshot();
        let tail = registry.tail_snapshot();
        CellTelemetry {
            strategy: strategy.to_owned(),
            err_rate,
            seed,
            snapshot,
            trace: registry.drain(),
            dropped: registry.dropped(),
            tail: (!tail.is_empty()).then_some(tail),
        }
    }

    /// The reconstructed life cycles of this cell's trace.
    pub fn lifecycles(&self) -> Vec<Lifecycle> {
        reconstruct_lifecycles(&self.trace)
    }
}

/// One context's reconstructed journey through the middleware: every
/// trace event involving it, in trace order.
#[derive(Debug, Clone, PartialEq)]
pub struct Lifecycle {
    /// The shard whose engine owned the context (ids are shard-local).
    pub shard: u32,
    /// The context.
    pub ctx: ContextId,
    /// Every event involving the context, in trace order.
    pub events: Vec<TraceRecord>,
}

impl Lifecycle {
    /// The tick the context entered the middleware, when traced.
    pub fn received_at(&self) -> Option<u64> {
        self.events
            .iter()
            .find(|r| matches!(r.event, TraceEvent::Received { .. }))
            .map(|r| r.at)
    }

    /// The last life-cycle state the trace saw the context in
    /// (`None` when no `StateChanged` involved it — it ended the run
    /// still `Undecided`).
    pub fn final_state(&self) -> Option<ContextState> {
        self.events.iter().rev().find_map(|r| match &r.event {
            TraceEvent::StateChanged { to, .. } => Some(*to),
            _ => None,
        })
    }

    /// The context's count-value history (each tracked inconsistency it
    /// joined bumped it once).
    pub fn count_values(&self) -> Vec<u64> {
        self.events
            .iter()
            .filter_map(|r| match &r.event {
                TraceEvent::CountBumped { count, .. } => Some(*count),
                _ => None,
            })
            .collect()
    }

    /// Whether detection ever implicated the context.
    pub fn was_detected(&self) -> bool {
        self.events
            .iter()
            .any(|r| matches!(r.event, TraceEvent::Detected { .. }))
    }

    /// Whether the context was discarded.
    pub fn was_discarded(&self) -> bool {
        self.events
            .iter()
            .any(|r| matches!(r.event, TraceEvent::Discarded { .. }))
    }

    /// Whether the context was delivered to applications.
    pub fn was_delivered(&self) -> bool {
        self.events
            .iter()
            .any(|r| matches!(r.event, TraceEvent::Delivered { .. }))
    }

    /// A one-word fate for summaries.
    pub fn fate(&self) -> &'static str {
        if self.was_discarded() {
            "discarded"
        } else if self.was_delivered() {
            "delivered"
        } else if self
            .events
            .iter()
            .any(|r| matches!(r.event, TraceEvent::Expired { .. }))
        {
            "expired"
        } else {
            "pending"
        }
    }

    /// One line: `shard 0 ctx#3: received t2, counts [1, 2], discarded`.
    pub fn summary(&self) -> String {
        let mut out = format!("shard {} {}: ", self.shard, self.ctx);
        match self.received_at() {
            Some(t) => {
                let _ = write!(out, "received t{t}");
            }
            None => out.push_str("(no receive event)"),
        }
        let counts = self.count_values();
        if !counts.is_empty() {
            let _ = write!(out, ", counts {counts:?}");
        }
        let _ = write!(out, ", {}", self.fate());
        out
    }
}

/// Groups a trace by `(shard, context)` and returns each context's life
/// cycle, ordered by shard then context id. Detection and Δ events are
/// attributed to **every** context they involve.
pub fn reconstruct_lifecycles(trace: &[TraceRecord]) -> Vec<Lifecycle> {
    let mut by_ctx: BTreeMap<(u32, ContextId), Vec<TraceRecord>> = BTreeMap::new();
    for record in trace {
        for ctx in record.event.contexts() {
            by_ctx
                .entry((record.shard, ctx))
                .or_default()
                .push(record.clone());
        }
    }
    by_ctx
        .into_iter()
        .map(|((shard, ctx), events)| Lifecycle { shard, ctx, events })
        .collect()
}

/// `StateChanged` tallies keyed `(from, to)`.
pub type TransitionCounts = BTreeMap<(ContextState, ContextState), u64>;

/// Counts the `StateChanged` transitions of a trace, keyed
/// `(from, to)`.
pub fn transition_counts(trace: &[TraceRecord]) -> TransitionCounts {
    let mut counts = BTreeMap::new();
    for record in trace {
        if let TraceEvent::StateChanged { from, to, .. } = &record.event {
            *counts.entry((*from, *to)).or_insert(0) += 1;
        }
    }
    counts
}

/// Renders a per-strategy state-transition summary table: one labelled
/// row set per `(label, trace)` pair.
///
/// ```text
/// strategy   transition                  count
/// d-bad      undecided -> consistent     42
/// d-bad      undecided -> bad            3
/// ```
pub fn render_transition_table(rows: &[(String, TransitionCounts)]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<12} {:<32} {:>8}",
        "strategy", "transition", "count"
    );
    for (label, counts) in rows {
        if counts.is_empty() {
            let _ = writeln!(out, "{label:<12} {:<32} {:>8}", "(no transitions)", 0);
            continue;
        }
        for ((from, to), n) in counts {
            let transition = format!("{from} -> {to}");
            let _ = writeln!(out, "{label:<12} {transition:<32} {n:>8}");
        }
    }
    out
}

/// One `(from, to)` row of the transition table, in a shape that
/// serializes to flat JSON (the map key `(ContextState, ContextState)`
/// does not).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransitionRow {
    /// Source state.
    pub from: ContextState,
    /// Destination state.
    pub to: ContextState,
    /// How many contexts made this transition.
    pub count: u64,
}

/// One discarded (or otherwise notable) context's reconstructed life
/// cycle, flattened for machine consumption.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct LifecycleDump {
    /// Owning shard.
    pub shard: u32,
    /// The context (ids are shard-local).
    pub ctx: ContextId,
    /// The human one-liner (`shard 0 ctx#3: received t2, …`).
    pub summary: String,
    /// `delivered` / `discarded` / `expired` / `pending`.
    pub fate: String,
    /// Tick the context entered the middleware.
    pub received_at: Option<u64>,
    /// Count-value history (one bump per tracked inconsistency).
    pub counts: Vec<u64>,
    /// Every event involving the context, in trace order.
    pub events: Vec<TraceRecord>,
}

/// Everything `trace_dump --json` emits: the full timeline, the
/// transition tallies, the SLO alert timeline, and the reconstructed
/// life cycle of every discarded context — the same views the human
/// renderer prints, as one JSON document.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TraceDumpJson {
    /// Strategy label the dump was rendered under.
    pub label: String,
    /// Total events in the trace.
    pub events: usize,
    /// The full event timeline (never elided — machines don't scroll).
    pub timeline: Vec<TraceRecord>,
    /// `StateChanged` tallies.
    pub transitions: Vec<TransitionRow>,
    /// Life cycles of every context that ended `Inconsistent`.
    pub discarded_lifecycles: Vec<LifecycleDump>,
    /// Distinct contexts the trace touches.
    pub contexts_traced: usize,
    /// How many of them were discarded.
    pub discarded: usize,
    /// Aggregated observability counters of the cell the trace came
    /// from (name → cross-shard total) — includes the compiled-eval and
    /// situation-cache counters. Empty when the dumper had no metrics
    /// snapshot alongside the trace (a bare JSONL file).
    pub counters: BTreeMap<String, u64>,
    /// Every SLO alert transition (`TraceEvent::Alert`) in the trace,
    /// in trace order — the firing/clearing timeline of the health SLO
    /// engine, pre-filtered so dashboards don't have to scan the full
    /// timeline for the `alert` tag.
    pub alerts: Vec<TraceRecord>,
    /// Every slow-batch postmortem (`TraceEvent::SlowBatch`) in the
    /// trace, in trace order — each bundles the breaching batch's wall
    /// segments, over-p99 exemplar ids, and speculation accounting.
    pub postmortems: Vec<TraceRecord>,
}

/// Builds the machine-readable dump of a trace — the `--json` face of
/// `trace_dump`.
pub fn json_dump(trace: &[TraceRecord], label: &str) -> TraceDumpJson {
    let transitions = transition_counts(trace)
        .into_iter()
        .map(|((from, to), count)| TransitionRow { from, to, count })
        .collect();
    let lifecycles = reconstruct_lifecycles(trace);
    let discarded_lifecycles: Vec<LifecycleDump> = lifecycles
        .iter()
        .filter(|l| l.final_state() == Some(ContextState::Inconsistent))
        .map(|l| LifecycleDump {
            shard: l.shard,
            ctx: l.ctx,
            summary: l.summary(),
            fate: l.fate().to_owned(),
            received_at: l.received_at(),
            counts: l.count_values(),
            events: l.events.clone(),
        })
        .collect();
    let alerts = trace
        .iter()
        .filter(|r| matches!(r.event, TraceEvent::Alert { .. }))
        .cloned()
        .collect();
    let postmortems = trace
        .iter()
        .filter(|r| matches!(r.event, TraceEvent::SlowBatch { .. }))
        .cloned()
        .collect();
    TraceDumpJson {
        label: label.to_owned(),
        events: trace.len(),
        timeline: trace.to_vec(),
        discarded: discarded_lifecycles.len(),
        transitions,
        discarded_lifecycles,
        contexts_traced: lifecycles.len(),
        counters: BTreeMap::new(),
        alerts,
        postmortems,
    }
}

/// Like [`json_dump`], but also embeds the cell's aggregated counters
/// (cross-shard totals keyed by counter name) so the `--json` document
/// carries the cache-hit/skip and compiled-eval figures next to the
/// trace they explain.
pub fn json_dump_with_snapshot(
    trace: &[TraceRecord],
    label: &str,
    snapshot: &ObsSnapshot,
) -> TraceDumpJson {
    let mut doc = json_dump(trace, label);
    let aggregate = snapshot.aggregate();
    doc.counters = COUNTER_KINDS
        .iter()
        .map(|k| (k.name().to_owned(), aggregate.counter(*k)))
        .collect();
    doc
}

/// Renders a trace as a human-readable timeline, one event per line,
/// capped at `limit` lines (0 = unlimited) with an elision note.
pub fn render_timeline(trace: &[TraceRecord], limit: usize) -> String {
    let mut out = String::new();
    let shown = if limit == 0 {
        trace.len()
    } else {
        limit.min(trace.len())
    };
    for record in &trace[..shown] {
        let _ = writeln!(out, "{record}");
    }
    if shown < trace.len() {
        let _ = writeln!(out, "... ({} more events)", trace.len() - shown);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_named_observed, DEFAULT_WINDOW};
    use ctxres_apps::call_forwarding::CallForwarding;
    use ctxres_apps::PervasiveApp;
    use ctxres_obs::ObsConfig;

    fn observed_cell() -> CellTelemetry {
        let app = CallForwarding::new();
        let (_, telemetry) = run_named_observed(
            &app,
            "d-bad",
            0.3,
            3,
            200,
            app.recommended_window(),
            ObsConfig::enabled(),
        );
        telemetry
    }

    #[test]
    fn cell_is_tagged_and_complete() {
        let cell = observed_cell();
        assert_eq!(cell.strategy, "d-bad");
        assert_eq!(cell.seed, 3);
        assert_eq!(cell.dropped, 0, "default ring must hold a full run");
        assert!(!cell.trace.is_empty());
        // The snapshot was taken pre-drain: the buffered count matches
        // the trace we got.
        assert_eq!(
            cell.snapshot.shards[0].events_buffered,
            cell.trace.len() as u64
        );
    }

    /// Satellite acceptance: every context that ends the run
    /// `Inconsistent` has a matching detection and discard event, and
    /// nothing was evicted from the ring.
    #[test]
    fn trace_is_complete_for_every_discarded_context() {
        let cell = observed_cell();
        assert_eq!(cell.dropped, 0);
        let lifecycles = cell.lifecycles();
        let discarded: Vec<&Lifecycle> = lifecycles
            .iter()
            .filter(|l| l.final_state() == Some(ContextState::Inconsistent))
            .collect();
        assert!(
            !discarded.is_empty(),
            "a 30% error rate drop-bad run must discard something"
        );
        for l in discarded {
            assert!(
                l.was_detected(),
                "{}: discarded without a detection event",
                l.ctx
            );
            assert!(
                l.was_discarded(),
                "{}: ended Inconsistent without a discard event",
                l.ctx
            );
            assert!(l.received_at().is_some(), "{}: no creation event", l.ctx);
            assert!(
                !l.count_values().is_empty(),
                "{}: drop-bad discards carry count evidence",
                l.ctx
            );
        }
    }

    #[test]
    fn every_context_lifecycle_is_reconstructable() {
        let cell = observed_cell();
        for l in cell.lifecycles() {
            // Every traced context entered through a Received event
            // (delta/detected-only entries aside, which still carry it
            // because detection follows reception in the same trace).
            assert!(l.received_at().is_some(), "{}: no receive event", l.ctx);
            assert_ne!(l.fate(), "pending", "{}: undecided after drain", l.ctx);
        }
    }

    #[test]
    fn transition_table_renders_by_strategy() {
        let cell = observed_cell();
        let counts = transition_counts(&cell.trace);
        assert!(!counts.is_empty());
        let table = render_transition_table(&[(cell.strategy.clone(), counts.clone())]);
        assert!(table.contains("d-bad"), "{table}");
        assert!(table.contains("->"), "{table}");
        // Deliveries dominate: the undecided -> consistent row exists.
        assert!(
            counts
                .keys()
                .any(|(f, t)| *f == ContextState::Undecided && *t == ContextState::Consistent),
            "{counts:?}"
        );
    }

    #[test]
    fn timeline_caps_and_elides() {
        let cell = observed_cell();
        let full = render_timeline(&cell.trace, 0);
        assert_eq!(full.lines().count(), cell.trace.len());
        let capped = render_timeline(&cell.trace, 5);
        assert_eq!(capped.lines().count(), 6, "5 events + elision note");
        assert!(capped.contains("more events"), "{capped}");
    }

    #[test]
    fn json_dump_carries_all_three_views() {
        let cell = observed_cell();
        let dump = json_dump(&cell.trace, &cell.strategy);
        assert_eq!(dump.label, "d-bad");
        assert_eq!(dump.events, cell.trace.len());
        assert_eq!(dump.timeline, cell.trace, "timeline is never elided");
        assert!(!dump.transitions.is_empty());
        let table_total: u64 = transition_counts(&cell.trace).values().sum();
        let rows_total: u64 = dump.transitions.iter().map(|r| r.count).sum();
        assert_eq!(table_total, rows_total);
        assert!(!dump.discarded_lifecycles.is_empty());
        assert_eq!(dump.discarded, dump.discarded_lifecycles.len());
        for l in &dump.discarded_lifecycles {
            assert_eq!(l.fate, "discarded");
            assert!(!l.events.is_empty());
        }
        // And it round-trips through the serializer as one document.
        let text = serde_json::to_string_pretty(&dump).unwrap();
        assert!(text.contains("\"discarded_lifecycles\""), "{text}");
        assert!(text.contains("\"timeline\""));
    }

    #[test]
    fn json_dump_surfaces_slo_alerts() {
        let cell = observed_cell();
        // A plain run raises no alerts — the pre-filtered view is empty.
        assert!(json_dump(&cell.trace, &cell.strategy).alerts.is_empty());

        // Splice an SLO transition into the trace the way the sampler
        // records it, and the dump surfaces it without a timeline scan.
        let mut trace = cell.trace.clone();
        let alert = TraceRecord {
            shard: 0,
            seq: trace.last().map(|r| r.seq + 1).unwrap_or(0),
            at: 99,
            event: TraceEvent::Alert {
                rule: "discard_rate > 0.3 for 2".to_owned(),
                metric: "discard_rate".to_owned(),
                kind: Some("rfid".to_owned()),
                value: 0.41,
                threshold: 0.3,
                firing: true,
            },
        };
        trace.push(alert.clone());
        let dump = json_dump(&trace, &cell.strategy);
        assert_eq!(dump.alerts, vec![alert]);
        assert_eq!(dump.events, trace.len(), "alerts stay in the timeline");
        let text = serde_json::to_string(&dump).unwrap();
        assert!(text.contains("\"alerts\""), "{text}");
        assert!(text.contains("discard_rate"), "{text}");
    }

    #[test]
    fn json_dump_surfaces_slow_batch_postmortems() {
        let cell = observed_cell();
        assert!(json_dump(&cell.trace, &cell.strategy)
            .postmortems
            .is_empty());

        // Splice a postmortem the way the fused ingest path records it.
        let mut trace = cell.trace.clone();
        let post = TraceRecord {
            shard: 0,
            seq: trace.last().map(|r| r.seq + 1).unwrap_or(0),
            at: 42,
            event: TraceEvent::SlowBatch {
                batch: 3,
                contexts: 128,
                elapsed_ns: 9_000_000,
                bound_ns: 5_000_000,
                phase_self_ns: vec![
                    ("index_maint".to_owned(), 1_000_000),
                    ("constraint_check".to_owned(), 6_000_000),
                    ("resolution".to_owned(), 2_000_000),
                ],
                exemplars: vec![ContextId::from_raw(7)],
                spec: ctxres_obs::SpecBatch::default(),
            },
        };
        trace.push(post.clone());
        let dump = json_dump(&trace, &cell.strategy);
        assert_eq!(dump.postmortems, vec![post]);
        assert_eq!(dump.events, trace.len(), "postmortems stay in the timeline");
        let text = serde_json::to_string(&dump).unwrap();
        assert!(text.contains("\"postmortems\""), "{text}");
        assert!(text.contains("constraint_check"), "{text}");
    }

    #[test]
    fn tail_view_rides_the_cell_when_enabled() {
        let app = CallForwarding::new();
        let (_, cell) = run_named_observed(
            &app,
            "d-bad",
            0.3,
            3,
            200,
            app.recommended_window(),
            ObsConfig::enabled(),
        );
        let tail = cell.tail.as_ref().expect("enabled preset turns tail on");
        let folded: u64 = tail
            .shards
            .iter()
            .flat_map(|s| s.outcomes.iter())
            .map(|o| o.hist.count)
            .sum();
        assert_eq!(folded, 200, "every context folds a terminal span");
        // Records written before the field existed still load
        // (`Option` deserializes a missing field as `None`).
        let (_, plain) = run_named_observed(
            &app,
            "d-bad",
            0.3,
            3,
            200,
            app.recommended_window(),
            ObsConfig::metrics_only(),
        );
        assert!(plain.tail.is_none(), "metrics_only leaves tail off");
        let json = serde_json::to_string(&plain).unwrap();
        let stripped = json.replace(",\"tail\":null", "");
        assert_ne!(stripped, json, "the field was present and removed");
        let back: CellTelemetry = serde_json::from_str(&stripped).unwrap();
        assert_eq!(back, plain, "pre-tail records still load");
    }

    #[test]
    fn json_dump_with_snapshot_exposes_cache_counters() {
        let cell = observed_cell();
        let dump = json_dump_with_snapshot(&cell.trace, &cell.strategy, &cell.snapshot);
        let counters = &dump.counters;
        assert!(counters["situation_evals"] > 0, "{counters:?}");
        assert!(counters["compiled_evals"] > 0, "{counters:?}");
        assert!(counters.contains_key("situation_cache_skips"));
        let text = serde_json::to_string(&dump).unwrap();
        assert!(text.contains("\"situation_cache_skips\""));
        // The plain dump has no snapshot to report from.
        assert!(json_dump(&cell.trace, &cell.strategy).counters.is_empty());
    }

    #[test]
    fn disabled_config_yields_empty_telemetry() {
        let app = CallForwarding::new();
        let (metrics, telemetry) = run_named_observed(
            &app,
            "d-bad",
            0.3,
            3,
            200,
            app.recommended_window(),
            ObsConfig::disabled(),
        );
        assert!(telemetry.trace.is_empty());
        assert_eq!(telemetry.dropped, 0);
        // And observation does not perturb results: the observed run
        // matches a plain run bit-for-bit.
        let plain = crate::runner::run_named(&app, "d-bad", 0.3, 3, 200, app.recommended_window());
        assert_eq!(metrics, plain);
        let _ = DEFAULT_WINDOW;
    }

    #[test]
    fn enabled_observation_does_not_change_results() {
        let app = CallForwarding::new();
        let (observed, _) = run_named_observed(
            &app,
            "d-bad",
            0.2,
            7,
            150,
            app.recommended_window(),
            ObsConfig::enabled(),
        );
        let plain = crate::runner::run_named(&app, "d-bad", 0.2, 7, 150, app.recommended_window());
        assert_eq!(observed, plain);
    }
}

//! Per-run metrics and their normalization against OPT-R.

use serde::{Deserialize, Serialize};

/// Raw counters harvested from one middleware run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Strategy name (`opt-r`, `d-bad`, …).
    pub strategy: String,
    /// The controlled corruption probability.
    pub err_rate: f64,
    /// The run's seed.
    pub seed: u64,
    /// Contexts delivered to the application that were ground-truth
    /// expected — the "number of used contexts" metric. Corrupted
    /// deliveries do not help an application use *correct* contexts, so
    /// they are counted separately.
    pub used_expected: u64,
    /// Corrupted contexts that slipped through to the application.
    pub used_corrupted: u64,
    /// Matched situation activations (rising edge agreeing with ground
    /// truth) — the "number of activated situations" metric.
    pub matched_activations: u64,
    /// Raw rising-edge activations (including spurious ones).
    pub raw_activations: u64,
    /// Contexts the strategy discarded.
    pub discarded: u64,
    /// Expected contexts wrongly discarded.
    pub discarded_expected: u64,
    /// Corrupted contexts rightly discarded.
    pub discarded_corrupted: u64,
    /// Inconsistencies detected during the run.
    pub inconsistencies: u64,
    /// §5.2 survival rate (expected kept / expected seen).
    pub survival: f64,
    /// §5.2 removal precision (corrupted / discarded).
    pub precision: f64,
    /// Mean situation-activation latency in ticks (`None` when no epoch
    /// was covered): the §3.3 accuracy-vs-latency trade-off.
    pub activation_latency: Option<f64>,
}

/// One point of a paper figure: a strategy at an error rate, averaged
/// over the per-seed normalized rates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FigurePoint {
    /// Strategy name.
    pub strategy: String,
    /// Error rate of this point.
    pub err_rate: f64,
    /// `ctxUseRate` (fraction of OPT-R's used contexts; OPT-R ≡ 1).
    pub ctx_use_rate: f64,
    /// `sitActRate` (fraction of OPT-R's matched activations).
    pub sit_act_rate: f64,
    /// Mean used contexts (diagnostic).
    pub mean_used: f64,
    /// Mean matched activations (diagnostic).
    pub mean_matched: f64,
    /// Number of seeds averaged.
    pub runs: usize,
}

/// Pairs each run with the OPT-R run of the same seed and averages the
/// normalized rates (the paper normalizes "against the reference
/// baseline" of OPT-R, §4.1).
///
/// Runs whose OPT-R partner has a zero denominator are skipped for that
/// metric (cannot normalize against nothing).
pub fn normalize_against_oracle(
    strategy: &str,
    err_rate: f64,
    runs: &[RunMetrics],
    oracle_runs: &[RunMetrics],
) -> FigurePoint {
    let mut use_rates = Vec::new();
    let mut act_rates = Vec::new();
    let mut used_sum = 0.0;
    let mut matched_sum = 0.0;
    let mut n = 0usize;
    for run in runs {
        let Some(oracle) = oracle_runs.iter().find(|o| o.seed == run.seed) else {
            continue;
        };
        n += 1;
        used_sum += run.used_expected as f64;
        matched_sum += run.matched_activations as f64;
        if oracle.used_expected > 0 {
            use_rates.push(run.used_expected as f64 / oracle.used_expected as f64);
        }
        if oracle.matched_activations > 0 {
            act_rates.push(run.matched_activations as f64 / oracle.matched_activations as f64);
        }
    }
    let avg = |v: &[f64]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    FigurePoint {
        strategy: strategy.to_owned(),
        err_rate,
        ctx_use_rate: avg(&use_rates),
        sit_act_rate: avg(&act_rates),
        mean_used: if n > 0 { used_sum / n as f64 } else { 0.0 },
        mean_matched: if n > 0 { matched_sum / n as f64 } else { 0.0 },
        runs: n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(strategy: &str, seed: u64, used: u64, matched: u64) -> RunMetrics {
        RunMetrics {
            strategy: strategy.into(),
            err_rate: 0.2,
            seed,
            used_expected: used,
            used_corrupted: 0,
            matched_activations: matched,
            raw_activations: matched,
            discarded: 0,
            discarded_expected: 0,
            discarded_corrupted: 0,
            inconsistencies: 0,
            survival: 1.0,
            precision: 1.0,
            activation_latency: None,
        }
    }

    #[test]
    fn oracle_normalizes_to_one() {
        let oracle = vec![run("opt-r", 1, 100, 10), run("opt-r", 2, 80, 8)];
        let p = normalize_against_oracle("opt-r", 0.2, &oracle, &oracle);
        assert!((p.ctx_use_rate - 1.0).abs() < 1e-12);
        assert!((p.sit_act_rate - 1.0).abs() < 1e-12);
        assert_eq!(p.runs, 2);
    }

    #[test]
    fn pairing_is_per_seed() {
        let oracle = vec![run("opt-r", 1, 100, 10), run("opt-r", 2, 50, 5)];
        let subject = vec![run("d-lat", 1, 50, 5), run("d-lat", 2, 50, 5)];
        let p = normalize_against_oracle("d-lat", 0.2, &subject, &oracle);
        // Seed 1: 0.5; seed 2: 1.0 -> mean 0.75.
        assert!((p.ctx_use_rate - 0.75).abs() < 1e-12);
    }

    #[test]
    fn missing_oracle_partner_is_skipped() {
        let oracle = vec![run("opt-r", 1, 100, 10)];
        let subject = vec![run("d-all", 1, 60, 6), run("d-all", 99, 1, 1)];
        let p = normalize_against_oracle("d-all", 0.2, &subject, &oracle);
        assert_eq!(p.runs, 1);
        assert!((p.ctx_use_rate - 0.6).abs() < 1e-12);
    }

    #[test]
    fn zero_denominator_does_not_poison() {
        let oracle = vec![run("opt-r", 1, 0, 0), run("opt-r", 2, 100, 10)];
        let subject = vec![run("d-bad", 1, 0, 0), run("d-bad", 2, 90, 9)];
        let p = normalize_against_oracle("d-bad", 0.2, &subject, &oracle);
        assert!((p.ctx_use_rate - 0.9).abs() < 1e-12);
        assert!((p.sit_act_rate - 0.9).abs() < 1e-12);
    }
}

//! End-to-end provenance completeness: every context a resolution run
//! discards must be explainable — a causal chain that opens with its
//! submission edge, carries one `violated_by` edge per detection, and
//! closes with a verdict edge — across all four paper strategies, on
//! both the sequential engine (a quick figure9-style cell) and the
//! sharded engine. An unexplainable discard means an emitter dropped
//! an edge somewhere, which is exactly what this test exists to catch.

use ctxres_apps::call_forwarding::CallForwarding;
use ctxres_apps::PervasiveApp;
use ctxres_constraint::parse_constraints;
use ctxres_context::{Context, ContextKind, LogicalTime, Point, Ticks, TruthTag};
use ctxres_core::strategies::{by_name, EXPERIMENT_STRATEGIES};
use ctxres_experiments::explain::render_chain;
use ctxres_experiments::runner::run_named_observed;
use ctxres_middleware::{Middleware, MiddlewareConfig, ShardPlan, ShardedMiddleware};
use ctxres_obs::{ObsConfig, ProvenanceGraph, TraceRecord};

/// Asserts every discarded context in `trace` explains itself fully.
/// Returns how many discarded chains were checked.
fn assert_explainable(label: &str, trace: &[TraceRecord]) -> usize {
    let graph = ProvenanceGraph::from_records(trace);
    let discarded = graph.discarded();
    for node in &discarded {
        assert!(
            !node.chain.is_empty(),
            "{label}: discarded {} has an empty causal chain",
            node.id
        );
        let gaps = node.completeness_gaps();
        assert!(
            gaps.is_empty(),
            "{label}: discarded {} has gaps {gaps:?}\n{}",
            node.id,
            render_chain(node)
        );
        let text = render_chain(node);
        assert!(text.contains("submission_of"), "{label}: {text}");
        assert!(text.contains("chain complete"), "{label}: {text}");
    }
    discarded.len()
}

#[test]
fn sequential_discards_are_fully_explainable_for_every_strategy() {
    let app = CallForwarding::new();
    let mut total = 0;
    for strategy in EXPERIMENT_STRATEGIES {
        // A quick figure9-style cell: same app/window as the figure,
        // shortened and pinned to one (err, seed) point.
        let (_, telemetry) = run_named_observed(
            &app,
            strategy,
            0.3,
            7,
            200,
            app.recommended_window(),
            ObsConfig::enabled(),
        );
        assert_eq!(telemetry.dropped, 0, "{strategy}: ring must hold the run");
        total += assert_explainable(strategy, &telemetry.trace);
    }
    assert!(total > 0, "the cells must discard something to test");
}

const SPEED: &str = "constraint speed:
    forall a: location, b: location .
      (same_subject(a, b) and seq_gap(a, b, 1)) implies velocity_le(a, b, 1.5)";

/// A teleporting multi-subject location stream: every ~7th reading
/// violates the speed bound, so each shard sees real discards.
fn location_stream(subjects: usize, per_subject: usize) -> Vec<Context> {
    let mut out = Vec::with_capacity(subjects * per_subject);
    for seq in 0..per_subject {
        for s in 0..subjects {
            let teleport = seq % 7 == 6;
            let x = if teleport { 500.0 } else { seq as f64 * 0.5 };
            out.push(
                Context::builder(ContextKind::new("location"), &format!("subj-{s:02}"))
                    .attr("pos", Point::new(x, 0.0))
                    .attr("seq", seq as i64)
                    .stamp(LogicalTime::new(seq as u64))
                    // Tag the teleports so the oracle (opt-r) also has
                    // something to discard in this stream.
                    .truth(if teleport {
                        TruthTag::Corrupted
                    } else {
                        TruthTag::Expected
                    })
                    .build(),
            );
        }
    }
    out
}

#[test]
fn sharded_discards_are_fully_explainable_for_every_strategy() {
    let contexts = location_stream(12, 21);
    let mut total = 0;
    for strategy in EXPERIMENT_STRATEGIES {
        let plan = ShardPlan::analyze(&parse_constraints(SPEED).unwrap(), 4);
        let registry = ShardedMiddleware::obs_registry(&plan, ObsConfig::enabled());
        let sharded = ShardedMiddleware::new_observed(plan, &registry, |_, obs| {
            Middleware::builder()
                .constraints(parse_constraints(SPEED).unwrap())
                .strategy(by_name(strategy, 11).expect("experiment strategy"))
                .config(MiddlewareConfig {
                    window: Ticks::new(0),
                    track_ground_truth: false,
                    retention: None,
                })
                .obs(obs)
                .build()
        });
        sharded.batch_add(&contexts);
        sharded.drain();
        assert_eq!(registry.dropped(), 0, "{strategy}: ring must hold the run");
        let trace = registry.drain();
        let label = format!("sharded/{strategy}");
        let checked = assert_explainable(&label, &trace);
        assert!(checked > 0, "{label}: the stream must discard something");
        total += checked;
    }
    assert!(total > 0);
}

//! Property-based equivalence of amortized batch ingestion.
//!
//! `Middleware::batch_add` amortizes per-kind planning and
//! `ShardedMiddleware::batch_add_owned` partitions a batch across shard
//! threads — both are optimizations with a hard contract: the verdict
//! stream must be **bit-identical** to submitting the same contexts one
//! at a time. These tests drive randomized city-workload batches
//! through all four paper strategies on both engines and require the
//! complete observable record to match — per-context submit reports,
//! middleware stats, use log, detections, observer event stream, and
//! the causal provenance chain of every discarded context.

use ctxres_constraint::parse_constraints;
use ctxres_context::{Context, Ticks};
use ctxres_core::strategies::by_name;
use ctxres_experiments::city::{CityConfig, CityWorkload};
use ctxres_experiments::explain::render_chain;
use ctxres_middleware::{
    Event, EventLog, Middleware, MiddlewareConfig, ShardPlan, ShardedMiddleware, SubmitReport,
    UseRecord,
};
use ctxres_obs::{ObsConfig, ProvenanceGraph};
use parking_lot::Mutex;
use proptest::prelude::*;
use std::sync::Arc;

const SPEED: &str = "constraint speed:
    forall a: location, b: location .
      (same_subject(a, b) and seq_gap(a, b, 1)) implies velocity_le(a, b, 1.5)";

const STRATEGIES: [&str; 4] = ["d-bad", "d-lat", "d-all", "opt-r"];

/// A small randomized city trace; tight subject counts keep per-subject
/// tracks long enough that consecutive-pair checks really fire.
fn city_trace(subjects: usize, len: usize, teleport_pct: u32, seed: u64) -> Vec<Context> {
    CityWorkload::new(CityConfig {
        subjects,
        churn_per_event: 0.01,
        teleport_rate: f64::from(teleport_pct) / 100.0,
        ttl_ticks: None,
        seed,
        ..CityConfig::default()
    })
    .batch(len)
}

fn engine(strategy: &str, seed: u64, window: u64) -> (Middleware, Arc<Mutex<EventLog>>) {
    let log = Arc::new(Mutex::new(EventLog::new()));
    let mw = Middleware::builder()
        .constraints(parse_constraints(SPEED).unwrap())
        .strategy(by_name(strategy, seed).expect("known strategy"))
        .config(MiddlewareConfig {
            window: Ticks::new(window),
            track_ground_truth: false,
            retention: None,
        })
        .observer(Box::new(Arc::clone(&log)))
        .build();
    (mw, log)
}

/// Everything a sequential run observably produces.
#[derive(Debug, PartialEq)]
struct RunRecord {
    reports: Vec<SubmitReport>,
    stats: ctxres_middleware::MiddlewareStats,
    uses: Vec<UseRecord>,
    detections: Vec<String>,
    events: Vec<Event>,
}

fn record(
    mw: &mut Middleware,
    log: &Arc<Mutex<EventLog>>,
    reports: Vec<SubmitReport>,
) -> RunRecord {
    mw.drain();
    RunRecord {
        reports,
        stats: *mw.stats(),
        uses: mw.use_log().to_vec(),
        detections: mw.detections().iter().map(|d| d.to_string()).collect(),
        events: log.lock().events().to_vec(),
    }
}

/// The sorted causal chains of every discarded context in a sharded
/// run's trace. Sorted because shard threads interleave ring writes;
/// each chain itself is per-context and must match exactly.
fn discarded_chains(registry: &ctxres_obs::ObsRegistry) -> Vec<String> {
    assert_eq!(registry.dropped(), 0, "ring must hold the whole run");
    let trace = registry.drain();
    let graph = ProvenanceGraph::from_records(&trace);
    let mut chains: Vec<String> = graph.discarded().iter().map(|n| render_chain(n)).collect();
    chains.sort();
    chains
}

/// One sharded run; `ingest` performs the actual submission.
#[allow(clippy::type_complexity)]
fn sharded_run(
    strategy: &str,
    seed: u64,
    ingest: impl FnOnce(&ShardedMiddleware),
) -> (
    ctxres_middleware::MiddlewareStats,
    Vec<(
        ctxres_context::ContextKind,
        String,
        ctxres_context::LogicalTime,
        ctxres_context::ContextState,
    )>,
    Vec<String>,
) {
    let plan = ShardPlan::analyze(&parse_constraints(SPEED).unwrap(), 4);
    let registry = ShardedMiddleware::obs_registry(&plan, ObsConfig::enabled());
    let sharded = ShardedMiddleware::new_observed(plan, &registry, |_, obs| {
        Middleware::builder()
            .constraints(parse_constraints(SPEED).unwrap())
            .strategy(by_name(strategy, seed).expect("known strategy"))
            .config(MiddlewareConfig {
                window: Ticks::new(0),
                track_ground_truth: false,
                retention: None,
            })
            .obs(obs)
            .build()
    });
    ingest(&sharded);
    sharded.drain();
    (
        sharded.stats(),
        sharded.signature(),
        discarded_chains(&registry),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// `Middleware::batch_add` produces the identical verdict stream to
    /// one-at-a-time submission: same per-context reports, stats, use
    /// log, detections, and observer events, across randomized city
    /// batches, all four strategies.
    #[test]
    fn sequential_batch_add_matches_one_at_a_time(
        subjects in 6usize..40,
        len in 60usize..220,
        teleport_pct in 5u32..30,
        seed in 0u64..1000,
        window in 0u64..3,
    ) {
        let trace = city_trace(subjects, len, teleport_pct, seed);
        for strategy in STRATEGIES {
            let (mut one, one_log) = engine(strategy, seed, window);
            let one_reports: Vec<SubmitReport> =
                trace.iter().cloned().map(|c| one.submit(c)).collect();
            let one_rec = record(&mut one, &one_log, one_reports);

            let (mut batched, batch_log) = engine(strategy, seed, window);
            let batch_reports = batched.batch_add(trace.clone());
            let batch_rec = record(&mut batched, &batch_log, batch_reports);

            prop_assert_eq!(
                &one_rec, &batch_rec,
                "batch_add diverged from sequential submission for {}", strategy
            );
        }
    }

    /// `ShardedMiddleware::batch_add_owned` agrees with per-context
    /// `submit` on stats, the pool signature, and the causal provenance
    /// chain of every discarded context.
    #[test]
    fn sharded_batch_add_matches_sequential_submission(
        subjects in 6usize..30,
        len in 60usize..180,
        teleport_pct in 5u32..30,
        seed in 0u64..1000,
    ) {
        let trace = city_trace(subjects, len, teleport_pct, seed);
        for strategy in STRATEGIES {
            let (seq_stats, seq_sig, seq_chains) = sharded_run(strategy, seed, |s| {
                for ctx in &trace {
                    s.submit(ctx.clone());
                }
            });
            let (bat_stats, bat_sig, bat_chains) = sharded_run(strategy, seed, |s| {
                s.batch_add_owned(trace.clone());
            });
            prop_assert_eq!(seq_stats, bat_stats, "stats diverged for {}", strategy);
            prop_assert_eq!(seq_sig, bat_sig, "pool signature diverged for {}", strategy);
            prop_assert_eq!(
                seq_chains, bat_chains,
                "provenance chains diverged for {}", strategy
            );
        }
    }
}

/// A fixed high-teleport cell as a plain test, so the contract is also
/// exercised on every `cargo test` without the proptest feature dance.
#[test]
fn batch_equivalence_smoke() {
    let trace = city_trace(12, 240, 20, 42);
    for strategy in STRATEGIES {
        let (mut one, one_log) = engine(strategy, 42, 0);
        let one_reports: Vec<SubmitReport> = trace.iter().cloned().map(|c| one.submit(c)).collect();
        let one_rec = record(&mut one, &one_log, one_reports);
        assert!(
            one_rec.stats.inconsistencies > 0,
            "{strategy}: the cell must detect something to be a real test"
        );

        let (mut batched, batch_log) = engine(strategy, 42, 0);
        let batch_reports = batched.batch_add(trace.clone());
        let batch_rec = record(&mut batched, &batch_log, batch_reports);
        assert_eq!(one_rec, batch_rec, "{strategy}");
    }
}

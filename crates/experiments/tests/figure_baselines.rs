//! Hash-identity of the committed figure baselines.
//!
//! The paper-scale figure grids are deterministic end to end: every
//! `(strategy, error rate, seed)` cell derives its RNG stream from a
//! stable seed, the pool's `of_kind`/`of_subject` indexes iterate in
//! `(stamp, id)` order, and the parallel fan-out reassembles results in
//! job order — so regenerating `figure9`/`figure10` must reproduce the
//! committed `results/*.json` **byte for byte**, at any thread count.
//!
//! The full grids take minutes in debug builds, so these tests run only
//! when `CTXRES_FIGURE_BASELINES=1` (CI sets it in a release-mode step);
//! otherwise they skip with a note.

use ctxres_apps::PervasiveApp;
use ctxres_experiments::figures::figure_for_parallel;
use ctxres_experiments::runner::default_threads;
use ctxres_experiments::{RUNS_PER_POINT, TRACE_LEN};
use std::path::Path;

fn baseline_path(name: &str) -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../results")
        .join(format!("{name}.json"))
}

fn assert_matches_baseline(name: &str, app: &(dyn PervasiveApp + Sync)) {
    if std::env::var("CTXRES_FIGURE_BASELINES").as_deref() != Ok("1") {
        eprintln!("{name}: skipped (set CTXRES_FIGURE_BASELINES=1 to run the paper-scale grid)");
        return;
    }
    let committed = std::fs::read_to_string(baseline_path(name))
        .unwrap_or_else(|e| panic!("committed baseline results/{name}.json unreadable: {e}"));
    let fig = figure_for_parallel(app, RUNS_PER_POINT, TRACE_LEN, default_threads());
    let regenerated = serde_json::to_string_pretty(&fig).expect("figure serializes");
    assert_eq!(
        committed, regenerated,
        "results/{name}.json drifted from regeneration — if a behavior \
         change was intentional, regenerate the baseline with the {name} bin"
    );
}

#[test]
fn figure9_json_is_hash_identical_to_baseline() {
    assert_matches_baseline(
        "figure9",
        &ctxres_apps::call_forwarding::CallForwarding::new(),
    );
}

#[test]
fn figure10_json_is_hash_identical_to_baseline() {
    assert_matches_baseline(
        "figure10",
        &ctxres_apps::rfid_anomalies::RfidAnomalies::new(),
    );
}

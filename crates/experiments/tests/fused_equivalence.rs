//! Property-based equivalence of the batch-fused checking path.
//!
//! With per-subject universal-positive constraints, `batch_add` fuses
//! the whole batch: set-pinned speculative checking, deferred index
//! maintenance, and doom-note retention compaction replace the
//! per-context pipeline. The contract is the same hard one the plain
//! batch path carries — the verdict stream must be **bit-identical** to
//! the unfused path — but here the configurations deliberately turn on
//! everything whose *timing* the fusion reorders: retention compaction
//! (doom notes must remove contexts at exactly the sequential sweep
//! positions, which `DropBad`'s Δ-member dereferences observe), finite
//! TTLs, the ground-truth shadow pool, situation rounds with the
//! dirty-kind cache, and interleaved irrelevant-kind contexts.
//!
//! Compared per run: submit reports, middleware stats (including the
//! `compacted` tally), use log, detections, observer events, checker
//! stats, the full trace-event record, the provenance chains of every
//! discarded context, and every pre-fusion observability counter. The
//! memo-table counters (`pred_memo_*`, `fused_batch_evals`) are
//! excluded — they exist only on the fused path by construction.

use ctxres_constraint::parse_constraints;
use ctxres_context::{Context, ContextKind, Ticks};
use ctxres_core::strategies::by_name;
use ctxres_experiments::city::{CityConfig, CityWorkload};
use ctxres_experiments::explain::render_chain;
use ctxres_middleware::{
    Event, EventLog, Middleware, MiddlewareConfig, ShardPlan, ShardedMiddleware, SubmitReport,
    UseRecord,
};
use ctxres_obs::{CounterKind, ObsConfig, ObsRegistry, ProvenanceGraph, TraceRecord};
use parking_lot::Mutex;
use proptest::prelude::*;
use std::sync::Arc;

const SPEED: &str = "constraint speed:
    forall a: location, b: location .
      (same_subject(a, b) and seq_gap(a, b, 1)) implies velocity_le(a, b, 1.5)";

const NEAR_ORIGIN: &str = "constraint near_origin:
    exists a: location . within(a, -5.0, -5.0, 5.0, 5.0)";

const STRATEGIES: [&str; 4] = ["d-bad", "d-lat", "d-all", "opt-r"];

/// Counters that exist on both paths and therefore must match. The
/// fused-only memo counters are deliberately absent.
const SHARED_COUNTERS: [CounterKind; 11] = [
    CounterKind::EventsRecorded,
    CounterKind::EventsDropped,
    CounterKind::Detections,
    CounterKind::Discards,
    CounterKind::Deliveries,
    CounterKind::Ingested,
    CounterKind::SituationEvals,
    CounterKind::SituationCacheSkips,
    CounterKind::CompiledEvals,
    CounterKind::ProvEdges,
    CounterKind::ProvNodes,
];

/// A randomized city trace with finite TTLs, salted with irrelevant
/// `temperature` contexts (every 7th position) so fused batches mix
/// fast-path and checked positions.
fn city_trace(subjects: usize, len: usize, teleport_pct: u32, ttl: u64, seed: u64) -> Vec<Context> {
    let base = CityWorkload::new(CityConfig {
        subjects,
        churn_per_event: 0.01,
        teleport_rate: f64::from(teleport_pct) / 100.0,
        ttl_ticks: Some(ttl),
        seed,
        ..CityConfig::default()
    })
    .batch(len);
    let mut out = Vec::with_capacity(base.len() + base.len() / 7);
    for (i, ctx) in base.into_iter().enumerate() {
        if i % 7 == 3 {
            out.push(
                Context::builder(ContextKind::new("temperature"), "room-7")
                    .attr("seq", i as i64)
                    .stamp(ctx.stamp())
                    .build(),
            );
        }
        out.push(ctx);
    }
    out
}

struct Engine {
    mw: Middleware,
    log: Arc<Mutex<EventLog>>,
    registry: Arc<ObsRegistry>,
}

fn engine(strategy: &str, seed: u64, window: u64, retention: u64, fused: bool) -> Engine {
    let log = Arc::new(Mutex::new(EventLog::new()));
    let registry = ObsRegistry::shared(ObsConfig::enabled(), 1);
    let mw = Middleware::builder()
        .constraints(parse_constraints(SPEED).unwrap())
        .situations(parse_constraints(NEAR_ORIGIN).unwrap())
        .strategy(by_name(strategy, seed).expect("known strategy"))
        .config(MiddlewareConfig {
            window: Ticks::new(window),
            track_ground_truth: true,
            retention: Some(Ticks::new(retention)),
        })
        .observer(Box::new(Arc::clone(&log)))
        .obs(registry.handle(0))
        .fused(fused)
        .build();
    Engine { mw, log, registry }
}

/// Everything a run observably produces (the fused-only counters
/// excepted).
#[derive(Debug, PartialEq)]
struct RunRecord {
    reports: Vec<SubmitReport>,
    stats: ctxres_middleware::MiddlewareStats,
    checker: ctxres_constraint::CheckerStats,
    uses: Vec<UseRecord>,
    detections: Vec<String>,
    events: Vec<Event>,
    trace: Vec<TraceRecord>,
    chains: Vec<String>,
    counters: Vec<u64>,
}

fn record(mut engine: Engine, reports: Vec<SubmitReport>) -> RunRecord {
    engine.mw.drain();
    assert_eq!(engine.registry.dropped(), 0, "ring must hold the whole run");
    let trace = engine.registry.drain();
    let graph = ProvenanceGraph::from_records(&trace);
    let mut chains: Vec<String> = graph.discarded().iter().map(|n| render_chain(n)).collect();
    chains.sort();
    let snapshot = engine.registry.snapshot();
    let merged = snapshot.aggregate();
    RunRecord {
        reports,
        stats: *engine.mw.stats(),
        checker: engine.mw.checker_stats(),
        uses: engine.mw.use_log().to_vec(),
        detections: engine
            .mw
            .detections()
            .iter()
            .map(|d| d.to_string())
            .collect(),
        events: engine.log.lock().events().to_vec(),
        trace,
        chains,
        counters: SHARED_COUNTERS.iter().map(|k| merged.counter(*k)).collect(),
    }
}

fn fused_vs_unfused(trace: &[Context], strategy: &str, seed: u64, window: u64, retention: u64) {
    let mut unfused = engine(strategy, seed, window, retention, false);
    let unfused_reports: Vec<SubmitReport> = trace
        .iter()
        .cloned()
        .map(|c| unfused.mw.submit(c))
        .collect();
    let unfused_rec = record(unfused, unfused_reports);

    let mut fused = engine(strategy, seed, window, retention, true);
    let fused_reports = fused.mw.batch_add(trace.to_vec());
    let fused_rec = record(fused, fused_reports);

    assert_eq!(
        unfused_rec, fused_rec,
        "fused batch_add diverged from unfused sequential submission for {strategy}"
    );
}

/// One sharded run with per-shard fused flag; `ingest` performs the
/// actual submission.
#[allow(clippy::type_complexity)]
fn sharded_run(
    strategy: &str,
    seed: u64,
    retention: u64,
    fused: bool,
    ingest: impl FnOnce(&ShardedMiddleware),
) -> (
    ctxres_middleware::MiddlewareStats,
    Vec<(
        ctxres_context::ContextKind,
        String,
        ctxres_context::LogicalTime,
        ctxres_context::ContextState,
    )>,
    Vec<String>,
    Vec<u64>,
) {
    let plan = ShardPlan::analyze(&parse_constraints(SPEED).unwrap(), 4);
    let registry = ShardedMiddleware::obs_registry(&plan, ObsConfig::enabled());
    let sharded = ShardedMiddleware::new_observed(plan, &registry, |_, obs| {
        Middleware::builder()
            .constraints(parse_constraints(SPEED).unwrap())
            .strategy(by_name(strategy, seed).expect("known strategy"))
            .config(MiddlewareConfig {
                window: Ticks::new(0),
                track_ground_truth: false,
                retention: Some(Ticks::new(retention)),
            })
            .obs(obs)
            .fused(fused)
            .build()
    });
    ingest(&sharded);
    sharded.drain();
    assert_eq!(registry.dropped(), 0, "ring must hold the whole run");
    let trace = registry.drain();
    let graph = ProvenanceGraph::from_records(&trace);
    let mut chains: Vec<String> = graph.discarded().iter().map(|n| render_chain(n)).collect();
    chains.sort();
    let merged = registry.snapshot().aggregate();
    (
        sharded.stats(),
        sharded.signature(),
        chains,
        SHARED_COUNTERS.iter().map(|k| merged.counter(*k)).collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Fused `batch_add` produces the identical verdict stream to
    /// unfused one-at-a-time submission under retention compaction,
    /// TTL'd contexts, ground-truth tracking, situations, and mixed
    /// relevant/irrelevant kinds, across all four strategies.
    #[test]
    fn fused_batch_add_matches_unfused_sequential(
        subjects in 4usize..24,
        len in 60usize..200,
        teleport_pct in 5u32..30,
        ttl in 10u64..50,
        retention in 8u64..40,
        seed in 0u64..1000,
        window in 0u64..3,
    ) {
        let trace = city_trace(subjects, len, teleport_pct, ttl, seed);
        for strategy in STRATEGIES {
            fused_vs_unfused(&trace, strategy, seed, window, retention);
        }
    }

    /// The sharded engine with fused shard engines agrees with the
    /// sharded engine with unfused ones on stats, pool signatures,
    /// provenance chains, and counters.
    #[test]
    fn sharded_fused_matches_sharded_unfused(
        subjects in 4usize..20,
        len in 60usize..160,
        teleport_pct in 5u32..30,
        ttl in 10u64..50,
        retention in 8u64..40,
        seed in 0u64..1000,
    ) {
        let trace = city_trace(subjects, len, teleport_pct, ttl, seed);
        for strategy in STRATEGIES {
            let (a_stats, a_sig, a_chains, a_counters) =
                sharded_run(strategy, seed, retention, false, |s| {
                    s.batch_add_owned(trace.clone());
                });
            let (b_stats, b_sig, b_chains, b_counters) =
                sharded_run(strategy, seed, retention, true, |s| {
                    s.batch_add_owned(trace.clone());
                });
            prop_assert_eq!(a_stats, b_stats, "stats diverged for {}", strategy);
            prop_assert_eq!(a_sig, b_sig, "pool signature diverged for {}", strategy);
            prop_assert_eq!(a_chains, b_chains, "provenance chains diverged for {}", strategy);
            prop_assert_eq!(a_counters, b_counters, "counters diverged for {}", strategy);
        }
    }
}

/// A fixed cell that provably exercises the machinery under test:
/// detections fire, retention compaction removes contexts (so the doom
/// notes and the sequential sweeps must agree on removal positions),
/// and duplicate subjects land in single subject groups.
#[test]
fn fused_equivalence_smoke() {
    let trace = city_trace(8, 400, 20, 24, 42);
    for strategy in STRATEGIES {
        let mut unfused = engine(strategy, 42, 0, 16, false);
        let unfused_reports: Vec<SubmitReport> = trace
            .iter()
            .cloned()
            .map(|c| unfused.mw.submit(c))
            .collect();
        let unfused_rec = record(unfused, unfused_reports);
        assert!(
            unfused_rec.stats.inconsistencies > 0,
            "{strategy}: the cell must detect something to be a real test"
        );
        assert!(
            unfused_rec.stats.compacted > 0,
            "{strategy}: the cell must compact something to exercise doom notes"
        );

        let mut fused = engine(strategy, 42, 0, 16, true);
        let fused_reports = fused.mw.batch_add(trace.clone());
        let fused_rec = record(fused, fused_reports);
        assert_eq!(unfused_rec, fused_rec, "{strategy}");
    }
}

/// Ineligible constraint sets (here: an existential situation deployed
/// *as a constraint*, which is not universal-positive) silently fall
/// back to the unfused batch path — same verdicts, no fused counters.
#[test]
fn ineligible_constraints_fall_back_to_unfused() {
    let constraints = format!("{SPEED}\n{NEAR_ORIGIN}");
    let registry = ObsRegistry::shared(ObsConfig::enabled(), 1);
    let mut mw = Middleware::builder()
        .constraints(parse_constraints(&constraints).unwrap())
        .strategy(by_name("d-lat", 1).expect("known strategy"))
        .obs(registry.handle(0))
        .fused(true)
        .build();
    mw.batch_add(city_trace(6, 120, 20, 30, 7));
    mw.drain();
    let merged = registry.snapshot().aggregate();
    assert_eq!(
        merged.counter(CounterKind::FusedBatchEvals),
        0,
        "ineligible constraint set must not take the fused path"
    );
}

/// Eligible runs actually take the fused path and the memo table
/// actually serves hits (the counters the unfused path never emits).
/// Every SPEED predicate reads the pinned slot, so that constraint
/// bypasses the memo by design; the guard `has_attr(b, "pos")` reads
/// only the unpinned slot and is the class of site the memo serves.
#[test]
fn fused_path_reports_memo_counters() {
    let guarded = "constraint guarded:
        forall a: location, b: location .
          (same_subject(a, b) and seq_gap(a, b, 1) and has_attr(b, \"pos\"))
          implies velocity_le(a, b, 1.5)";
    let registry = ObsRegistry::shared(ObsConfig::enabled(), 1);
    let mut mw = Middleware::builder()
        .constraints(parse_constraints(guarded).unwrap())
        .strategy(by_name("d-bad", 1).expect("known strategy"))
        .obs(registry.handle(0))
        .fused(true)
        .build();
    mw.batch_add(city_trace(6, 200, 20, 60, 9));
    mw.drain();
    let merged = registry.snapshot().aggregate();
    assert_eq!(merged.counter(CounterKind::FusedBatchEvals), 1);
    assert!(
        merged.counter(CounterKind::PredMemoMisses) > 0,
        "pin-free sites must populate the memo"
    );
    assert!(
        merged.counter(CounterKind::PredMemoHits) > 0,
        "repeat subjects must replay memoized verdicts"
    );
}

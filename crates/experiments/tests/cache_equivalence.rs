//! Property-based equivalence of the dirty-kind situation cache.
//!
//! The cache is an optimization with a hard contract: with it on or
//! off, every paper metric must be **bit-identical** — the `dirty` flag
//! still decides when an evaluation round happens, the dirty sets only
//! decide which situations re-evaluate within it, and a skipped
//! situation's replayed status must equal what a full re-evaluation
//! would have produced. These tests drive randomized workload cells of
//! both applications through all four strategies twice — once with the
//! cache (the default), once with `.situation_cache(false)` — and
//! require the complete observable record to match.

use ctxres_apps::call_forwarding::CallForwarding;
use ctxres_apps::rfid_anomalies::RfidAnomalies;
use ctxres_apps::PervasiveApp;
use ctxres_context::Ticks;
use ctxres_core::strategies::by_name;
use ctxres_middleware::{Middleware, MiddlewareConfig, UseRecord};
use proptest::prelude::*;

/// Everything a run observably produces, for exact comparison.
#[derive(Debug, PartialEq)]
struct RunRecord {
    stats: ctxres_middleware::MiddlewareStats,
    matched: u64,
    latency: Option<f64>,
    uses: Vec<UseRecord>,
    detections: usize,
    pinned_evals: u64,
    full_evals: u64,
}

fn run_cell(
    app: &dyn PervasiveApp,
    strategy: &str,
    err_rate: f64,
    seed: u64,
    len: usize,
    cache: bool,
) -> RunRecord {
    let strategy = by_name(strategy, seed).expect("known strategy");
    let mut mw = Middleware::builder()
        .constraints(app.constraints())
        .situations(app.situations())
        .registry(app.registry())
        .strategy(strategy)
        .situation_cache(cache)
        .config(MiddlewareConfig {
            window: Ticks::new(app.recommended_window()),
            track_ground_truth: true,
            retention: None,
        })
        .build();
    for ctx in app.generate(err_rate, seed, len) {
        mw.submit(ctx);
    }
    mw.drain();
    RunRecord {
        stats: *mw.stats(),
        matched: mw.matched_activations(),
        latency: mw.mean_activation_latency(),
        uses: mw.use_log().to_vec(),
        detections: mw.detections().len(),
        pinned_evals: mw.checker_stats().pinned_evals,
        full_evals: mw.checker_stats().full_evals,
    }
}

fn apps() -> Vec<Box<dyn PervasiveApp>> {
    vec![
        Box::new(CallForwarding::new()),
        Box::new(RfidAnomalies::new()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Cache on and cache off agree bit-for-bit on every metric, across
    /// randomized `(err_rate, seed, len)` cells, all four strategies,
    /// both applications.
    #[test]
    fn cache_is_metric_transparent(
        err_pct in 0u32..=50,
        seed in 0u64..1000,
        len in 40usize..120,
    ) {
        let err_rate = f64::from(err_pct) / 100.0;
        for app in apps() {
            for strategy in ["d-bad", "d-lat", "d-all", "opt-r"] {
                let cached = run_cell(app.as_ref(), strategy, err_rate, seed, len, true);
                let naive = run_cell(app.as_ref(), strategy, err_rate, seed, len, false);
                prop_assert_eq!(
                    &cached, &naive,
                    "cache changed observable results for {} / {}",
                    app.name(), strategy
                );
            }
        }
    }
}

/// A fixed high-churn cell as a plain test, so the contract is also
/// exercised on every `cargo test` without the proptest feature dance.
#[test]
fn cache_equivalence_smoke() {
    for app in apps() {
        for strategy in ["d-bad", "opt-r"] {
            let cached = run_cell(app.as_ref(), strategy, 0.3, 3, 200, true);
            let naive = run_cell(app.as_ref(), strategy, 0.3, 3, 200, false);
            assert_eq!(cached, naive, "{} / {}", app.name(), strategy);
        }
    }
}

//! Property-based tests for the constraint language:
//!
//! * the printer and parser are mutual inverses on the formula AST;
//! * incremental (pinned) detection accumulates exactly the violations a
//!   full check finds, on randomized context streams;
//! * evaluation is deterministic.

use ctxres_constraint::{
    parse_constraints, parse_formula, simplify, Constraint, Evaluator, Formula, IncrementalChecker,
    Link, PredicateRegistry, Quantifier, Term,
};
use ctxres_context::{Context, ContextKind, ContextPool, ContextValue, LogicalTime, Point};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,6}".prop_filter("not a keyword", |s| {
        !matches!(
            s.as_str(),
            "forall"
                | "exists"
                | "and"
                | "or"
                | "implies"
                | "not"
                | "true"
                | "false"
                | "constraint"
        )
    })
}

fn term() -> impl Strategy<Value = Term> {
    prop_oneof![
        ident().prop_map(Term::Var),
        (ident(), ident()).prop_map(|(v, a)| Term::Attr(v, a)),
        any::<i32>().prop_map(|n| Term::Const(ContextValue::Int(i64::from(n)))),
        (-1000i32..1000, 1u32..1000)
            .prop_map(|(a, b)| Term::Const(ContextValue::Float(f64::from(a) + 1.0 / f64::from(b)))),
        "[a-z ]{0,8}".prop_map(|s| Term::Const(ContextValue::Text(s))),
        any::<bool>().prop_map(|b| Term::Const(ContextValue::Bool(b))),
    ]
}

fn formula() -> impl Strategy<Value = Formula> {
    let leaf = prop_oneof![
        Just(Formula::True),
        Just(Formula::False),
        (ident(), proptest::collection::vec(term(), 0..4))
            .prop_map(|(name, args)| Formula::pred(&name, args)),
    ];
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.implies(b)),
            inner.clone().prop_map(Formula::not),
            (ident(), ident(), inner.clone()).prop_map(|(v, k, body)| Formula::forall(
                &v,
                k.as_str(),
                body
            )),
            (ident(), ident(), inner).prop_map(|(v, k, body)| Formula::exists(
                &v,
                k.as_str(),
                body
            )),
        ]
    })
}

proptest! {
    /// print ∘ parse = id on formulas.
    #[test]
    fn parser_inverts_printer(f in formula()) {
        let printed = f.to_string();
        let reparsed = parse_formula(&printed)
            .unwrap_or_else(|e| panic!("failed to reparse {printed:?}: {e}"));
        prop_assert_eq!(&reparsed, &f, "printed: {}", printed);
        // And printing again is a fixpoint.
        prop_assert_eq!(reparsed.to_string(), printed);
    }

    /// Constraint analysis (qids, kinds, polarity) never panics and is
    /// self-consistent.
    #[test]
    fn constraint_analysis_is_consistent(f in formula()) {
        let c = Constraint::new("p", f);
        prop_assert_eq!(c.quantifier_count(), c.formula().quantifiers().len());
        for kind in c.kinds() {
            prop_assert!(c.is_relevant_to(kind));
            prop_assert!(!c.quantifiers_over(kind).is_empty());
        }
    }
}

/// Abstract interpreter for the simplifier equivalence check: predicate
/// atoms are propositions keyed by name (arguments ignored, which is
/// exactly the abstraction level the simplifier works at), and
/// quantifier domains are uniformly empty or uniformly singleton.
fn abstract_eval(f: &Formula, truth: &dyn Fn(&str) -> bool, empty_domains: bool) -> bool {
    match f {
        Formula::True => true,
        Formula::False => false,
        Formula::Not(a) => !abstract_eval(a, truth, empty_domains),
        Formula::And(a, b) => {
            abstract_eval(a, truth, empty_domains) && abstract_eval(b, truth, empty_domains)
        }
        Formula::Or(a, b) => {
            abstract_eval(a, truth, empty_domains) || abstract_eval(b, truth, empty_domains)
        }
        Formula::Implies(a, b) => {
            !abstract_eval(a, truth, empty_domains) || abstract_eval(b, truth, empty_domains)
        }
        Formula::Quant { q, body, .. } => match (q, empty_domains) {
            (Quantifier::Forall, true) => true,
            (Quantifier::Exists, true) => false,
            (_, false) => abstract_eval(body, truth, empty_domains),
        },
        Formula::Pred(call) => truth(&call.name),
    }
}

proptest! {
    /// Simplification preserves truth under every propositional
    /// assignment and both domain regimes, and never grows the formula.
    #[test]
    fn simplify_preserves_truth(f in formula(), seed in any::<u64>()) {
        let simplified = simplify(f.clone());
        let truth = move |name: &str| {
            // A deterministic pseudo-random assignment derived from the
            // predicate name and the seed.
            let mut h = seed;
            for b in name.bytes() {
                h = h.wrapping_mul(0x100000001b3).wrapping_add(u64::from(b));
            }
            h.count_ones() % 2 == 0
        };
        for empty in [false, true] {
            prop_assert_eq!(
                abstract_eval(&f, &truth, empty),
                abstract_eval(&simplified, &truth, empty),
                "formula {} vs simplified {} (empty domains: {})",
                f,
                simplified,
                empty
            );
        }
        prop_assert!(simplified.to_string().len() <= f.to_string().len() + 2);
        // Simplification is idempotent.
        prop_assert_eq!(simplify(simplified.clone()), simplified);
    }
}

/// A randomized walk with teleport outliers; returns the pool.
fn walk_pool(positions: &[(i8, bool)]) -> ContextPool {
    let mut pool = ContextPool::new();
    let mut x = 0.0;
    for (i, (step, outlier)) in positions.iter().enumerate() {
        x += f64::from(*step) / 128.0; // |step| < 1: always legal
        let pos = if *outlier {
            Point::new(x + 50.0, 50.0)
        } else {
            Point::new(x, 0.0)
        };
        pool.insert(
            Context::builder(ContextKind::new("location"), "p")
                .attr("pos", pos)
                .attr("seq", i as i64)
                .stamp(LogicalTime::new(i as u64))
                .build(),
        );
    }
    pool
}

const SPEED: &str = "constraint gap1:
    forall a: location, b: location .
      (same_subject(a, b) and seq_gap(a, b, 1)) implies velocity_le(a, b, 1.5)
 constraint gap2:
    forall a: location, b: location .
      (same_subject(a, b) and seq_gap(a, b, 2)) implies velocity_le(a, b, 1.5)";

proptest! {
    /// The lexer/parser never panic, whatever bytes arrive.
    #[test]
    fn parser_never_panics(input in "\\PC{0,120}") {
        let _ = parse_formula(&input);
        let _ = parse_constraints(&input);
    }

    /// Incremental detection over a stream accumulates exactly the full
    /// check's violations.
    #[test]
    fn incremental_equals_full(
        positions in proptest::collection::vec((any::<i8>(), proptest::bool::weighted(0.2)), 1..40)
    ) {
        let registry = PredicateRegistry::with_builtins();
        let constraints = parse_constraints(SPEED).unwrap();
        let mut checker = IncrementalChecker::new(constraints.clone().into_iter().collect());

        // Stream the contexts through the incremental checker.
        let mut pool = ContextPool::new();
        let mut incremental: BTreeSet<(String, Link)> = BTreeSet::new();
        let full_pool = walk_pool(&positions);
        for (id, ctx) in full_pool.iter() {
            let new_id = pool.insert(ctx.clone());
            prop_assert_eq!(new_id, id);
            for d in checker
                .on_added(&registry, &pool, ctx.stamp(), new_id)
                .unwrap()
            {
                incremental.insert((d.constraint, d.link));
            }
        }

        // Full evaluation over the final pool.
        let evaluator = Evaluator::new(&registry);
        let now = LogicalTime::new(positions.len() as u64);
        let mut full: BTreeSet<(String, Link)> = BTreeSet::new();
        for c in &constraints {
            for link in evaluator.check(c, &pool, now).unwrap().violations {
                full.insert((c.name().to_owned(), link));
            }
        }
        prop_assert_eq!(incremental, full);
    }

    /// Checking is deterministic.
    #[test]
    fn checking_is_deterministic(
        positions in proptest::collection::vec((any::<i8>(), proptest::bool::weighted(0.3)), 1..25)
    ) {
        let registry = PredicateRegistry::with_builtins();
        let constraints = parse_constraints(SPEED).unwrap();
        let pool = walk_pool(&positions);
        let evaluator = Evaluator::new(&registry);
        let now = LogicalTime::new(positions.len() as u64);
        for c in &constraints {
            let a = evaluator.check(c, &pool, now).unwrap();
            let b = evaluator.check(c, &pool, now).unwrap();
            prop_assert_eq!(a, b);
        }
    }

    /// Every violation link names only contexts that exist in the pool,
    /// and outliers are the only walks that violate.
    #[test]
    fn violations_are_well_formed(
        positions in proptest::collection::vec((any::<i8>(), proptest::bool::weighted(0.25)), 2..30)
    ) {
        let registry = PredicateRegistry::with_builtins();
        let constraints = parse_constraints(SPEED).unwrap();
        let pool = walk_pool(&positions);
        let evaluator = Evaluator::new(&registry);
        let now = LogicalTime::new(positions.len() as u64);
        let any_outlier = positions.iter().any(|(_, o)| *o);
        let mut violated = false;
        for c in &constraints {
            let outcome = evaluator.check(c, &pool, now).unwrap();
            violated |= !outcome.satisfied;
            for link in &outcome.violations {
                prop_assert!(!link.is_empty());
                for id in link {
                    prop_assert!(pool.contains(*id));
                }
            }
        }
        if !any_outlier {
            prop_assert!(!violated, "clean walk must satisfy the velocity constraints");
        }
    }
}

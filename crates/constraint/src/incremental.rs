//! Incremental inconsistency detection (ICSE'06 style).
//!
//! When a context arrives, only the constraints quantifying over its kind
//! can newly be violated, and — within the universal-positive fragment —
//! only through bindings that include the new context. The checker
//! therefore re-evaluates each affected constraint once per quantifier of
//! the matching kind, with that quantifier's domain *pinned* to the new
//! context. Constraints outside the fragment fall back to full
//! re-evaluation with link diffing.

use crate::compile::{CompiledConstraint, CompiledEvaluator, EvalScratch, PredMemo};
use crate::constraint::ConstraintSet;
use crate::error::EvalError;
use crate::eval::Link;
use crate::predicate::PredicateRegistry;
use ctxres_context::{ContextId, ContextKind, ContextPool, LogicalTime};
use std::collections::{BTreeSet, HashMap};

/// One newly detected context inconsistency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Detection {
    /// Name of the violated constraint.
    pub constraint: String,
    /// The contexts forming the inconsistency.
    pub link: Link,
}

/// Counters for instrumentation and the incremental-vs-full benches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckerStats {
    /// Pinned (incremental) constraint evaluations performed.
    pub pinned_evals: u64,
    /// Full constraint evaluations performed (fallback path).
    pub full_evals: u64,
    /// Evaluations (pinned or full) served by a compiled program rather
    /// than the AST walker.
    pub compiled_evals: u64,
    /// Total detections returned.
    pub detections: u64,
}

/// A precomputed checking plan for one context kind: which constraints a
/// context of the kind can newly violate, and how each one is checked.
/// [`IncrementalChecker::plan_for`] builds it once per distinct kind in a
/// batch, so [`IncrementalChecker::on_added_planned`] skips the
/// per-context relevance scan and quantifier-position allocation that
/// [`IncrementalChecker::on_added`] repeats for every submission.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct KindPlan {
    steps: Vec<PlanStep>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct PlanStep {
    /// Index into the checker's constraint set.
    constraint: usize,
    /// Quantifier ids to pin for a universal-positive constraint;
    /// `None` selects the full-check-and-diff fallback.
    pinned_qids: Option<Vec<usize>>,
}

impl KindPlan {
    /// Whether contexts of the planned kind can affect any constraint.
    pub fn is_relevant(&self) -> bool {
        !self.steps.is_empty()
    }
}

/// Checker-counter deltas produced by one
/// [`IncrementalChecker::check_with_plan`] call. The batch loop folds
/// them back with [`IncrementalChecker::absorb_batch_counts`] so
/// [`CheckerStats`] end up identical to a sequential run — including
/// the partial tallies of a check that errored mid-plan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCounts {
    /// Pinned evaluations performed (one per planned quantifier, bumped
    /// before the evaluation so an error leaves the same partial count
    /// the sequential path would).
    pub pinned_evals: u64,
    /// Compiled-program evaluations (one per planned quantifier; the
    /// internal truth-then-evidence split is not double-counted).
    pub compiled_evals: u64,
    /// Detections returned (zero when the check errored).
    pub detections: u64,
}

impl PlanCounts {
    /// Folds another call's deltas into this accumulator.
    pub fn absorb(&mut self, other: PlanCounts) {
        self.pinned_evals += other.pinned_evals;
        self.compiled_evals += other.compiled_evals;
        self.detections += other.detections;
    }
}

/// Stateful incremental checker over a deployed [`ConstraintSet`].
///
/// ```
/// use ctxres_constraint::{parse_constraints, IncrementalChecker, PredicateRegistry};
/// use ctxres_context::{Context, ContextKind, ContextPool, LogicalTime, Point};
///
/// let constraints = parse_constraints(
///     "constraint region: forall a: location . within(a, 0.0, 0.0, 10.0, 10.0)",
/// )?;
/// let mut checker = IncrementalChecker::new(constraints.into_iter().collect());
/// let registry = PredicateRegistry::with_builtins();
/// let mut pool = ContextPool::new();
///
/// let id = pool.insert(
///     Context::builder(ContextKind::new("location"), "peter")
///         .attr("pos", Point::new(50.0, 50.0))
///         .build(),
/// );
/// let found = checker.on_added(&registry, &pool, LogicalTime::new(1), id)?;
/// assert_eq!(found.len(), 1);
/// assert!(found[0].link.contains(&id));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct IncrementalChecker {
    constraints: ConstraintSet,
    /// Compiled programs, parallel to `constraints`. `None` only for a
    /// constraint that fails to compile (e.g. an unbound variable, which
    /// the AST evaluator would also reject — at evaluation time).
    compiled: Vec<Option<CompiledConstraint>>,
    scratch: EvalScratch,
    known: HashMap<String, BTreeSet<Link>>,
    stats: CheckerStats,
}

impl IncrementalChecker {
    /// Creates a checker for the given constraints, compiling each once
    /// at deploy time.
    pub fn new(constraints: ConstraintSet) -> Self {
        let compiled = constraints
            .iter()
            .map(|c| CompiledConstraint::compile(c).ok())
            .collect();
        IncrementalChecker {
            constraints,
            compiled,
            scratch: EvalScratch::new(),
            known: HashMap::new(),
            stats: CheckerStats::default(),
        }
    }

    /// The deployed constraints.
    pub fn constraints(&self) -> &ConstraintSet {
        &self.constraints
    }

    /// Whether contexts of `kind` are relevant to any constraint.
    pub fn is_relevant(&self, kind: &ContextKind) -> bool {
        self.constraints.any_relevant_to(kind)
    }

    /// Instrumentation counters.
    pub fn stats(&self) -> CheckerStats {
        self.stats
    }

    /// Detects the inconsistencies newly introduced by context `id`
    /// (already inserted into `pool`).
    ///
    /// Universal-positive constraints are checked by pinning; others by
    /// full re-evaluation diffed against the previous violation set.
    ///
    /// # Errors
    ///
    /// Propagates [`EvalError`] from predicate evaluation.
    pub fn on_added(
        &mut self,
        registry: &PredicateRegistry,
        pool: &ContextPool,
        now: LogicalTime,
        id: ContextId,
    ) -> Result<Vec<Detection>, EvalError> {
        let Some(ctx) = pool.get(id) else {
            return Ok(Vec::new());
        };
        let plan = self.plan_for(&ctx.kind().clone());
        self.on_added_planned(&plan, registry, pool, now, id)
    }

    /// Builds the checking plan for contexts of `kind`: one step per
    /// relevant constraint, with the quantifier positions to pin
    /// resolved once. Batch submission builds this once per distinct
    /// kind instead of re-deriving it for every context.
    pub fn plan_for(&self, kind: &ContextKind) -> KindPlan {
        let steps = self
            .constraints
            .iter()
            .enumerate()
            .filter(|(_, c)| c.is_relevant_to(kind))
            .map(|(i, c)| PlanStep {
                constraint: i,
                pinned_qids: c.is_universal_positive().then(|| c.quantifiers_over(kind)),
            })
            .collect();
        KindPlan { steps }
    }

    /// [`IncrementalChecker::on_added`] with the per-kind plan already
    /// built. `plan` must come from [`IncrementalChecker::plan_for`] on
    /// this checker with the kind of context `id` — the verdict stream
    /// is then identical to `on_added`'s.
    ///
    /// # Errors
    ///
    /// Propagates [`EvalError`] from predicate evaluation.
    pub fn on_added_planned(
        &mut self,
        plan: &KindPlan,
        registry: &PredicateRegistry,
        pool: &ContextPool,
        now: LogicalTime,
        id: ContextId,
    ) -> Result<Vec<Detection>, EvalError> {
        if !pool.contains(id) {
            return Ok(Vec::new());
        }
        let evaluator = CompiledEvaluator::new(registry);
        let mut out = Vec::new();
        let IncrementalChecker {
            constraints,
            compiled,
            scratch,
            known,
            stats,
        } = self;
        let constraints = constraints.iter().as_slice();
        for step in &plan.steps {
            let constraint = &constraints[step.constraint];
            let program = &compiled[step.constraint];
            if let Some(qids) = &step.pinned_qids {
                let mut links: BTreeSet<Link> = BTreeSet::new();
                for &qid in qids {
                    stats.pinned_evals += 1;
                    let outcome = match program {
                        Some(cc) => {
                            stats.compiled_evals += 1;
                            evaluator.check_pinned(cc, pool, now, qid, id, scratch)?
                        }
                        None => crate::eval::Evaluator::new(registry)
                            .check_pinned(constraint, pool, now, qid, id)?,
                    };
                    links.extend(outcome.violations);
                }
                for link in links {
                    out.push(Detection {
                        constraint: constraint.name().to_owned(),
                        link,
                    });
                }
            } else {
                stats.full_evals += 1;
                let outcome = match program {
                    Some(cc) => {
                        stats.compiled_evals += 1;
                        evaluator.check(cc, pool, now, scratch)?
                    }
                    None => crate::eval::Evaluator::new(registry).check(constraint, pool, now)?,
                };
                let seen = known.entry(constraint.name().to_owned()).or_default();
                let fresh: Vec<Link> = outcome
                    .violations
                    .iter()
                    .filter(|l| !seen.contains(*l))
                    .cloned()
                    .collect();
                *seen = outcome.violations.into_iter().collect();
                for link in fresh {
                    out.push(Detection {
                        constraint: constraint.name().to_owned(),
                        link,
                    });
                }
            }
        }
        self.stats.detections += out.len() as u64;
        Ok(out)
    }

    /// Whether the deployed set is eligible for batch-fused checking:
    /// every constraint compiled, lies in the universal-positive
    /// fragment (so plans pin — the stateful full-check-and-diff
    /// fallback never runs), and carries a per-subject scope proof (so a
    /// pinned check's footprint is exactly the pinned subject's bucket,
    /// making disjoint-subject groups safe to check concurrently).
    pub fn supports_batch_fusion(&self) -> bool {
        self.compiled.iter().all(|p| {
            p.as_ref()
                .is_some_and(|cc| cc.is_universal_positive() && cc.is_per_subject())
        })
    }

    /// Stateless, read-only twin of
    /// [`on_added_planned`](IncrementalChecker::on_added_planned) for
    /// the batch-fused path: the whole batch is already in `pool`, and
    /// capping every quantifier domain at `max_id` (the checked
    /// context's own id) reproduces the pool a sequential submission
    /// would have seen at that arrival position. Detections, their
    /// order, and error outcomes are byte-identical to the sequential
    /// call; counter deltas are returned in [`PlanCounts`] instead of
    /// being applied, so disjoint-subject workers can share `&self`.
    ///
    /// Requires [`supports_batch_fusion`]
    /// (IncrementalChecker::supports_batch_fusion) — every plan step
    /// pins a compiled program.
    ///
    /// Errors are returned in the tuple (not via `?`) so the partial
    /// counts accompany them, exactly as a sequential error would leave
    /// partially bumped [`CheckerStats`].
    #[allow(clippy::too_many_arguments)]
    pub fn check_with_plan(
        &self,
        plan: &KindPlan,
        registry: &PredicateRegistry,
        pool: &ContextPool,
        now: LogicalTime,
        id: ContextId,
        max_id: ContextId,
        scratch: &mut EvalScratch,
        memo: &mut PredMemo,
    ) -> (Result<Vec<Detection>, EvalError>, PlanCounts) {
        let mut counts = PlanCounts::default();
        if !pool.contains(id) {
            return (Ok(Vec::new()), counts);
        }
        let evaluator = CompiledEvaluator::new(registry);
        let constraints = self.constraints.iter().as_slice();
        let mut out = Vec::new();
        for step in &plan.steps {
            let constraint = &constraints[step.constraint];
            let (Some(qids), Some(cc)) = (&step.pinned_qids, &self.compiled[step.constraint])
            else {
                unreachable!("check_with_plan requires supports_batch_fusion()");
            };
            let mut links: BTreeSet<Link> = BTreeSet::new();
            for &qid in qids {
                counts.pinned_evals += 1;
                counts.compiled_evals += 1;
                // Truth-only pre-pass: `Ok(true)` proves the evidence
                // pass would find zero violations, so it is skipped.
                // `Ok(false)` re-runs with evidence; an error is the
                // same error the evidence pass would have raised.
                let satisfied = match evaluator.satisfied_pinned_batch(
                    cc,
                    pool,
                    now,
                    qid,
                    id,
                    max_id,
                    scratch,
                    memo,
                    step.constraint as u32,
                ) {
                    Ok(satisfied) => satisfied,
                    Err(e) => return (Err(e), counts),
                };
                if satisfied {
                    continue;
                }
                match evaluator.check_pinned_batch(cc, pool, now, qid, id, max_id, scratch) {
                    Ok(outcome) => links.extend(outcome.violations),
                    Err(e) => return (Err(e), counts),
                }
            }
            for link in links {
                out.push(Detection {
                    constraint: constraint.name().to_owned(),
                    link,
                });
            }
        }
        counts.detections = out.len() as u64;
        (Ok(out), counts)
    }

    /// Applies the counter deltas of one or more
    /// [`check_with_plan`](IncrementalChecker::check_with_plan) calls,
    /// restoring [`CheckerStats`] parity with the sequential path.
    pub fn absorb_batch_counts(&mut self, counts: PlanCounts) {
        self.stats.pinned_evals += counts.pinned_evals;
        self.stats.compiled_evals += counts.compiled_evals;
        self.stats.detections += counts.detections;
    }

    /// Fully checks every constraint (the non-incremental baseline; used
    /// by tests and the ablation bench).
    ///
    /// # Errors
    ///
    /// Propagates [`EvalError`] from predicate evaluation.
    pub fn check_all(
        &mut self,
        registry: &PredicateRegistry,
        pool: &ContextPool,
        now: LogicalTime,
    ) -> Result<Vec<Detection>, EvalError> {
        let evaluator = CompiledEvaluator::new(registry);
        let IncrementalChecker {
            constraints,
            compiled,
            scratch,
            stats,
            ..
        } = self;
        let mut out = Vec::new();
        for (constraint, program) in constraints.iter().zip(compiled.iter()) {
            stats.full_evals += 1;
            let outcome = match program {
                Some(cc) => {
                    stats.compiled_evals += 1;
                    evaluator.check(cc, pool, now, scratch)?
                }
                None => crate::eval::Evaluator::new(registry).check(constraint, pool, now)?,
            };
            for link in outcome.violations {
                out.push(Detection {
                    constraint: constraint.name().to_owned(),
                    link,
                });
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_constraints;
    use ctxres_context::{Context, ContextState, Point};

    fn checker(src: &str) -> IncrementalChecker {
        IncrementalChecker::new(parse_constraints(src).unwrap().into_iter().collect())
    }

    fn add_loc(pool: &mut ContextPool, subject: &str, seq: i64, x: f64, y: f64) -> ContextId {
        pool.insert(
            Context::builder(ContextKind::new("location"), subject)
                .attr("pos", Point::new(x, y))
                .attr("seq", seq)
                .stamp(LogicalTime::new(seq as u64))
                .build(),
        )
    }

    const SPEED: &str = "constraint speed:
        forall a: location, b: location .
          (same_subject(a, b) and seq_gap(a, b, 1)) implies velocity_le(a, b, 1.5)";

    #[test]
    fn detects_violation_on_arrival() {
        let mut ch = checker(SPEED);
        let reg = PredicateRegistry::with_builtins();
        let mut pool = ContextPool::new();
        let a = add_loc(&mut pool, "p", 0, 0.0, 0.0);
        assert!(ch
            .on_added(&reg, &pool, LogicalTime::new(0), a)
            .unwrap()
            .is_empty());
        let b = add_loc(&mut pool, "p", 1, 0.5, 0.0);
        assert!(ch
            .on_added(&reg, &pool, LogicalTime::new(1), b)
            .unwrap()
            .is_empty());
        let c = add_loc(&mut pool, "p", 2, 9.0, 9.0);
        let found = ch.on_added(&reg, &pool, LogicalTime::new(2), c).unwrap();
        assert_eq!(found.len(), 1);
        assert!(found[0].link.contains(&b));
        assert!(found[0].link.contains(&c));
    }

    #[test]
    fn irrelevant_kind_triggers_nothing() {
        let mut ch = checker(SPEED);
        let reg = PredicateRegistry::with_builtins();
        let mut pool = ContextPool::new();
        let id = pool.insert(Context::builder(ContextKind::new("rfid"), "tag").build());
        assert!(!ch.is_relevant(&ContextKind::new("rfid")));
        assert!(ch
            .on_added(&reg, &pool, LogicalTime::new(0), id)
            .unwrap()
            .is_empty());
        assert_eq!(ch.stats().pinned_evals, 0);
    }

    #[test]
    fn detections_deduplicate_across_quantifiers() {
        // Both quantifiers range over `location`; a self-violating pair
        // must still be reported once.
        let mut ch = checker(SPEED);
        let reg = PredicateRegistry::with_builtins();
        let mut pool = ContextPool::new();
        add_loc(&mut pool, "p", 0, 0.0, 0.0);
        let b = add_loc(&mut pool, "p", 1, 9.0, 9.0);
        let found = ch.on_added(&reg, &pool, LogicalTime::new(1), b).unwrap();
        assert_eq!(found.len(), 1);
        assert_eq!(ch.stats().pinned_evals, 2, "one pinned eval per quantifier");
    }

    #[test]
    fn multiple_new_inconsistencies_reported_together() {
        // Paper Fig. 5 shape: gap-1 and gap-2 constraints; a bad context
        // violates against several predecessors at once.
        let mut ch = checker(
            "constraint gap1:
               forall a: location, b: location .
                 (same_subject(a, b) and seq_gap(a, b, 1)) implies velocity_le(a, b, 1.5)
             constraint gap2:
               forall a: location, b: location .
                 (same_subject(a, b) and seq_gap(a, b, 2)) implies velocity_le(a, b, 1.5)",
        );
        let reg = PredicateRegistry::with_builtins();
        let mut pool = ContextPool::new();
        add_loc(&mut pool, "p", 0, 0.0, 0.0);
        add_loc(&mut pool, "p", 1, 0.5, 0.0);
        let c = add_loc(&mut pool, "p", 2, 9.0, 9.0);
        let found = ch.on_added(&reg, &pool, LogicalTime::new(2), c).unwrap();
        // (b,c) under gap1 and (a,c) under gap2.
        assert_eq!(found.len(), 2);
        let names: BTreeSet<&str> = found.iter().map(|d| d.constraint.as_str()).collect();
        assert_eq!(names.len(), 2);
    }

    #[test]
    fn fallback_path_diffs_full_checks() {
        // `exists` in positive polarity forces the fallback path.
        let mut ch = checker("constraint anchored: exists a: location . subject_eq(a, \"anchor\")");
        let reg = PredicateRegistry::with_builtins();
        let mut pool = ContextPool::new();
        let a = add_loc(&mut pool, "p", 0, 0.0, 0.0);
        let found = ch.on_added(&reg, &pool, LogicalTime::new(0), a).unwrap();
        assert_eq!(found.len(), 1, "no anchor context yet: violated");
        assert!(ch.stats().full_evals >= 1);
        // Adding a second non-anchor context: the violation link changes
        // (the exists evidence now covers both), so it is re-reported;
        // adding the anchor resolves it.
        let b = add_loc(&mut pool, "p", 1, 1.0, 0.0);
        let _ = ch.on_added(&reg, &pool, LogicalTime::new(1), b).unwrap();
        let anchor = pool.insert(
            Context::builder(ContextKind::new("location"), "anchor")
                .attr("pos", Point::new(0.0, 0.0))
                .attr("seq", 2i64)
                .build(),
        );
        let found = ch
            .on_added(&reg, &pool, LogicalTime::new(2), anchor)
            .unwrap();
        assert!(found.is_empty());
    }

    #[test]
    fn discarded_context_cannot_recreate_detections() {
        let mut ch = checker(SPEED);
        let reg = PredicateRegistry::with_builtins();
        let mut pool = ContextPool::new();
        add_loc(&mut pool, "p", 0, 0.0, 0.0);
        let b = add_loc(&mut pool, "p", 1, 9.0, 9.0);
        pool.set_state(b, ContextState::Inconsistent).unwrap();
        let c = add_loc(&mut pool, "p", 2, 9.5, 9.0);
        let found = ch.on_added(&reg, &pool, LogicalTime::new(2), c).unwrap();
        // (b,c) would violate but b is discarded; (a,c) is gap 2, not 1.
        assert!(found.is_empty());
    }

    #[test]
    fn planned_path_matches_on_added() {
        let reg = PredicateRegistry::with_builtins();
        let points = [(0.0, 0.0), (9.0, 9.0), (0.5, 0.0), (1.0, 0.0)];

        let mut plain = checker(SPEED);
        let mut pool_a = ContextPool::new();
        let mut via_on_added = Vec::new();
        for (i, (x, y)) in points.iter().enumerate() {
            let id = add_loc(&mut pool_a, "p", i as i64, *x, *y);
            via_on_added.extend(
                plain
                    .on_added(&reg, &pool_a, LogicalTime::new(i as u64), id)
                    .unwrap(),
            );
        }

        let mut planned = checker(SPEED);
        let plan = planned.plan_for(&ContextKind::new("location"));
        assert!(plan.is_relevant());
        assert!(!planned.plan_for(&ContextKind::new("rfid")).is_relevant());
        let mut pool_b = ContextPool::new();
        let mut via_plan = Vec::new();
        for (i, (x, y)) in points.iter().enumerate() {
            let id = add_loc(&mut pool_b, "p", i as i64, *x, *y);
            via_plan.extend(
                planned
                    .on_added_planned(&plan, &reg, &pool_b, LogicalTime::new(i as u64), id)
                    .unwrap(),
            );
        }

        assert_eq!(via_on_added, via_plan);
        assert_eq!(plain.stats(), planned.stats());
    }

    #[test]
    fn batch_capped_plan_matches_sequential_insertion() {
        // Sequential oracle: insert one at a time, check on arrival.
        let reg = PredicateRegistry::with_builtins();
        let points = [(0.0, 0.0), (9.0, 9.0), (0.5, 0.0), (1.0, 0.0), (1.5, 0.0)];
        let subjects = ["p", "p", "q", "p", "q"];

        let mut seq = checker(SPEED);
        let mut pool_a = ContextPool::new();
        let mut via_seq = Vec::new();
        for (i, (x, y)) in points.iter().enumerate() {
            let id = add_loc(&mut pool_a, subjects[i], i as i64, *x, *y);
            via_seq.extend(
                seq.on_added(&reg, &pool_a, LogicalTime::new(i as u64), id)
                    .unwrap(),
            );
        }

        // Fused: pre-insert the whole batch, then check each position
        // with the domain capped at its own id.
        let mut fused = checker(SPEED);
        assert!(fused.supports_batch_fusion());
        let plan = fused.plan_for(&ContextKind::new("location"));
        let mut pool_b = ContextPool::new();
        let ids: Vec<ContextId> = points
            .iter()
            .enumerate()
            .map(|(i, (x, y))| add_loc(&mut pool_b, subjects[i], i as i64, *x, *y))
            .collect();
        let mut via_batch = Vec::new();
        let mut scratch = EvalScratch::new();
        let mut memo = PredMemo::new();
        let mut total = PlanCounts::default();
        for (i, &id) in ids.iter().enumerate() {
            let (result, counts) = fused.check_with_plan(
                &plan,
                &reg,
                &pool_b,
                LogicalTime::new(i as u64),
                id,
                id,
                &mut scratch,
                &mut memo,
            );
            total.absorb(counts);
            via_batch.extend(result.unwrap());
        }
        fused.absorb_batch_counts(total);

        assert_eq!(via_seq, via_batch);
        assert_eq!(seq.stats(), fused.stats());
        assert_eq!(
            memo.hits() + memo.misses(),
            0,
            "every SPEED predicate reads the pinned slot, so the memo is bypassed"
        );
    }

    #[test]
    fn pin_free_sites_consult_the_memo_and_hit_across_checks() {
        // `has_attr(b, "pos")` reads only the unpinned slot when the
        // check pins `a`, so its verdicts recur across checks of the
        // same subject — the one class of site the memo serves. The
        // capped run must still agree with the sequential oracle.
        let guarded = "constraint guarded: forall a: location, b: location . \
             (same_subject(a, b) and seq_gap(a, b, 1) and has_attr(b, \"pos\")) \
             implies velocity_le(a, b, 1.5)";
        let reg = PredicateRegistry::with_builtins();
        let points = [(0.0, 0.0), (9.0, 9.0), (0.5, 0.0), (1.0, 0.0), (1.5, 0.0)];
        let subjects = ["p", "p", "q", "p", "q"];

        let mut seq = checker(guarded);
        let mut pool_a = ContextPool::new();
        let mut via_seq = Vec::new();
        for (i, (x, y)) in points.iter().enumerate() {
            let id = add_loc(&mut pool_a, subjects[i], i as i64, *x, *y);
            via_seq.extend(
                seq.on_added(&reg, &pool_a, LogicalTime::new(i as u64), id)
                    .unwrap(),
            );
        }

        let fused = checker(guarded);
        assert!(fused.supports_batch_fusion());
        let plan = fused.plan_for(&ContextKind::new("location"));
        let mut pool_b = ContextPool::new();
        let ids: Vec<ContextId> = points
            .iter()
            .enumerate()
            .map(|(i, (x, y))| add_loc(&mut pool_b, subjects[i], i as i64, *x, *y))
            .collect();
        let mut via_batch = Vec::new();
        let mut scratch = EvalScratch::new();
        let mut memo = PredMemo::new();
        for (i, &id) in ids.iter().enumerate() {
            let (result, _) = fused.check_with_plan(
                &plan,
                &reg,
                &pool_b,
                LogicalTime::new(i as u64),
                id,
                id,
                &mut scratch,
                &mut memo,
            );
            via_batch.extend(result.unwrap());
        }

        assert_eq!(via_seq, via_batch);
        assert!(memo.misses() > 0, "pin-free sites must populate the memo");
        assert!(
            memo.hits() > 0,
            "repeat subjects must replay memoized verdicts"
        );
    }

    #[test]
    fn fallback_constraints_disable_batch_fusion() {
        let ch = checker("constraint anchored: exists a: location . subject_eq(a, \"anchor\")");
        assert!(!ch.supports_batch_fusion(), "existential forces fallback");
        let cross = checker(
            "constraint cross: forall a: location, b: location . \
             seq_gap(a, b, 1) implies same_subject(a, b)",
        );
        assert!(!cross.supports_batch_fusion(), "global scope is ineligible");
    }

    #[test]
    fn check_all_matches_incremental_accumulation() {
        let mut ch = checker(SPEED);
        let reg = PredicateRegistry::with_builtins();
        let mut pool = ContextPool::new();
        let mut incremental: BTreeSet<Link> = BTreeSet::new();
        for (i, (x, y)) in [(0.0, 0.0), (9.0, 9.0), (0.5, 0.0), (1.0, 0.0)]
            .iter()
            .enumerate()
        {
            let id = add_loc(&mut pool, "p", i as i64, *x, *y);
            for d in ch
                .on_added(&reg, &pool, LogicalTime::new(i as u64), id)
                .unwrap()
            {
                incremental.insert(d.link);
            }
        }
        let full: BTreeSet<Link> = ch
            .check_all(&reg, &pool, LogicalTime::new(10))
            .unwrap()
            .into_iter()
            .map(|d| d.link)
            .collect();
        assert_eq!(incremental, full);
    }
}

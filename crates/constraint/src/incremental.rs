//! Incremental inconsistency detection (ICSE'06 style).
//!
//! When a context arrives, only the constraints quantifying over its kind
//! can newly be violated, and — within the universal-positive fragment —
//! only through bindings that include the new context. The checker
//! therefore re-evaluates each affected constraint once per quantifier of
//! the matching kind, with that quantifier's domain *pinned* to the new
//! context. Constraints outside the fragment fall back to full
//! re-evaluation with link diffing.

use crate::compile::{CompiledConstraint, CompiledEvaluator, EvalScratch};
use crate::constraint::ConstraintSet;
use crate::error::EvalError;
use crate::eval::Link;
use crate::predicate::PredicateRegistry;
use ctxres_context::{ContextId, ContextKind, ContextPool, LogicalTime};
use std::collections::{BTreeSet, HashMap};

/// One newly detected context inconsistency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Detection {
    /// Name of the violated constraint.
    pub constraint: String,
    /// The contexts forming the inconsistency.
    pub link: Link,
}

/// Counters for instrumentation and the incremental-vs-full benches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckerStats {
    /// Pinned (incremental) constraint evaluations performed.
    pub pinned_evals: u64,
    /// Full constraint evaluations performed (fallback path).
    pub full_evals: u64,
    /// Evaluations (pinned or full) served by a compiled program rather
    /// than the AST walker.
    pub compiled_evals: u64,
    /// Total detections returned.
    pub detections: u64,
}

/// Stateful incremental checker over a deployed [`ConstraintSet`].
///
/// ```
/// use ctxres_constraint::{parse_constraints, IncrementalChecker, PredicateRegistry};
/// use ctxres_context::{Context, ContextKind, ContextPool, LogicalTime, Point};
///
/// let constraints = parse_constraints(
///     "constraint region: forall a: location . within(a, 0.0, 0.0, 10.0, 10.0)",
/// )?;
/// let mut checker = IncrementalChecker::new(constraints.into_iter().collect());
/// let registry = PredicateRegistry::with_builtins();
/// let mut pool = ContextPool::new();
///
/// let id = pool.insert(
///     Context::builder(ContextKind::new("location"), "peter")
///         .attr("pos", Point::new(50.0, 50.0))
///         .build(),
/// );
/// let found = checker.on_added(&registry, &pool, LogicalTime::new(1), id)?;
/// assert_eq!(found.len(), 1);
/// assert!(found[0].link.contains(&id));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct IncrementalChecker {
    constraints: ConstraintSet,
    /// Compiled programs, parallel to `constraints`. `None` only for a
    /// constraint that fails to compile (e.g. an unbound variable, which
    /// the AST evaluator would also reject — at evaluation time).
    compiled: Vec<Option<CompiledConstraint>>,
    scratch: EvalScratch,
    known: HashMap<String, BTreeSet<Link>>,
    stats: CheckerStats,
}

impl IncrementalChecker {
    /// Creates a checker for the given constraints, compiling each once
    /// at deploy time.
    pub fn new(constraints: ConstraintSet) -> Self {
        let compiled = constraints
            .iter()
            .map(|c| CompiledConstraint::compile(c).ok())
            .collect();
        IncrementalChecker {
            constraints,
            compiled,
            scratch: EvalScratch::new(),
            known: HashMap::new(),
            stats: CheckerStats::default(),
        }
    }

    /// The deployed constraints.
    pub fn constraints(&self) -> &ConstraintSet {
        &self.constraints
    }

    /// Whether contexts of `kind` are relevant to any constraint.
    pub fn is_relevant(&self, kind: &ContextKind) -> bool {
        self.constraints.any_relevant_to(kind)
    }

    /// Instrumentation counters.
    pub fn stats(&self) -> CheckerStats {
        self.stats
    }

    /// Detects the inconsistencies newly introduced by context `id`
    /// (already inserted into `pool`).
    ///
    /// Universal-positive constraints are checked by pinning; others by
    /// full re-evaluation diffed against the previous violation set.
    ///
    /// # Errors
    ///
    /// Propagates [`EvalError`] from predicate evaluation.
    pub fn on_added(
        &mut self,
        registry: &PredicateRegistry,
        pool: &ContextPool,
        now: LogicalTime,
        id: ContextId,
    ) -> Result<Vec<Detection>, EvalError> {
        let Some(ctx) = pool.get(id) else {
            return Ok(Vec::new());
        };
        let kind = ctx.kind().clone();
        let evaluator = CompiledEvaluator::new(registry);
        let mut out = Vec::new();
        let IncrementalChecker {
            constraints,
            compiled,
            scratch,
            known,
            stats,
        } = self;
        for (constraint, program) in constraints.iter().zip(compiled.iter()) {
            if !constraint.is_relevant_to(&kind) {
                continue;
            }
            if constraint.is_universal_positive() {
                let mut links: BTreeSet<Link> = BTreeSet::new();
                for qid in constraint.quantifiers_over(&kind) {
                    stats.pinned_evals += 1;
                    let outcome = match program {
                        Some(cc) => {
                            stats.compiled_evals += 1;
                            evaluator.check_pinned(cc, pool, now, qid, id, scratch)?
                        }
                        None => crate::eval::Evaluator::new(registry)
                            .check_pinned(constraint, pool, now, qid, id)?,
                    };
                    links.extend(outcome.violations);
                }
                for link in links {
                    out.push(Detection {
                        constraint: constraint.name().to_owned(),
                        link,
                    });
                }
            } else {
                stats.full_evals += 1;
                let outcome = match program {
                    Some(cc) => {
                        stats.compiled_evals += 1;
                        evaluator.check(cc, pool, now, scratch)?
                    }
                    None => crate::eval::Evaluator::new(registry).check(constraint, pool, now)?,
                };
                let seen = known.entry(constraint.name().to_owned()).or_default();
                let fresh: Vec<Link> = outcome
                    .violations
                    .iter()
                    .filter(|l| !seen.contains(*l))
                    .cloned()
                    .collect();
                *seen = outcome.violations.into_iter().collect();
                for link in fresh {
                    out.push(Detection {
                        constraint: constraint.name().to_owned(),
                        link,
                    });
                }
            }
        }
        self.stats.detections += out.len() as u64;
        Ok(out)
    }

    /// Fully checks every constraint (the non-incremental baseline; used
    /// by tests and the ablation bench).
    ///
    /// # Errors
    ///
    /// Propagates [`EvalError`] from predicate evaluation.
    pub fn check_all(
        &mut self,
        registry: &PredicateRegistry,
        pool: &ContextPool,
        now: LogicalTime,
    ) -> Result<Vec<Detection>, EvalError> {
        let evaluator = CompiledEvaluator::new(registry);
        let IncrementalChecker {
            constraints,
            compiled,
            scratch,
            stats,
            ..
        } = self;
        let mut out = Vec::new();
        for (constraint, program) in constraints.iter().zip(compiled.iter()) {
            stats.full_evals += 1;
            let outcome = match program {
                Some(cc) => {
                    stats.compiled_evals += 1;
                    evaluator.check(cc, pool, now, scratch)?
                }
                None => crate::eval::Evaluator::new(registry).check(constraint, pool, now)?,
            };
            for link in outcome.violations {
                out.push(Detection {
                    constraint: constraint.name().to_owned(),
                    link,
                });
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_constraints;
    use ctxres_context::{Context, ContextState, Point};

    fn checker(src: &str) -> IncrementalChecker {
        IncrementalChecker::new(parse_constraints(src).unwrap().into_iter().collect())
    }

    fn add_loc(pool: &mut ContextPool, subject: &str, seq: i64, x: f64, y: f64) -> ContextId {
        pool.insert(
            Context::builder(ContextKind::new("location"), subject)
                .attr("pos", Point::new(x, y))
                .attr("seq", seq)
                .stamp(LogicalTime::new(seq as u64))
                .build(),
        )
    }

    const SPEED: &str = "constraint speed:
        forall a: location, b: location .
          (same_subject(a, b) and seq_gap(a, b, 1)) implies velocity_le(a, b, 1.5)";

    #[test]
    fn detects_violation_on_arrival() {
        let mut ch = checker(SPEED);
        let reg = PredicateRegistry::with_builtins();
        let mut pool = ContextPool::new();
        let a = add_loc(&mut pool, "p", 0, 0.0, 0.0);
        assert!(ch
            .on_added(&reg, &pool, LogicalTime::new(0), a)
            .unwrap()
            .is_empty());
        let b = add_loc(&mut pool, "p", 1, 0.5, 0.0);
        assert!(ch
            .on_added(&reg, &pool, LogicalTime::new(1), b)
            .unwrap()
            .is_empty());
        let c = add_loc(&mut pool, "p", 2, 9.0, 9.0);
        let found = ch.on_added(&reg, &pool, LogicalTime::new(2), c).unwrap();
        assert_eq!(found.len(), 1);
        assert!(found[0].link.contains(&b));
        assert!(found[0].link.contains(&c));
    }

    #[test]
    fn irrelevant_kind_triggers_nothing() {
        let mut ch = checker(SPEED);
        let reg = PredicateRegistry::with_builtins();
        let mut pool = ContextPool::new();
        let id = pool.insert(Context::builder(ContextKind::new("rfid"), "tag").build());
        assert!(!ch.is_relevant(&ContextKind::new("rfid")));
        assert!(ch
            .on_added(&reg, &pool, LogicalTime::new(0), id)
            .unwrap()
            .is_empty());
        assert_eq!(ch.stats().pinned_evals, 0);
    }

    #[test]
    fn detections_deduplicate_across_quantifiers() {
        // Both quantifiers range over `location`; a self-violating pair
        // must still be reported once.
        let mut ch = checker(SPEED);
        let reg = PredicateRegistry::with_builtins();
        let mut pool = ContextPool::new();
        add_loc(&mut pool, "p", 0, 0.0, 0.0);
        let b = add_loc(&mut pool, "p", 1, 9.0, 9.0);
        let found = ch.on_added(&reg, &pool, LogicalTime::new(1), b).unwrap();
        assert_eq!(found.len(), 1);
        assert_eq!(ch.stats().pinned_evals, 2, "one pinned eval per quantifier");
    }

    #[test]
    fn multiple_new_inconsistencies_reported_together() {
        // Paper Fig. 5 shape: gap-1 and gap-2 constraints; a bad context
        // violates against several predecessors at once.
        let mut ch = checker(
            "constraint gap1:
               forall a: location, b: location .
                 (same_subject(a, b) and seq_gap(a, b, 1)) implies velocity_le(a, b, 1.5)
             constraint gap2:
               forall a: location, b: location .
                 (same_subject(a, b) and seq_gap(a, b, 2)) implies velocity_le(a, b, 1.5)",
        );
        let reg = PredicateRegistry::with_builtins();
        let mut pool = ContextPool::new();
        add_loc(&mut pool, "p", 0, 0.0, 0.0);
        add_loc(&mut pool, "p", 1, 0.5, 0.0);
        let c = add_loc(&mut pool, "p", 2, 9.0, 9.0);
        let found = ch.on_added(&reg, &pool, LogicalTime::new(2), c).unwrap();
        // (b,c) under gap1 and (a,c) under gap2.
        assert_eq!(found.len(), 2);
        let names: BTreeSet<&str> = found.iter().map(|d| d.constraint.as_str()).collect();
        assert_eq!(names.len(), 2);
    }

    #[test]
    fn fallback_path_diffs_full_checks() {
        // `exists` in positive polarity forces the fallback path.
        let mut ch = checker("constraint anchored: exists a: location . subject_eq(a, \"anchor\")");
        let reg = PredicateRegistry::with_builtins();
        let mut pool = ContextPool::new();
        let a = add_loc(&mut pool, "p", 0, 0.0, 0.0);
        let found = ch.on_added(&reg, &pool, LogicalTime::new(0), a).unwrap();
        assert_eq!(found.len(), 1, "no anchor context yet: violated");
        assert!(ch.stats().full_evals >= 1);
        // Adding a second non-anchor context: the violation link changes
        // (the exists evidence now covers both), so it is re-reported;
        // adding the anchor resolves it.
        let b = add_loc(&mut pool, "p", 1, 1.0, 0.0);
        let _ = ch.on_added(&reg, &pool, LogicalTime::new(1), b).unwrap();
        let anchor = pool.insert(
            Context::builder(ContextKind::new("location"), "anchor")
                .attr("pos", Point::new(0.0, 0.0))
                .attr("seq", 2i64)
                .build(),
        );
        let found = ch
            .on_added(&reg, &pool, LogicalTime::new(2), anchor)
            .unwrap();
        assert!(found.is_empty());
    }

    #[test]
    fn discarded_context_cannot_recreate_detections() {
        let mut ch = checker(SPEED);
        let reg = PredicateRegistry::with_builtins();
        let mut pool = ContextPool::new();
        add_loc(&mut pool, "p", 0, 0.0, 0.0);
        let b = add_loc(&mut pool, "p", 1, 9.0, 9.0);
        pool.set_state(b, ContextState::Inconsistent).unwrap();
        let c = add_loc(&mut pool, "p", 2, 9.5, 9.0);
        let found = ch.on_added(&reg, &pool, LogicalTime::new(2), c).unwrap();
        // (b,c) would violate but b is discarded; (a,c) is gap 2, not 1.
        assert!(found.is_empty());
    }

    #[test]
    fn check_all_matches_incremental_accumulation() {
        let mut ch = checker(SPEED);
        let reg = PredicateRegistry::with_builtins();
        let mut pool = ContextPool::new();
        let mut incremental: BTreeSet<Link> = BTreeSet::new();
        for (i, (x, y)) in [(0.0, 0.0), (9.0, 9.0), (0.5, 0.0), (1.0, 0.0)]
            .iter()
            .enumerate()
        {
            let id = add_loc(&mut pool, "p", i as i64, *x, *y);
            for d in ch
                .on_added(&reg, &pool, LogicalTime::new(i as u64), id)
                .unwrap()
            {
                incremental.insert(d.link);
            }
        }
        let full: BTreeSet<Link> = ch
            .check_all(&reg, &pool, LogicalTime::new(10))
            .unwrap()
            .into_iter()
            .map(|d| d.link)
            .collect();
        assert_eq!(incremental, full);
    }
}

//! Recursive-descent parser for the constraint DSL.
//!
//! Grammar (whitespace-insensitive, `#`-to-end-of-line comments):
//!
//! ```text
//! constraints := constraint+
//! constraint  := "constraint" IDENT ":" formula
//! formula     := quant | implies
//! quant       := ("forall" | "exists") IDENT ":" IDENT
//!                ("," IDENT ":" IDENT)* "." formula
//! implies     := or ("implies" implies)?            // right-assoc
//! or          := and ("or" and)*
//! and         := unary ("and" unary)*
//! unary       := "not" unary | atom
//! atom        := "(" formula ")" | "true" | "false" | predicate
//! predicate   := IDENT "(" [term ("," term)*] ")"
//! term        := NUMBER | STRING | "true" | "false"
//!              | IDENT ("." IDENT)?                 // var or var.attr
//! ```
//!
//! Multi-binding quantifiers desugar to nested single-binding ones:
//! `forall a: k, b: k . f` ≡ `forall a: k . forall b: k . f`.

use crate::ast::{Formula, Quantifier, Term};
use crate::constraint::Constraint;
use crate::error::ParseError;
use ctxres_context::ContextValue;

/// Parses a single `constraint <name>: <formula>` declaration.
///
/// # Errors
///
/// Returns [`ParseError`] on any syntax error, with the byte offset of
/// the offending token.
///
/// ```
/// use ctxres_constraint::parse_constraint;
/// let c = parse_constraint(
///     "constraint region: forall a: location . within(a, 0.0, 0.0, 40.0, 30.0)",
/// )?;
/// assert_eq!(c.name(), "region");
/// # Ok::<(), ctxres_constraint::ParseError>(())
/// ```
pub fn parse_constraint(input: &str) -> Result<Constraint, ParseError> {
    let parse = || {
        let mut p = Parser::new(input)?;
        let c = p.constraint()?;
        p.expect_eof()?;
        Ok(c)
    };
    parse().map_err(|e: ParseError| e.locate(input))
}

/// Parses a sequence of constraint declarations.
///
/// # Errors
///
/// Returns [`ParseError`] on any syntax error.
pub fn parse_constraints(input: &str) -> Result<Vec<Constraint>, ParseError> {
    let parse = || {
        let mut p = Parser::new(input)?;
        let mut out = Vec::new();
        while !p.at_eof() {
            out.push(p.constraint()?);
        }
        Ok(out)
    };
    parse().map_err(|e: ParseError| e.locate(input))
}

/// Parses a bare formula (no `constraint name:` header).
///
/// # Errors
///
/// Returns [`ParseError`] on any syntax error.
pub fn parse_formula(input: &str) -> Result<Formula, ParseError> {
    let parse = || {
        let mut p = Parser::new(input)?;
        let f = p.formula()?;
        p.expect_eof()?;
        Ok(f)
    };
    parse().map_err(|e: ParseError| e.locate(input))
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Number(ContextValue),
    Str(String),
    LParen,
    RParen,
    Comma,
    Colon,
    Dot,
    Eof,
}

impl Tok {
    fn describe(&self) -> String {
        match self {
            Tok::Ident(s) => format!("identifier {s:?}"),
            Tok::Number(v) => format!("number {v}"),
            Tok::Str(s) => format!("string {s:?}"),
            Tok::LParen => "'('".into(),
            Tok::RParen => "')'".into(),
            Tok::Comma => "','".into(),
            Tok::Colon => "':'".into(),
            Tok::Dot => "'.'".into(),
            Tok::Eof => "end of input".into(),
        }
    }
}

struct Parser {
    toks: Vec<(Tok, usize)>,
    pos: usize,
}

impl Parser {
    fn new(input: &str) -> Result<Self, ParseError> {
        Ok(Parser {
            toks: lex(input)?,
            pos: 0,
        })
    }

    fn peek(&self) -> &Tok {
        &self.toks[self.pos].0
    }

    fn offset(&self) -> usize {
        self.toks[self.pos].1
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].0.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), Tok::Eof)
    }

    fn expect_eof(&self) -> Result<(), ParseError> {
        if self.at_eof() {
            Ok(())
        } else {
            Err(ParseError::new(
                format!("expected end of input, found {}", self.peek().describe()),
                self.offset(),
            ))
        }
    }

    fn expect(&mut self, want: &Tok) -> Result<(), ParseError> {
        if self.peek() == want {
            self.bump();
            Ok(())
        } else {
            Err(ParseError::new(
                format!(
                    "expected {}, found {}",
                    want.describe(),
                    self.peek().describe()
                ),
                self.offset(),
            ))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(ParseError::new(
                format!("expected identifier, found {}", other.describe()),
                self.offset(),
            )),
        }
    }

    fn keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.peek() {
            Tok::Ident(s) if s == kw => {
                self.bump();
                Ok(())
            }
            other => Err(ParseError::new(
                format!("expected keyword {kw:?}, found {}", other.describe()),
                self.offset(),
            )),
        }
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s == kw)
    }

    fn constraint(&mut self) -> Result<Constraint, ParseError> {
        self.keyword("constraint")?;
        let name = self.ident()?;
        self.expect(&Tok::Colon)?;
        let f = self.formula()?;
        Ok(Constraint::new(&name, f))
    }

    fn formula(&mut self) -> Result<Formula, ParseError> {
        self.implies()
    }

    fn quant(&mut self) -> Result<Formula, ParseError> {
        let q = if self.peek_keyword("forall") {
            self.bump();
            Quantifier::Forall
        } else {
            self.keyword("exists")?;
            Quantifier::Exists
        };
        let mut bindings = Vec::new();
        loop {
            let var = self.ident()?;
            self.expect(&Tok::Colon)?;
            let kind = self.ident()?;
            bindings.push((var, kind));
            if matches!(self.peek(), Tok::Comma) {
                self.bump();
            } else {
                break;
            }
        }
        self.expect(&Tok::Dot)?;
        let mut body = self.formula()?;
        for (var, kind) in bindings.into_iter().rev() {
            body = match q {
                Quantifier::Forall => Formula::forall(&var, kind.as_str(), body),
                Quantifier::Exists => Formula::exists(&var, kind.as_str(), body),
            };
        }
        Ok(body)
    }

    fn implies(&mut self) -> Result<Formula, ParseError> {
        let lhs = self.or()?;
        if self.peek_keyword("implies") {
            self.bump();
            let rhs = self.implies()?;
            Ok(lhs.implies(rhs))
        } else {
            Ok(lhs)
        }
    }

    fn or(&mut self) -> Result<Formula, ParseError> {
        let mut f = self.and()?;
        while self.peek_keyword("or") {
            self.bump();
            f = f.or(self.and()?);
        }
        Ok(f)
    }

    fn and(&mut self) -> Result<Formula, ParseError> {
        let mut f = self.unary()?;
        while self.peek_keyword("and") {
            self.bump();
            f = f.and(self.unary()?);
        }
        Ok(f)
    }

    fn unary(&mut self) -> Result<Formula, ParseError> {
        if self.peek_keyword("not") {
            self.bump();
            return Ok(self.unary()?.not());
        }
        if self.peek_keyword("forall") || self.peek_keyword("exists") {
            return self.quant();
        }
        self.atom()
    }

    fn atom(&mut self) -> Result<Formula, ParseError> {
        match self.peek().clone() {
            Tok::LParen => {
                self.bump();
                let f = self.formula()?;
                self.expect(&Tok::RParen)?;
                Ok(f)
            }
            Tok::Ident(s) if s == "true" => {
                self.bump();
                Ok(Formula::True)
            }
            Tok::Ident(s) if s == "false" => {
                self.bump();
                Ok(Formula::False)
            }
            Tok::Ident(name) => {
                self.bump();
                self.expect(&Tok::LParen)?;
                let mut args = Vec::new();
                if !matches!(self.peek(), Tok::RParen) {
                    loop {
                        args.push(self.term()?);
                        if matches!(self.peek(), Tok::Comma) {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                }
                self.expect(&Tok::RParen)?;
                Ok(Formula::pred(&name, args))
            }
            other => Err(ParseError::new(
                format!("expected a formula, found {}", other.describe()),
                self.offset(),
            )),
        }
    }

    fn term(&mut self) -> Result<Term, ParseError> {
        match self.peek().clone() {
            Tok::Number(v) => {
                self.bump();
                Ok(Term::Const(v))
            }
            Tok::Str(s) => {
                self.bump();
                Ok(Term::Const(ContextValue::Text(s)))
            }
            Tok::Ident(s) if s == "true" => {
                self.bump();
                Ok(Term::Const(ContextValue::Bool(true)))
            }
            Tok::Ident(s) if s == "false" => {
                self.bump();
                Ok(Term::Const(ContextValue::Bool(false)))
            }
            Tok::Ident(var) => {
                self.bump();
                if matches!(self.peek(), Tok::Dot) {
                    self.bump();
                    let attr = self.ident()?;
                    Ok(Term::Attr(var, attr))
                } else {
                    Ok(Term::Var(var))
                }
            }
            other => Err(ParseError::new(
                format!("expected a term, found {}", other.describe()),
                self.offset(),
            )),
        }
    }
}

fn lex(input: &str) -> Result<Vec<(Tok, usize)>, ParseError> {
    let bytes = input.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'#' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'(' => {
                toks.push((Tok::LParen, i));
                i += 1;
            }
            b')' => {
                toks.push((Tok::RParen, i));
                i += 1;
            }
            b',' => {
                toks.push((Tok::Comma, i));
                i += 1;
            }
            b':' => {
                toks.push((Tok::Colon, i));
                i += 1;
            }
            b'.' => {
                toks.push((Tok::Dot, i));
                i += 1;
            }
            b'"' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(ParseError::new("unterminated string literal", start));
                    }
                    if bytes[i] == b'"' {
                        i += 1;
                        break;
                    }
                    s.push(bytes[i] as char);
                    i += 1;
                }
                toks.push((Tok::Str(s), start));
            }
            b'-' | b'0'..=b'9' => {
                let start = i;
                if b == b'-' && !(i + 1 < bytes.len() && bytes[i + 1].is_ascii_digit()) {
                    return Err(ParseError::new("stray '-'", i));
                }
                if b == b'-' {
                    i += 1;
                }
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i + 1 < bytes.len() && bytes[i] == b'.' && bytes[i + 1].is_ascii_digit() {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                let text = &input[start..i];
                let value =
                    if is_float {
                        ContextValue::Float(text.parse::<f64>().map_err(|e| {
                            ParseError::new(format!("bad number {text:?}: {e}"), start)
                        })?)
                    } else {
                        ContextValue::Int(text.parse::<i64>().map_err(|e| {
                            ParseError::new(format!("bad number {text:?}: {e}"), start)
                        })?)
                    };
                toks.push((Tok::Number(value), start));
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                toks.push((Tok::Ident(input[start..i].to_owned()), start));
            }
            other => {
                return Err(ParseError::new(
                    format!("unexpected character {:?}", other as char),
                    i,
                ));
            }
        }
    }
    toks.push((Tok::Eof, input.len()));
    Ok(toks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctxres_context::ContextKind;

    #[test]
    fn parses_the_paper_velocity_constraint() {
        let c = parse_constraint(
            "constraint max_speed:
               forall a: location, b: location .
                 (same_subject(a, b) and seq_gap(a, b, 1)) implies velocity_le(a, b, 1.5)",
        )
        .unwrap();
        assert_eq!(c.name(), "max_speed");
        assert_eq!(c.quantifier_count(), 2);
        assert!(c.is_universal_positive());
        assert!(c.is_relevant_to(&ContextKind::new("location")));
    }

    #[test]
    fn multi_binding_desugars_to_nested_quantifiers() {
        let a = parse_formula("forall a: k, b: k . eq(a.v, b.v)").unwrap();
        let b = parse_formula("forall a: k . forall b: k . eq(a.v, b.v)").unwrap();
        // qids are assigned by Constraint::new, not the parser, so the
        // formulas compare equal structurally.
        assert_eq!(a, b);
    }

    #[test]
    fn precedence_not_and_or_implies() {
        let f = parse_formula("not p() and q() or r() implies s()").unwrap();
        assert_eq!(f.to_string(), "(((not p() and q()) or r()) implies s())");
    }

    #[test]
    fn implies_is_right_associative() {
        let f = parse_formula("p() implies q() implies r()").unwrap();
        assert_eq!(f.to_string(), "(p() implies (q() implies r()))");
    }

    #[test]
    fn parens_override_precedence() {
        let f = parse_formula("p() and (q() or r())").unwrap();
        assert_eq!(f.to_string(), "(p() and (q() or r()))");
    }

    #[test]
    fn terms_parse_all_shapes() {
        let f = parse_formula("p(a, a.room, 1, -2.5, \"office\", true, false)").unwrap();
        let Formula::Pred(call) = f else {
            panic!("expected pred")
        };
        assert_eq!(call.args.len(), 7);
        assert_eq!(call.args[0], Term::Var("a".into()));
        assert_eq!(call.args[1], Term::Attr("a".into(), "room".into()));
        assert_eq!(call.args[2], Term::Const(ContextValue::Int(1)));
        assert_eq!(call.args[3], Term::Const(ContextValue::Float(-2.5)));
        assert_eq!(
            call.args[4],
            Term::Const(ContextValue::Text("office".into()))
        );
        assert_eq!(call.args[5], Term::Const(ContextValue::Bool(true)));
        assert_eq!(call.args[6], Term::Const(ContextValue::Bool(false)));
    }

    #[test]
    fn comments_are_skipped() {
        let c =
            parse_constraint("# a comment\nconstraint c: # trailing\n forall a: k . true").unwrap();
        assert_eq!(c.name(), "c");
    }

    #[test]
    fn multiple_constraints_parse_in_sequence() {
        let cs = parse_constraints(
            "constraint one: forall a: k . true
             constraint two: exists b: k . p(b)",
        )
        .unwrap();
        assert_eq!(cs.len(), 2);
        assert_eq!(cs[0].name(), "one");
        assert_eq!(cs[1].name(), "two");
    }

    #[test]
    fn nested_quantifier_inside_connective() {
        let f = parse_formula("p() and forall a: k . q(a)").unwrap();
        assert_eq!(f.to_string(), "(p() and (forall a: k . q(a)))");
    }

    #[test]
    fn error_reports_offset() {
        let err = parse_constraint("constraint x forall a: k . true").unwrap_err();
        assert!(err.to_string().contains("':'"), "{err}");
        assert!(err.offset > 0);
    }

    #[test]
    fn unterminated_string_is_an_error() {
        let err = parse_formula("p(\"oops)").unwrap_err();
        assert!(err.to_string().contains("unterminated"));
    }

    #[test]
    fn stray_minus_is_an_error() {
        assert!(parse_formula("p(-)").is_err());
    }

    #[test]
    fn unexpected_character_is_an_error() {
        let err = parse_formula("p() & q()").unwrap_err();
        assert!(err.to_string().contains('&'));
    }

    #[test]
    fn empty_argument_list_allowed() {
        let f = parse_formula("heartbeat()").unwrap();
        assert_eq!(f.to_string(), "heartbeat()");
    }

    #[test]
    fn eof_expected_after_formula() {
        assert!(parse_formula("true true").is_err());
    }

    #[test]
    fn errors_carry_line_and_column() {
        let err = parse_constraints(
            "constraint ok: forall a: k . true\nconstraint broken: forall a k . true",
        )
        .unwrap_err();
        assert_eq!(err.line, 2, "{err}");
        assert!(err.column > 20, "{err}");
        assert!(err.to_string().contains("line 2"));
    }
}

#[cfg(test)]
mod float_roundtrip_tests {
    use super::*;
    use crate::ast::Term;
    use ctxres_context::ContextValue;

    #[test]
    fn integral_floats_round_trip_as_floats() {
        let f = Formula::pred("p", vec![Term::Const(ContextValue::Float(4.0))]);
        let printed = f.to_string();
        assert_eq!(printed, "p(4.0)");
        assert_eq!(parse_formula(&printed).unwrap(), f);
    }
}

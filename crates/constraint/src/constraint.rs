//! Named constraints and constraint sets.

use crate::ast::Formula;
use ctxres_context::ContextKind;
use std::collections::BTreeSet;
use std::fmt;

/// A named consistency constraint.
///
/// Wraps a [`Formula`] whose quantifier ids have been assigned, and
/// caches the derived facts the middleware needs: the kinds the formula
/// quantifies over (relevance) and whether it sits in the
/// universal-positive fragment (incremental checkability).
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    name: String,
    formula: Formula,
    kinds: BTreeSet<ContextKind>,
    universal_positive: bool,
    quantifier_count: usize,
}

impl Constraint {
    /// Creates a constraint, assigning quantifier ids to the formula.
    pub fn new(name: &str, mut formula: Formula) -> Self {
        let quantifier_count = formula.assign_qids();
        let kinds = formula.kinds();
        let universal_positive = formula.is_universal_positive();
        Constraint {
            name: name.to_owned(),
            formula,
            kinds,
            universal_positive,
            quantifier_count,
        }
    }

    /// The constraint's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The underlying formula (qids assigned).
    pub fn formula(&self) -> &Formula {
        &self.formula
    }

    /// Context kinds the constraint quantifies over.
    pub fn kinds(&self) -> &BTreeSet<ContextKind> {
        &self.kinds
    }

    /// Whether a context of `kind` can possibly be involved in this
    /// constraint.
    pub fn is_relevant_to(&self, kind: &ContextKind) -> bool {
        self.kinds.contains(kind)
    }

    /// Whether the formula lies in the incremental-checkable fragment.
    pub fn is_universal_positive(&self) -> bool {
        self.universal_positive
    }

    /// Number of quantifiers in the formula.
    pub fn quantifier_count(&self) -> usize {
        self.quantifier_count
    }

    /// Quantifier descriptors `(qid, kind)` whose kind equals `kind`.
    pub fn quantifiers_over(&self, kind: &ContextKind) -> Vec<usize> {
        self.formula
            .quantifiers()
            .into_iter()
            .filter(|(_, k, _)| k == kind)
            .map(|(qid, _, _)| qid)
            .collect()
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "constraint {}: {}", self.name, self.formula)
    }
}

/// An ordered collection of constraints, as deployed in a middleware.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ConstraintSet {
    items: Vec<Constraint>,
}

impl ConstraintSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        ConstraintSet::default()
    }

    /// Adds a constraint.
    pub fn push(&mut self, c: Constraint) {
        self.items.push(c);
    }

    /// Number of constraints.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterates over the constraints in deployment order.
    pub fn iter(&self) -> std::slice::Iter<'_, Constraint> {
        self.items.iter()
    }

    /// The constraints relevant to a context of `kind`.
    pub fn relevant_to<'a>(
        &'a self,
        kind: &'a ContextKind,
    ) -> impl Iterator<Item = &'a Constraint> + 'a {
        self.items.iter().filter(move |c| c.is_relevant_to(kind))
    }

    /// Whether any constraint is relevant to `kind` (paper Fig. 7 Part 1:
    /// contexts of irrelevant kinds become `Consistent` immediately).
    pub fn any_relevant_to(&self, kind: &ContextKind) -> bool {
        self.items.iter().any(|c| c.is_relevant_to(kind))
    }

    /// Looks a constraint up by name.
    pub fn get(&self, name: &str) -> Option<&Constraint> {
        self.items.iter().find(|c| c.name() == name)
    }
}

impl FromIterator<Constraint> for ConstraintSet {
    fn from_iter<T: IntoIterator<Item = Constraint>>(iter: T) -> Self {
        ConstraintSet {
            items: iter.into_iter().collect(),
        }
    }
}

impl Extend<Constraint> for ConstraintSet {
    fn extend<T: IntoIterator<Item = Constraint>>(&mut self, iter: T) {
        self.items.extend(iter);
    }
}

impl<'a> IntoIterator for &'a ConstraintSet {
    type Item = &'a Constraint;
    type IntoIter = std::slice::Iter<'a, Constraint>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_constraint;

    #[test]
    fn constraint_caches_relevance() {
        let c = parse_constraint(
            "constraint v: forall a: location, b: location . velocity_le(a, b, 1.0)",
        )
        .unwrap();
        assert!(c.is_relevant_to(&ContextKind::new("location")));
        assert!(!c.is_relevant_to(&ContextKind::new("rfid")));
        assert_eq!(c.quantifier_count(), 2);
        assert!(c.is_universal_positive());
    }

    #[test]
    fn quantifiers_over_filters_by_kind() {
        let c =
            parse_constraint("constraint v: forall a: location . forall r: rfid . distinct(a, r)")
                .unwrap();
        assert_eq!(c.quantifiers_over(&ContextKind::new("location")), vec![0]);
        assert_eq!(c.quantifiers_over(&ContextKind::new("rfid")), vec![1]);
    }

    #[test]
    fn set_relevance_queries() {
        let mut set = ConstraintSet::new();
        set.push(parse_constraint("constraint a: forall x: location . true").unwrap());
        set.push(parse_constraint("constraint b: forall x: rfid . true").unwrap());
        assert_eq!(set.len(), 2);
        assert_eq!(set.relevant_to(&ContextKind::new("location")).count(), 1);
        assert!(set.any_relevant_to(&ContextKind::new("rfid")));
        assert!(!set.any_relevant_to(&ContextKind::new("temperature")));
        assert!(set.get("a").is_some());
        assert!(set.get("zzz").is_none());
    }

    #[test]
    fn display_includes_name() {
        let c = parse_constraint("constraint speedy: forall a: location . true").unwrap();
        assert!(c.to_string().starts_with("constraint speedy:"));
    }
}

//! First-order consistency-constraint language for pervasive contexts.
//!
//! Context-aware applications state *consistency constraints* — necessary
//! properties over the contexts a middleware manages (paper §2.1, §5.3).
//! This crate reimplements the constraint facility of the Cabot middleware
//! that the ICDCS'08 drop-bad paper builds on (Xu & Cheung, ESEC/FSE'05;
//! Xu, Cheung & Chan, ICSE'06):
//!
//! * a first-order [`Formula`] AST with universal/existential quantifiers
//!   over context kinds, boolean connectives, and extensible predicates;
//! * a small **text DSL** ([`parse_constraint`]) so applications can state
//!   constraints declaratively;
//! * an **evaluator** that does not merely return a truth value but
//!   computes *links* — the sets of contexts witnessing each violation.
//!   A violated top-level constraint yields one [`Link`] per detected
//!   **context inconsistency**;
//! * an **incremental checker** ([`IncrementalChecker`]) that, when a new
//!   context arrives, re-evaluates only the affected constraints with the
//!   new context pinned into matching quantifiers (the ICSE'06 partial
//!   evaluation idea), instead of re-checking the whole pool.
//!
//! # Example
//!
//! ```
//! use ctxres_constraint::{parse_constraint, PredicateRegistry, Evaluator};
//! use ctxres_context::{Context, ContextKind, ContextPool, LogicalTime, Point};
//!
//! let constraint = parse_constraint(
//!     "constraint max_speed:
//!        forall a: location, b: location .
//!          (same_subject(a, b) and seq_gap(a, b, 1)) implies velocity_le(a, b, 1.5)",
//! )?;
//!
//! let mut pool = ContextPool::new();
//! for (i, (x, y)) in [(0.0, 0.0), (0.5, 0.0), (9.0, 9.0)].iter().enumerate() {
//!     pool.insert(
//!         Context::builder(ContextKind::new("location"), "peter")
//!             .attr("pos", Point::new(*x, *y))
//!             .attr("seq", i as i64)
//!             .stamp(LogicalTime::new(i as u64))
//!             .build(),
//!     );
//! }
//!
//! let registry = PredicateRegistry::with_builtins();
//! let evaluator = Evaluator::new(&registry);
//! let outcome = evaluator.check(&constraint, &pool, LogicalTime::new(3))?;
//! assert!(!outcome.satisfied);
//! assert_eq!(outcome.violations.len(), 1); // the second hop is too fast
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ast;
mod compile;
mod constraint;
mod error;
mod eval;
mod incremental;
mod parser;
mod predicate;
mod schema;
mod simplify;

pub use ast::{Formula, PredicateCall, Quantifier, Term};
pub use compile::{CompiledConstraint, CompiledEvaluator, EvalScratch, PredMemo};
pub use constraint::{Constraint, ConstraintSet};
pub use error::{EvalError, ParseError};
pub use eval::{CheckOutcome, DomainMode, Evaluator, Link, MAX_LINKS};
pub use incremental::{CheckerStats, Detection, IncrementalChecker, KindPlan, PlanCounts};
pub use parser::{parse_constraint, parse_constraints, parse_formula};
pub use predicate::{PredicateRegistry, Resolved};
pub use schema::{
    constraint_scope, global_kinds, validate, AttrType, ConstraintScope, ContextSchema, KindSchema,
    SchemaViolation,
};
pub use simplify::simplify;

//! Errors for parsing and evaluating constraints.

use std::error::Error;
use std::fmt;

/// An error raised while parsing the constraint DSL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of what went wrong.
    pub message: String,
    /// Byte offset in the input where the error was noticed.
    pub offset: usize,
    /// 1-based line of the offending token (0 when unlocated).
    pub line: usize,
    /// 1-based column of the offending token (0 when unlocated).
    pub column: usize,
}

impl ParseError {
    pub(crate) fn new(message: impl Into<String>, offset: usize) -> Self {
        ParseError {
            message: message.into(),
            offset,
            line: 0,
            column: 0,
        }
    }

    /// Fills in line/column from the original input (the parser does
    /// this before returning; exposed for custom front-ends).
    pub fn locate(mut self, input: &str) -> Self {
        let upto = &input[..self.offset.min(input.len())];
        self.line = upto.bytes().filter(|b| *b == b'\n').count() + 1;
        self.column = upto.bytes().rev().take_while(|b| *b != b'\n').count() + 1;
        self
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(
                f,
                "parse error at line {}, column {}: {}",
                self.line, self.column, self.message
            )
        } else {
            write!(f, "parse error at byte {}: {}", self.offset, self.message)
        }
    }
}

impl Error for ParseError {}

/// An error raised while evaluating a formula.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EvalError {
    /// A predicate name is not in the registry.
    UnknownPredicate(String),
    /// A predicate was applied to the wrong number of arguments.
    Arity {
        /// Predicate name.
        name: String,
        /// Expected argument count.
        expected: usize,
        /// Actual argument count.
        actual: usize,
    },
    /// A predicate received an argument of an unusable type.
    Type {
        /// Predicate name.
        name: String,
        /// Description of the mismatch.
        detail: String,
    },
    /// A term referenced a variable not bound by any enclosing quantifier.
    UnboundVariable(String),
    /// A term referenced an attribute missing from the bound context.
    MissingAttr {
        /// The variable whose context lacked the attribute.
        var: String,
        /// The attribute name.
        attr: String,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnknownPredicate(name) => write!(f, "unknown predicate {name:?}"),
            EvalError::Arity {
                name,
                expected,
                actual,
            } => {
                write!(
                    f,
                    "predicate {name:?} expects {expected} arguments, got {actual}"
                )
            }
            EvalError::Type { name, detail } => {
                write!(f, "predicate {name:?} type error: {detail}")
            }
            EvalError::UnboundVariable(v) => write!(f, "unbound variable {v:?}"),
            EvalError::MissingAttr { var, attr } => {
                write!(f, "context bound to {var:?} has no attribute {attr:?}")
            }
        }
    }
}

impl Error for EvalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_are_std_errors() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<ParseError>();
        assert_err::<EvalError>();
    }

    #[test]
    fn display_mentions_specifics() {
        let e = EvalError::Arity {
            name: "eq".into(),
            expected: 2,
            actual: 3,
        };
        assert!(e.to_string().contains("eq"));
        assert!(e.to_string().contains('3'));
        let p = ParseError::new("expected ident", 12);
        assert!(p.to_string().contains("12"));
    }
}

//! Link-producing formula evaluation.
//!
//! The evaluator follows the link-generation semantics of Xu, Cheung &
//! Chan (ICSE'06): every sub-formula evaluates to a truth value plus
//! *links*, the sets of contexts witnessing that verdict. A violated
//! top-level constraint therefore yields one [`Link`] per detected
//! context inconsistency — exactly the objects the resolution strategies
//! in `ctxres-core` operate on.
//!
//! Composition rules (links of the *returned* truth value):
//!
//! * predicate: the contexts referenced by its arguments;
//! * `not f`: the links of `f`;
//! * violated `and`: union of the false sides' links; satisfied `and`:
//!   pairwise unions (⊗) of both sides' links;
//! * satisfied `or`: union of the true sides' links; violated `or`: ⊗;
//! * `implies` behaves as `or(not lhs, rhs)`;
//! * violated `forall x`: for each violating binding, the body's links
//!   each extended with the bound context; satisfied `forall`: ⊗ over all
//!   bindings;
//! * `exists` is dual.
//!
//! The ⊗ products can grow combinatorially; two mechanisms keep
//! evaluation cheap and exact where it matters: evidence lists are
//! capped at [`MAX_LINKS`] with a `truncated` flag, and evidence is
//! computed *demand-driven* — a polarity analysis skips any ⊗-fold whose
//! result cannot reach the top-level violation links (satisfied `forall`
//! evidence in positive position, for instance), so checking the common
//! constraint shapes stays linear in the number of bindings.

use crate::ast::{Formula, Quantifier, Term};
use crate::constraint::Constraint;
use crate::error::EvalError;
use crate::predicate::{PredicateRegistry, Resolved};
use ctxres_context::{ContextId, ContextPool, LogicalTime};
use std::collections::BTreeSet;

/// A set of contexts witnessing a verdict; for a violated constraint, one
/// link is one context inconsistency.
pub type Link = BTreeSet<ContextId>;

/// Cap on the number of evidence links tracked per sub-formula.
pub const MAX_LINKS: usize = 256;

/// Result of checking one constraint against a pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckOutcome {
    /// Whether the constraint held.
    pub satisfied: bool,
    /// One link per detected inconsistency (empty when satisfied).
    pub violations: Vec<Link>,
    /// Whether evidence tracking hit [`MAX_LINKS`] somewhere.
    pub truncated: bool,
}

#[derive(Debug, Clone)]
pub(crate) struct Evidence {
    pub(crate) truth: bool,
    pub(crate) links: Vec<Link>,
    pub(crate) truncated: bool,
}

impl Evidence {
    pub(crate) fn of(truth: bool) -> Evidence {
        // Constant formulas: a single empty witness.
        Evidence {
            truth,
            links: vec![Link::new()],
            truncated: false,
        }
    }
}

/// Restricts one quantifier's domain to a single context (incremental
/// checking support).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Pin {
    pub(crate) qid: usize,
    pub(crate) ctx: ContextId,
}

/// Which contexts quantifiers range over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DomainMode {
    /// All live, non-discarded contexts — the consistency-checking view
    /// (buffered `Undecided`/`Bad` contexts are checked too).
    #[default]
    AllLive,
    /// Only `Consistent`, live contexts — the application view used for
    /// situation evaluation.
    AvailableOnly,
}

/// Evaluates constraints against a [`ContextPool`].
///
/// See the crate-level example. The evaluator borrows the predicate
/// registry; it holds no other state, so one instance can check any
/// number of constraints.
#[derive(Debug)]
pub struct Evaluator<'r> {
    registry: &'r PredicateRegistry,
    domain: DomainMode,
}

impl<'r> Evaluator<'r> {
    /// Creates an evaluator using `registry` for predicate lookups,
    /// quantifying over all live contexts.
    pub fn new(registry: &'r PredicateRegistry) -> Self {
        Evaluator {
            registry,
            domain: DomainMode::AllLive,
        }
    }

    /// Creates an evaluator with an explicit quantification domain.
    pub fn with_domain(registry: &'r PredicateRegistry, domain: DomainMode) -> Self {
        Evaluator { registry, domain }
    }

    /// Fully checks `constraint` over the live contexts of `pool` at
    /// instant `now`.
    ///
    /// # Errors
    ///
    /// Propagates [`EvalError`] from predicate evaluation (unknown
    /// predicate, arity/type errors, unbound variables).
    pub fn check(
        &self,
        constraint: &Constraint,
        pool: &ContextPool,
        now: LogicalTime,
    ) -> Result<CheckOutcome, EvalError> {
        let ev = self.eval(
            constraint.formula(),
            pool,
            now,
            &mut Vec::new(),
            None,
            Need::ROOT,
        )?;
        Ok(outcome_from(ev))
    }

    /// Checks `constraint` with quantifier `qid`'s domain restricted to
    /// the single context `ctx` (all other quantifiers range over the
    /// full pool).
    ///
    /// Used by the incremental checker to find the violations a
    /// newly-arrived context introduces.
    ///
    /// # Errors
    ///
    /// Same as [`Evaluator::check`].
    pub fn check_pinned(
        &self,
        constraint: &Constraint,
        pool: &ContextPool,
        now: LogicalTime,
        qid: usize,
        ctx: ContextId,
    ) -> Result<CheckOutcome, EvalError> {
        let pin = Pin { qid, ctx };
        let ev = self.eval(
            constraint.formula(),
            pool,
            now,
            &mut Vec::new(),
            Some(pin),
            Need::ROOT,
        )?;
        Ok(outcome_from(ev))
    }

    fn eval(
        &self,
        formula: &Formula,
        pool: &ContextPool,
        now: LogicalTime,
        env: &mut Vec<(String, ContextId)>,
        pin: Option<Pin>,
        need: Need,
    ) -> Result<Evidence, EvalError> {
        match formula {
            Formula::True => Ok(Evidence::of(true)),
            Formula::False => Ok(Evidence::of(false)),
            Formula::Not(f) => {
                let mut ev = self.eval(f, pool, now, env, pin, need.flip())?;
                ev.truth = !ev.truth;
                Ok(ev)
            }
            Formula::And(a, b) => {
                let ea = self.eval(a, pool, now, env, pin, need)?;
                let eb = self.eval(b, pool, now, env, pin, need)?;
                Ok(combine_and(ea, eb))
            }
            Formula::Or(a, b) => {
                let ea = self.eval(a, pool, now, env, pin, need)?;
                let eb = self.eval(b, pool, now, env, pin, need)?;
                Ok(combine_or(ea, eb))
            }
            Formula::Implies(a, b) => {
                let mut ea = self.eval(a, pool, now, env, pin, need.flip())?;
                ea.truth = !ea.truth;
                let eb = self.eval(b, pool, now, env, pin, need)?;
                Ok(combine_or(ea, eb))
            }
            Formula::Pred(call) => {
                let mut witness = Link::new();
                let mut args: Vec<Resolved<'_>> = Vec::with_capacity(call.args.len());
                for term in &call.args {
                    args.push(resolve_term(term, pool, env, &mut witness)?);
                }
                let truth = self.registry.eval(&call.name, &args)?;
                Ok(Evidence {
                    truth,
                    links: vec![witness],
                    truncated: false,
                })
            }
            Formula::Quant {
                q,
                var,
                kind,
                qid,
                body,
            } => {
                let domain: Vec<ContextId> = match pin {
                    Some(p) if p.qid == *qid => vec![p.ctx],
                    _ => pool
                        .of_kind_live_at(kind, now)
                        .filter(|(_, c)| {
                            self.domain == DomainMode::AllLive || c.state().is_available()
                        })
                        .map(|(id, _)| id)
                        .collect(),
                };
                let mut per_binding: Vec<Evidence> = Vec::with_capacity(domain.len());
                for id in &domain {
                    env.push((var.clone(), *id));
                    let mut ev = self.eval(body, pool, now, env, pin, need)?;
                    env.pop();
                    for link in &mut ev.links {
                        link.insert(*id);
                    }
                    per_binding.push(ev);
                }
                Ok(match q {
                    Quantifier::Forall => fold_forall(per_binding, need),
                    Quantifier::Exists => fold_exists(per_binding, need),
                })
            }
        }
    }
}

/// Which evidence polarities a node's caller can actually use. Top-level
/// violation reporting only consumes false-evidence of the root; the
/// flags propagate down (flipping through negations) so the expensive
/// ⊗-folds over whole quantifier domains are skipped whenever their
/// result is unobservable. This keeps evaluation exact *and* linear in
/// the number of bindings for the common constraint shapes.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Need {
    when_true: bool,
    when_false: bool,
}

impl Need {
    pub(crate) const ROOT: Need = Need {
        when_true: false,
        when_false: true,
    };

    pub(crate) fn flip(self) -> Need {
        Need {
            when_true: self.when_false,
            when_false: self.when_true,
        }
    }
}

pub(crate) fn outcome_from(ev: Evidence) -> CheckOutcome {
    if ev.truth {
        CheckOutcome {
            satisfied: true,
            violations: Vec::new(),
            truncated: ev.truncated,
        }
    } else {
        let mut violations = ev.links;
        violations.retain(|l| !l.is_empty());
        dedup_links(&mut violations);
        CheckOutcome {
            satisfied: false,
            violations,
            truncated: ev.truncated,
        }
    }
}

fn resolve_term<'a>(
    term: &'a Term,
    pool: &'a ContextPool,
    env: &[(String, ContextId)],
    witness: &mut Link,
) -> Result<Resolved<'a>, EvalError> {
    match term {
        Term::Const(v) => Ok(Resolved::ValueRef(v)),
        Term::Var(name) => {
            let id = lookup(env, name)?;
            witness.insert(id);
            let ctx = pool
                .get(id)
                .ok_or_else(|| EvalError::UnboundVariable(name.clone()))?;
            Ok(Resolved::Ctx(id, ctx))
        }
        Term::Attr(name, attr) => {
            let id = lookup(env, name)?;
            witness.insert(id);
            let ctx = pool
                .get(id)
                .ok_or_else(|| EvalError::UnboundVariable(name.clone()))?;
            let value = ctx.attr(attr).ok_or_else(|| EvalError::MissingAttr {
                var: name.clone(),
                attr: attr.clone(),
            })?;
            Ok(Resolved::ValueRef(value))
        }
    }
}

fn lookup(env: &[(String, ContextId)], name: &str) -> Result<ContextId, EvalError> {
    env.iter()
        .rev()
        .find(|(n, _)| n == name)
        .map(|(_, id)| *id)
        .ok_or_else(|| EvalError::UnboundVariable(name.to_owned()))
}

pub(crate) fn combine_and(a: Evidence, b: Evidence) -> Evidence {
    match (a.truth, b.truth) {
        (true, true) => cross(a, b, true),
        (false, true) => Evidence { truth: false, ..a },
        (true, false) => Evidence { truth: false, ..b },
        (false, false) => union(a, b, false),
    }
}

pub(crate) fn combine_or(a: Evidence, b: Evidence) -> Evidence {
    match (a.truth, b.truth) {
        (false, false) => cross(a, b, false),
        (true, false) => Evidence { truth: true, ..a },
        (false, true) => Evidence { truth: true, ..b },
        (true, true) => union(a, b, true),
    }
}

pub(crate) fn fold_forall(per_binding: Vec<Evidence>, need: Need) -> Evidence {
    let truth = per_binding.iter().all(|e| e.truth);
    if truth {
        if !need.when_true {
            return Evidence::of(true);
        }
        per_binding
            .into_iter()
            .fold(Evidence::of(true), |acc, e| cross(acc, e, true))
    } else {
        if !need.when_false {
            return Evidence::of(false);
        }
        let mut truncated = false;
        let mut links = Vec::new();
        for e in per_binding.into_iter().filter(|e| !e.truth) {
            truncated |= e.truncated;
            links.extend(e.links);
        }
        dedup_links(&mut links);
        if links.len() > MAX_LINKS {
            links.truncate(MAX_LINKS);
            truncated = true;
        }
        Evidence {
            truth: false,
            links,
            truncated,
        }
    }
}

pub(crate) fn fold_exists(per_binding: Vec<Evidence>, need: Need) -> Evidence {
    let truth = per_binding.iter().any(|e| e.truth);
    if truth {
        if !need.when_true {
            return Evidence::of(true);
        }
        let mut truncated = false;
        let mut links = Vec::new();
        for e in per_binding.into_iter().filter(|e| e.truth) {
            truncated |= e.truncated;
            links.extend(e.links);
        }
        dedup_links(&mut links);
        if links.len() > MAX_LINKS {
            links.truncate(MAX_LINKS);
            truncated = true;
        }
        Evidence {
            truth: true,
            links,
            truncated,
        }
    } else {
        if !need.when_false {
            return Evidence::of(false);
        }
        per_binding
            .into_iter()
            .fold(Evidence::of(false), |acc, e| cross(acc, e, false))
    }
}

/// Pairwise unions of the two evidence lists (the ⊗ operator).
fn cross(a: Evidence, b: Evidence, truth: bool) -> Evidence {
    let mut truncated = a.truncated || b.truncated;
    let mut links = Vec::with_capacity((a.links.len() * b.links.len()).min(MAX_LINKS));
    'outer: for la in &a.links {
        for lb in &b.links {
            if links.len() >= MAX_LINKS {
                truncated = true;
                break 'outer;
            }
            let mut l = la.clone();
            l.extend(lb.iter().copied());
            links.push(l);
        }
    }
    dedup_links(&mut links);
    Evidence {
        truth,
        links,
        truncated,
    }
}

fn union(a: Evidence, b: Evidence, truth: bool) -> Evidence {
    let mut truncated = a.truncated || b.truncated;
    let mut links = a.links;
    links.extend(b.links);
    dedup_links(&mut links);
    if links.len() > MAX_LINKS {
        links.truncate(MAX_LINKS);
        truncated = true;
    }
    Evidence {
        truth,
        links,
        truncated,
    }
}

fn dedup_links(links: &mut Vec<Link>) {
    links.sort();
    links.dedup();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_constraint;
    use ctxres_context::{Context, ContextKind, ContextState, Point};

    fn registry() -> PredicateRegistry {
        PredicateRegistry::with_builtins()
    }

    fn loc_pool(points: &[(f64, f64)]) -> ContextPool {
        let mut pool = ContextPool::new();
        for (i, (x, y)) in points.iter().enumerate() {
            pool.insert(
                Context::builder(ContextKind::new("location"), "peter")
                    .attr("pos", Point::new(*x, *y))
                    .attr("seq", i as i64)
                    .stamp(LogicalTime::new(i as u64))
                    .build(),
            );
        }
        pool
    }

    fn speed_constraint(gap: i64, vmax: f64) -> Constraint {
        parse_constraint(&format!(
            "constraint speed_gap{gap}:
               forall a: location, b: location .
                 (same_subject(a, b) and seq_gap(a, b, {gap})) implies velocity_le(a, b, {vmax})"
        ))
        .unwrap()
    }

    #[test]
    fn satisfied_constraint_has_no_violations() {
        let pool = loc_pool(&[(0.0, 0.0), (0.5, 0.0), (1.0, 0.0)]);
        let reg = registry();
        let out = Evaluator::new(&reg)
            .check(&speed_constraint(1, 1.5), &pool, LogicalTime::new(10))
            .unwrap();
        assert!(out.satisfied);
        assert!(out.violations.is_empty());
        assert!(!out.truncated);
    }

    #[test]
    fn violation_links_name_the_offending_pair() {
        // Third context jumps far away: the (1,2) hop violates.
        let pool = loc_pool(&[(0.0, 0.0), (0.5, 0.0), (9.0, 9.0)]);
        let reg = registry();
        let out = Evaluator::new(&reg)
            .check(&speed_constraint(1, 1.5), &pool, LogicalTime::new(10))
            .unwrap();
        assert!(!out.satisfied);
        assert_eq!(out.violations.len(), 1);
        let link: Vec<u64> = out.violations[0].iter().map(|id| id.raw()).collect();
        assert_eq!(link, vec![1, 2]);
    }

    #[test]
    fn multiple_violations_stay_separate_links() {
        // Middle context deviates: both hops around it violate.
        let pool = loc_pool(&[(0.0, 0.0), (9.0, 9.0), (1.0, 0.0)]);
        let reg = registry();
        let out = Evaluator::new(&reg)
            .check(&speed_constraint(1, 1.5), &pool, LogicalTime::new(10))
            .unwrap();
        assert_eq!(out.violations.len(), 2);
        let pairs: Vec<Vec<u64>> = out
            .violations
            .iter()
            .map(|l| l.iter().map(|id| id.raw()).collect())
            .collect();
        assert!(pairs.contains(&vec![0, 1]));
        assert!(pairs.contains(&vec![1, 2]));
    }

    #[test]
    fn discarded_contexts_leave_the_domain() {
        let mut pool = loc_pool(&[(0.0, 0.0), (9.0, 9.0), (1.0, 0.0)]);
        pool.set_state(ContextId::from_raw(1), ContextState::Inconsistent)
            .unwrap();
        let reg = registry();
        let out = Evaluator::new(&reg)
            .check(&speed_constraint(1, 1.5), &pool, LogicalTime::new(10))
            .unwrap();
        // Without the deviating context, remaining gap-1 pairs are fine.
        assert!(out.satisfied, "violations: {:?}", out.violations);
    }

    #[test]
    fn pinned_check_sees_only_bindings_with_the_new_context() {
        let pool = loc_pool(&[(0.0, 0.0), (0.5, 0.0), (9.0, 9.0)]);
        let reg = registry();
        let c = speed_constraint(1, 1.5);
        let eval = Evaluator::new(&reg);
        // Pin the *first* quantifier to context 0: its only outgoing gap-1
        // hop (0,1) is fine, so no violations are visible from there.
        let out = eval
            .check_pinned(&c, &pool, LogicalTime::new(10), 0, ContextId::from_raw(0))
            .unwrap();
        assert!(out.satisfied);
        // Pin the second quantifier to context 2: the (1,2) hop violates.
        let out = eval
            .check_pinned(&c, &pool, LogicalTime::new(10), 1, ContextId::from_raw(2))
            .unwrap();
        assert_eq!(out.violations.len(), 1);
    }

    #[test]
    fn region_constraint_yields_singleton_links() {
        let pool = loc_pool(&[(0.0, 0.0), (50.0, 50.0)]);
        let reg = registry();
        let c = parse_constraint(
            "constraint feasible: forall a: location . within(a, -10.0, -10.0, 10.0, 10.0)",
        )
        .unwrap();
        let out = Evaluator::new(&reg)
            .check(&c, &pool, LogicalTime::new(10))
            .unwrap();
        assert_eq!(out.violations.len(), 1);
        assert_eq!(out.violations[0].len(), 1);
        assert!(out.violations[0].contains(&ContextId::from_raw(1)));
    }

    #[test]
    fn exists_detects_absence() {
        let pool = loc_pool(&[(0.0, 0.0)]);
        let reg = registry();
        let c =
            parse_constraint("constraint has_mary: exists a: location . subject_eq(a, \"mary\")")
                .unwrap();
        let out = Evaluator::new(&reg)
            .check(&c, &pool, LogicalTime::new(10))
            .unwrap();
        assert!(!out.satisfied);
        // Violation evidence: the whole (singleton) domain.
        assert_eq!(out.violations.len(), 1);
    }

    #[test]
    fn empty_domain_forall_is_vacuously_true() {
        let pool = ContextPool::new();
        let reg = registry();
        let c = parse_constraint("constraint v: forall a: location . false").unwrap();
        let out = Evaluator::new(&reg)
            .check(&c, &pool, LogicalTime::new(0))
            .unwrap();
        assert!(out.satisfied);
    }

    #[test]
    fn empty_domain_exists_is_false_with_empty_evidence() {
        let pool = ContextPool::new();
        let reg = registry();
        let c = parse_constraint("constraint v: exists a: location . true").unwrap();
        let out = Evaluator::new(&reg)
            .check(&c, &pool, LogicalTime::new(0))
            .unwrap();
        assert!(!out.satisfied);
        assert!(out.violations.is_empty(), "no contexts to blame");
    }

    #[test]
    fn attribute_terms_contribute_evidence() {
        let mut pool = ContextPool::new();
        pool.insert(
            Context::builder(ContextKind::new("badge"), "peter")
                .attr("room", "office")
                .stamp(LogicalTime::new(0))
                .build(),
        );
        let reg = registry();
        let c = parse_constraint("constraint in_office: forall a: badge . eq(a.room, \"lab\")")
            .unwrap();
        let out = Evaluator::new(&reg)
            .check(&c, &pool, LogicalTime::new(1))
            .unwrap();
        assert_eq!(out.violations, vec![Link::from([ContextId::from_raw(0)])]);
    }

    #[test]
    fn missing_attribute_is_an_error() {
        let mut pool = ContextPool::new();
        pool.insert(Context::builder(ContextKind::new("badge"), "p").build());
        let reg = registry();
        let c = parse_constraint("constraint x: forall a: badge . eq(a.room, \"lab\")").unwrap();
        let err = Evaluator::new(&reg)
            .check(&c, &pool, LogicalTime::new(1))
            .unwrap_err();
        assert!(matches!(err, EvalError::MissingAttr { .. }));
    }

    #[test]
    fn expired_contexts_leave_the_domain() {
        use ctxres_context::{Lifespan, Ticks};
        let mut pool = ContextPool::new();
        pool.insert(
            Context::builder(ContextKind::new("location"), "p")
                .attr("pos", Point::new(99.0, 99.0))
                .attr("seq", 0i64)
                .stamp(LogicalTime::new(0))
                .lifespan(Lifespan::with_ttl(LogicalTime::new(0), Ticks::new(2)))
                .build(),
        );
        let reg = registry();
        let c = parse_constraint(
            "constraint feasible: forall a: location . within(a, 0.0, 0.0, 10.0, 10.0)",
        )
        .unwrap();
        let eval = Evaluator::new(&reg);
        let before = eval.check(&c, &pool, LogicalTime::new(1)).unwrap();
        assert!(!before.satisfied);
        let after = eval.check(&c, &pool, LogicalTime::new(5)).unwrap();
        assert!(after.satisfied, "expired context no longer checked");
    }

    #[test]
    fn available_only_domain_skips_undecided_contexts() {
        let mut pool = loc_pool(&[(50.0, 50.0)]);
        let reg = registry();
        let c = parse_constraint(
            "constraint feasible: forall a: location . within(a, 0.0, 0.0, 10.0, 10.0)",
        )
        .unwrap();
        let avail = Evaluator::with_domain(&reg, DomainMode::AvailableOnly);
        // Context is Undecided: invisible to the application view.
        let out = avail.check(&c, &pool, LogicalTime::new(1)).unwrap();
        assert!(out.satisfied);
        pool.set_state(ContextId::from_raw(0), ContextState::Consistent)
            .unwrap();
        let out = avail.check(&c, &pool, LogicalTime::new(1)).unwrap();
        assert!(!out.satisfied);
    }

    #[test]
    fn nested_not_flips_and_keeps_links() {
        let pool = loc_pool(&[(50.0, 50.0)]);
        let reg = registry();
        let c = parse_constraint(
            "constraint out: forall a: location . not within(a, 0.0, 0.0, 10.0, 10.0)",
        )
        .unwrap();
        let out = Evaluator::new(&reg)
            .check(&c, &pool, LogicalTime::new(1))
            .unwrap();
        assert!(out.satisfied);
    }
}

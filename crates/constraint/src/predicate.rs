//! Predicate registry: the extensible atoms of the constraint language.

use crate::error::EvalError;
use ctxres_context::{Context, ContextId, ContextValue, Point};
use std::cmp::Ordering;
use std::collections::HashMap;
use std::fmt;

/// A predicate argument after variable/attribute resolution.
#[derive(Debug, Clone)]
pub enum Resolved<'a> {
    /// A whole context bound by a quantifier (`Term::Var`).
    Ctx(ContextId, &'a Context),
    /// An owned value (predicates constructed directly, e.g. in tests).
    Value(ContextValue),
    /// A value borrowed from the pool or the constraint itself
    /// (`Term::Attr` / `Term::Const`) — the evaluators' allocation-free
    /// argument form.
    ValueRef(&'a ContextValue),
}

impl<'a> Resolved<'a> {
    /// The context, when the argument is one.
    pub fn ctx(&self) -> Option<(&'a Context, ContextId)> {
        match self {
            Resolved::Ctx(id, c) => Some((c, *id)),
            Resolved::Value(_) | Resolved::ValueRef(_) => None,
        }
    }

    /// The value, when the argument is one.
    pub fn value(&self) -> Option<&ContextValue> {
        match self {
            Resolved::Value(v) => Some(v),
            Resolved::ValueRef(v) => Some(v),
            Resolved::Ctx(..) => None,
        }
    }

    /// Context ids referenced by this argument (used for link evidence).
    pub fn referenced_id(&self) -> Option<ContextId> {
        match self {
            Resolved::Ctx(id, _) => Some(*id),
            Resolved::Value(_) | Resolved::ValueRef(_) => None,
        }
    }
}

type PredicateFn = Box<dyn Fn(&[Resolved<'_>]) -> Result<bool, EvalError> + Send + Sync>;

struct Entry {
    arity: usize,
    func: PredicateFn,
}

/// Registry mapping predicate names to their implementations.
///
/// Applications extend the language by registering domain predicates;
/// [`PredicateRegistry::with_builtins`] provides the standard library
/// listed in the crate docs (comparisons, topology, velocity, …).
///
/// ```
/// use ctxres_constraint::{PredicateRegistry, Resolved};
/// use ctxres_context::ContextValue;
///
/// let mut reg = PredicateRegistry::with_builtins();
/// reg.register("always", 0, |_| Ok(true));
/// let ok = reg.eval("always", &[]).unwrap();
/// assert!(ok);
/// let two = [
///     Resolved::Value(ContextValue::Int(1)),
///     Resolved::Value(ContextValue::Int(2)),
/// ];
/// assert!(reg.eval("lt", &two).unwrap());
/// ```
#[derive(Default)]
pub struct PredicateRegistry {
    entries: HashMap<String, Entry>,
}

impl fmt::Debug for PredicateRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut names: Vec<&str> = self.entries.keys().map(String::as_str).collect();
        names.sort_unstable();
        f.debug_struct("PredicateRegistry")
            .field("predicates", &names)
            .finish()
    }
}

impl PredicateRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        PredicateRegistry::default()
    }

    /// Creates a registry pre-populated with the builtin predicates.
    ///
    /// | name | args | meaning |
    /// |------|------|---------|
    /// | `eq, ne, lt, le, gt, ge` | v, v | value comparison (numeric across int/float, text, bool) |
    /// | `same_subject` | c, c | the two contexts concern the same subject |
    /// | `subject_eq` | c, text | the context's subject equals the text |
    /// | `distinct` | c, c | the two bound contexts are different contexts |
    /// | `before` | c, c | first context's stamp strictly precedes the second's |
    /// | `time_gap_le` | c, c, n | stamps differ by at most `n` ticks |
    /// | `seq_gap` | c, c, n | `b.seq - a.seq == n` (stream position gap) |
    /// | `seq_gap_le` | c, c, n | `0 < b.seq - a.seq <= n` |
    /// | `dist_le` | c, c, d | Euclidean distance of `pos` attrs ≤ `d` |
    /// | `velocity_le` | c, c, v | implied speed between the `pos` attrs ≤ `v` per tick |
    /// | `within` | c, x0, y0, x1, y1 | `pos` lies in the axis-aligned rectangle |
    /// | `has_attr` | c, text | the context defines the named attribute |
    pub fn with_builtins() -> Self {
        let mut reg = PredicateRegistry::new();
        reg.register_comparison("eq", |o| o == Ordering::Equal, false);
        reg.register_comparison("ne", |o| o == Ordering::Equal, true);
        reg.register_comparison("lt", |o| o == Ordering::Less, false);
        reg.register_comparison("le", |o| o != Ordering::Greater, false);
        reg.register_comparison("gt", |o| o == Ordering::Greater, false);
        reg.register_comparison("ge", |o| o != Ordering::Less, false);

        reg.register("same_subject", 2, |args| {
            let (a, _) = ctx_arg("same_subject", args, 0)?;
            let (b, _) = ctx_arg("same_subject", args, 1)?;
            Ok(a.subject() == b.subject())
        });
        reg.register("subject_eq", 2, |args| {
            let (a, _) = ctx_arg("subject_eq", args, 0)?;
            let name = text_arg("subject_eq", args, 1)?;
            Ok(a.subject() == name)
        });
        reg.register("distinct", 2, |args| {
            let (_, ia) = ctx_arg("distinct", args, 0)?;
            let (_, ib) = ctx_arg("distinct", args, 1)?;
            Ok(ia != ib)
        });
        reg.register("before", 2, |args| {
            let (a, _) = ctx_arg("before", args, 0)?;
            let (b, _) = ctx_arg("before", args, 1)?;
            Ok(a.stamp() < b.stamp())
        });
        reg.register("time_gap_le", 3, |args| {
            let (a, _) = ctx_arg("time_gap_le", args, 0)?;
            let (b, _) = ctx_arg("time_gap_le", args, 1)?;
            let n = num_arg("time_gap_le", args, 2)?;
            let gap = if a.stamp() <= b.stamp() {
                (b.stamp() - a.stamp()).count()
            } else {
                (a.stamp() - b.stamp()).count()
            };
            Ok((gap as f64) <= n)
        });
        reg.register("seq_gap", 3, |args| {
            let sa = seq_of("seq_gap", args, 0)?;
            let sb = seq_of("seq_gap", args, 1)?;
            let n = num_arg("seq_gap", args, 2)?;
            Ok((sb - sa - n).abs() < f64::EPSILON)
        });
        reg.register("seq_gap_le", 3, |args| {
            let sa = seq_of("seq_gap_le", args, 0)?;
            let sb = seq_of("seq_gap_le", args, 1)?;
            let n = num_arg("seq_gap_le", args, 2)?;
            let gap = sb - sa;
            Ok(gap > 0.0 && gap <= n)
        });
        reg.register("dist_le", 3, |args| {
            let pa = pos_of("dist_le", args, 0)?;
            let pb = pos_of("dist_le", args, 1)?;
            let d = num_arg("dist_le", args, 2)?;
            Ok(pa.distance(pb) <= d)
        });
        reg.register("velocity_le", 3, |args| {
            let (a, _) = ctx_arg("velocity_le", args, 0)?;
            let (b, _) = ctx_arg("velocity_le", args, 1)?;
            let pa = pos_of("velocity_le", args, 0)?;
            let pb = pos_of("velocity_le", args, 1)?;
            let vmax = num_arg("velocity_le", args, 2)?;
            let dt = if a.stamp() <= b.stamp() {
                (b.stamp() - a.stamp()).count()
            } else {
                (a.stamp() - b.stamp()).count()
            } as f64;
            let dist = pa.distance(pb);
            if dt == 0.0 {
                // Two estimates for the same instant: any separation is an
                // infinite implied speed.
                Ok(dist == 0.0)
            } else {
                Ok(dist / dt <= vmax)
            }
        });
        reg.register("within", 5, |args| {
            let p = pos_of("within", args, 0)?;
            let x0 = num_arg("within", args, 1)?;
            let y0 = num_arg("within", args, 2)?;
            let x1 = num_arg("within", args, 3)?;
            let y1 = num_arg("within", args, 4)?;
            Ok(p.x >= x0 && p.x <= x1 && p.y >= y0 && p.y <= y1)
        });
        reg.register("has_attr", 2, |args| {
            let (a, _) = ctx_arg("has_attr", args, 0)?;
            let name = text_arg("has_attr", args, 1)?;
            Ok(a.attr(name).is_some())
        });
        reg
    }

    /// Registers (or replaces) a predicate.
    pub fn register(
        &mut self,
        name: &str,
        arity: usize,
        func: impl Fn(&[Resolved<'_>]) -> Result<bool, EvalError> + Send + Sync + 'static,
    ) -> &mut Self {
        self.entries.insert(
            name.to_owned(),
            Entry {
                arity,
                func: Box::new(func),
            },
        );
        self
    }

    fn register_comparison(
        &mut self,
        name: &'static str,
        accept: fn(Ordering) -> bool,
        negate: bool,
    ) {
        self.register(name, 2, move |args| {
            let a = value_arg(name, args, 0)?;
            let b = value_arg(name, args, 1)?;
            match a.partial_cmp_value(b) {
                Some(o) => Ok(accept(o) != negate),
                None => Err(EvalError::Type {
                    name: name.to_owned(),
                    detail: format!("cannot compare {} with {}", a.type_name(), b.type_name()),
                }),
            }
        });
    }

    /// Whether `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.entries.contains_key(name)
    }

    /// Evaluates predicate `name` on resolved arguments.
    ///
    /// # Errors
    ///
    /// [`EvalError::UnknownPredicate`] for unregistered names,
    /// [`EvalError::Arity`] on argument-count mismatch, and whatever the
    /// predicate itself raises.
    pub fn eval(&self, name: &str, args: &[Resolved<'_>]) -> Result<bool, EvalError> {
        let entry = self
            .entries
            .get(name)
            .ok_or_else(|| EvalError::UnknownPredicate(name.to_owned()))?;
        if entry.arity != args.len() {
            return Err(EvalError::Arity {
                name: name.to_owned(),
                expected: entry.arity,
                actual: args.len(),
            });
        }
        (entry.func)(args)
    }
}

fn ctx_arg<'a>(
    name: &str,
    args: &[Resolved<'a>],
    i: usize,
) -> Result<(&'a Context, ContextId), EvalError> {
    args[i].ctx().ok_or_else(|| EvalError::Type {
        name: name.to_owned(),
        detail: format!("argument {i} must be a context variable"),
    })
}

fn value_arg<'r, 'a>(
    name: &str,
    args: &'r [Resolved<'a>],
    i: usize,
) -> Result<&'r ContextValue, EvalError> {
    args[i].value().ok_or_else(|| EvalError::Type {
        name: name.to_owned(),
        detail: format!("argument {i} must be a value, not a bare context"),
    })
}

fn num_arg(name: &str, args: &[Resolved<'_>], i: usize) -> Result<f64, EvalError> {
    value_arg(name, args, i)?
        .as_f64()
        .ok_or_else(|| EvalError::Type {
            name: name.to_owned(),
            detail: format!("argument {i} must be numeric"),
        })
}

fn text_arg<'r>(name: &str, args: &'r [Resolved<'_>], i: usize) -> Result<&'r str, EvalError> {
    value_arg(name, args, i)?
        .as_text()
        .ok_or_else(|| EvalError::Type {
            name: name.to_owned(),
            detail: format!("argument {i} must be text"),
        })
}

fn pos_of(name: &str, args: &[Resolved<'_>], i: usize) -> Result<Point, EvalError> {
    let (c, _) = ctx_arg(name, args, i)?;
    c.point("pos").ok_or_else(|| EvalError::Type {
        name: name.to_owned(),
        detail: format!("context argument {i} lacks a point attribute \"pos\""),
    })
}

fn seq_of(name: &str, args: &[Resolved<'_>], i: usize) -> Result<f64, EvalError> {
    let (c, _) = ctx_arg(name, args, i)?;
    c.number("seq").ok_or_else(|| EvalError::Type {
        name: name.to_owned(),
        detail: format!("context argument {i} lacks a numeric attribute \"seq\""),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctxres_context::{Context, ContextKind, LogicalTime};

    fn loc(subject: &str, seq: i64, t: u64, x: f64, y: f64) -> Context {
        Context::builder(ContextKind::new("location"), subject)
            .attr("pos", Point::new(x, y))
            .attr("seq", seq)
            .stamp(LogicalTime::new(t))
            .build()
    }

    fn rc(ctx: &Context, id: u64) -> Resolved<'_> {
        Resolved::Ctx(ContextId::from_raw(id), ctx)
    }

    fn v(val: impl Into<ContextValue>) -> Resolved<'static> {
        Resolved::Value(val.into())
    }

    #[test]
    fn comparisons_work_numerically() {
        let reg = PredicateRegistry::with_builtins();
        assert!(reg.eval("eq", &[v(2i64), v(2.0)]).unwrap());
        assert!(reg.eval("ne", &[v(2i64), v(3i64)]).unwrap());
        assert!(reg.eval("lt", &[v(2i64), v(2.5)]).unwrap());
        assert!(reg.eval("le", &[v(2i64), v(2i64)]).unwrap());
        assert!(reg.eval("gt", &[v("b"), v("a")]).unwrap());
        assert!(reg.eval("ge", &[v(true), v(false)]).unwrap());
    }

    #[test]
    fn comparison_type_error_is_reported() {
        let reg = PredicateRegistry::with_builtins();
        let err = reg.eval("lt", &[v("text"), v(1i64)]).unwrap_err();
        assert!(matches!(err, EvalError::Type { .. }));
    }

    #[test]
    fn same_subject_and_distinct() {
        let reg = PredicateRegistry::with_builtins();
        let a = loc("peter", 0, 0, 0.0, 0.0);
        let b = loc("peter", 1, 1, 1.0, 0.0);
        let c = loc("mary", 2, 2, 0.0, 1.0);
        assert!(reg.eval("same_subject", &[rc(&a, 0), rc(&b, 1)]).unwrap());
        assert!(!reg.eval("same_subject", &[rc(&a, 0), rc(&c, 2)]).unwrap());
        assert!(reg.eval("distinct", &[rc(&a, 0), rc(&b, 1)]).unwrap());
        assert!(!reg.eval("distinct", &[rc(&a, 0), rc(&a, 0)]).unwrap());
    }

    #[test]
    fn velocity_le_uses_stamp_gap() {
        let reg = PredicateRegistry::with_builtins();
        let a = loc("p", 0, 0, 0.0, 0.0);
        let b = loc("p", 1, 2, 2.0, 0.0); // 2 m over 2 ticks = 1 m/tick
        assert!(reg
            .eval("velocity_le", &[rc(&a, 0), rc(&b, 1), v(1.0)])
            .unwrap());
        assert!(!reg
            .eval("velocity_le", &[rc(&a, 0), rc(&b, 1), v(0.5)])
            .unwrap());
    }

    #[test]
    fn velocity_le_zero_dt_requires_zero_distance() {
        let reg = PredicateRegistry::with_builtins();
        let a = loc("p", 0, 5, 0.0, 0.0);
        let b = loc("p", 1, 5, 1.0, 0.0);
        let c = loc("p", 2, 5, 0.0, 0.0);
        assert!(!reg
            .eval("velocity_le", &[rc(&a, 0), rc(&b, 1), v(100.0)])
            .unwrap());
        assert!(reg
            .eval("velocity_le", &[rc(&a, 0), rc(&c, 2), v(0.1)])
            .unwrap());
    }

    #[test]
    fn seq_gap_exact_and_bounded() {
        let reg = PredicateRegistry::with_builtins();
        let a = loc("p", 3, 0, 0.0, 0.0);
        let b = loc("p", 5, 1, 0.0, 0.0);
        assert!(reg
            .eval("seq_gap", &[rc(&a, 0), rc(&b, 1), v(2i64)])
            .unwrap());
        assert!(!reg
            .eval("seq_gap", &[rc(&a, 0), rc(&b, 1), v(1i64)])
            .unwrap());
        assert!(reg
            .eval("seq_gap_le", &[rc(&a, 0), rc(&b, 1), v(2i64)])
            .unwrap());
        assert!(!reg
            .eval("seq_gap_le", &[rc(&b, 1), rc(&a, 0), v(2i64)])
            .unwrap());
    }

    #[test]
    fn within_rectangle() {
        let reg = PredicateRegistry::with_builtins();
        let a = loc("p", 0, 0, 2.0, 3.0);
        assert!(reg
            .eval("within", &[rc(&a, 0), v(0.0), v(0.0), v(5.0), v(5.0)])
            .unwrap());
        assert!(!reg
            .eval("within", &[rc(&a, 0), v(0.0), v(0.0), v(1.0), v(1.0)])
            .unwrap());
    }

    #[test]
    fn dist_le_measures_euclidean() {
        let reg = PredicateRegistry::with_builtins();
        let a = loc("p", 0, 0, 0.0, 0.0);
        let b = loc("p", 1, 1, 3.0, 4.0);
        assert!(reg
            .eval("dist_le", &[rc(&a, 0), rc(&b, 1), v(5.0)])
            .unwrap());
        assert!(!reg
            .eval("dist_le", &[rc(&a, 0), rc(&b, 1), v(4.9)])
            .unwrap());
    }

    #[test]
    fn subject_eq_and_has_attr() {
        let reg = PredicateRegistry::with_builtins();
        let a = loc("peter", 0, 0, 0.0, 0.0);
        assert!(reg.eval("subject_eq", &[rc(&a, 0), v("peter")]).unwrap());
        assert!(!reg.eval("subject_eq", &[rc(&a, 0), v("mary")]).unwrap());
        assert!(reg.eval("has_attr", &[rc(&a, 0), v("pos")]).unwrap());
        assert!(!reg
            .eval("has_attr", &[rc(&a, 0), v("temperature")])
            .unwrap());
    }

    #[test]
    fn unknown_predicate_and_arity_errors() {
        let reg = PredicateRegistry::with_builtins();
        assert!(matches!(
            reg.eval("no_such", &[]).unwrap_err(),
            EvalError::UnknownPredicate(_)
        ));
        assert!(matches!(
            reg.eval("eq", &[v(1i64)]).unwrap_err(),
            EvalError::Arity {
                expected: 2,
                actual: 1,
                ..
            }
        ));
    }

    #[test]
    fn custom_predicates_extend_the_language() {
        let mut reg = PredicateRegistry::with_builtins();
        reg.register("is_peter", 1, |args| {
            let (c, _) = args[0].ctx().ok_or(EvalError::Type {
                name: "is_peter".into(),
                detail: "need a context".into(),
            })?;
            Ok(c.subject() == "peter")
        });
        let a = loc("peter", 0, 0, 0.0, 0.0);
        assert!(reg.eval("is_peter", &[rc(&a, 0)]).unwrap());
        assert!(reg.contains("is_peter"));
    }

    #[test]
    fn before_orders_by_stamp() {
        let reg = PredicateRegistry::with_builtins();
        let a = loc("p", 0, 1, 0.0, 0.0);
        let b = loc("p", 1, 2, 0.0, 0.0);
        assert!(reg.eval("before", &[rc(&a, 0), rc(&b, 1)]).unwrap());
        assert!(!reg.eval("before", &[rc(&b, 1), rc(&a, 0)]).unwrap());
    }

    #[test]
    fn time_gap_le_is_symmetric() {
        let reg = PredicateRegistry::with_builtins();
        let a = loc("p", 0, 1, 0.0, 0.0);
        let b = loc("p", 1, 4, 0.0, 0.0);
        assert!(reg
            .eval("time_gap_le", &[rc(&a, 0), rc(&b, 1), v(3i64)])
            .unwrap());
        assert!(reg
            .eval("time_gap_le", &[rc(&b, 1), rc(&a, 0), v(3i64)])
            .unwrap());
        assert!(!reg
            .eval("time_gap_le", &[rc(&a, 0), rc(&b, 1), v(2i64)])
            .unwrap());
    }
}

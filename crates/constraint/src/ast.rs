//! Abstract syntax of consistency-constraint formulas.

use ctxres_context::{ContextKind, ContextValue};
use std::collections::BTreeSet;
use std::fmt;

/// Quantifier flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Quantifier {
    /// `forall x : kind . body`
    Forall,
    /// `exists x : kind . body`
    Exists,
}

impl fmt::Display for Quantifier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Quantifier::Forall => f.write_str("forall"),
            Quantifier::Exists => f.write_str("exists"),
        }
    }
}

/// A term appearing as a predicate argument.
#[derive(Debug, Clone, PartialEq)]
pub enum Term {
    /// A bound context variable, e.g. `a`.
    Var(String),
    /// An attribute of a bound context, e.g. `a.room`.
    Attr(String, String),
    /// A literal value, e.g. `1.5` or `"office"`.
    Const(ContextValue),
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => f.write_str(v),
            Term::Attr(v, a) => write!(f, "{v}.{a}"),
            Term::Const(c) => write!(f, "{c}"),
        }
    }
}

/// An application of a named predicate to terms, e.g.
/// `velocity_le(a, b, 1.5)`.
#[derive(Debug, Clone, PartialEq)]
pub struct PredicateCall {
    /// The predicate's registered name.
    pub name: String,
    /// Argument terms.
    pub args: Vec<Term>,
}

impl fmt::Display for PredicateCall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{a}")?;
        }
        f.write_str(")")
    }
}

/// A first-order formula over contexts.
///
/// Quantifiers range over the *live* contexts of a [`ContextKind`] in a
/// pool. Each quantifier node carries a structural id (`qid`), assigned by
/// [`Formula::assign_qids`], that the incremental checker uses to pin a
/// newly-arrived context into a specific quantifier.
#[derive(Debug, Clone, PartialEq)]
pub enum Formula {
    /// A quantified sub-formula.
    Quant {
        /// Universal or existential.
        q: Quantifier,
        /// The bound variable name.
        var: String,
        /// The context kind the variable ranges over.
        kind: ContextKind,
        /// Structural id used by the incremental checker.
        qid: usize,
        /// The quantified body.
        body: Box<Formula>,
    },
    /// Conjunction.
    And(Box<Formula>, Box<Formula>),
    /// Disjunction.
    Or(Box<Formula>, Box<Formula>),
    /// Implication.
    Implies(Box<Formula>, Box<Formula>),
    /// Negation.
    Not(Box<Formula>),
    /// Predicate application (the atoms).
    Pred(PredicateCall),
    /// Constant truth.
    True,
    /// Constant falsity.
    False,
}

impl Formula {
    /// Builds a universally quantified formula (qid assigned later).
    pub fn forall(var: &str, kind: impl Into<ContextKind>, body: Formula) -> Formula {
        Formula::Quant {
            q: Quantifier::Forall,
            var: var.to_owned(),
            kind: kind.into(),
            qid: usize::MAX,
            body: Box::new(body),
        }
    }

    /// Builds an existentially quantified formula (qid assigned later).
    pub fn exists(var: &str, kind: impl Into<ContextKind>, body: Formula) -> Formula {
        Formula::Quant {
            q: Quantifier::Exists,
            var: var.to_owned(),
            kind: kind.into(),
            qid: usize::MAX,
            body: Box::new(body),
        }
    }

    /// Builds a conjunction.
    pub fn and(self, rhs: Formula) -> Formula {
        Formula::And(Box::new(self), Box::new(rhs))
    }

    /// Builds a disjunction.
    pub fn or(self, rhs: Formula) -> Formula {
        Formula::Or(Box::new(self), Box::new(rhs))
    }

    /// Builds an implication.
    pub fn implies(self, rhs: Formula) -> Formula {
        Formula::Implies(Box::new(self), Box::new(rhs))
    }

    /// Builds a negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Formula {
        Formula::Not(Box::new(self))
    }

    /// Builds a predicate atom.
    pub fn pred(name: &str, args: Vec<Term>) -> Formula {
        Formula::Pred(PredicateCall {
            name: name.to_owned(),
            args,
        })
    }

    /// Assigns structural quantifier ids in depth-first order, returning
    /// the number of quantifiers.
    pub fn assign_qids(&mut self) -> usize {
        fn walk(f: &mut Formula, next: &mut usize) {
            match f {
                Formula::Quant { qid, body, .. } => {
                    *qid = *next;
                    *next += 1;
                    walk(body, next);
                }
                Formula::And(a, b) | Formula::Or(a, b) | Formula::Implies(a, b) => {
                    walk(a, next);
                    walk(b, next);
                }
                Formula::Not(a) => walk(a, next),
                Formula::Pred(_) | Formula::True | Formula::False => {}
            }
        }
        let mut next = 0;
        walk(self, &mut next);
        next
    }

    /// The context kinds quantified over anywhere in the formula.
    pub fn kinds(&self) -> BTreeSet<ContextKind> {
        let mut out = BTreeSet::new();
        self.visit(&mut |f| {
            if let Formula::Quant { kind, .. } = f {
                out.insert(kind.clone());
            }
        });
        out
    }

    /// Quantifier descriptors `(qid, kind, quantifier)` in DFS order.
    pub fn quantifiers(&self) -> Vec<(usize, ContextKind, Quantifier)> {
        let mut out = Vec::new();
        self.visit(&mut |f| {
            if let Formula::Quant { q, kind, qid, .. } = f {
                out.push((*qid, kind.clone(), *q));
            }
        });
        out
    }

    /// Whether every quantifier is a `forall` in positive polarity.
    ///
    /// This is the fragment for which pinning a new context into one
    /// quantifier at a time is a *complete* incremental detection
    /// procedure: adding a context can only introduce violations through
    /// bindings that include it. Constraints outside the fragment are
    /// still checkable, but the incremental checker falls back to full
    /// re-evaluation for them.
    pub fn is_universal_positive(&self) -> bool {
        fn walk(f: &Formula, positive: bool) -> bool {
            match f {
                Formula::Quant { q, body, .. } => {
                    (*q == Quantifier::Forall) == positive && walk(body, positive)
                }
                Formula::And(a, b) | Formula::Or(a, b) => walk(a, positive) && walk(b, positive),
                Formula::Implies(a, b) => walk(a, !positive) && walk(b, positive),
                Formula::Not(a) => walk(a, !positive),
                Formula::Pred(_) | Formula::True | Formula::False => true,
            }
        }
        walk(self, true)
    }

    /// Visits every node in depth-first order.
    pub fn visit(&self, f: &mut impl FnMut(&Formula)) {
        f(self);
        match self {
            Formula::Quant { body, .. } => body.visit(f),
            Formula::And(a, b) | Formula::Or(a, b) | Formula::Implies(a, b) => {
                a.visit(f);
                b.visit(f);
            }
            Formula::Not(a) => a.visit(f),
            Formula::Pred(_) | Formula::True | Formula::False => {}
        }
    }

    /// Names of predicates referenced by the formula.
    pub fn predicate_names(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.visit(&mut |f| {
            if let Formula::Pred(p) = f {
                out.insert(p.name.clone());
            }
        });
        out
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            // Parenthesized because quantifier bodies parse greedily: a
            // bare `forall x: k . a implies b` would re-parse with the
            // implication inside the body.
            Formula::Quant {
                q, var, kind, body, ..
            } => write!(f, "({q} {var}: {kind} . {body})"),
            Formula::And(a, b) => write!(f, "({a} and {b})"),
            Formula::Or(a, b) => write!(f, "({a} or {b})"),
            Formula::Implies(a, b) => write!(f, "({a} implies {b})"),
            Formula::Not(a) => write!(f, "not {a}"),
            Formula::Pred(p) => write!(f, "{p}"),
            Formula::True => f.write_str("true"),
            Formula::False => f.write_str("false"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn speed_formula() -> Formula {
        Formula::forall(
            "a",
            "location",
            Formula::forall(
                "b",
                "location",
                Formula::pred(
                    "same_subject",
                    vec![Term::Var("a".into()), Term::Var("b".into())],
                )
                .implies(Formula::pred(
                    "velocity_le",
                    vec![
                        Term::Var("a".into()),
                        Term::Var("b".into()),
                        Term::Const(ContextValue::Float(1.5)),
                    ],
                )),
            ),
        )
    }

    #[test]
    fn qids_assigned_in_dfs_order() {
        let mut f = speed_formula();
        assert_eq!(f.assign_qids(), 2);
        let qs = f.quantifiers();
        assert_eq!(qs.len(), 2);
        assert_eq!(qs[0].0, 0);
        assert_eq!(qs[1].0, 1);
    }

    #[test]
    fn kinds_collects_quantified_kinds() {
        let f = speed_formula();
        let kinds = f.kinds();
        assert_eq!(kinds.len(), 1);
        assert!(kinds.contains(&ContextKind::new("location")));
    }

    #[test]
    fn universal_positive_fragment() {
        assert!(speed_formula().is_universal_positive());
        // exists in positive polarity is outside the fragment
        let f = Formula::exists("a", "location", Formula::True);
        assert!(!f.is_universal_positive());
        // but exists under a negation is fine (it behaves universally)
        let f = Formula::exists("a", "location", Formula::True).not();
        assert!(f.is_universal_positive());
        // forall in the antecedent of implies is negative polarity
        let f = Formula::forall("a", "location", Formula::True).implies(Formula::True);
        assert!(!f.is_universal_positive());
    }

    #[test]
    fn predicate_names_collected() {
        let names = speed_formula().predicate_names();
        assert!(names.contains("same_subject"));
        assert!(names.contains("velocity_le"));
        assert_eq!(names.len(), 2);
    }

    #[test]
    fn display_round_trips_structure() {
        let s = speed_formula().to_string();
        assert!(s.contains("(forall a: location"));
        assert!(s.contains("implies"));
        assert!(s.contains("velocity_le(a, b, 1.5)"));
    }

    #[test]
    fn builders_compose() {
        let f = Formula::True.and(Formula::False).or(Formula::True.not());
        assert_eq!(f.to_string(), "((true and false) or not true)");
    }
}

//! Formula simplification: constant folding and structural cleanups.
//!
//! Authored constraints often contain redundancies — guards that fold to
//! constants, double negations from macro-style composition. The
//! simplifier normalizes them, which both speeds evaluation (fewer nodes
//! per binding) and makes deployed constraint sets easier to audit.
//!
//! Rewrites (all truth-preserving, verified by property tests):
//!
//! * `not not f` → `f`
//! * `true and f` → `f`, `false and f` → `false` (and symmetric)
//! * `true or f` → `true`, `false or f` → `f` (and symmetric)
//! * `true implies f` → `f`, `false implies f` → `true`,
//!   `f implies true` → `true`
//! * `not true` → `false`, `not false` → `true`
//! * quantifiers over a constant body keep the quantifier only when it
//!   matters: `forall x: k . true` → `true`, `exists x: k . false` →
//!   `false` (the other two combinations depend on domain emptiness and
//!   are kept).

use crate::ast::{Formula, Quantifier};

/// Simplifies a formula to a fixpoint. The result evaluates to the same
/// truth value over every pool.
pub fn simplify(f: Formula) -> Formula {
    let mut current = f;
    loop {
        let next = pass(current.clone());
        if next == current {
            return current;
        }
        current = next;
    }
}

fn pass(f: Formula) -> Formula {
    match f {
        Formula::Not(inner) => match pass(*inner) {
            Formula::True => Formula::False,
            Formula::False => Formula::True,
            Formula::Not(inner2) => *inner2,
            other => other.not(),
        },
        Formula::And(a, b) => match (pass(*a), pass(*b)) {
            (Formula::True, x) | (x, Formula::True) => x,
            (Formula::False, _) | (_, Formula::False) => Formula::False,
            (x, y) => x.and(y),
        },
        Formula::Or(a, b) => match (pass(*a), pass(*b)) {
            (Formula::False, x) | (x, Formula::False) => x,
            (Formula::True, _) | (_, Formula::True) => Formula::True,
            (x, y) => x.or(y),
        },
        Formula::Implies(a, b) => match (pass(*a), pass(*b)) {
            (Formula::True, x) => x,
            (Formula::False, _) => Formula::True,
            (_, Formula::True) => Formula::True,
            (x, Formula::False) => pass(x.not()),
            (x, y) => x.implies(y),
        },
        Formula::Quant {
            q,
            var,
            kind,
            qid,
            body,
        } => match (q, pass(*body)) {
            // Vacuous: true under every binding, including none.
            (Quantifier::Forall, Formula::True) => Formula::True,
            // Unsatisfiable under every binding, including none.
            (Quantifier::Exists, Formula::False) => Formula::False,
            // `forall x . false` is true on an empty domain and
            // `exists x . true` is false on one: both must stay.
            (q, body) => Formula::Quant {
                q,
                var,
                kind,
                qid,
                body: Box::new(body),
            },
        },
        leaf @ (Formula::Pred(_) | Formula::True | Formula::False) => leaf,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_formula;

    fn simp(src: &str) -> String {
        simplify(parse_formula(src).unwrap()).to_string()
    }

    #[test]
    fn constant_folding() {
        assert_eq!(simp("true and p()"), "p()");
        assert_eq!(simp("p() and false"), "false");
        assert_eq!(simp("false or p()"), "p()");
        assert_eq!(simp("p() or true"), "true");
        assert_eq!(simp("not true"), "false");
        assert_eq!(simp("not not p()"), "p()");
    }

    #[test]
    fn implication_rules() {
        assert_eq!(simp("true implies p()"), "p()");
        assert_eq!(simp("false implies p()"), "true");
        assert_eq!(simp("p() implies true"), "true");
        assert_eq!(simp("p() implies false"), "not p()");
    }

    #[test]
    fn quantifier_rules_respect_empty_domains() {
        assert_eq!(simp("forall a: k . true"), "true");
        assert_eq!(simp("exists a: k . false"), "false");
        // These two depend on whether the domain is empty: untouched.
        assert_eq!(simp("forall a: k . false"), "(forall a: k . false)");
        assert_eq!(simp("exists a: k . true"), "(exists a: k . true)");
    }

    #[test]
    fn nested_cleanup_reaches_fixpoint() {
        assert_eq!(simp("not not (true and (false or p()))"), "p()");
        assert_eq!(
            simp("forall a: k . (true implies (p(a) and true))"),
            "(forall a: k . p(a))"
        );
        assert_eq!(simp("forall a: k . (false implies p(a))"), "true");
    }

    #[test]
    fn irreducible_formulas_are_untouched() {
        let src = "(forall a: k . (p(a) implies q(a)))";
        assert_eq!(simp(src), src);
    }
}

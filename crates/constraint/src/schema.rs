//! Deploy-time validation of constraint sets.
//!
//! Runtime evaluation reports unknown predicates or missing attributes
//! as [`EvalError`]s — after the system is live. This module moves those
//! failures to deployment time: a [`ContextSchema`] declares which
//! attributes each context kind carries (and their types), and
//! [`validate`] checks a constraint set against it plus a
//! [`PredicateRegistry`], reporting every problem at once.
//!
//! The §5.3 discussion asks "how does one design correct consistency
//! constraints?" — static validation is the mechanical part of the
//! answer: it cannot prove a constraint *right*, but it rejects the
//! whole class of constraints that could never evaluate.

use crate::ast::{Formula, Term};
use crate::constraint::Constraint;
use crate::predicate::PredicateRegistry;
use ctxres_context::{ContextKind, ContextValue};
use std::collections::BTreeMap;
use std::fmt;

/// The value types an attribute may carry (mirrors
/// [`ContextValue`]'s variants).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttrType {
    /// Boolean flags.
    Bool,
    /// Integers.
    Int,
    /// Floating-point numbers.
    Float,
    /// Text.
    Text,
    /// Planar points.
    Point,
}

impl AttrType {
    /// The type of a concrete value.
    pub fn of(value: &ContextValue) -> AttrType {
        match value {
            ContextValue::Bool(_) => AttrType::Bool,
            ContextValue::Int(_) => AttrType::Int,
            ContextValue::Float(_) => AttrType::Float,
            ContextValue::Text(_) => AttrType::Text,
            ContextValue::Point(_) => AttrType::Point,
        }
    }
}

impl fmt::Display for AttrType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AttrType::Bool => "bool",
            AttrType::Int => "int",
            AttrType::Float => "float",
            AttrType::Text => "text",
            AttrType::Point => "point",
        };
        f.write_str(s)
    }
}

/// Declares the context kinds an application produces and the attributes
/// each carries.
///
/// ```
/// use ctxres_constraint::{AttrType, ContextSchema};
///
/// let mut schema = ContextSchema::new();
/// schema
///     .kind("location")
///     .attr("pos", AttrType::Point)
///     .attr("seq", AttrType::Int);
/// assert!(schema.has_kind(&"location".into()));
/// ```
#[derive(Debug, Clone, Default)]
pub struct ContextSchema {
    kinds: BTreeMap<ContextKind, BTreeMap<String, AttrType>>,
}

/// Builder handle for one kind's attributes.
#[derive(Debug)]
pub struct KindSchema<'a> {
    attrs: &'a mut BTreeMap<String, AttrType>,
}

impl KindSchema<'_> {
    /// Declares an attribute of this kind.
    pub fn attr(&mut self, name: &str, ty: AttrType) -> &mut Self {
        self.attrs.insert(name.to_owned(), ty);
        self
    }
}

impl ContextSchema {
    /// Creates an empty schema.
    pub fn new() -> Self {
        ContextSchema::default()
    }

    /// Declares (or reopens) a context kind.
    pub fn kind(&mut self, name: &str) -> KindSchema<'_> {
        KindSchema {
            attrs: self.kinds.entry(ContextKind::new(name)).or_default(),
        }
    }

    /// Whether the schema declares `kind`.
    pub fn has_kind(&self, kind: &ContextKind) -> bool {
        self.kinds.contains_key(kind)
    }

    /// The declared type of `kind.attr`, if any.
    pub fn attr_type(&self, kind: &ContextKind, attr: &str) -> Option<AttrType> {
        self.kinds
            .get(kind)
            .and_then(|attrs| attrs.get(attr).copied())
    }
}

/// A problem found by [`validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SchemaViolation {
    /// A quantifier ranges over a kind the schema does not declare.
    UnknownKind {
        /// Offending constraint.
        constraint: String,
        /// The undeclared kind.
        kind: ContextKind,
    },
    /// A predicate name is not in the registry.
    UnknownPredicate {
        /// Offending constraint.
        constraint: String,
        /// The unknown name.
        predicate: String,
    },
    /// A term reads an attribute the bound kind does not declare.
    UnknownAttr {
        /// Offending constraint.
        constraint: String,
        /// The bound variable.
        var: String,
        /// Its kind.
        kind: ContextKind,
        /// The undeclared attribute.
        attr: String,
    },
    /// A term references a variable no enclosing quantifier binds.
    UnboundVariable {
        /// Offending constraint.
        constraint: String,
        /// The unbound name.
        var: String,
    },
}

impl fmt::Display for SchemaViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaViolation::UnknownKind { constraint, kind } => {
                write!(f, "{constraint}: quantifies over undeclared kind {kind}")
            }
            SchemaViolation::UnknownPredicate {
                constraint,
                predicate,
            } => {
                write!(f, "{constraint}: unknown predicate {predicate:?}")
            }
            SchemaViolation::UnknownAttr {
                constraint,
                var,
                kind,
                attr,
            } => {
                write!(
                    f,
                    "{constraint}: {var}.{attr} but kind {kind} declares no attribute {attr:?}"
                )
            }
            SchemaViolation::UnboundVariable { constraint, var } => {
                write!(f, "{constraint}: unbound variable {var:?}")
            }
        }
    }
}

/// Validates constraints against a schema and predicate registry,
/// returning every violation found (empty = deployable).
pub fn validate(
    constraints: &[Constraint],
    schema: &ContextSchema,
    registry: &PredicateRegistry,
) -> Vec<SchemaViolation> {
    let mut out = Vec::new();
    for c in constraints {
        walk(
            c.name(),
            c.formula(),
            schema,
            registry,
            &mut Vec::new(),
            &mut out,
        );
    }
    out
}

fn walk(
    name: &str,
    f: &Formula,
    schema: &ContextSchema,
    registry: &PredicateRegistry,
    env: &mut Vec<(String, ContextKind)>,
    out: &mut Vec<SchemaViolation>,
) {
    match f {
        Formula::Quant {
            var, kind, body, ..
        } => {
            if !schema.has_kind(kind) {
                out.push(SchemaViolation::UnknownKind {
                    constraint: name.to_owned(),
                    kind: kind.clone(),
                });
            }
            env.push((var.clone(), kind.clone()));
            walk(name, body, schema, registry, env, out);
            env.pop();
        }
        Formula::And(a, b) | Formula::Or(a, b) | Formula::Implies(a, b) => {
            walk(name, a, schema, registry, env, out);
            walk(name, b, schema, registry, env, out);
        }
        Formula::Not(a) => walk(name, a, schema, registry, env, out),
        Formula::Pred(call) => {
            if !registry.contains(&call.name) {
                out.push(SchemaViolation::UnknownPredicate {
                    constraint: name.to_owned(),
                    predicate: call.name.clone(),
                });
            }
            for term in &call.args {
                match term {
                    Term::Const(_) => {}
                    Term::Var(v) => {
                        if !env.iter().any(|(n, _)| n == v) {
                            out.push(SchemaViolation::UnboundVariable {
                                constraint: name.to_owned(),
                                var: v.clone(),
                            });
                        }
                    }
                    Term::Attr(v, attr) => match env.iter().rev().find(|(n, _)| n == v) {
                        None => out.push(SchemaViolation::UnboundVariable {
                            constraint: name.to_owned(),
                            var: v.clone(),
                        }),
                        Some((_, kind)) => {
                            if schema.has_kind(kind) && schema.attr_type(kind, attr).is_none() {
                                out.push(SchemaViolation::UnknownAttr {
                                    constraint: name.to_owned(),
                                    var: v.clone(),
                                    kind: kind.clone(),
                                    attr: attr.clone(),
                                });
                            }
                        }
                    },
                }
            }
        }
        Formula::True | Formula::False => {}
    }
}

/// How a constraint's violations relate to context *subjects* — the
/// deploy-time fact a sharded middleware needs to partition contexts.
///
/// Computed by [`constraint_scope`]. A `PerSubject` constraint can be
/// checked entirely inside a shard that holds all contexts of one
/// subject; a `Global` constraint needs a view of every context of its
/// kinds, so those kinds must be routed to a shared-scope shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstraintScope {
    /// Every violating binding draws all its contexts from a single
    /// subject: checking is complete within a subject shard.
    PerSubject,
    /// A violation may relate contexts of different subjects (or the
    /// analysis cannot prove otherwise).
    Global,
}

/// Classifies a constraint's sharding scope.
///
/// The analysis is sound but conservative: it returns
/// [`ConstraintScope::PerSubject`] only when it can *prove* that every
/// violating binding is same-subject, and `Global` otherwise.
///
/// A constraint is `PerSubject` when:
///
/// * every quantifier is a `forall` (an `exists` witness may live on
///   another shard, so removing contexts from view could flip the
///   verdict), and
/// * the quantified variables have distinct names (shadowing defeats
///   the name-keyed link analysis below), and
/// * either there is at most one quantifier, or every pair of
///   quantified variables is connected by `same_subject(x, y)` guards
///   that are *guaranteed to hold in any violating binding*.
///
/// Guaranteed guards are collected by polarity: a binding violates
/// `forall xs . (G implies C)` only if `G` is true, so `same_subject`
/// atoms conjoined in `G` must hold; atoms under an `or`, a negation,
/// or in the consequent guarantee nothing. The guards then
/// union-find-connect the variables; full connectivity means any
/// violating binding has one subject.
pub fn constraint_scope(c: &Constraint) -> ConstraintScope {
    let quants = c.formula().quantifiers();
    if quants
        .iter()
        .any(|(_, _, q)| *q == crate::ast::Quantifier::Exists)
    {
        return ConstraintScope::Global;
    }
    let mut vars: Vec<String> = Vec::new();
    c.formula().visit(&mut |f| {
        if let Formula::Quant { var, .. } = f {
            vars.push(var.clone());
        }
    });
    {
        let mut sorted = vars.clone();
        sorted.sort();
        sorted.dedup();
        if sorted.len() != vars.len() {
            return ConstraintScope::Global;
        }
    }
    if vars.len() <= 1 {
        return ConstraintScope::PerSubject;
    }

    // Union-find over variable indices, seeded by guaranteed links.
    let mut links: Vec<(String, String)> = Vec::new();
    guaranteed_links(c.formula(), false, &mut links);
    let index = |v: &str| vars.iter().position(|x| x == v);
    let mut parent: Vec<usize> = (0..vars.len()).collect();
    fn find(parent: &mut [usize], i: usize) -> usize {
        let mut i = i;
        while parent[i] != i {
            parent[i] = parent[parent[i]];
            i = parent[i];
        }
        i
    }
    for (a, b) in &links {
        if let (Some(i), Some(j)) = (index(a), index(b)) {
            let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
            parent[ri] = rj;
        }
    }
    let root = find(&mut parent, 0);
    if (1..vars.len()).all(|i| find(&mut parent, i) == root) {
        ConstraintScope::PerSubject
    } else {
        ConstraintScope::Global
    }
}

/// Collects `same_subject(x, y)` pairs guaranteed to hold whenever `f`
/// evaluates to `val`.
fn guaranteed_links(f: &Formula, val: bool, out: &mut Vec<(String, String)>) {
    match f {
        // A forall is false only through some binding falsifying the
        // body; that binding satisfies the body's false-guarantees.
        Formula::Quant { body, .. } => {
            if !val {
                guaranteed_links(body, false, out);
            }
        }
        Formula::And(a, b) => {
            // True requires both true; false guarantees neither.
            if val {
                guaranteed_links(a, true, out);
                guaranteed_links(b, true, out);
            }
        }
        Formula::Or(a, b) => {
            // False requires both false; true guarantees neither.
            if !val {
                guaranteed_links(a, false, out);
                guaranteed_links(b, false, out);
            }
        }
        Formula::Implies(a, b) => {
            // False requires antecedent true and consequent false.
            if !val {
                guaranteed_links(a, true, out);
                guaranteed_links(b, false, out);
            }
        }
        Formula::Not(a) => guaranteed_links(a, !val, out),
        Formula::Pred(call) => {
            if val && call.name == "same_subject" {
                let vs: Vec<&String> = call
                    .args
                    .iter()
                    .filter_map(|t| match t {
                        Term::Var(v) => Some(v),
                        _ => None,
                    })
                    .collect();
                for pair in vs.windows(2) {
                    out.push((pair[0].clone(), pair[1].clone()));
                }
            }
        }
        Formula::True | Formula::False => {}
    }
}

/// The context kinds that must be routed to a shared-scope shard: every
/// kind quantified over by any [`ConstraintScope::Global`] constraint.
///
/// Kinds *not* in this set are only ever related to same-subject
/// contexts (or to no constraint at all), so a sharded middleware may
/// partition them by subject.
pub fn global_kinds(constraints: &[Constraint]) -> std::collections::BTreeSet<ContextKind> {
    constraints
        .iter()
        .filter(|c| constraint_scope(c) == ConstraintScope::Global)
        .flat_map(|c| c.kinds().iter().cloned())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_constraints;

    fn schema() -> ContextSchema {
        let mut s = ContextSchema::new();
        s.kind("location")
            .attr("pos", AttrType::Point)
            .attr("seq", AttrType::Int);
        s.kind("badge").attr("room", AttrType::Text);
        s
    }

    #[test]
    fn valid_constraints_pass() {
        let cs = parse_constraints(
            "constraint ok:
               forall a: location, b: location .
                 (same_subject(a, b) and seq_gap(a, b, 1)) implies velocity_le(a, b, 1.5)
             constraint ok2:
               forall x: badge . eq(x.room, \"office\")",
        )
        .unwrap();
        let reg = PredicateRegistry::with_builtins();
        assert_eq!(validate(&cs, &schema(), &reg), Vec::new());
    }

    #[test]
    fn unknown_kind_reported() {
        let cs = parse_constraints("constraint c: forall a: rfid . true").unwrap();
        let reg = PredicateRegistry::with_builtins();
        let v = validate(&cs, &schema(), &reg);
        assert!(
            matches!(&v[0], SchemaViolation::UnknownKind { kind, .. } if kind.name() == "rfid")
        );
    }

    #[test]
    fn unknown_predicate_reported() {
        let cs = parse_constraints("constraint c: forall a: badge . frobnicate(a)").unwrap();
        let reg = PredicateRegistry::with_builtins();
        let v = validate(&cs, &schema(), &reg);
        assert!(v
            .iter()
            .any(|x| matches!(x, SchemaViolation::UnknownPredicate { predicate, .. } if predicate == "frobnicate")));
    }

    #[test]
    fn unknown_attr_reported_with_kind() {
        let cs = parse_constraints("constraint c: forall a: badge . eq(a.floor, 3)").unwrap();
        let reg = PredicateRegistry::with_builtins();
        let v = validate(&cs, &schema(), &reg);
        assert!(matches!(
            &v[0],
            SchemaViolation::UnknownAttr { attr, kind, .. } if attr == "floor" && kind.name() == "badge"
        ));
    }

    #[test]
    fn unbound_variable_reported() {
        let cs = parse_constraints("constraint c: forall a: badge . eq(z.room, \"x\")").unwrap();
        let reg = PredicateRegistry::with_builtins();
        let v = validate(&cs, &schema(), &reg);
        assert!(v
            .iter()
            .any(|x| matches!(x, SchemaViolation::UnboundVariable { var, .. } if var == "z")));
    }

    #[test]
    fn attrs_of_undeclared_kinds_not_double_reported() {
        // The unknown kind is reported once; its attributes cannot be
        // checked, so no cascade of UnknownAttr.
        let cs = parse_constraints("constraint c: forall a: ghost . eq(a.x, 1)").unwrap();
        let reg = PredicateRegistry::with_builtins();
        let v = validate(&cs, &schema(), &reg);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn shadowing_resolves_to_innermost_binding() {
        let mut s = schema();
        s.kind("room_sensor").attr("celsius", AttrType::Float);
        let cs = parse_constraints(
            "constraint c:
               forall a: badge . forall a: room_sensor . lt(a.celsius, 30.0)",
        )
        .unwrap();
        let reg = PredicateRegistry::with_builtins();
        assert_eq!(validate(&cs, &s, &reg), Vec::new());
    }

    #[test]
    fn violations_display_names_everything() {
        let v = SchemaViolation::UnknownAttr {
            constraint: "c".into(),
            var: "a".into(),
            kind: ContextKind::new("badge"),
            attr: "floor".into(),
        };
        let s = v.to_string();
        assert!(s.contains("a.floor") && s.contains("badge"));
    }

    fn scope_of(src: &str) -> ConstraintScope {
        let cs = parse_constraints(src).unwrap();
        constraint_scope(&cs[0])
    }

    #[test]
    fn same_subject_guarded_pair_is_per_subject() {
        assert_eq!(
            scope_of(
                "constraint speed:
                   forall a: location, b: location .
                     (same_subject(a, b) and seq_gap(a, b, 1)) implies velocity_le(a, b, 1.5)"
            ),
            ConstraintScope::PerSubject
        );
    }

    #[test]
    fn single_quantifier_is_trivially_per_subject() {
        assert_eq!(
            scope_of("constraint region: forall a: location . within(a, 0.0, 0.0, 9.0, 9.0)"),
            ConstraintScope::PerSubject
        );
    }

    #[test]
    fn unguarded_pair_is_global() {
        assert_eq!(
            scope_of(
                "constraint apart:
                   forall a: location, b: location . velocity_le(a, b, 100.0)"
            ),
            ConstraintScope::Global
        );
    }

    #[test]
    fn exists_is_global() {
        assert_eq!(
            scope_of("constraint anchored: exists a: location . subject_eq(a, \"anchor\")"),
            ConstraintScope::Global
        );
    }

    #[test]
    fn guard_chain_connects_three_variables() {
        assert_eq!(
            scope_of(
                "constraint chain:
                   forall a: location, b: location, c: location .
                     (same_subject(a, b) and same_subject(b, c)) implies velocity_le(a, c, 9.0)"
            ),
            ConstraintScope::PerSubject
        );
    }

    #[test]
    fn guard_under_or_guarantees_nothing() {
        // The violating binding may take the `true` branch of the or,
        // leaving the subjects unrelated.
        assert_eq!(
            scope_of(
                "constraint weak:
                   forall a: location, b: location .
                     (same_subject(a, b) or seq_gap(a, b, 1)) implies velocity_le(a, b, 1.5)"
            ),
            ConstraintScope::Global
        );
    }

    #[test]
    fn negated_guard_is_global() {
        assert_eq!(
            scope_of(
                "constraint neg:
                   forall a: location, b: location .
                     not same_subject(a, b) implies velocity_le(a, b, 1.5)"
            ),
            ConstraintScope::Global
        );
    }

    #[test]
    fn guard_in_consequent_does_not_count() {
        // A violation *falsifies* the consequent, so same_subject there
        // is exactly what does not hold.
        assert_eq!(
            scope_of(
                "constraint conseq:
                   forall a: location, b: location .
                     seq_gap(a, b, 1) implies same_subject(a, b)"
            ),
            ConstraintScope::Global
        );
    }

    #[test]
    fn global_kinds_collects_only_global_constraints() {
        let cs = parse_constraints(
            "constraint speed:
               forall a: location, b: location .
                 same_subject(a, b) implies velocity_le(a, b, 1.5)
             constraint pairwise:
               forall r: rfid, s: rfid . distinct(r, s)",
        )
        .unwrap();
        let globals = global_kinds(&cs);
        assert!(globals.contains(&ContextKind::new("rfid")));
        assert!(!globals.contains(&ContextKind::new("location")));
    }

    #[test]
    fn attr_type_of_values() {
        assert_eq!(AttrType::of(&ContextValue::Int(1)), AttrType::Int);
        assert_eq!(
            AttrType::of(&ContextValue::Text("x".into())),
            AttrType::Text
        );
        assert_eq!(AttrType::of(&ContextValue::Bool(true)), AttrType::Bool);
        assert_eq!(AttrType::of(&ContextValue::Float(0.5)), AttrType::Float);
    }
}

//! Deploy-time constraint compilation.
//!
//! [`Evaluator`](crate::Evaluator) walks the [`Formula`] AST directly:
//! every quantifier binding clones the variable name into an env vector,
//! every variable reference does a reverse linear scan by string
//! comparison, and every quantifier allocates a fresh domain `Vec`. None
//! of that work depends on the pool — it is the same on every call, so a
//! deployed constraint can pay it **once**.
//!
//! [`CompiledConstraint::compile`] lowers a [`Constraint`] into a
//! flattened program in which
//!
//! * every variable reference is resolved to a **slot** — an index into a
//!   reusable env scratch buffer (slots coincide with the structural
//!   quantifier ids, so pinning works unchanged);
//! * every quantifier's kind is **interned** into a per-constraint kind
//!   table (the distinct kinds are also exposed via
//!   [`CompiledConstraint::kinds`], which the middleware's dirty-kind
//!   situation cache intersects against changed kinds);
//! * constants are evaluated by reference ([`Resolved::ValueRef`]), never
//!   cloned.
//!
//! [`CompiledEvaluator`] then evaluates the program with **zero
//! per-binding allocations**: the env buffer and the per-quantifier
//! domain buffers live in an [`EvalScratch`] that the caller reuses
//! across calls (and across constraints — it grows to the largest slot
//! count seen). Link-evidence semantics are shared with the AST
//! evaluator via the `Evidence`/`Need` machinery in `eval`, so both
//! evaluators produce byte-identical [`CheckOutcome`]s.

use crate::ast::{Formula, Quantifier, Term};
use crate::constraint::Constraint;
use crate::error::EvalError;
use crate::eval::{
    combine_and, combine_or, fold_exists, fold_forall, outcome_from, CheckOutcome, DomainMode,
    Evidence, Link, Need, Pin,
};
use crate::predicate::{PredicateRegistry, Resolved};
use crate::schema::{constraint_scope, ConstraintScope};
use ctxres_context::{Context, ContextId, ContextKind, ContextPool, ContextValue, LogicalTime};

/// A term lowered to slot-addressed form. Variable names are kept only
/// for error reporting (`UnboundVariable` / `MissingAttr` parity with
/// the AST evaluator); the hot path never compares or clones them.
#[derive(Debug, Clone, PartialEq)]
enum CTerm {
    /// A quantifier-bound context, read from env slot `slot`.
    Slot { slot: usize, var: String },
    /// An attribute of a bound context.
    Attr {
        slot: usize,
        var: String,
        attr: String,
    },
    /// A literal, evaluated by reference.
    Const(ContextValue),
}

/// A formula node with variables resolved to slots and kinds interned.
#[derive(Debug, Clone, PartialEq)]
enum CFormula {
    True,
    False,
    Not(Box<CFormula>),
    And(Box<CFormula>, Box<CFormula>),
    Or(Box<CFormula>, Box<CFormula>),
    Implies(Box<CFormula>, Box<CFormula>),
    Pred {
        name: String,
        args: Vec<CTerm>,
        /// Per-constraint predicate-occurrence id, assigned in lowering
        /// order. Together with the arguments' slot bindings it keys the
        /// per-batch [`PredMemo`].
        site: u32,
        /// The distinct env slots the arguments read (sorted). Two or
        /// fewer slots make the call memoizable; wider calls bypass the
        /// memo.
        slots: Vec<usize>,
    },
    Quant {
        q: Quantifier,
        /// Index into the constraint's kind table.
        kind_sym: usize,
        /// Env slot the binding writes (equals the structural qid, so
        /// [`CompiledEvaluator::check_pinned`] pins by slot).
        slot: usize,
        body: Box<CFormula>,
    },
}

/// A [`Constraint`] lowered for allocation-free evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledConstraint {
    name: String,
    program: CFormula,
    /// Interned quantifier kinds, indexed by `CFormula::Quant::kind_sym`.
    kind_table: Vec<ContextKind>,
    /// The distinct kinds quantified over (sorted; mirrors
    /// [`Constraint::kinds`]).
    kinds: Vec<ContextKind>,
    slot_count: usize,
    universal_positive: bool,
    /// Deploy-time sharding-scope verdict: `true` when
    /// [`constraint_scope`] proves every violating binding draws all its
    /// contexts from one subject. Pinned checks on such constraints
    /// quantify over the pool's per-subject index instead of the whole
    /// kind list.
    per_subject: bool,
}

impl CompiledConstraint {
    /// Lowers `constraint` into slot-addressed form.
    ///
    /// # Errors
    ///
    /// [`EvalError::UnboundVariable`] if the formula references a
    /// variable no enclosing quantifier binds — the AST evaluator would
    /// only discover this at evaluation time; compilation surfaces it at
    /// deploy time.
    pub fn compile(constraint: &Constraint) -> Result<Self, EvalError> {
        let mut kind_table = Vec::new();
        let mut scope: Vec<(&str, usize)> = Vec::new();
        let mut sites = 0u32;
        let program = lower(
            constraint.formula(),
            &mut kind_table,
            &mut scope,
            &mut sites,
        )?;
        Ok(CompiledConstraint {
            name: constraint.name().to_owned(),
            program,
            kinds: constraint.kinds().iter().cloned().collect(),
            kind_table,
            slot_count: constraint.quantifier_count(),
            universal_positive: constraint.is_universal_positive(),
            per_subject: constraint_scope(constraint) == ConstraintScope::PerSubject,
        })
    }

    /// The constraint's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The distinct context kinds the constraint quantifies over
    /// (sorted). A pool change to any other kind cannot change this
    /// constraint's verdict.
    pub fn kinds(&self) -> &[ContextKind] {
        &self.kinds
    }

    /// Whether the constraint quantifies over `kind`.
    pub fn quantifies_over(&self, kind: &ContextKind) -> bool {
        self.kinds.binary_search(kind).is_ok()
    }

    /// Whether the formula lies in the incremental-checkable fragment.
    pub fn is_universal_positive(&self) -> bool {
        self.universal_positive
    }

    /// Whether every violating binding is provably same-subject (see
    /// [`constraint_scope`]). When true, a pinned check restricts every
    /// unpinned quantifier to the pinned context's subject bucket —
    /// O(subject track) instead of O(kind).
    pub fn is_per_subject(&self) -> bool {
        self.per_subject
    }

    /// Number of env slots (= quantifiers) the program uses.
    pub fn slot_count(&self) -> usize {
        self.slot_count
    }
}

fn lower<'f>(
    f: &'f Formula,
    kind_table: &mut Vec<ContextKind>,
    scope: &mut Vec<(&'f str, usize)>,
    sites: &mut u32,
) -> Result<CFormula, EvalError> {
    match f {
        Formula::True => Ok(CFormula::True),
        Formula::False => Ok(CFormula::False),
        Formula::Not(a) => Ok(CFormula::Not(Box::new(lower(a, kind_table, scope, sites)?))),
        Formula::And(a, b) => Ok(CFormula::And(
            Box::new(lower(a, kind_table, scope, sites)?),
            Box::new(lower(b, kind_table, scope, sites)?),
        )),
        Formula::Or(a, b) => Ok(CFormula::Or(
            Box::new(lower(a, kind_table, scope, sites)?),
            Box::new(lower(b, kind_table, scope, sites)?),
        )),
        Formula::Implies(a, b) => Ok(CFormula::Implies(
            Box::new(lower(a, kind_table, scope, sites)?),
            Box::new(lower(b, kind_table, scope, sites)?),
        )),
        Formula::Pred(call) => {
            let args = call
                .args
                .iter()
                .map(|t| lower_term(t, scope))
                .collect::<Result<Vec<_>, _>>()?;
            let mut slots: Vec<usize> = args
                .iter()
                .filter_map(|t| match t {
                    CTerm::Slot { slot, .. } | CTerm::Attr { slot, .. } => Some(*slot),
                    CTerm::Const(_) => None,
                })
                .collect();
            slots.sort_unstable();
            slots.dedup();
            let site = *sites;
            *sites += 1;
            Ok(CFormula::Pred {
                name: call.name.clone(),
                args,
                site,
                slots,
            })
        }
        Formula::Quant {
            q,
            var,
            kind,
            qid,
            body,
        } => {
            let kind_sym = match kind_table.iter().position(|k| k == kind) {
                Some(i) => i,
                None => {
                    kind_table.push(kind.clone());
                    kind_table.len() - 1
                }
            };
            scope.push((var, *qid));
            let body = lower(body, kind_table, scope, sites);
            scope.pop();
            Ok(CFormula::Quant {
                q: *q,
                kind_sym,
                slot: *qid,
                body: Box::new(body?),
            })
        }
    }
}

fn lower_term(t: &Term, scope: &[(&str, usize)]) -> Result<CTerm, EvalError> {
    let slot_of = |name: &str| {
        scope
            .iter()
            .rev()
            .find(|(n, _)| *n == name)
            .map(|(_, slot)| *slot)
            .ok_or_else(|| EvalError::UnboundVariable(name.to_owned()))
    };
    match t {
        Term::Const(v) => Ok(CTerm::Const(v.clone())),
        Term::Var(name) => Ok(CTerm::Slot {
            slot: slot_of(name)?,
            var: name.clone(),
        }),
        Term::Attr(name, attr) => Ok(CTerm::Attr {
            slot: slot_of(name)?,
            var: name.clone(),
            attr: attr.clone(),
        }),
    }
}

/// Reusable evaluation buffers: the slot-indexed env and one domain
/// buffer per quantifier. Grows to the largest program seen and is then
/// allocation-free across calls.
#[derive(Debug, Default)]
pub struct EvalScratch {
    env: Vec<ContextId>,
    domains: Vec<Vec<ContextId>>,
}

impl EvalScratch {
    /// Creates an empty scratch buffer.
    pub fn new() -> Self {
        EvalScratch::default()
    }

    fn prepare(&mut self, slots: usize) {
        if self.env.len() < slots {
            self.env.resize(slots, ContextId::from_raw(u64::MAX));
            self.domains.resize_with(slots, Vec::new);
        }
    }
}

/// Multiply-rotate hasher for the memo table. The key is four small
/// integers probed millions of times per batch, where the std
/// SipHasher's keyed setup and finalization are a measurable share of
/// the whole check; HashDoS hardening buys nothing against our own
/// context ids.
#[derive(Default)]
struct MemoHasher(u64);

impl MemoHasher {
    fn add(&mut self, v: u64) {
        self.0 = (self.0.rotate_left(5) ^ v).wrapping_mul(0x517c_c1b7_2722_0a95);
    }
}

impl std::hash::Hasher for MemoHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.add(u64::from(b));
        }
    }
    fn write_u32(&mut self, v: u32) {
        self.add(u64::from(v));
    }
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }
}

type MemoMap = std::collections::HashMap<
    (u32, u32, u64, u64),
    bool,
    std::hash::BuildHasherDefault<MemoHasher>,
>;

/// Per-batch predicate memo table for the fused truth-only pass.
///
/// Predicate truth depends only on the call site (constraint index ×
/// lowering-order occurrence id) and the contexts bound to the slots its
/// arguments read — attributes, stamps, and truth tags are immutable, and
/// a batch never physically removes a context mid-flight — so a verdict
/// computed once can be replayed for every other batch member that binds
/// the same contexts. Only `Ok` verdicts are cached; errors are always
/// re-derived so the error stream stays identical to the unfused path.
///
/// Two classes of call bypass the table entirely: calls reading more
/// than two slots, and calls reading the *pinned* quantifier's slot.
/// The latter is the important one — every check in a batch pins a
/// distinct context, so a key that includes the pin's id can never
/// recur within the batch, and memoizing it would pay the hash and the
/// insert for a structurally-impossible hit on exactly the hottest
/// sites (the binary predicates relating the new context to its
/// subject's track).
#[derive(Debug, Default)]
pub struct PredMemo {
    map: MemoMap,
    hits: u64,
    misses: u64,
}

impl PredMemo {
    /// Creates an empty memo table.
    pub fn new() -> Self {
        PredMemo::default()
    }

    /// Lookups answered from the table.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Memoizable lookups that had to evaluate the predicate.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Folds another memo's hit/miss tallies into this one (worker
    /// memos aggregate into the batch total).
    pub fn absorb_counts(&mut self, other: &PredMemo) {
        self.hits += other.hits;
        self.misses += other.misses;
    }

    /// Merges another memo into this one: the cached verdicts union
    /// (tables are keyed on immutable inputs, so duplicates agree) and
    /// the hit/miss tallies add. Used to fold speculation workers'
    /// memos into the commit-path memo of a fused batch.
    pub fn absorb(&mut self, other: PredMemo) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.map.extend(other.map);
    }
}

/// Evaluates [`CompiledConstraint`]s against a [`ContextPool`].
///
/// Mirrors [`Evaluator`](crate::Evaluator) — same domain modes, same
/// link-evidence semantics, identical [`CheckOutcome`]s — but takes an
/// [`EvalScratch`] so repeated checks allocate nothing for bindings or
/// quantifier domains.
#[derive(Debug)]
pub struct CompiledEvaluator<'r> {
    registry: &'r PredicateRegistry,
    domain: DomainMode,
}

impl<'r> CompiledEvaluator<'r> {
    /// Creates an evaluator quantifying over all live contexts.
    pub fn new(registry: &'r PredicateRegistry) -> Self {
        CompiledEvaluator {
            registry,
            domain: DomainMode::AllLive,
        }
    }

    /// Creates an evaluator with an explicit quantification domain.
    pub fn with_domain(registry: &'r PredicateRegistry, domain: DomainMode) -> Self {
        CompiledEvaluator { registry, domain }
    }

    /// Fully checks `constraint` over the live contexts of `pool` at
    /// instant `now`.
    ///
    /// # Errors
    ///
    /// Propagates [`EvalError`] from predicate evaluation, exactly as
    /// [`Evaluator::check`](crate::Evaluator::check) does.
    pub fn check(
        &self,
        constraint: &CompiledConstraint,
        pool: &ContextPool,
        now: LogicalTime,
        scratch: &mut EvalScratch,
    ) -> Result<CheckOutcome, EvalError> {
        self.run(constraint, pool, now, None, None, scratch)
    }

    /// Checks only **whether** `constraint` holds — no violation
    /// evidence — with short-circuit quantifier evaluation: an `exists`
    /// stops at its first witness, a `forall` at its first
    /// counterexample, and `and`/`or`/`implies` skip their right
    /// operand when the left decides. This is the situation hot path:
    /// situations consume only the truth value, so building per-binding
    /// evidence links is pure waste there.
    ///
    /// The truth value always equals
    /// [`check`](CompiledEvaluator::check)`.satisfied`. Error behaviour
    /// is lazier, though: an evaluation error in a branch that
    /// short-circuiting never reached is not surfaced (e.g. an `exists`
    /// that finds a witness before the erroring binding returns
    /// `Ok(true)` where `check` would return `Err`).
    ///
    /// # Errors
    ///
    /// Propagates [`EvalError`] from the branches actually evaluated.
    pub fn holds(
        &self,
        constraint: &CompiledConstraint,
        pool: &ContextPool,
        now: LogicalTime,
        scratch: &mut EvalScratch,
    ) -> Result<bool, EvalError> {
        scratch.prepare(constraint.slot_count);
        let mut run = Run {
            registry: self.registry,
            domain: self.domain,
            kind_table: &constraint.kind_table,
            pool,
            now,
            pin: None,
            pin_subject: None,
            max_id: None,
            memo: None,
            memo_cid: 0,
            scratch,
        };
        run.eval_bool(&constraint.program)
    }

    /// Checks `constraint` with quantifier `qid`'s domain restricted to
    /// the single context `ctx`.
    ///
    /// # Errors
    ///
    /// Same as [`CompiledEvaluator::check`].
    pub fn check_pinned(
        &self,
        constraint: &CompiledConstraint,
        pool: &ContextPool,
        now: LogicalTime,
        qid: usize,
        ctx: ContextId,
        scratch: &mut EvalScratch,
    ) -> Result<CheckOutcome, EvalError> {
        self.run(constraint, pool, now, Some(Pin { qid, ctx }), None, scratch)
    }

    /// [`check_pinned`](CompiledEvaluator::check_pinned) with every
    /// quantifier's domain additionally capped at `max_id`: only contexts
    /// with `id <= max_id` participate. With a whole batch pre-inserted,
    /// capping at the pinned context's own id reproduces exactly the
    /// domain a sequential submission would have seen at that arrival
    /// position (ids are allocated monotonically and never reused), so
    /// the outcome — violations, truncation, and error positions — is
    /// byte-identical to the unfused path.
    ///
    /// Batch-cap contract: callers must ensure every pooled context
    /// stamped after `now` has `id > max_id`. This holds whenever `now`
    /// is the prefix-max arrival clock of a monotonically-staged batch
    /// — the only way the fused engine invokes it — because earlier
    /// positions and the pre-batch population are all stamped at or
    /// before their own clock. Domain fills exploit it to stop at the
    /// first future-stamped bucket element instead of scanning the
    /// whole staged tail.
    ///
    /// # Errors
    ///
    /// Same as [`CompiledEvaluator::check`].
    #[allow(clippy::too_many_arguments)]
    pub fn check_pinned_batch(
        &self,
        constraint: &CompiledConstraint,
        pool: &ContextPool,
        now: LogicalTime,
        qid: usize,
        ctx: ContextId,
        max_id: ContextId,
        scratch: &mut EvalScratch,
    ) -> Result<CheckOutcome, EvalError> {
        self.run(
            constraint,
            pool,
            now,
            Some(Pin { qid, ctx }),
            Some(max_id),
            scratch,
        )
    }

    /// Truth-only twin of
    /// [`check_pinned_batch`](CompiledEvaluator::check_pinned_batch) for
    /// the fused fast path: same traversal, same materialized capped
    /// domains, same first-error behaviour — but no violation evidence is
    /// built, and predicate calls are served from the per-batch `memo`.
    ///
    /// Unlike [`holds`](CompiledEvaluator::holds) this does **not**
    /// short-circuit: every binding the evidence path would visit is
    /// visited here, in the same order, so `Ok(_)`/`Err(_)` outcomes
    /// agree exactly with the evidence path. `Ok(true)` therefore proves
    /// the evidence path would report zero violations, letting the batch
    /// loop skip it entirely.
    ///
    /// # Errors
    ///
    /// Same as [`CompiledEvaluator::check`].
    #[allow(clippy::too_many_arguments)]
    pub fn satisfied_pinned_batch(
        &self,
        constraint: &CompiledConstraint,
        pool: &ContextPool,
        now: LogicalTime,
        qid: usize,
        ctx: ContextId,
        max_id: ContextId,
        scratch: &mut EvalScratch,
        memo: &mut PredMemo,
        memo_cid: u32,
    ) -> Result<bool, EvalError> {
        scratch.prepare(constraint.slot_count);
        let pin = Some(Pin { qid, ctx });
        let pin_subject = if constraint.per_subject {
            pool.get(ctx).map(Context::subject)
        } else {
            None
        };
        let mut run = Run {
            registry: self.registry,
            domain: self.domain,
            kind_table: &constraint.kind_table,
            pool,
            now,
            pin,
            pin_subject,
            max_id: Some(max_id),
            memo: Some(memo),
            memo_cid,
            scratch,
        };
        run.eval_truth(&constraint.program)
    }

    fn run(
        &self,
        constraint: &CompiledConstraint,
        pool: &ContextPool,
        now: LogicalTime,
        pin: Option<Pin>,
        max_id: Option<ContextId>,
        scratch: &mut EvalScratch,
    ) -> Result<CheckOutcome, EvalError> {
        scratch.prepare(constraint.slot_count);
        // A per-subject constraint's violating bindings all share the
        // pinned context's subject, so the unpinned quantifiers only
        // need that subject's bucket of the kind index. Global
        // constraints (or unpinned checks) keep the full kind domain.
        let pin_subject = match pin {
            Some(p) if constraint.per_subject => pool.get(p.ctx).map(Context::subject),
            _ => None,
        };
        let mut run = Run {
            registry: self.registry,
            domain: self.domain,
            kind_table: &constraint.kind_table,
            pool,
            now,
            pin,
            pin_subject,
            max_id,
            memo: None,
            memo_cid: 0,
            scratch,
        };
        let ev = run.eval(&constraint.program, Need::ROOT)?;
        Ok(outcome_from(ev))
    }
}

struct Run<'a, 'r> {
    registry: &'r PredicateRegistry,
    domain: DomainMode,
    kind_table: &'a [ContextKind],
    pool: &'a ContextPool,
    now: LogicalTime,
    pin: Option<Pin>,
    /// `Some(subject)` when the pinned constraint is per-subject: every
    /// unpinned quantifier's domain narrows to this subject's bucket.
    pin_subject: Option<&'a str>,
    /// Batch cap: quantifier domains only admit contexts with
    /// `id <= max_id`, reproducing the pool a sequential submission
    /// would have seen at that arrival position.
    max_id: Option<ContextId>,
    /// Per-batch predicate memo, active only on the truth-only path.
    memo: Option<&'a mut PredMemo>,
    /// Constraint index disambiguating `site` ids across the deployed
    /// constraint set in the memo key.
    memo_cid: u32,
    scratch: &'a mut EvalScratch,
}

impl Run<'_, '_> {
    fn eval(&mut self, formula: &CFormula, need: Need) -> Result<Evidence, EvalError> {
        match formula {
            CFormula::True => Ok(Evidence::of(true)),
            CFormula::False => Ok(Evidence::of(false)),
            CFormula::Not(f) => {
                let mut ev = self.eval(f, need.flip())?;
                ev.truth = !ev.truth;
                Ok(ev)
            }
            CFormula::And(a, b) => {
                let ea = self.eval(a, need)?;
                let eb = self.eval(b, need)?;
                Ok(combine_and(ea, eb))
            }
            CFormula::Or(a, b) => {
                let ea = self.eval(a, need)?;
                let eb = self.eval(b, need)?;
                Ok(combine_or(ea, eb))
            }
            CFormula::Implies(a, b) => {
                let mut ea = self.eval(a, need.flip())?;
                ea.truth = !ea.truth;
                let eb = self.eval(b, need)?;
                Ok(combine_or(ea, eb))
            }
            CFormula::Pred { name, args, .. } => {
                let mut witness = Link::new();
                let pool = self.pool;
                let env = &self.scratch.env;
                let truth = eval_pred_with(self.registry, name, args, |term| {
                    resolve_cterm(term, pool, env, &mut witness)
                })?;
                Ok(Evidence {
                    truth,
                    links: vec![witness],
                    truncated: false,
                })
            }
            CFormula::Quant {
                q,
                kind_sym,
                slot,
                body,
            } => {
                // Take the slot's domain buffer out of the scratch so the
                // recursive body evaluation can still borrow the scratch;
                // it is put back (error or not) before returning.
                let mut domain = std::mem::take(&mut self.scratch.domains[*slot]);
                domain.clear();
                self.fill_domain(&mut domain, *kind_sym, *slot);
                let mut per_binding: Vec<Evidence> = Vec::with_capacity(domain.len());
                let mut failed = None;
                for id in &domain {
                    self.scratch.env[*slot] = *id;
                    match self.eval(body, need) {
                        Ok(mut ev) => {
                            for link in &mut ev.links {
                                link.insert(*id);
                            }
                            per_binding.push(ev);
                        }
                        Err(e) => {
                            failed = Some(e);
                            break;
                        }
                    }
                }
                self.scratch.domains[*slot] = domain;
                if let Some(e) = failed {
                    return Err(e);
                }
                Ok(match q {
                    Quantifier::Forall => fold_forall(per_binding, need),
                    Quantifier::Exists => fold_exists(per_binding, need),
                })
            }
        }
    }

    /// Fills one quantifier's materialized domain for the evidence and
    /// truth-only paths: the pin's singleton, else the subject bucket or
    /// full kind index, live at `now`, state-filtered by the domain
    /// mode, and capped at `max_id` when batch-fused.
    fn fill_domain(&self, domain: &mut Vec<ContextId>, kind_sym: usize, slot: usize) {
        match (self.pin, self.pin_subject) {
            (Some(p), _) if p.qid == slot => domain.push(p.ctx),
            (_, Some(subject)) => self.collect_domain(
                domain,
                self.pool
                    .of_subject_live_at(&self.kind_table[kind_sym], subject, self.now),
            ),
            _ => self.collect_domain(
                domain,
                self.pool
                    .of_kind_live_at(&self.kind_table[kind_sym], self.now),
            ),
        }
    }

    /// The shared tail of [`Run::fill_domain`]: state-filters a bucket
    /// iterator and applies the batch cap. Buckets iterate in
    /// `(stamp, id)` order, and under the batch-cap contract (see
    /// [`CompiledEvaluator::check_pinned_batch`]) every pooled context
    /// stamped after `now` is a later batch member with `id > max_id` —
    /// so the first such element ends the sequential prefix and the
    /// staged tail is never scanned, keeping a capped fill the same
    /// cost as the sequential fill it reproduces.
    fn collect_domain<'p>(
        &self,
        domain: &mut Vec<ContextId>,
        iter: impl Iterator<Item = (ContextId, &'p Context)>,
    ) {
        match self.max_id {
            Some(m) => {
                for (id, c) in iter {
                    if c.stamp() > self.now {
                        break;
                    }
                    if id <= m && (self.domain == DomainMode::AllLive || c.state().is_available()) {
                        domain.push(id);
                    }
                }
            }
            None => domain.extend(
                iter.filter(|(_, c)| {
                    self.domain == DomainMode::AllLive || c.state().is_available()
                })
                .map(|(id, _)| id),
            ),
        }
    }

    /// Truth-only twin of [`Run::eval`] for
    /// [`CompiledEvaluator::satisfied_pinned_batch`]: identical
    /// traversal — both operands of every connective, fully materialized
    /// domains, every binding visited, first error wins — so its
    /// `Ok`/`Err` outcome always matches the evidence path's. The only
    /// differences are that no [`Evidence`] links are built and that
    /// predicate calls consult the per-batch memo.
    fn eval_truth(&mut self, formula: &CFormula) -> Result<bool, EvalError> {
        match formula {
            CFormula::True => Ok(true),
            CFormula::False => Ok(false),
            CFormula::Not(f) => Ok(!self.eval_truth(f)?),
            CFormula::And(a, b) => {
                let ta = self.eval_truth(a)?;
                let tb = self.eval_truth(b)?;
                Ok(ta && tb)
            }
            CFormula::Or(a, b) => {
                let ta = self.eval_truth(a)?;
                let tb = self.eval_truth(b)?;
                Ok(ta || tb)
            }
            CFormula::Implies(a, b) => {
                let ta = self.eval_truth(a)?;
                let tb = self.eval_truth(b)?;
                Ok(!ta || tb)
            }
            CFormula::Pred {
                name,
                args,
                site,
                slots,
            } => {
                // Memo key: call site × the contexts bound to the slots
                // the arguments read (≤ 2, padded). Wider calls bypass,
                // and so do calls reading the pinned slot: their keys
                // include the pin's id, which is distinct for every
                // check of the batch, so a hit is impossible and the
                // table would only add hash-and-insert cost to the
                // hottest sites.
                let memoizable =
                    slots.len() <= 2 && self.pin.is_none_or(|p| !slots.contains(&p.qid));
                let key = if memoizable {
                    let a = slots
                        .first()
                        .map_or(u64::MAX, |s| self.scratch.env[*s].raw());
                    let b = slots
                        .get(1)
                        .map_or(u64::MAX, |s| self.scratch.env[*s].raw());
                    Some((self.memo_cid, *site, a, b))
                } else {
                    None
                };
                if let (Some(memo), Some(k)) = (self.memo.as_mut(), key) {
                    if let Some(&truth) = memo.map.get(&k) {
                        memo.hits += 1;
                        return Ok(truth);
                    }
                }
                let pool = self.pool;
                let env = &self.scratch.env;
                let truth = eval_pred_with(self.registry, name, args, |term| {
                    resolve_cterm_value(term, pool, env)
                })?;
                if let (Some(memo), Some(k)) = (self.memo.as_mut(), key) {
                    memo.misses += 1;
                    memo.map.insert(k, truth);
                }
                Ok(truth)
            }
            CFormula::Quant {
                q,
                kind_sym,
                slot,
                body,
            } => {
                let mut domain = std::mem::take(&mut self.scratch.domains[*slot]);
                domain.clear();
                self.fill_domain(&mut domain, *kind_sym, *slot);
                // Same fold truths as `fold_forall`/`fold_exists`, same
                // break-at-first-error as the evidence loop.
                let mut truth = matches!(q, Quantifier::Forall);
                let mut failed = None;
                for id in &domain {
                    self.scratch.env[*slot] = *id;
                    match self.eval_truth(body) {
                        Ok(t) => match q {
                            Quantifier::Forall => truth &= t,
                            Quantifier::Exists => truth |= t,
                        },
                        Err(e) => {
                            failed = Some(e);
                            break;
                        }
                    }
                }
                self.scratch.domains[*slot] = domain;
                if let Some(e) = failed {
                    return Err(e);
                }
                Ok(truth)
            }
        }
    }

    /// Evidence-free evaluation for [`CompiledEvaluator::holds`]:
    /// returns the bare truth value, short-circuiting connectives and
    /// quantifiers. Quantifier domains are iterated lazily straight off
    /// the pool — no domain buffer is even filled, so an `exists` whose
    /// witness comes early never visits the rest of its kind's list.
    fn eval_bool(&mut self, formula: &CFormula) -> Result<bool, EvalError> {
        match formula {
            CFormula::True => Ok(true),
            CFormula::False => Ok(false),
            CFormula::Not(f) => Ok(!self.eval_bool(f)?),
            CFormula::And(a, b) => Ok(self.eval_bool(a)? && self.eval_bool(b)?),
            CFormula::Or(a, b) => Ok(self.eval_bool(a)? || self.eval_bool(b)?),
            CFormula::Implies(a, b) => Ok(!self.eval_bool(a)? || self.eval_bool(b)?),
            CFormula::Pred { name, args, .. } => {
                let pool = self.pool;
                let env = &self.scratch.env;
                eval_pred_with(self.registry, name, args, |term| {
                    resolve_cterm_value(term, pool, env)
                })
            }
            CFormula::Quant {
                q,
                kind_sym,
                slot,
                body,
            } => {
                if let Some(p) = self.pin {
                    if p.qid == *slot {
                        // Singleton domain: either quantifier reduces to
                        // its body's truth.
                        self.scratch.env[*slot] = p.ctx;
                        return self.eval_bool(body);
                    }
                }
                // `exists` returns at the first true body, `forall` at
                // the first false one.
                let deciding = matches!(q, Quantifier::Exists);
                let pool = self.pool;
                let kind = &self.kind_table[*kind_sym];
                match self.pin_subject {
                    Some(subject) => {
                        let domain = pool.of_subject_live_at(kind, subject, self.now);
                        self.scan_quant(domain, *slot, body, deciding)
                    }
                    None => {
                        let domain = pool.of_kind_live_at(kind, self.now);
                        self.scan_quant(domain, *slot, body, deciding)
                    }
                }
            }
        }
    }

    /// Short-circuit scan of one quantifier's `domain` for
    /// [`Run::eval_bool`]: returns `deciding` at the first binding whose
    /// body evaluates to it, `!deciding` when the domain is exhausted.
    fn scan_quant<'p>(
        &mut self,
        domain: impl Iterator<Item = (ContextId, &'p Context)>,
        slot: usize,
        body: &CFormula,
        deciding: bool,
    ) -> Result<bool, EvalError> {
        let available_only = self.domain == DomainMode::AvailableOnly;
        for (id, ctx) in domain {
            if available_only && !ctx.state().is_available() {
                continue;
            }
            self.scratch.env[slot] = id;
            if self.eval_bool(body)? == deciding {
                return Ok(deciding);
            }
        }
        Ok(!deciding)
    }
}

/// Resolves predicate arguments and hands them to the evaluator,
/// staging them in a stack array for the common arities (every
/// built-in predicate takes at most 5 arguments). Arguments resolve
/// left to right with `?` on each, so the first resolution error
/// propagates exactly as the heap-`Vec` fallback would.
fn eval_pred_with<'a>(
    registry: &PredicateRegistry,
    name: &str,
    args: &'a [CTerm],
    mut resolve: impl FnMut(&'a CTerm) -> Result<Resolved<'a>, EvalError>,
) -> Result<bool, EvalError> {
    match args {
        [] => registry.eval(name, &[]),
        [a] => registry.eval(name, &[resolve(a)?]),
        [a, b] => registry.eval(name, &[resolve(a)?, resolve(b)?]),
        [a, b, c] => registry.eval(name, &[resolve(a)?, resolve(b)?, resolve(c)?]),
        [a, b, c, d] => registry.eval(name, &[resolve(a)?, resolve(b)?, resolve(c)?, resolve(d)?]),
        [a, b, c, d, e] => registry.eval(
            name,
            &[
                resolve(a)?,
                resolve(b)?,
                resolve(c)?,
                resolve(d)?,
                resolve(e)?,
            ],
        ),
        _ => {
            let mut resolved: Vec<Resolved<'a>> = Vec::with_capacity(args.len());
            for term in args {
                resolved.push(resolve(term)?);
            }
            registry.eval(name, &resolved)
        }
    }
}

/// [`resolve_cterm`] without witness tracking, for the boolean path.
fn resolve_cterm_value<'a>(
    term: &'a CTerm,
    pool: &'a ContextPool,
    env: &[ContextId],
) -> Result<Resolved<'a>, EvalError> {
    match term {
        CTerm::Const(v) => Ok(Resolved::ValueRef(v)),
        CTerm::Slot { slot, var } => {
            let id = env[*slot];
            let ctx = pool
                .get(id)
                .ok_or_else(|| EvalError::UnboundVariable(var.clone()))?;
            Ok(Resolved::Ctx(id, ctx))
        }
        CTerm::Attr { slot, var, attr } => {
            let id = env[*slot];
            let ctx = pool
                .get(id)
                .ok_or_else(|| EvalError::UnboundVariable(var.clone()))?;
            let value = ctx.attr(attr).ok_or_else(|| EvalError::MissingAttr {
                var: var.clone(),
                attr: attr.clone(),
            })?;
            Ok(Resolved::ValueRef(value))
        }
    }
}

fn resolve_cterm<'a>(
    term: &'a CTerm,
    pool: &'a ContextPool,
    env: &[ContextId],
    witness: &mut Link,
) -> Result<Resolved<'a>, EvalError> {
    match term {
        CTerm::Const(v) => Ok(Resolved::ValueRef(v)),
        CTerm::Slot { slot, var } => {
            let id = env[*slot];
            witness.insert(id);
            let ctx = pool
                .get(id)
                .ok_or_else(|| EvalError::UnboundVariable(var.clone()))?;
            Ok(Resolved::Ctx(id, ctx))
        }
        CTerm::Attr { slot, var, attr } => {
            let id = env[*slot];
            witness.insert(id);
            let ctx = pool
                .get(id)
                .ok_or_else(|| EvalError::UnboundVariable(var.clone()))?;
            let value = ctx.attr(attr).ok_or_else(|| EvalError::MissingAttr {
                var: var.clone(),
                attr: attr.clone(),
            })?;
            Ok(Resolved::ValueRef(value))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::Evaluator;
    use crate::parser::parse_constraint;
    use ctxres_context::{Context, ContextState, Point};

    fn registry() -> PredicateRegistry {
        PredicateRegistry::with_builtins()
    }

    fn loc_pool(points: &[(f64, f64)]) -> ContextPool {
        let mut pool = ContextPool::new();
        for (i, (x, y)) in points.iter().enumerate() {
            pool.insert(
                Context::builder(ContextKind::new("location"), "peter")
                    .attr("pos", Point::new(*x, *y))
                    .attr("seq", i as i64)
                    .stamp(LogicalTime::new(i as u64))
                    .build(),
            );
        }
        pool
    }

    fn assert_matches_naive(source: &str, pool: &ContextPool, now: LogicalTime) {
        let c = parse_constraint(source).unwrap();
        let cc = CompiledConstraint::compile(&c).unwrap();
        let reg = registry();
        let mut scratch = EvalScratch::new();
        for mode in [DomainMode::AllLive, DomainMode::AvailableOnly] {
            let naive = Evaluator::with_domain(&reg, mode).check(&c, pool, now);
            let compiled =
                CompiledEvaluator::with_domain(&reg, mode).check(&cc, pool, now, &mut scratch);
            assert_eq!(naive, compiled, "mode {mode:?} diverged for {source}");
        }
    }

    const SPEED: &str = "constraint speed:
       forall a: location, b: location .
         (same_subject(a, b) and seq_gap(a, b, 1)) implies velocity_le(a, b, 1.5)";

    #[test]
    fn compiled_matches_naive_on_satisfied_and_violated_pools() {
        let now = LogicalTime::new(10);
        assert_matches_naive(SPEED, &loc_pool(&[(0.0, 0.0), (0.5, 0.0), (1.0, 0.0)]), now);
        assert_matches_naive(SPEED, &loc_pool(&[(0.0, 0.0), (0.5, 0.0), (9.0, 9.0)]), now);
        assert_matches_naive(SPEED, &loc_pool(&[(0.0, 0.0), (9.0, 9.0), (1.0, 0.0)]), now);
        assert_matches_naive(SPEED, &ContextPool::new(), now);
    }

    #[test]
    fn compiled_matches_naive_on_exists_and_attributes() {
        let now = LogicalTime::new(10);
        let pool = loc_pool(&[(0.0, 0.0), (50.0, 50.0)]);
        assert_matches_naive(
            "constraint has_mary: exists a: location . subject_eq(a, \"mary\")",
            &pool,
            now,
        );
        assert_matches_naive(
            "constraint feasible: forall a: location . within(a, -10.0, -10.0, 10.0, 10.0)",
            &pool,
            now,
        );
        assert_matches_naive(
            "constraint ordered: forall a: location, b: location . \
               seq_gap(a, b, 1) implies le(a.seq, b.seq)",
            &pool,
            now,
        );
    }

    #[test]
    fn compiled_respects_state_filtering() {
        let mut pool = loc_pool(&[(0.0, 0.0), (9.0, 9.0), (1.0, 0.0)]);
        pool.set_state(ContextId::from_raw(1), ContextState::Inconsistent)
            .unwrap();
        assert_matches_naive(SPEED, &pool, LogicalTime::new(10));
        pool.set_state(ContextId::from_raw(0), ContextState::Consistent)
            .unwrap();
        assert_matches_naive(SPEED, &pool, LogicalTime::new(10));
    }

    /// Two interleaved subject tracks: `peter` teleports between his
    /// 2nd and 3rd reading, `mary` stays clean. Ids 0..=2 are peter's,
    /// 3..=5 mary's; stamps interleave the tracks.
    fn two_subject_pool() -> ContextPool {
        let mut pool = ContextPool::new();
        let tracks: [(&str, [(f64, f64); 3]); 2] = [
            ("peter", [(0.0, 0.0), (0.5, 0.0), (9.0, 9.0)]),
            ("mary", [(0.0, 1.0), (0.4, 1.0), (0.8, 1.0)]),
        ];
        for (s, (subject, points)) in tracks.iter().enumerate() {
            for (i, (x, y)) in points.iter().enumerate() {
                pool.insert(
                    Context::builder(ContextKind::new("location"), subject)
                        .attr("pos", Point::new(*x, *y))
                        .attr("seq", i as i64)
                        .stamp(LogicalTime::new((2 * i + s) as u64))
                        .build(),
                );
            }
        }
        pool
    }

    /// A per-subject constraint's pinned check narrows every unpinned
    /// quantifier to the pinned subject's bucket; the outcome must still
    /// be byte-identical to the naive evaluator's full-domain scan, for
    /// every pin point on a mixed-subject pool.
    #[test]
    fn subject_scoped_pinned_check_matches_naive_on_mixed_subjects() {
        let pool = two_subject_pool();
        let c = parse_constraint(SPEED).unwrap();
        let cc = CompiledConstraint::compile(&c).unwrap();
        assert!(
            cc.is_per_subject(),
            "a same_subject-guarded forall pair must classify per-subject"
        );
        let reg = registry();
        let naive = Evaluator::new(&reg);
        let compiled = CompiledEvaluator::new(&reg);
        let mut scratch = EvalScratch::new();
        let now = LogicalTime::new(10);
        let mut saw_violation = false;
        for qid in 0..2 {
            for raw in 0..6 {
                let id = ContextId::from_raw(raw);
                let outcome = compiled.check_pinned(&cc, &pool, now, qid, id, &mut scratch);
                saw_violation |= outcome.as_ref().is_ok_and(|o| !o.satisfied);
                assert_eq!(
                    naive.check_pinned(&c, &pool, now, qid, id),
                    outcome,
                    "pin qid={qid} ctx={raw}"
                );
            }
        }
        assert!(saw_violation, "peter's teleport must surface under pinning");
    }

    /// A constraint whose violations span subjects (`same_subject` only
    /// in the consequent) must stay `Global`: pinned checks keep the
    /// full kind domain, or the cross-subject violation would be missed.
    #[test]
    fn global_constraints_never_subject_restrict() {
        let pool = two_subject_pool();
        let src = "constraint cross: forall a: location, b: location . \
                   seq_gap(a, b, 1) implies same_subject(a, b)";
        let c = parse_constraint(src).unwrap();
        let cc = CompiledConstraint::compile(&c).unwrap();
        assert!(
            !cc.is_per_subject(),
            "same_subject in the consequent guarantees nothing about violations"
        );
        let reg = registry();
        let naive = Evaluator::new(&reg);
        let compiled = CompiledEvaluator::new(&reg);
        let mut scratch = EvalScratch::new();
        let now = LogicalTime::new(10);
        let full = compiled.check(&cc, &pool, now, &mut scratch).unwrap();
        assert!(!full.satisfied, "cross-subject seq gaps must violate");
        for qid in 0..2 {
            for raw in 0..6 {
                let id = ContextId::from_raw(raw);
                assert_eq!(
                    naive.check_pinned(&c, &pool, now, qid, id),
                    compiled.check_pinned(&cc, &pool, now, qid, id, &mut scratch),
                    "pin qid={qid} ctx={raw}"
                );
            }
        }
    }

    #[test]
    fn pinned_compiled_check_matches_naive() {
        let pool = loc_pool(&[(0.0, 0.0), (0.5, 0.0), (9.0, 9.0)]);
        let c = parse_constraint(SPEED).unwrap();
        let cc = CompiledConstraint::compile(&c).unwrap();
        let reg = registry();
        let naive = Evaluator::new(&reg);
        let compiled = CompiledEvaluator::new(&reg);
        let mut scratch = EvalScratch::new();
        let now = LogicalTime::new(10);
        for qid in 0..2 {
            for raw in 0..3 {
                let id = ContextId::from_raw(raw);
                assert_eq!(
                    naive.check_pinned(&c, &pool, now, qid, id),
                    compiled.check_pinned(&cc, &pool, now, qid, id, &mut scratch),
                    "pin qid={qid} ctx={raw}"
                );
            }
        }
    }

    #[test]
    fn missing_attribute_error_matches_naive() {
        let mut pool = ContextPool::new();
        pool.insert(Context::builder(ContextKind::new("badge"), "p").build());
        let c = parse_constraint("constraint x: forall a: badge . eq(a.room, \"lab\")").unwrap();
        let cc = CompiledConstraint::compile(&c).unwrap();
        let reg = registry();
        let naive = Evaluator::new(&reg).check(&c, &pool, LogicalTime::new(1));
        let compiled = CompiledEvaluator::new(&reg).check(
            &cc,
            &pool,
            LogicalTime::new(1),
            &mut EvalScratch::new(),
        );
        assert_eq!(naive, compiled);
        assert!(matches!(compiled, Err(EvalError::MissingAttr { .. })));
    }

    #[test]
    fn unbound_variable_is_a_compile_error() {
        let c = Constraint::new(
            "bad",
            Formula::pred(
                "has_attr",
                vec![Term::Var("ghost".into()), Term::Const("x".into())],
            ),
        );
        let err = CompiledConstraint::compile(&c).unwrap_err();
        assert!(matches!(err, EvalError::UnboundVariable(v) if v == "ghost"));
    }

    #[test]
    fn shadowed_variables_resolve_to_innermost_binder() {
        // Inner `a` shadows the outer one: the body must compare the
        // inner binding against itself (always equal subjects).
        let source = "constraint shadow:
           forall a: location . exists a: location . same_subject(a, a)";
        let pool = loc_pool(&[(0.0, 0.0), (1.0, 1.0)]);
        assert_matches_naive(source, &pool, LogicalTime::new(10));
    }

    #[test]
    fn kind_table_interns_and_exposes_kinds() {
        let c = parse_constraint(
            "constraint multi: forall a: location, b: location . forall r: rfid . distinct(a, r)",
        )
        .unwrap();
        let cc = CompiledConstraint::compile(&c).unwrap();
        assert_eq!(cc.kind_table.len(), 2, "location interned once");
        assert_eq!(cc.kinds().len(), 2);
        assert!(cc.quantifies_over(&ContextKind::new("location")));
        assert!(cc.quantifies_over(&ContextKind::new("rfid")));
        assert!(!cc.quantifies_over(&ContextKind::new("badge")));
        assert_eq!(cc.slot_count(), 3);
        assert_eq!(cc.name(), "multi");
        assert!(cc.is_universal_positive());
    }

    #[test]
    fn holds_agrees_with_check_satisfied() {
        let reg = registry();
        let mut scratch = EvalScratch::new();
        let now = LogicalTime::new(10);
        let sources = [
            SPEED,
            "constraint has_mary: exists a: location . subject_eq(a, \"mary\")",
            "constraint has_peter: exists a: location . subject_eq(a, \"peter\")",
            "constraint feasible: forall a: location . within(a, -10.0, -10.0, 10.0, 10.0)",
            "constraint nobody: forall a: location . false",
            "constraint vacuous: exists a: location . true",
        ];
        for pool in [
            loc_pool(&[(0.0, 0.0), (0.5, 0.0), (1.0, 0.0)]),
            loc_pool(&[(0.0, 0.0), (9.0, 9.0), (1.0, 0.0)]),
            ContextPool::new(),
        ] {
            for source in sources {
                let c = parse_constraint(source).unwrap();
                let cc = CompiledConstraint::compile(&c).unwrap();
                for mode in [DomainMode::AllLive, DomainMode::AvailableOnly] {
                    let eval = CompiledEvaluator::with_domain(&reg, mode);
                    let full = eval.check(&cc, &pool, now, &mut scratch).unwrap().satisfied;
                    let fast = eval.holds(&cc, &pool, now, &mut scratch).unwrap();
                    assert_eq!(full, fast, "{source} under {mode:?}");
                }
            }
        }
    }

    #[test]
    fn holds_short_circuits_past_erroring_bindings() {
        // First binding in insertion order satisfies the exists; a later
        // one is missing the attribute. `check` evaluates every binding
        // and errors; `holds` stops at the witness.
        let mut pool = ContextPool::new();
        pool.insert(
            Context::builder(ContextKind::new("badge"), "peter")
                .attr("room", "office")
                .build(),
        );
        pool.insert(Context::builder(ContextKind::new("badge"), "mary").build());
        let c = parse_constraint("constraint x: exists a: badge . eq(a.room, \"office\")").unwrap();
        let cc = CompiledConstraint::compile(&c).unwrap();
        let reg = registry();
        let eval = CompiledEvaluator::new(&reg);
        let mut scratch = EvalScratch::new();
        let now = LogicalTime::new(1);
        assert!(matches!(
            eval.check(&cc, &pool, now, &mut scratch),
            Err(EvalError::MissingAttr { .. })
        ));
        assert_eq!(eval.holds(&cc, &pool, now, &mut scratch), Ok(true));
    }

    #[test]
    fn scratch_is_reusable_across_constraints_of_different_sizes() {
        let reg = registry();
        let mut scratch = EvalScratch::new();
        let pool = loc_pool(&[(0.0, 0.0), (0.5, 0.0), (9.0, 9.0)]);
        let now = LogicalTime::new(10);
        let big = CompiledConstraint::compile(&parse_constraint(SPEED).unwrap()).unwrap();
        let small = CompiledConstraint::compile(
            &parse_constraint("constraint one: exists a: location . true").unwrap(),
        )
        .unwrap();
        let eval = CompiledEvaluator::new(&reg);
        for _ in 0..3 {
            assert!(
                !eval
                    .check(&big, &pool, now, &mut scratch)
                    .unwrap()
                    .satisfied
            );
            assert!(
                eval.check(&small, &pool, now, &mut scratch)
                    .unwrap()
                    .satisfied
            );
        }
    }
}

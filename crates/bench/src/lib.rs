//! Criterion benches for the `ctxres` workspace.
//!
//! One bench target per paper artifact (`fig9_call_forwarding`,
//! `fig10_rfid_anomalies`, `landmarc_case_study`, `ablation_window`)
//! times the regeneration pipeline per strategy/parameter, and `micro`
//! covers the substrate hot paths (pool operations, full vs incremental
//! checking, the drop-bad decision procedure, the DSL parser).
//!
//! Run with `cargo bench --workspace`. Shared helpers live here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ctxres_apps::PervasiveApp;
use ctxres_experiments::metrics::RunMetrics;
use ctxres_experiments::runner::run_named;

/// Runs one (strategy, error-rate) experiment cell at bench scale.
pub fn bench_cell(app: &dyn PervasiveApp, strategy: &str, err_rate: f64, len: usize) -> RunMetrics {
    run_named(app, strategy, err_rate, 1, len, app.recommended_window())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctxres_apps::call_forwarding::CallForwarding;

    #[test]
    fn bench_cell_runs() {
        let m = bench_cell(&CallForwarding::new(), "d-bad", 0.2, 60);
        assert_eq!(m.strategy, "d-bad");
    }
}

//! Micro-benches for the substrate hot paths:
//!
//! * context-pool insertion and indexed queries;
//! * incremental (pinned) checking vs full re-evaluation — the ICSE'06
//!   optimisation the middleware relies on;
//! * the drop-bad use-time decision procedure;
//! * the constraint DSL parser.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ctxres_constraint::{
    parse_constraint, parse_constraints, Evaluator, IncrementalChecker, PredicateRegistry,
};
use ctxres_context::{Context, ContextId, ContextKind, ContextPool, LogicalTime, Point};
use ctxres_core::strategies::DropBad;
use ctxres_core::{Inconsistency, ResolutionStrategy};
use std::hint::black_box;

const SPEED: &str = "constraint speed:
    forall a: location, b: location .
      (same_subject(a, b) and seq_gap(a, b, 1)) implies velocity_le(a, b, 1.5)";

fn walk_pool(n: usize) -> ContextPool {
    let mut pool = ContextPool::new();
    for i in 0..n {
        pool.insert(
            Context::builder(ContextKind::new("location"), "peter")
                .attr("pos", Point::new(i as f64, 0.0))
                .attr("seq", i as i64)
                .stamp(LogicalTime::new(i as u64))
                .build(),
        );
    }
    pool
}

fn pool_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("pool");
    for n in [100usize, 1000] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("insert", n), &n, |b, &n| {
            b.iter(|| black_box(walk_pool(n)));
        });
        let pool = walk_pool(n);
        let kind = ContextKind::new("location");
        group.bench_with_input(BenchmarkId::new("of_kind_scan", n), &n, |b, _| {
            b.iter(|| black_box(pool.of_kind(&kind).count()));
        });
    }
    group.finish();
}

fn checking(c: &mut Criterion) {
    let registry = PredicateRegistry::with_builtins();
    let constraint = parse_constraint(SPEED).unwrap();
    let mut group = c.benchmark_group("checking");
    for n in [50usize, 200] {
        let pool = walk_pool(n);
        let now = LogicalTime::new(n as u64);
        group.bench_with_input(BenchmarkId::new("full", n), &n, |b, _| {
            let evaluator = Evaluator::new(&registry);
            b.iter(|| black_box(evaluator.check(&constraint, &pool, now).unwrap()));
        });
        group.bench_with_input(BenchmarkId::new("incremental_pinned", n), &n, |b, &n| {
            let evaluator = Evaluator::new(&registry);
            let newest = ContextId::from_raw(n as u64 - 1);
            b.iter(|| {
                // The incremental checker pins the new context into each
                // quantifier of the matching kind (two here).
                black_box(
                    evaluator
                        .check_pinned(&constraint, &pool, now, 0, newest)
                        .unwrap(),
                );
                black_box(
                    evaluator
                        .check_pinned(&constraint, &pool, now, 1, newest)
                        .unwrap(),
                );
            });
        });
    }
    group.finish();
}

fn incremental_stream(c: &mut Criterion) {
    let mut group = c.benchmark_group("incremental_stream");
    group.sample_size(10);
    group.bench_function("200_additions", |b| {
        b.iter(|| {
            let registry = PredicateRegistry::with_builtins();
            let mut checker =
                IncrementalChecker::new(parse_constraints(SPEED).unwrap().into_iter().collect());
            let mut pool = ContextPool::new();
            let mut found = 0usize;
            for i in 0..200usize {
                let id = pool.insert(
                    Context::builder(ContextKind::new("location"), "peter")
                        .attr("pos", Point::new(i as f64, 0.0))
                        .attr("seq", i as i64)
                        .stamp(LogicalTime::new(i as u64))
                        .build(),
                );
                found += checker
                    .on_added(&registry, &pool, LogicalTime::new(i as u64), id)
                    .unwrap()
                    .len();
            }
            black_box(found)
        });
    });
    group.finish();
}

fn drop_bad_decisions(c: &mut Criterion) {
    let mut group = c.benchmark_group("drop_bad");
    group.bench_function("star_resolution_50", |b| {
        b.iter(|| {
            let mut pool = ContextPool::new();
            let kind = ContextKind::new("x");
            let hub = pool.insert(Context::builder(kind.clone(), "hub").build());
            let leaves: Vec<ContextId> = (0..50)
                .map(|i| pool.insert(Context::builder(kind.clone(), &format!("l{i}")).build()))
                .collect();
            let mut strategy = DropBad::new();
            let now = LogicalTime::ZERO;
            for &leaf in &leaves {
                strategy.on_addition(
                    &mut pool,
                    now,
                    leaf,
                    &[Inconsistency::pair("c", hub, leaf, now)],
                );
            }
            for &leaf in &leaves {
                black_box(strategy.on_use(&mut pool, now, leaf));
            }
            black_box(strategy.on_use(&mut pool, now, hub))
        });
    });
    group.finish();
}

fn strategy_overhead(c: &mut Criterion) {
    // Identical scripted workload (a chain of pairwise conflicts plus
    // uses) through each strategy: the resolution-logic cost in
    // isolation, detection excluded.
    use ctxres_core::harness::{first_divergence, ScriptStep};
    use ctxres_core::strategies::{by_name, DropBad};

    let script: Vec<ScriptStep> = (0..200usize)
        .map(|i| ScriptStep::Add {
            conflicts: if i % 3 == 2 { vec![i - 1] } else { vec![] },
        })
        .chain((0..200).map(ScriptStep::Use))
        .collect();
    let mut group = c.benchmark_group("strategy_overhead");
    for name in ["opt-r", "d-bad", "d-lat", "d-all"] {
        group.bench_with_input(BenchmarkId::from_parameter(name), name, |b, name| {
            b.iter(|| {
                // Self-comparison drives one full replay per strategy
                // instance through the public harness.
                let mut s1 = by_name(name, 1).unwrap();
                let mut s2 = by_name(name, 1).unwrap();
                black_box(first_divergence(s1.as_mut(), s2.as_mut(), &script))
            });
        });
    }
    group.bench_function("d-bad-with-explanations", |b| {
        b.iter(|| {
            let mut s1 = DropBad::new().with_explanations();
            let mut s2 = DropBad::new().with_explanations();
            black_box(first_divergence(&mut s1, &mut s2, &script))
        });
    });
    group.finish();
}

fn parser(c: &mut Criterion) {
    let source = "constraint s:
        forall a: badge, b: badge .
          (same_subject(a, b) and seq_gap(a, b, 1))
            implies (room_adjacent(a, b) or eq(a.room, \"office\") or not lt(a.seq, -3.5))";
    c.bench_function("parse_constraint", |b| {
        b.iter(|| black_box(parse_constraint(source).unwrap()));
    });
}

criterion_group!(
    benches,
    pool_ops,
    checking,
    incremental_stream,
    drop_bad_decisions,
    strategy_overhead,
    parser
);
criterion_main!(benches);

//! §5.3 window-ablation bench: drop-bad at three window sizes (0
//! degenerates into drop-latest) on the Call Forwarding workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ctxres_apps::call_forwarding::CallForwarding;
use ctxres_core::strategies::DropBad;
use ctxres_experiments::runner::run_with;
use std::hint::black_box;

fn window_ablation(c: &mut Criterion) {
    let app = CallForwarding::new();
    let mut group = c.benchmark_group("ablation_window");
    group.sample_size(10);
    for window in [0u64, 3, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(window), &window, |b, &w| {
            b.iter(|| black_box(run_with(&app, Box::new(DropBad::new()), 0.3, 1, 300, w)));
        });
    }
    group.finish();
}

criterion_group!(benches, window_ablation);
criterion_main!(benches);

//! Ingestion throughput: global-mutex middleware vs the sharded engine.
//!
//! The workload is a many-subject location stream under the paper's
//! speed constraint. The mutex baseline funnels everything into one
//! engine (one pool, one checker), so every incremental check
//! quantifies over the entire location population; the sharded engine
//! partitions subjects across shards, shrinking each check's quantifier
//! domain by roughly the shard count — which is why it wins even on a
//! single core, before any parallelism.
//!
//! `CTXRES_BENCH_QUICK=1` shortens the measurement budget for CI smoke.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ctxres_constraint::parse_constraints;
use ctxres_context::{Context, ContextKind, LogicalTime, Point, Ticks};
use ctxres_core::strategies::DropBad;
use ctxres_middleware::{
    Middleware, MiddlewareConfig, ShardPlan, ShardedMiddleware, SharedMiddleware,
};

const SPEED: &str = "constraint speed:
    forall a: location, b: location .
      (same_subject(a, b) and seq_gap(a, b, 1)) implies velocity_le(a, b, 1.5)";

fn trace(subjects: usize, per_subject: usize) -> Vec<Context> {
    let mut out = Vec::with_capacity(subjects * per_subject);
    for seq in 0..per_subject {
        for s in 0..subjects {
            let x = if seq % 10 == 9 {
                400.0
            } else {
                seq as f64 * 0.5
            };
            out.push(
                Context::builder(ContextKind::new("location"), &format!("subj-{s:02}"))
                    .attr("pos", Point::new(x, 0.0))
                    .attr("seq", seq as i64)
                    .stamp(LogicalTime::new(seq as u64))
                    .build(),
            );
        }
    }
    out
}

fn engine() -> Middleware {
    Middleware::builder()
        .constraints(parse_constraints(SPEED).unwrap())
        .strategy(Box::new(DropBad::new()))
        .config(MiddlewareConfig {
            window: Ticks::new(0),
            track_ground_truth: false,
            retention: None,
        })
        .build()
}

fn bench_ingestion(c: &mut Criterion) {
    let contexts = trace(16, 40);
    let n = contexts.len() as u64;

    let mut group = c.benchmark_group("shard_throughput");
    group.throughput(Throughput::Elements(n));
    group.sample_size(10);

    group.bench_function("mutex_baseline", |b| {
        b.iter(|| {
            let shared = SharedMiddleware::new(engine());
            for ctx in &contexts {
                shared.lock().submit(ctx.clone());
            }
            shared.lock().drain();
            let found = shared.lock().stats().inconsistencies;
            found
        })
    });

    for shards in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("sharded", shards),
            &shards,
            |b, &shards| {
                b.iter(|| {
                    let constraints = parse_constraints(SPEED).unwrap();
                    let plan = ShardPlan::analyze(&constraints, shards);
                    let sharded = ShardedMiddleware::new(plan, |_| engine());
                    sharded.batch_add(&contexts);
                    sharded.drain();
                    sharded.stats().inconsistencies
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_ingestion);
criterion_main!(benches);

//! §5.2 case-study bench: LANDMARC fixes through the drop-bad pipeline
//! (simulation + estimation + checking + resolution), plus the raw
//! estimator.

use criterion::{criterion_group, criterion_main, Criterion};
use ctxres_apps::location_tracking::LocationTracking;
use ctxres_bench::bench_cell;
use ctxres_landmarc::{LandmarcConfig, LandmarcSim};
use std::hint::black_box;

fn case_study(c: &mut Criterion) {
    let mut group = c.benchmark_group("landmarc_case_study");
    group.sample_size(10);
    let app = LocationTracking::new();
    group.bench_function("drop_bad_pipeline_300_fixes", |b| {
        b.iter(|| black_box(bench_cell(&app, "d-bad", 0.2, 300)));
    });
    group.bench_function("knn_estimation_300_fixes", |b| {
        b.iter(|| {
            let sim = LandmarcSim::new(LandmarcConfig::default(), 7);
            black_box(sim.take(300).count())
        });
    });
    group.finish();
}

criterion_group!(benches, case_study);
criterion_main!(benches);

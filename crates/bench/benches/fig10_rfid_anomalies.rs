//! Figure 10 regeneration bench: the RFID data anomalies comparison,
//! one timed pipeline per strategy at the middle error rate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ctxres_apps::rfid_anomalies::RfidAnomalies;
use ctxres_bench::bench_cell;
use std::hint::black_box;

fn fig10(c: &mut Criterion) {
    let app = RfidAnomalies::new();
    let mut group = c.benchmark_group("fig10_rfid_anomalies");
    group.sample_size(10);
    for strategy in ["opt-r", "d-bad", "d-lat", "d-all"] {
        group.bench_with_input(BenchmarkId::from_parameter(strategy), strategy, |b, s| {
            b.iter(|| black_box(bench_cell(&app, s, 0.3, 300)));
        });
    }
    group.finish();
}

criterion_group!(benches, fig10);
criterion_main!(benches);

//! Figure 9 regeneration bench: the Call Forwarding comparison, one
//! timed pipeline per strategy at the middle error rate. Criterion's
//! report doubles as a smoke-check that every strategy runs the paper's
//! workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ctxres_apps::call_forwarding::CallForwarding;
use ctxres_bench::bench_cell;
use std::hint::black_box;

fn fig9(c: &mut Criterion) {
    let app = CallForwarding::new();
    let mut group = c.benchmark_group("fig9_call_forwarding");
    group.sample_size(10);
    for strategy in ["opt-r", "d-bad", "d-lat", "d-all"] {
        group.bench_with_input(BenchmarkId::from_parameter(strategy), strategy, |b, s| {
            b.iter(|| black_box(bench_cell(&app, s, 0.3, 300)));
        });
    }
    group.finish();
}

criterion_group!(benches, fig9);
criterion_main!(benches);

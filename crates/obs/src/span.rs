//! RAII timing spans.

use crate::metrics::MetricKind;
use crate::registry::ShardObs;
use std::time::Instant;

/// A span-style timing guard: created around a hot-path section, it
/// records the elapsed nanoseconds into the owning shard's histogram
/// for `kind` when dropped.
///
/// When the handle is disabled the guard holds no clock reading and its
/// drop is a no-op — the cost of an armed-vs-disarmed span is one
/// branch, which is what keeps `ObsConfig::disabled()` runs at tier-1
/// speed.
#[derive(Debug)]
#[must_use = "a span measures the scope it is bound to; dropping it immediately records nothing useful"]
pub struct ObsSpan<'a> {
    obs: &'a ShardObs,
    kind: MetricKind,
    start: Option<Instant>,
}

impl<'a> ObsSpan<'a> {
    pub(crate) fn new(obs: &'a ShardObs, kind: MetricKind) -> Self {
        let start = obs.is_enabled().then(Instant::now);
        ObsSpan { obs, kind, start }
    }

    /// Ends the span early (otherwise it ends when dropped).
    pub fn finish(self) {}
}

impl Drop for ObsSpan<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.obs.observe(self.kind, ns);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{ObsConfig, ObsRegistry};

    #[test]
    fn span_records_into_the_histogram() {
        let registry = ObsRegistry::shared(ObsConfig::enabled(), 1);
        let obs = registry.handle(0);
        {
            let _span = obs.span(MetricKind::CheckLatency);
            std::hint::black_box(1 + 1);
        }
        let snap = registry.snapshot();
        assert_eq!(snap.shards[0].histogram(MetricKind::CheckLatency).count, 1);
    }

    #[test]
    fn disabled_span_records_nothing() {
        let obs = ShardObs::disabled();
        {
            let _span = obs.span(MetricKind::ResolveLatency);
        }
        // Nothing to assert against — the guard simply must not panic
        // and must not have read the clock.
        assert!(!obs.is_enabled());
    }
}

//! Streaming quality-of-context ("health") telemetry.
//!
//! The metrics registry (PRs 2–3) watches *mechanics* — throughput,
//! latencies, ring pressure — but says nothing about the *quality*
//! trade the paper is actually about: how much of each kind's traffic
//! the active strategy is discarding, how often constraints fire, and
//! whether the surviving contexts are fresh enough to matter. This
//! module adds that layer:
//!
//! * **per-(shard, kind) cells** ([`KindCell`] behind a cloneable
//!   [`KindHandle`]): lock-free cumulative counters — ingested,
//!   delivered, discarded, expired-on-use, violations — plus gauge
//!   watermarks (live count, age of the oldest live context, its
//!   lifespan) the engine publishes from
//!   `ContextPool::kind_watermarks`. Handles from a disabled registry
//!   are `None` inside, so every hook is a branch-and-return, exactly
//!   like [`crate::ShardObs`];
//! * **pool gauges** ([`PoolHealth`]): the PR 6 arena's occupancy
//!   (`live_slots`/`free_slots`) and lifetime slot-recycle count, per
//!   shard;
//! * **windowed estimators** ([`HealthSample::between`]): consecutive
//!   [`HealthSnapshot`]s difference into per-kind windowed
//!   `discard_rate` (discards / ingested), `violation_rate`
//!   (violations / ingested) and the paper's `ctxUseRate`
//!   (deliveries / (deliveries + discards)) — each in a windowed-exact
//!   variant and, for the use rate, an EWMA smoothing
//!   ([`DEFAULT_EWMA_ALPHA`]) seeded with the first non-empty window
//!   so a steady workload makes the two variants agree exactly
//!   (asserted by a proptest below). Staleness is the oldest live
//!   context's age over its lifespan: ≥ 1.0 means the freshest data a
//!   constraint can see has already expired.
//!
//! Everything rides the existing sampler: `Sampler::sample` attaches a
//! [`HealthSample`] to its [`crate::Sample`] whenever any engine has
//! published health state, and the `/metrics`, `/snapshot`, `obs_top`
//! and `trace_dump --json` surfaces render it. Runs without health
//! publishing (or with observability disabled) carry `None` and are
//! byte-identical to pre-health output.

use crate::slo::HealthAlert;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Smoothing factor of the EWMA `ctxUseRate` variant: each non-empty
/// window contributes 30%, the history 70%. High enough to follow a
/// regression within a few windows, low enough to ignore one noisy one.
pub const DEFAULT_EWMA_ALPHA: f64 = 0.3;

/// Sentinel for "no value" in the optional gauge atomics.
const NONE: u64 = u64::MAX;

/// One (shard, kind) quality cell: lock-free cumulative counters plus
/// gauge watermarks. Lives in the registry's shard slot; engines reach
/// it through a cached [`KindHandle`].
#[derive(Debug)]
pub struct KindCell {
    ingested: AtomicU64,
    delivered: AtomicU64,
    discarded: AtomicU64,
    expired: AtomicU64,
    violations: AtomicU64,
    live: AtomicU64,
    oldest_age: AtomicU64,
    lifespan: AtomicU64,
}

impl KindCell {
    fn new() -> Self {
        KindCell {
            ingested: AtomicU64::new(0),
            delivered: AtomicU64::new(0),
            discarded: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            violations: AtomicU64::new(0),
            live: AtomicU64::new(0),
            oldest_age: AtomicU64::new(NONE),
            lifespan: AtomicU64::new(NONE),
        }
    }

    fn snapshot(&self, kind: &str) -> KindHealth {
        let opt = |v: u64| (v != NONE).then_some(v);
        KindHealth {
            kind: kind.to_owned(),
            ingested: self.ingested.load(Ordering::Relaxed),
            delivered: self.delivered.load(Ordering::Relaxed),
            discarded: self.discarded.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            violations: self.violations.load(Ordering::Relaxed),
            live: self.live.load(Ordering::Relaxed),
            oldest_age_ticks: opt(self.oldest_age.load(Ordering::Relaxed)),
            lifespan_ticks: opt(self.lifespan.load(Ordering::Relaxed)),
        }
    }
}

/// A cheap, cloneable handle to one (shard, kind) cell. Handles from a
/// disabled registry hold `None` and make every bump a
/// branch-and-return; engines cache one handle per kind so the hot
/// path never touches the interning lock.
#[derive(Debug, Clone, Default)]
pub struct KindHandle {
    cell: Option<Arc<KindCell>>,
}

impl KindHandle {
    /// A handle that records nothing (the default everywhere).
    pub fn disabled() -> Self {
        KindHandle { cell: None }
    }

    pub(crate) fn new(cell: Arc<KindCell>) -> Self {
        KindHandle { cell: Some(cell) }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.cell.is_some()
    }

    /// Bumps the kind's ingested-context counter.
    pub fn ingested(&self, n: u64) {
        if let Some(c) = &self.cell {
            c.ingested.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Bumps the kind's delivered-to-application counter.
    pub fn delivered(&self, n: u64) {
        if let Some(c) = &self.cell {
            c.delivered.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Bumps the kind's discarded-context counter.
    pub fn discarded(&self, n: u64) {
        if let Some(c) = &self.cell {
            c.discarded.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Bumps the kind's expired-on-use counter.
    pub fn expired(&self, n: u64) {
        if let Some(c) = &self.cell {
            c.expired.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Bumps the kind's constraint-violation counter.
    pub fn violations(&self, n: u64) {
        if let Some(c) = &self.cell {
            c.violations.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Publishes the kind's occupancy watermark: live context count,
    /// age of the oldest live context in ticks, and that context's
    /// lifespan (`None` when it never expires).
    pub fn set_watermark(&self, live: u64, oldest_age: Option<u64>, lifespan: Option<u64>) {
        if let Some(c) = &self.cell {
            c.live.store(live, Ordering::Relaxed);
            c.oldest_age
                .store(oldest_age.unwrap_or(NONE), Ordering::Relaxed);
            c.lifespan
                .store(lifespan.unwrap_or(NONE), Ordering::Relaxed);
        }
    }
}

/// Per-shard arena gauges, published by the engine after each batch.
#[derive(Debug, Default)]
pub(crate) struct PoolGauges {
    published: AtomicU64,
    live_slots: AtomicU64,
    free_slots: AtomicU64,
    recycles: AtomicU64,
    now_tick: AtomicU64,
}

impl PoolGauges {
    pub(crate) fn publish(&self, live: u64, free: u64, recycles: u64, now_tick: u64) {
        self.live_slots.store(live, Ordering::Relaxed);
        self.free_slots.store(free, Ordering::Relaxed);
        self.recycles.store(recycles, Ordering::Relaxed);
        self.now_tick.store(now_tick, Ordering::Relaxed);
        self.published.fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> Option<PoolHealth> {
        if self.published.load(Ordering::Relaxed) == 0 {
            return None;
        }
        Some(PoolHealth {
            live_slots: self.live_slots.load(Ordering::Relaxed),
            free_slots: self.free_slots.load(Ordering::Relaxed),
            recycles: self.recycles.load(Ordering::Relaxed),
            now_tick: self.now_tick.load(Ordering::Relaxed),
        })
    }
}

/// One shard's health state inside the registry: arena gauges plus the
/// interned kind cells. The interning lock is touched once per new
/// kind per shard; every recording after that is pure atomics through
/// the cached [`KindHandle`].
#[derive(Debug, Default)]
pub(crate) struct ShardHealthSlot {
    pool: PoolGauges,
    kinds: Mutex<Vec<(Arc<str>, Arc<KindCell>)>>,
}

impl ShardHealthSlot {
    pub(crate) fn kind_handle(&self, kind: &str) -> KindHandle {
        let mut kinds = self.kinds.lock();
        if let Some((_, cell)) = kinds.iter().find(|(name, _)| name.as_ref() == kind) {
            return KindHandle::new(Arc::clone(cell));
        }
        let cell = Arc::new(KindCell::new());
        kinds.push((Arc::from(kind), Arc::clone(&cell)));
        KindHandle::new(cell)
    }

    pub(crate) fn publish_pool(&self, live: u64, free: u64, recycles: u64, now_tick: u64) {
        self.pool.publish(live, free, recycles, now_tick);
    }

    pub(crate) fn snapshot(&self, shard: usize) -> ShardHealth {
        let mut kinds: Vec<KindHealth> = self
            .kinds
            .lock()
            .iter()
            .map(|(name, cell)| cell.snapshot(name))
            .collect();
        kinds.sort_by(|a, b| a.kind.cmp(&b.kind));
        ShardHealth {
            shard,
            pool: self.pool.snapshot(),
            kinds,
        }
    }
}

/// A point-in-time copy of one shard's arena gauges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PoolHealth {
    /// Occupied arena slots (stored contexts, any state).
    pub live_slots: u64,
    /// Slots on the arena's free list.
    pub free_slots: u64,
    /// Lifetime slot recycles (generation bumps).
    pub recycles: u64,
    /// The engine's logical clock when the gauges were published.
    pub now_tick: u64,
}

/// A point-in-time copy of one (shard, kind) cell.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KindHealth {
    /// The kind's name.
    pub kind: String,
    /// Contexts of the kind ingested (lifetime).
    pub ingested: u64,
    /// Contexts of the kind delivered to applications (lifetime).
    pub delivered: u64,
    /// Contexts of the kind discarded (lifetime).
    pub discarded: u64,
    /// Use requests that found the kind's context expired (lifetime).
    pub expired: u64,
    /// Constraint violations attributed to the kind (lifetime).
    pub violations: u64,
    /// Live (not discarded) contexts of the kind in the pool (gauge).
    pub live: u64,
    /// Age of the oldest live context, in ticks (gauge).
    pub oldest_age_ticks: Option<u64>,
    /// Lifespan of that oldest context; `None` when it never expires.
    pub lifespan_ticks: Option<u64>,
}

/// One shard's cumulative health state.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardHealth {
    /// The shard index.
    pub shard: usize,
    /// Arena gauges; `None` until the engine publishes them.
    pub pool: Option<PoolHealth>,
    /// Per-kind cells, sorted by kind name.
    pub kinds: Vec<KindHealth>,
}

/// A whole registry's cumulative health state: one record per shard.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HealthSnapshot {
    /// Per-shard health in shard order.
    pub shards: Vec<ShardHealth>,
}

impl HealthSnapshot {
    /// Whether nothing has published any health state yet — the
    /// condition under which `Sampler` leaves `Sample::health` as
    /// `None` and every export surface stays byte-identical to its
    /// pre-health output.
    pub fn is_empty(&self) -> bool {
        self.shards
            .iter()
            .all(|s| s.pool.is_none() && s.kinds.is_empty())
    }

    /// The most recent logical tick any shard published, or 0.
    pub fn max_now_tick(&self) -> u64 {
        self.shards
            .iter()
            .filter_map(|s| s.pool.map(|p| p.now_tick))
            .max()
            .unwrap_or(0)
    }
}

/// One windowed per-kind quality row — a line of the heatmap.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KindQuality {
    /// The shard the row describes, or `None` for a cross-shard total.
    pub shard: Option<usize>,
    /// The kind's name.
    pub kind: String,
    /// Contexts ingested during this window.
    pub ingested: u64,
    /// Contexts delivered during this window.
    pub delivered: u64,
    /// Contexts discarded during this window.
    pub discarded: u64,
    /// Expired-on-use events during this window.
    pub expired: u64,
    /// Constraint violations during this window.
    pub violations: u64,
    /// Windowed discard rate: discarded / ingested. `None` when the
    /// window ingested nothing.
    pub discard_rate: Option<f64>,
    /// Windowed violation rate: violations / ingested.
    pub violation_rate: Option<f64>,
    /// Windowed-exact `ctxUseRate`: delivered / (delivered +
    /// discarded). `None` when the window settled nothing.
    pub use_rate: Option<f64>,
    /// EWMA-smoothed `ctxUseRate` (cross-shard totals only): seeded
    /// with the first non-empty window, then
    /// `α·window + (1−α)·previous`. Empty windows leave it unchanged.
    pub use_rate_ewma: Option<f64>,
    /// Live contexts of the kind (gauge; summed across shards in a
    /// total row).
    pub live: u64,
    /// Age of the oldest live context in ticks (gauge; max across
    /// shards in a total row).
    pub oldest_age_ticks: Option<u64>,
    /// Lifespan of that oldest context (`None` = never expires).
    pub lifespan_ticks: Option<u64>,
    /// Staleness watermark: `oldest_age / lifespan`. ≥ 1.0 means the
    /// oldest live context has outlived its lifespan; `None` when the
    /// kind has no live expiring contexts.
    pub staleness: Option<f64>,
}

/// Aggregate windowed arena view.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PoolQuality {
    /// Occupied slots, summed across shards.
    pub live_slots: u64,
    /// Free-list slots, summed across shards.
    pub free_slots: u64,
    /// Lifetime recycles, summed across shards.
    pub recycles: u64,
    /// Slots recycled during this window.
    pub recycles_delta: u64,
    /// The most recent logical tick any shard published.
    pub now_tick: u64,
    /// `live / (live + free)`: 1.0 means the arena is at its
    /// high-water mark, lower means churn is reusing slots. `None`
    /// before any slot exists.
    pub occupancy: Option<f64>,
}

/// The windowed health view attached to a [`crate::Sample`]: the
/// cumulative snapshot it ends at, per-kind quality rows (cross-shard
/// totals and per-shard), aggregate arena gauges, and the SLO engine's
/// output for the window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HealthSample {
    /// The cumulative health snapshot this window ends at.
    pub snapshot: HealthSnapshot,
    /// Cross-shard per-kind quality rows (`shard: None`), sorted by
    /// kind — the heatmap.
    pub kinds: Vec<KindQuality>,
    /// Per-(shard, kind) quality rows, in (shard, kind) order.
    pub shard_kinds: Vec<KindQuality>,
    /// Aggregate arena gauges; `None` until an engine publishes them.
    pub pool: Option<PoolQuality>,
    /// SLO transitions (fired / cleared) during this window.
    pub alerts: Vec<HealthAlert>,
    /// Names of the SLO rules currently firing.
    pub active_alerts: Vec<String>,
}

fn ratio(num: u64, den: u64) -> Option<f64> {
    (den > 0).then(|| num as f64 / den as f64)
}

fn quality_row(shard: Option<usize>, prev: Option<&KindHealth>, cur: &KindHealth) -> KindQuality {
    let d = |get: fn(&KindHealth) -> u64| get(cur).saturating_sub(prev.map(get).unwrap_or(0));
    let (ingested, delivered, discarded, expired, violations) = (
        d(|k| k.ingested),
        d(|k| k.delivered),
        d(|k| k.discarded),
        d(|k| k.expired),
        d(|k| k.violations),
    );
    KindQuality {
        shard,
        kind: cur.kind.clone(),
        ingested,
        delivered,
        discarded,
        expired,
        violations,
        discard_rate: ratio(discarded, ingested),
        violation_rate: ratio(violations, ingested),
        use_rate: ratio(delivered, delivered + discarded),
        use_rate_ewma: None,
        live: cur.live,
        oldest_age_ticks: cur.oldest_age_ticks,
        lifespan_ticks: cur.lifespan_ticks,
        staleness: match (cur.oldest_age_ticks, cur.lifespan_ticks) {
            (Some(age), Some(life)) if life > 0 => Some(age as f64 / life as f64),
            _ => None,
        },
    }
}

impl HealthSample {
    /// Differences two consecutive health snapshots into the windowed
    /// quality view, updating the caller's per-kind EWMA state. With
    /// `prev = None` (the baseline sample) the window is the full
    /// cumulative history, mirroring the counter sampler's baseline.
    /// SLO fields start empty; the sampler fills them when an engine
    /// is attached.
    pub fn between(
        prev: Option<&HealthSnapshot>,
        cur: &HealthSnapshot,
        ewma: &mut std::collections::HashMap<String, f64>,
        alpha: f64,
    ) -> HealthSample {
        let prev_kind = |shard: usize, kind: &str| -> Option<&KindHealth> {
            prev?
                .shards
                .iter()
                .find(|s| s.shard == shard)?
                .kinds
                .iter()
                .find(|k| k.kind == kind)
        };

        let mut shard_kinds = Vec::new();
        for sh in &cur.shards {
            for k in &sh.kinds {
                shard_kinds.push(quality_row(Some(sh.shard), prev_kind(sh.shard, &k.kind), k));
            }
        }

        // Cross-shard totals: sum window deltas and live gauges, take
        // the *worst* (oldest) staleness watermark across shards.
        let mut by_kind: BTreeMap<String, Vec<&KindQuality>> = BTreeMap::new();
        for row in &shard_kinds {
            by_kind.entry(row.kind.clone()).or_default().push(row);
        }
        let kinds: Vec<KindQuality> = by_kind
            .into_iter()
            .map(|(kind, rows)| {
                let sum = |get: fn(&KindQuality) -> u64| rows.iter().map(|r| get(r)).sum::<u64>();
                let (ingested, delivered, discarded, expired, violations) = (
                    sum(|r| r.ingested),
                    sum(|r| r.delivered),
                    sum(|r| r.discarded),
                    sum(|r| r.expired),
                    sum(|r| r.violations),
                );
                let oldest = rows
                    .iter()
                    .filter_map(|r| r.oldest_age_ticks.map(|age| (age, r.lifespan_ticks)))
                    .max_by_key(|(age, _)| *age);
                let use_rate = ratio(delivered, delivered + discarded);
                let use_rate_ewma = match (use_rate, ewma.get(&kind).copied()) {
                    (Some(x), Some(prev_e)) => {
                        let e = alpha * x + (1.0 - alpha) * prev_e;
                        ewma.insert(kind.clone(), e);
                        Some(e)
                    }
                    (Some(x), None) => {
                        ewma.insert(kind.clone(), x);
                        Some(x)
                    }
                    (None, kept) => kept,
                };
                KindQuality {
                    shard: None,
                    kind,
                    ingested,
                    delivered,
                    discarded,
                    expired,
                    violations,
                    discard_rate: ratio(discarded, ingested),
                    violation_rate: ratio(violations, ingested),
                    use_rate,
                    use_rate_ewma,
                    live: sum(|r| r.live),
                    oldest_age_ticks: oldest.map(|(age, _)| age),
                    lifespan_ticks: oldest.and_then(|(_, life)| life),
                    staleness: rows
                        .iter()
                        .filter_map(|r| r.staleness)
                        .max_by(|a, b| a.total_cmp(b)),
                }
            })
            .collect();

        let pools: Vec<PoolHealth> = cur.shards.iter().filter_map(|s| s.pool).collect();
        let pool = (!pools.is_empty()).then(|| {
            let live: u64 = pools.iter().map(|p| p.live_slots).sum();
            let free: u64 = pools.iter().map(|p| p.free_slots).sum();
            let recycles: u64 = pools.iter().map(|p| p.recycles).sum();
            let prev_recycles: u64 = prev
                .map(|p| {
                    p.shards
                        .iter()
                        .filter_map(|s| s.pool.map(|g| g.recycles))
                        .sum()
                })
                .unwrap_or(0);
            PoolQuality {
                live_slots: live,
                free_slots: free,
                recycles,
                recycles_delta: recycles.saturating_sub(prev_recycles),
                now_tick: cur.max_now_tick(),
                occupancy: ratio(live, live + free),
            }
        });

        HealthSample {
            snapshot: cur.clone(),
            kinds,
            shard_kinds,
            pool,
            alerts: Vec::new(),
            active_alerts: Vec::new(),
        }
    }

    /// The cross-shard total row for `kind`, when the window has one.
    pub fn kind(&self, kind: &str) -> Option<&KindQuality> {
        self.kinds.iter().find(|k| k.kind == kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{ObsConfig, ObsRegistry};
    use std::collections::HashMap;

    #[test]
    fn disabled_handles_record_nothing() {
        let registry = ObsRegistry::shared(ObsConfig::disabled(), 2);
        let h = registry.handle(0).kind_handle("location");
        assert!(!h.is_enabled());
        h.ingested(5);
        h.set_watermark(3, Some(2), Some(10));
        registry.handle(0).publish_pool(1, 2, 3, 4);
        assert!(registry.health_snapshot().is_empty());
    }

    #[test]
    fn kind_handles_intern_per_shard_and_accumulate() {
        let registry = ObsRegistry::shared(ObsConfig::metrics_only(), 2);
        let a = registry.handle(0).kind_handle("location");
        let a2 = registry.handle(0).kind_handle("location");
        let b = registry.handle(1).kind_handle("location");
        a.ingested(3);
        a2.ingested(2); // same cell as `a`
        a.delivered(4);
        a.discarded(1);
        a.violations(2);
        a.expired(1);
        b.ingested(7);
        a.set_watermark(5, Some(9), Some(12));

        let snap = registry.health_snapshot();
        assert!(!snap.is_empty());
        let s0 = &snap.shards[0].kinds[0];
        assert_eq!(
            (s0.ingested, s0.delivered, s0.discarded, s0.violations),
            (5, 4, 1, 2)
        );
        assert_eq!(s0.expired, 1);
        assert_eq!(s0.live, 5);
        assert_eq!(s0.oldest_age_ticks, Some(9));
        assert_eq!(s0.lifespan_ticks, Some(12));
        assert_eq!(snap.shards[1].kinds[0].ingested, 7);
        assert!(snap.shards[0].pool.is_none(), "pool not yet published");
    }

    #[test]
    fn pool_gauges_publish_per_shard() {
        let registry = ObsRegistry::shared(ObsConfig::metrics_only(), 2);
        registry.handle(0).publish_pool(10, 4, 7, 99);
        let snap = registry.health_snapshot();
        let p = snap.shards[0].pool.expect("published");
        assert_eq!((p.live_slots, p.free_slots, p.recycles), (10, 4, 7));
        assert_eq!(p.now_tick, 99);
        assert_eq!(snap.max_now_tick(), 99);
        assert!(snap.shards[1].pool.is_none());
    }

    fn kh(kind: &str, ingested: u64, delivered: u64, discarded: u64) -> KindHealth {
        KindHealth {
            kind: kind.into(),
            ingested,
            delivered,
            discarded,
            expired: 0,
            violations: 0,
            live: 0,
            oldest_age_ticks: None,
            lifespan_ticks: None,
        }
    }

    fn snap_one(kinds: Vec<KindHealth>) -> HealthSnapshot {
        HealthSnapshot {
            shards: vec![ShardHealth {
                shard: 0,
                pool: None,
                kinds,
            }],
        }
    }

    #[test]
    fn windowed_rates_difference_consecutive_snapshots() {
        let mut ewma = HashMap::new();
        let a = snap_one(vec![kh("location", 40, 30, 10)]);
        let b = snap_one(vec![kh("location", 100, 60, 30)]);
        let base = HealthSample::between(None, &a, &mut ewma, DEFAULT_EWMA_ALPHA);
        let row = base.kind("location").unwrap();
        assert_eq!(row.discard_rate, Some(0.25));
        assert_eq!(row.use_rate, Some(0.75));
        assert_eq!(row.use_rate_ewma, Some(0.75), "EWMA seeds at first window");

        let w = HealthSample::between(Some(&a), &b, &mut ewma, DEFAULT_EWMA_ALPHA);
        let row = w.kind("location").unwrap();
        assert_eq!((row.ingested, row.delivered, row.discarded), (60, 30, 20));
        assert_eq!(row.use_rate, Some(0.6));
        let e = row.use_rate_ewma.unwrap();
        assert!((e - (0.3 * 0.6 + 0.7 * 0.75)).abs() < 1e-12, "{e}");
    }

    #[test]
    fn empty_windows_keep_the_ewma_and_yield_no_rates() {
        let mut ewma = HashMap::new();
        let a = snap_one(vec![kh("location", 40, 30, 10)]);
        HealthSample::between(None, &a, &mut ewma, DEFAULT_EWMA_ALPHA);
        let w = HealthSample::between(Some(&a), &a, &mut ewma, DEFAULT_EWMA_ALPHA);
        let row = w.kind("location").unwrap();
        assert_eq!(row.use_rate, None);
        assert_eq!(row.discard_rate, None);
        assert_eq!(
            row.use_rate_ewma,
            Some(0.75),
            "held through the idle window"
        );
    }

    #[test]
    fn totals_sum_shards_and_take_the_worst_staleness() {
        let mut ewma = HashMap::new();
        let cur = HealthSnapshot {
            shards: vec![
                ShardHealth {
                    shard: 0,
                    pool: Some(PoolHealth {
                        live_slots: 10,
                        free_slots: 10,
                        recycles: 5,
                        now_tick: 50,
                    }),
                    kinds: vec![KindHealth {
                        live: 3,
                        oldest_age_ticks: Some(8),
                        lifespan_ticks: Some(16),
                        ..kh("location", 10, 6, 4)
                    }],
                },
                ShardHealth {
                    shard: 1,
                    pool: Some(PoolHealth {
                        live_slots: 20,
                        free_slots: 0,
                        recycles: 2,
                        now_tick: 60,
                    }),
                    kinds: vec![KindHealth {
                        live: 4,
                        oldest_age_ticks: Some(12),
                        lifespan_ticks: Some(16),
                        ..kh("location", 10, 8, 2)
                    }],
                },
            ],
        };
        let w = HealthSample::between(None, &cur, &mut ewma, DEFAULT_EWMA_ALPHA);
        let row = w.kind("location").unwrap();
        assert_eq!(row.live, 7);
        assert_eq!(row.ingested, 20);
        assert_eq!(row.use_rate, Some(0.7));
        assert_eq!(row.oldest_age_ticks, Some(12), "worst across shards");
        assert_eq!(row.staleness, Some(0.75));
        assert_eq!(w.shard_kinds.len(), 2);
        let p = w.pool.unwrap();
        assert_eq!((p.live_slots, p.free_slots, p.recycles), (30, 10, 7));
        assert_eq!(p.now_tick, 60);
        assert_eq!(p.occupancy, Some(0.75));
    }

    #[test]
    fn health_sample_round_trips_through_serde() {
        let registry = ObsRegistry::shared(ObsConfig::metrics_only(), 1);
        let h = registry.handle(0).kind_handle("rfid");
        h.ingested(4);
        h.discarded(1);
        h.delivered(3);
        registry.handle(0).publish_pool(4, 0, 0, 9);
        let mut ewma = HashMap::new();
        let s = HealthSample::between(
            None,
            &registry.health_snapshot(),
            &mut ewma,
            DEFAULT_EWMA_ALPHA,
        );
        let json = serde_json::to_string(&s).unwrap();
        let back: HealthSample = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}

#[cfg(test)]
mod estimator_proptests {
    //! The satellite properties:
    //!
    //! * per-kind window deltas telescope — summing each window's
    //!   delta reproduces the raw cumulative counters, mirroring the
    //!   PR 3 sampler proptest;
    //! * EWMA agrees with windowed-exact in steady state — when every
    //!   window carries the same exact `ctxUseRate`, the EWMA equals
    //!   it from the very first window (seed = first value, and
    //!   `α·x + (1−α)·x = x` inductively).

    use super::*;
    use proptest::prelude::*;
    use std::collections::HashMap;

    proptest! {
        #[test]
        fn kind_deltas_telescope_to_the_raw_counters(
            steps in proptest::collection::vec((0u64..50, 0u64..50, 0u64..50), 1..20),
        ) {
            let mut ewma = HashMap::new();
            let mut cum = KindHealth {
                kind: "location".into(),
                ingested: 0, delivered: 0, discarded: 0,
                expired: 0, violations: 0, live: 0,
                oldest_age_ticks: None, lifespan_ticks: None,
            };
            let wrap = |k: &KindHealth| HealthSnapshot {
                shards: vec![ShardHealth { shard: 0, pool: None, kinds: vec![k.clone()] }],
            };
            let mut prev = wrap(&cum);
            // The baseline window covers the (zero) history.
            let base = HealthSample::between(None, &prev, &mut ewma, DEFAULT_EWMA_ALPHA);
            let mut summed = (base.kinds[0].ingested, base.kinds[0].delivered, base.kinds[0].discarded);
            for (i, d, x) in steps {
                cum.ingested += i;
                cum.delivered += d;
                cum.discarded += x;
                let cur = wrap(&cum);
                let w = HealthSample::between(Some(&prev), &cur, &mut ewma, DEFAULT_EWMA_ALPHA);
                let row = &w.kinds[0];
                summed.0 += row.ingested;
                summed.1 += row.delivered;
                summed.2 += row.discarded;
                prev = cur;
            }
            prop_assert_eq!(summed, (cum.ingested, cum.delivered, cum.discarded));
        }

        #[test]
        fn ewma_equals_exact_use_rate_in_steady_state(
            delivered in 1u64..1000,
            discarded in 0u64..1000,
            windows in 1usize..20,
            alpha in 0.01f64..1.0,
        ) {
            let mut ewma = HashMap::new();
            let exact = delivered as f64 / (delivered + discarded) as f64;
            let mut cum = (0u64, 0u64);
            let mut prev: Option<HealthSnapshot> = None;
            for _ in 0..windows {
                cum.0 += delivered;
                cum.1 += discarded;
                let cur = HealthSnapshot {
                    shards: vec![ShardHealth {
                        shard: 0,
                        pool: None,
                        kinds: vec![KindHealth {
                            kind: "location".into(),
                            ingested: cum.0 + cum.1,
                            delivered: cum.0,
                            discarded: cum.1,
                            expired: 0, violations: 0, live: 0,
                            oldest_age_ticks: None, lifespan_ticks: None,
                        }],
                    }],
                };
                let w = HealthSample::between(prev.as_ref(), &cur, &mut ewma, alpha);
                let row = &w.kinds[0];
                prop_assert_eq!(row.use_rate, Some(exact));
                let e = row.use_rate_ewma.unwrap();
                prop_assert!((e - exact).abs() < 1e-9,
                    "steady-state EWMA {} must equal exact {}", e, exact);
                prev = Some(cur);
            }
        }
    }
}

//! A hand-rolled HTTP endpoint serving live telemetry: `/metrics`
//! (Prometheus text exposition) and `/snapshot` (the full [`Sample`] as
//! JSON).
//!
//! Built directly on [`std::net::TcpListener`] — the workspace has no
//! HTTP crate and the build runs offline, and the protocol surface a
//! scraper needs is one request line and a fixed response header block.
//! The server owns a [`Sampler`] behind a mutex: every scrape advances
//! the sampling window, so the rates in each response cover the interval
//! since the previous scrape (scrape at a fixed cadence for a steady
//! denominator, as Prometheus does).
//!
//! Engines opt in by running with an [`ObsRegistry`] and either calling
//! [`MetricsServer::spawn`] with an address, or exporting
//! `CTXRES_METRICS_ADDR=127.0.0.1:9464` and calling
//! [`MetricsServer::from_env`] — which is what `figure9`, `figure10`,
//! `shard_bench` and `obs_top` do.

use crate::export::{render_prometheus, PROMETHEUS_CONTENT_TYPE};
use crate::registry::ObsRegistry;
use crate::slo::{SloEngine, SLO_RULES_ENV};
use crate::snapshot::Sampler;
use parking_lot::Mutex;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The environment variable naming the export bind address
/// (`host:port`); unset or empty means "don't serve".
pub const METRICS_ADDR_ENV: &str = "CTXRES_METRICS_ADDR";

/// A background thread serving `/metrics` and `/snapshot` for one
/// registry until dropped (or [`MetricsServer::shutdown`]).
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `127.0.0.1:9464`, or port `0` for an
    /// ephemeral port) and serves the registry from a background
    /// thread.
    ///
    /// # Errors
    ///
    /// Returns the bind error (address in use, permission, parse).
    pub fn spawn(registry: Arc<ObsRegistry>, addr: &str) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let mut sampler =
            Sampler::new(registry).with_build_info(crate::snapshot::BuildInfo::collect());
        if let Some(engine) = slo_engine_from_env() {
            sampler = sampler.with_slo(engine);
        }
        let sampler = Mutex::new(sampler);
        let handle = std::thread::Builder::new()
            .name("ctxres-metrics".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if stop_flag.load(Ordering::Relaxed) {
                        break;
                    }
                    let Ok(mut stream) = stream else { continue };
                    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
                    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
                    let _ = serve_one(&mut stream, &sampler);
                }
            })?;
        Ok(MetricsServer {
            addr: local,
            stop,
            handle: Some(handle),
        })
    }

    /// [`MetricsServer::spawn`] at the address named by
    /// `CTXRES_METRICS_ADDR`, or `None` when the variable is unset or
    /// empty. A bind failure is reported on stderr and treated as
    /// opting out — a monitoring endpoint must never take down the run
    /// it watches.
    pub fn from_env(registry: &Arc<ObsRegistry>) -> Option<MetricsServer> {
        let addr = std::env::var(METRICS_ADDR_ENV).ok()?;
        let addr = addr.trim();
        if addr.is_empty() {
            return None;
        }
        match MetricsServer::spawn(Arc::clone(registry), addr) {
            Ok(server) => {
                eprintln!(
                    "telemetry: serving /metrics and /snapshot on http://{}",
                    server.local_addr()
                );
                Some(server)
            }
            Err(e) => {
                eprintln!("telemetry: could not bind {addr}: {e}; export disabled");
                None
            }
        }
    }

    /// The bound address (useful with port `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the server thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.stop.store(true, Ordering::Relaxed);
            // Unblock the accept loop with one last connection. A bind
            // to an unspecified address (0.0.0.0 / ::) is not
            // connectable everywhere, so aim the wake-up at loopback on
            // the bound port — otherwise the join below can hang in
            // `accept` until a real scrape happens to arrive.
            let _ = TcpStream::connect_timeout(&self.wake_addr(), Duration::from_secs(1));
            let _ = handle.join();
        }
    }

    /// The address the shutdown wake-up connects to: the bound address,
    /// with unspecified IPs replaced by the matching loopback.
    fn wake_addr(&self) -> SocketAddr {
        let mut addr = self.addr;
        if addr.ip().is_unspecified() {
            addr.set_ip(match addr {
                SocketAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                SocketAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
            });
        }
        addr
    }
}

/// Parses `CTXRES_SLO_RULES` into an [`SloEngine`], or `None` when the
/// variable is unset/empty. A malformed spec is reported on stderr and
/// treated as opting out — same policy as a bind failure: monitoring
/// must never take down the run it watches.
fn slo_engine_from_env() -> Option<SloEngine> {
    let spec = std::env::var(SLO_RULES_ENV).ok()?;
    if spec.trim().is_empty() {
        return None;
    }
    match SloEngine::from_spec(&spec) {
        Ok(engine) => {
            eprintln!("telemetry: {} SLO rule(s) active", engine.rules().len());
            Some(engine)
        }
        Err(e) => {
            eprintln!("telemetry: bad {SLO_RULES_ENV}: {e}; SLO evaluation disabled");
            None
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Handles one connection: read the request line, route, respond,
/// close (`Connection: close`; scrapers reconnect per scrape).
fn serve_one(stream: &mut TcpStream, sampler: &Mutex<Sampler>) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    let path = request_line.split_whitespace().nth(1).unwrap_or("/");
    // Drain the header block so well-behaved clients see a clean close.
    let mut header = String::new();
    while reader.read_line(&mut header)? > 2 {
        header.clear();
    }

    let (status, content_type, body) = match path {
        "/metrics" => {
            let sample = sampler.lock().sample();
            (
                "200 OK",
                PROMETHEUS_CONTENT_TYPE,
                render_prometheus(&sample),
            )
        }
        "/snapshot" => {
            let sample = sampler.lock().sample();
            match serde_json::to_string(&sample) {
                Ok(json) => ("200 OK", "application/json", json),
                Err(e) => (
                    "500 Internal Server Error",
                    "text/plain",
                    format!("serialize snapshot: {e}\n"),
                ),
            }
        }
        "/" => (
            "200 OK",
            "text/plain",
            "ctxres telemetry endpoints:\n  /metrics   Prometheus text exposition\n  /snapshot  full sampler state as JSON\n".to_owned(),
        ),
        _ => (
            "404 Not Found",
            "text/plain",
            format!("no such endpoint: {path}\n"),
        ),
    };
    write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::ObsConfig;
    use std::io::Read;

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let (head, body) = response.split_once("\r\n\r\n").expect("header block");
        (head.to_owned(), body.to_owned())
    }

    #[test]
    fn serves_metrics_snapshot_and_404() {
        let registry = ObsRegistry::shared(ObsConfig::metrics_only(), 2);
        registry
            .handle(0)
            .count(crate::metrics::CounterKind::Ingested, 9);
        let server = MetricsServer::spawn(Arc::clone(&registry), "127.0.0.1:0").unwrap();
        let addr = server.local_addr();

        let (head, body) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(head.contains("text/plain; version=0.0.4"), "{head}");
        assert!(
            body.contains("ctxres_ingested_total{shard=\"0\"} 9"),
            "{body}"
        );

        let (head, body) = get(addr, "/snapshot");
        assert!(head.contains("application/json"), "{head}");
        let sample: crate::snapshot::Sample = serde_json::from_str(&body).unwrap();
        assert_eq!(sample.shards.len(), 2);

        let (head, _) = get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");

        server.shutdown();
    }

    #[test]
    fn consecutive_scrapes_advance_the_window() {
        let registry = ObsRegistry::shared(ObsConfig::metrics_only(), 1);
        let server = MetricsServer::spawn(Arc::clone(&registry), "127.0.0.1:0").unwrap();
        let addr = server.local_addr();
        let (_, _) = get(addr, "/snapshot"); // baseline
        registry
            .handle(0)
            .count(crate::metrics::CounterKind::Deliveries, 4);
        let (_, body) = get(addr, "/snapshot");
        let sample: crate::snapshot::Sample = serde_json::from_str(&body).unwrap();
        assert!(!sample.first);
        assert_eq!(
            sample.total.delta(crate::metrics::CounterKind::Deliveries),
            4
        );
    }

    #[test]
    fn snapshot_serves_tail_fields_when_enabled() {
        use crate::tail::{ContextSpan, SpecOutcome, TailOutcome};
        let registry = ObsRegistry::shared(ObsConfig::metrics_only().with_tail(true), 1);
        registry.handle(0).record_e2e(
            ctxres_context::ContextId::from_raw(3),
            TailOutcome::Delivered,
            ContextSpan {
                ingress_ns: 0,
                verdict_ns: 10_000,
                decision_ns: 20_000,
                end_ns: 50_000,
            },
            0,
            SpecOutcome::Consumed,
            7.into(),
        );
        let server = MetricsServer::spawn(Arc::clone(&registry), "127.0.0.1:0").unwrap();
        let (_, body) = get(server.local_addr(), "/snapshot");
        let sample: crate::snapshot::Sample = serde_json::from_str(&body).unwrap();
        let tail = sample.tail.expect("tail view rides /snapshot");
        assert_eq!(tail.all.count, 1);
        assert!(tail.all.p99_ns.is_some());
        assert_eq!(tail.snapshot.exemplars().len(), 1);
        server.shutdown();
    }

    #[test]
    fn shutdown_joins_the_accept_loop() {
        let registry = ObsRegistry::shared(ObsConfig::metrics_only(), 1);
        let server = MetricsServer::spawn(Arc::clone(&registry), "127.0.0.1:0").unwrap();
        let addr = server.local_addr();
        server.shutdown();
        // The port is released once the thread is joined: connecting
        // must now fail (nothing is listening).
        assert!(
            TcpStream::connect_timeout(&addr, Duration::from_millis(200)).is_err(),
            "listener thread still alive after shutdown"
        );
    }

    #[test]
    fn drop_joins_the_accept_loop() {
        let registry = ObsRegistry::shared(ObsConfig::metrics_only(), 1);
        let addr = {
            let server = MetricsServer::spawn(Arc::clone(&registry), "127.0.0.1:0").unwrap();
            server.local_addr()
            // Drop here must stop and join, not leak the thread.
        };
        assert!(
            TcpStream::connect_timeout(&addr, Duration::from_millis(200)).is_err(),
            "listener thread leaked past drop"
        );
    }

    #[test]
    fn shutdown_works_for_unspecified_bind_addresses() {
        // Binding 0.0.0.0 yields an unspecified local IP; the shutdown
        // wake-up must still reach the accept loop (via loopback) or
        // this test hangs in join.
        let registry = ObsRegistry::shared(ObsConfig::metrics_only(), 1);
        let server = MetricsServer::spawn(Arc::clone(&registry), "0.0.0.0:0").unwrap();
        assert!(server.local_addr().ip().is_unspecified());
        assert!(!server.wake_addr().ip().is_unspecified());
        server.shutdown();
    }

    #[test]
    fn from_env_is_none_without_the_variable() {
        // The test runner does not export CTXRES_METRICS_ADDR; guard
        // against an ambient value leaking in.
        if std::env::var(METRICS_ADDR_ENV).is_ok() {
            return;
        }
        let registry = ObsRegistry::shared(ObsConfig::metrics_only(), 1);
        assert!(MetricsServer::from_env(&registry).is_none());
    }
}

//! Instrumentation layer for the `ctxres` middleware: life-cycle event
//! tracing, a per-shard metrics registry, and span-style timing hooks.
//!
//! The paper's whole argument hinges on *when* things happen inside the
//! middleware — drop-bad defers discard decisions to "collect more count
//! value information" (§3.3) through the four-state life cycle
//! `Undecided → {Consistent | Bad | Inconsistent}` — yet aggregate
//! end-of-run counters cannot show that mechanism at work. This crate
//! makes the engine visible without slowing it down:
//!
//! * **event tracing** ([`TraceEvent`], [`TraceRecord`]): every state
//!   transition, inconsistency detection, Δ-set insertion/removal,
//!   count-value bump, discard decision and delivery is recorded as a
//!   typed event with logical timestamp, shard id, and context id into a
//!   bounded per-shard ring buffer ([`EventRing`]). Overflow never
//!   stalls the hot path and is never silent — each evicted record bumps
//!   an explicit dropped-events counter;
//! * **provenance** ([`CauseKind`], [`TraceEvent::Caused`],
//!   [`ProvenanceGraph`]): typed cause edges — submission, violation,
//!   Δ membership, count bump, verdict, supersession — ride the same
//!   rings when [`ObsConfig::provenance`] is on, and fold into a
//!   queryable per-context causal DAG explaining every resolution
//!   decision end-to-end;
//! * **metrics registry** ([`ObsRegistry`]): per-shard counters and
//!   fixed-bucket [`Histogram`]s (check latency, batch ingest latency,
//!   use-window residual delay, Δ-set size, queue depth), recorded with
//!   atomics and aggregated across shards without any global lock —
//!   mirroring how `ctxres_middleware::MiddlewareStats` aggregates;
//! * **spans** ([`ObsSpan`]): RAII timing guards around constraint
//!   evaluation, shard routing and resolution. With
//!   [`ObsConfig::disabled`] a handle is a `None` and every hook
//!   compiles down to a branch on it — no clock reads, no allocation —
//!   so tier-1 throughput is unaffected;
//! * **phase profiling** ([`Phase`], [`PhaseGuard`],
//!   [`ProfileSnapshot`]): hierarchical spans over a fixed nine-stage
//!   pipeline taxonomy with exact self-time attribution (child time
//!   subtracted from the parent), per-shard preallocated span stacks
//!   and bounded span rings, and a root-level sampling divisor — opt in
//!   with [`ObsConfig::with_profile`]; export as Chrome trace-event
//!   JSON ([`chrome_trace_json`]) or inferno folded stacks
//!   ([`folded_stacks`]);
//! * **end-to-end tail telemetry** ([`ContextSpan`], [`TailSample`],
//!   [`Exemplar`]): monotonic wall-clock stamps at batch ingress,
//!   constraint verdict, resolution decision and delivery/discard fold
//!   into per-(shard, outcome) histograms with windowed interpolated
//!   p50/p95/p99/p999, a bounded per-shard reservoir of over-p99
//!   exemplars (each carrying its causal ID, packed profiler phase
//!   path, and speculation outcome), speculation-efficiency counters
//!   for the fused batch path, and a wait-versus-service decomposition
//!   of the sharded engine queues — opt in with
//!   [`ObsConfig::with_tail`]; slow batches emit a
//!   [`TraceEvent::SlowBatch`] postmortem when
//!   [`ObsConfig::with_slow_batch_bound`] is set;
//! * **live export** ([`Sampler`], [`render_prometheus`],
//!   [`MetricsServer`]): a sampler turns consecutive registry snapshots
//!   into windowed deltas and per-second rates, and a hand-rolled
//!   `TcpListener` endpoint serves them as Prometheus text exposition
//!   (`/metrics`) and JSON (`/snapshot`) — opt in with
//!   [`ObsConfig::metrics_only`] plus `CTXRES_METRICS_ADDR`.
//!
//! The crate deliberately has no external dependencies (the build runs
//! offline): the facade is built here rather than on `tracing`/`metrics`.
//!
//! # Example
//!
//! ```
//! use ctxres_context::LogicalTime;
//! use ctxres_obs::{MetricKind, ObsConfig, ObsRegistry, TraceEvent};
//!
//! let registry = ObsRegistry::shared(ObsConfig::enabled(), 2);
//! let shard0 = registry.handle(0);
//! shard0.record(
//!     LogicalTime::new(3),
//!     TraceEvent::Delivered { ctx: ctxres_context::ContextId::from_raw(7) },
//! );
//! shard0.observe(MetricKind::QueueDepth, 4);
//! {
//!     let _span = shard0.span(MetricKind::CheckLatency);
//!     // ... timed work ...
//! }
//! let snapshot = registry.snapshot();
//! assert_eq!(snapshot.aggregate().histogram(MetricKind::QueueDepth).count, 1);
//! assert_eq!(registry.drain().len(), 1);
//! assert_eq!(registry.dropped(), 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod export;
mod health;
mod metrics;
mod profile;
mod provenance;
mod registry;
mod ring;
mod serve;
mod slo;
mod snapshot;
mod span;
mod tail;

pub use event::{CauseKind, TraceEvent, TraceRecord, CAUSE_KINDS};
pub use export::{
    counter_metric_name, histogram_metric_name, render_prometheus, PROMETHEUS_CONTENT_TYPE,
};
pub use health::{
    HealthSample, HealthSnapshot, KindHandle, KindHealth, KindQuality, PoolHealth, PoolQuality,
    ShardHealth, DEFAULT_EWMA_ALPHA,
};
pub use metrics::{
    bucket_bound, CounterKind, Histogram, HistogramSnapshot, MetricKind, BUCKETS, COUNTER_KINDS,
    METRIC_KINDS,
};
pub use profile::{
    chrome_trace_json, folded_stacks, parse_folded, validate_trace_json, Phase, PhaseGuard,
    PhaseSample, PhaseStat, ProfileSnapshot, ShardPhaseWindow, ShardPhases, SpanRecord,
    MAX_PHASE_DEPTH, PHASES, SPAN_RING_CAPACITY,
};
pub use provenance::{CauseEdge, NodeId, ProvNode, ProvStats, ProvenanceGraph};
pub use registry::{ObsConfig, ObsRegistry, ObsSnapshot, ShardObs, ShardSnapshot};
pub use ring::EventRing;
pub use serve::{MetricsServer, METRICS_ADDR_ENV};
pub use slo::{
    HealthAlert, SloEngine, SloMetric, SloOp, SloRule, DEFAULT_CLEAR_MARGIN, SLO_METRICS,
    SLO_RULES_ENV,
};
pub use snapshot::{BuildInfo, Sample, Sampler, ShardRates, QUANTILES};
pub use span::ObsSpan;
pub use tail::{
    ContextSpan, Exemplar, OutcomeTail, OutcomeWindow, QueueStats, QueueWindow, ShardTail,
    SpecBatch, SpecOutcome, SpecStats, SpecWindow, TailOutcome, TailSample, TailSnapshot,
    TailWindow, EXEMPLAR_CAPACITY, MAX_TRACKED_WORKERS, SEGMENT_NAMES, TAIL_OUTCOMES,
    TAIL_QUANTILES,
};

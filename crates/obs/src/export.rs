//! Prometheus text exposition (format v0.0.4) of a [`Sample`].
//!
//! Everything is rendered by hand — no exporter crate — because the
//! format is line-oriented and tiny: `name{labels} value`, preceded by
//! `# TYPE` headers. The renderer is deterministic for a deterministic
//! sample (fixed shard order, fixed kind order, buckets emitted up to
//! the last non-empty bound), which is what lets a golden test pin the
//! entire output of a seeded run.
//!
//! Conventions:
//!
//! * counters: `ctxres_<kind>_total{shard="i"}` plus a windowed
//!   `ctxres_<kind>_per_sec{shard="i"}` gauge (rates cover the interval
//!   since the previous scrape — each scrape advances the sampler);
//! * ring health: `ctxres_trace_events_dropped_total` /
//!   `ctxres_trace_events_buffered`;
//! * histograms: `ctxres_<kind>[_<unit>]` with cumulative `_bucket`
//!   lines (`le` = the power-of-two bounds), `_sum`, `_count`, and
//!   precomputed p50/p95/p99 upper bounds as
//!   `..._quantile_bound{q="…"}` gauges. Kinds nothing has recorded are
//!   omitted to keep the exposition proportional to what actually ran.

use crate::health::HealthSample;
use crate::metrics::{bucket_bound, CounterKind, MetricKind, COUNTER_KINDS, METRIC_KINDS};
use crate::profile::PhaseSample;
use crate::snapshot::{BuildInfo, Sample, QUANTILES};
use crate::tail::{TailSample, TailWindow, TAIL_QUANTILES};
use std::fmt::Write as _;

/// The exposition-format content type, for HTTP responses.
pub const PROMETHEUS_CONTENT_TYPE: &str = "text/plain; version=0.0.4";

/// The exported metric name of a counter kind.
pub fn counter_metric_name(kind: CounterKind) -> String {
    format!("ctxres_{}_total", kind.name())
}

/// The exported base metric name of a histogram kind (unit-suffixed for
/// non-count units, Prometheus style).
pub fn histogram_metric_name(kind: MetricKind) -> String {
    match kind.unit() {
        "count" => format!("ctxres_{}", kind.name()),
        unit => format!("ctxres_{}_{unit}", kind.name()),
    }
}

/// A quantile bound as an exposition value: the overflow bucket has no
/// finite bound, so it exports as `+Inf`.
fn quantile_value(bound: u64) -> String {
    if bound == u64::MAX {
        "+Inf".to_owned()
    } else {
        bound.to_string()
    }
}

/// An interpolated quantile estimate as an exposition value: ranks in
/// the overflow bucket estimate to infinity, exported as `+Inf`.
fn quantile_est_value(est: f64) -> String {
    if est.is_infinite() {
        "+Inf".to_owned()
    } else {
        est.to_string()
    }
}

/// Renders a sample as Prometheus text exposition.
pub fn render_prometheus(sample: &Sample) -> String {
    let mut out = String::new();
    let w = &mut out;

    let _ = writeln!(w, "# ctxres telemetry (Prometheus text exposition v0.0.4)");
    let _ = writeln!(w, "# rates cover the window since the previous scrape");
    let _ = writeln!(w, "# TYPE ctxres_obs_shards gauge");
    let _ = writeln!(w, "ctxres_obs_shards {}", sample.shards.len());
    let _ = writeln!(w, "# TYPE ctxres_scrape_window_seconds gauge");
    let _ = writeln!(w, "ctxres_scrape_window_seconds {}", sample.elapsed_secs);

    for kind in COUNTER_KINDS {
        let name = counter_metric_name(kind);
        let _ = writeln!(w, "# TYPE {name} counter");
        for (i, shard) in sample.snapshot.shards.iter().enumerate() {
            let _ = writeln!(w, "{name}{{shard=\"{i}\"}} {}", shard.counter(kind));
        }
        let rate = format!("ctxres_{}_per_sec", kind.name());
        let _ = writeln!(w, "# TYPE {rate} gauge");
        for rates in &sample.shards {
            let _ = writeln!(
                w,
                "{rate}{{shard=\"{}\"}} {}",
                rates.shard,
                rates.rate(kind)
            );
        }
    }

    let _ = writeln!(w, "# TYPE ctxres_trace_events_dropped_total counter");
    for (i, shard) in sample.snapshot.shards.iter().enumerate() {
        let _ = writeln!(
            w,
            "ctxres_trace_events_dropped_total{{shard=\"{i}\"}} {}",
            shard.events_dropped
        );
    }
    let _ = writeln!(w, "# TYPE ctxres_trace_events_buffered gauge");
    for (i, shard) in sample.snapshot.shards.iter().enumerate() {
        let _ = writeln!(
            w,
            "ctxres_trace_events_buffered{{shard=\"{i}\"}} {}",
            shard.events_buffered
        );
    }

    let aggregate = sample.snapshot.aggregate();
    for kind in METRIC_KINDS {
        if aggregate.histogram(kind).count == 0 {
            continue;
        }
        let name = histogram_metric_name(kind);
        let _ = writeln!(w, "# TYPE {name} histogram");
        for (i, shard) in sample.snapshot.shards.iter().enumerate() {
            let h = shard.histogram(kind);
            let last_nonempty = h.buckets[..h.buckets.len().saturating_sub(1)]
                .iter()
                .rposition(|n| *n > 0);
            let mut cum = 0u64;
            if let Some(last) = last_nonempty {
                for (b, n) in h.buckets[..=last].iter().enumerate() {
                    cum += n;
                    let _ = writeln!(
                        w,
                        "{name}_bucket{{shard=\"{i}\",le=\"{}\"}} {cum}",
                        bucket_bound(b)
                    );
                }
            }
            let _ = writeln!(w, "{name}_bucket{{shard=\"{i}\",le=\"+Inf\"}} {}", h.count);
            let _ = writeln!(w, "{name}_sum{{shard=\"{i}\"}} {}", h.sum);
            let _ = writeln!(w, "{name}_count{{shard=\"{i}\"}} {}", h.count);
        }
        let _ = writeln!(w, "# TYPE {name}_quantile_bound gauge");
        for (i, shard) in sample.snapshot.shards.iter().enumerate() {
            let h = shard.histogram(kind);
            for q in QUANTILES {
                if let Some(bound) = h.quantile_bound(q) {
                    let _ = writeln!(
                        w,
                        "{name}_quantile_bound{{shard=\"{i}\",q=\"{q}\"}} {}",
                        quantile_value(bound)
                    );
                }
            }
        }
        let _ = writeln!(w, "# TYPE {name}_quantile_est gauge");
        for (i, shard) in sample.snapshot.shards.iter().enumerate() {
            let h = shard.histogram(kind);
            for q in QUANTILES {
                if let Some(est) = h.quantile_est(q) {
                    let _ = writeln!(
                        w,
                        "{name}_quantile_est{{shard=\"{i}\",q=\"{q}\"}} {}",
                        quantile_est_value(est)
                    );
                }
            }
        }
    }

    // Health telemetry is rendered only when something published it, so
    // runs without the health hooks export byte-identical text (the
    // golden test above never sees these sections).
    if let Some(health) = &sample.health {
        render_health(w, health);
    }

    // End-to-end tail series render only when the tail layer is on and
    // recorded — pre-tail setups export byte-identical text.
    if let Some(tail) = &sample.tail {
        render_tail(w, tail);
    }

    // Phase-profiler series render only when profiling is on and ran,
    // and the build stamp only when one was attached — both keep the
    // golden exposition byte-identical for pre-profiler setups.
    if let Some(phases) = &sample.phases {
        render_phases(w, phases);
    }
    if let Some(build) = &sample.build {
        render_build_info(w, build);
    }

    out
}

/// Renders the phase-profiler sections: cumulative per-(shard, phase)
/// self/total seconds and call counters (phases that never ran are
/// omitted), per-shard root/sampling/ring counters, and the window's
/// cross-shard self-time share per phase.
fn render_phases(w: &mut String, phases: &PhaseSample) {
    let rows: Vec<_> = phases
        .shards
        .iter()
        .flat_map(|s| {
            s.cumulative
                .iter()
                .filter(|p| p.calls > 0)
                .map(move |p| (s.shard, p))
        })
        .collect();
    if !rows.is_empty() {
        let _ = writeln!(w, "# TYPE ctxres_phase_self_seconds_total counter");
        for (i, p) in &rows {
            let _ = writeln!(
                w,
                "ctxres_phase_self_seconds_total{{shard=\"{i}\",phase=\"{}\"}} {}",
                p.phase,
                p.self_ns as f64 / 1e9
            );
        }
        let _ = writeln!(w, "# TYPE ctxres_phase_total_seconds_total counter");
        for (i, p) in &rows {
            let _ = writeln!(
                w,
                "ctxres_phase_total_seconds_total{{shard=\"{i}\",phase=\"{}\"}} {}",
                p.phase,
                p.total_ns as f64 / 1e9
            );
        }
        let _ = writeln!(w, "# TYPE ctxres_phase_calls_total counter");
        for (i, p) in &rows {
            let _ = writeln!(
                w,
                "ctxres_phase_calls_total{{shard=\"{i}\",phase=\"{}\"}} {}",
                p.phase, p.calls
            );
        }
    }

    let _ = writeln!(w, "# TYPE ctxres_phase_roots_total counter");
    for s in &phases.shards {
        let _ = writeln!(
            w,
            "ctxres_phase_roots_total{{shard=\"{}\"}} {}",
            s.shard, s.roots
        );
    }
    let _ = writeln!(w, "# TYPE ctxres_phase_sampled_roots_total counter");
    for s in &phases.shards {
        let _ = writeln!(
            w,
            "ctxres_phase_sampled_roots_total{{shard=\"{}\"}} {}",
            s.shard, s.sampled_roots
        );
    }
    let _ = writeln!(w, "# TYPE ctxres_phase_spans_dropped_total counter");
    for s in &phases.shards {
        let _ = writeln!(
            w,
            "ctxres_phase_spans_dropped_total{{shard=\"{}\"}} {}",
            s.shard, s.spans_dropped
        );
    }

    let window_self: u64 = phases.window_total.iter().map(|p| p.self_ns).sum();
    if window_self > 0 {
        let _ = writeln!(w, "# TYPE ctxres_phase_self_share gauge");
        for p in phases.window_total.iter().filter(|p| p.calls > 0) {
            let _ = writeln!(
                w,
                "ctxres_phase_self_share{{phase=\"{}\"}} {}",
                p.phase,
                p.self_ns as f64 / window_self as f64
            );
        }
    }
}

/// Renders the end-to-end tail sections: cumulative per-(shard,
/// outcome) latency summaries (microsecond-bucketed), windowed
/// interpolated quantiles per outcome, exemplar-capture counters and
/// thresholds, and the speculation/queue efficiency series.
fn render_tail(w: &mut String, tail: &TailSample) {
    let rows: Vec<_> = tail
        .snapshot
        .shards
        .iter()
        .flat_map(|s| {
            s.outcomes
                .iter()
                .filter(|o| o.hist.count > 0)
                .map(move |o| (s.shard, o))
        })
        .collect();
    if !rows.is_empty() {
        let _ = writeln!(w, "# TYPE ctxres_e2e_latency_us histogram");
        for (i, o) in &rows {
            let name = o.outcome.name();
            let _ = writeln!(
                w,
                "ctxres_e2e_latency_us_bucket{{shard=\"{i}\",outcome=\"{name}\",le=\"+Inf\"}} {}",
                o.hist.count
            );
            let _ = writeln!(
                w,
                "ctxres_e2e_latency_us_sum{{shard=\"{i}\",outcome=\"{name}\"}} {}",
                o.hist.sum
            );
            let _ = writeln!(
                w,
                "ctxres_e2e_latency_us_count{{shard=\"{i}\",outcome=\"{name}\"}} {}",
                o.hist.count
            );
        }
    }

    // Windowed interpolated quantiles, per outcome and across all.
    let quantiles = |win: &TailWindow| {
        [
            (TAIL_QUANTILES[0], win.p50_ns),
            (TAIL_QUANTILES[1], win.p95_ns),
            (TAIL_QUANTILES[2], win.p99_ns),
            (TAIL_QUANTILES[3], win.p999_ns),
        ]
    };
    let windows: Vec<(&str, &TailWindow)> = tail
        .outcomes
        .iter()
        .filter(|o| o.window.count > 0)
        .map(|o| (o.outcome.name(), &o.window))
        .chain((tail.all.count > 0).then_some(("all", &tail.all)))
        .collect();
    if !windows.is_empty() {
        let _ = writeln!(w, "# TYPE ctxres_e2e_window_quantile_ns gauge");
        for (name, win) in &windows {
            for (q, v) in quantiles(win) {
                if let Some(v) = v {
                    let _ = writeln!(
                        w,
                        "ctxres_e2e_window_quantile_ns{{outcome=\"{name}\",q=\"{q}\"}} {v}"
                    );
                }
            }
        }
    }

    let capturing: Vec<_> = tail
        .snapshot
        .shards
        .iter()
        .filter(|s| s.captured > 0)
        .collect();
    if !capturing.is_empty() {
        let _ = writeln!(w, "# TYPE ctxres_e2e_exemplars_captured_total counter");
        for s in &capturing {
            let _ = writeln!(
                w,
                "ctxres_e2e_exemplars_captured_total{{shard=\"{}\"}} {}",
                s.shard, s.captured
            );
        }
        let _ = writeln!(w, "# TYPE ctxres_e2e_capture_threshold_ns gauge");
        for s in &capturing {
            let v = if s.threshold_ns == u64::MAX {
                "+Inf".to_owned()
            } else {
                s.threshold_ns.to_string()
            };
            let _ = writeln!(
                w,
                "ctxres_e2e_capture_threshold_ns{{shard=\"{}\"}} {v}",
                s.shard
            );
        }
    }

    let speculating: Vec<_> = tail
        .snapshot
        .shards
        .iter()
        .filter(|s| !s.spec.is_empty())
        .collect();
    if !speculating.is_empty() {
        for (field, get) in [
            (
                "batches",
                &(|s: &crate::tail::SpecStats| s.batches) as &dyn Fn(_) -> u64,
            ),
            ("groups_speculated", &|s: &crate::tail::SpecStats| {
                s.groups_speculated
            }),
            ("consumed", &|s: &crate::tail::SpecStats| s.consumed),
            ("wasted_dirty", &|s: &crate::tail::SpecStats| s.wasted_dirty),
            ("inline_checks", &|s: &crate::tail::SpecStats| {
                s.inline_checks
            }),
        ] {
            let _ = writeln!(w, "# TYPE ctxres_spec_{field}_total counter");
            for s in &speculating {
                let _ = writeln!(
                    w,
                    "ctxres_spec_{field}_total{{shard=\"{}\"}} {}",
                    s.shard,
                    get(&s.spec)
                );
            }
        }
        let _ = writeln!(w, "# TYPE ctxres_spec_worker_busy_seconds_total counter");
        for s in &speculating {
            for (worker, ns) in s.spec.worker_busy_ns.iter().enumerate() {
                if *ns > 0 {
                    let _ = writeln!(
                        w,
                        "ctxres_spec_worker_busy_seconds_total{{shard=\"{}\",worker=\"{worker}\"}} {}",
                        s.shard,
                        *ns as f64 / 1e9
                    );
                }
            }
        }
        if let Some(rate) = tail.spec.consumed_rate {
            let _ = writeln!(w, "# TYPE ctxres_spec_consumed_rate gauge");
            let _ = writeln!(w, "ctxres_spec_consumed_rate {rate}");
        }
        if let Some(rate) = tail.spec.wasted_rate {
            let _ = writeln!(w, "# TYPE ctxres_spec_wasted_rate gauge");
            let _ = writeln!(w, "ctxres_spec_wasted_rate {rate}");
        }
    }

    let queued: Vec<_> = tail
        .snapshot
        .shards
        .iter()
        .filter(|s| !s.queue.is_empty())
        .collect();
    if !queued.is_empty() {
        let _ = writeln!(w, "# TYPE ctxres_queue_wait_seconds_total counter");
        for s in &queued {
            let _ = writeln!(
                w,
                "ctxres_queue_wait_seconds_total{{shard=\"{}\"}} {}",
                s.shard,
                s.queue.wait_ns as f64 / 1e9
            );
        }
        let _ = writeln!(w, "# TYPE ctxres_queue_service_seconds_total counter");
        for s in &queued {
            let _ = writeln!(
                w,
                "ctxres_queue_service_seconds_total{{shard=\"{}\"}} {}",
                s.shard,
                s.queue.service_ns as f64 / 1e9
            );
        }
        if let Some(share) = tail.queue.wait_share {
            let _ = writeln!(w, "# TYPE ctxres_queue_wait_share gauge");
            let _ = writeln!(w, "ctxres_queue_wait_share {share}");
        }
    }
}

/// Renders the build identity gauge (constant 1; identity rides the
/// labels, the standard `*_build_info` convention).
fn render_build_info(w: &mut String, build: &BuildInfo) {
    let escape = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
    let _ = writeln!(w, "# TYPE ctxres_build_info gauge");
    let _ = writeln!(
        w,
        "ctxres_build_info{{commit=\"{}\",host=\"{}\"}} 1",
        escape(&build.commit),
        escape(&build.host)
    );
}

/// Renders the health sections: arena gauges per shard, cumulative
/// per-(shard, kind) quality counters, windowed cross-shard estimators,
/// and the currently firing SLO rules.
fn render_health(w: &mut String, health: &HealthSample) {
    let shards_with_pool: Vec<_> = health
        .snapshot
        .shards
        .iter()
        .filter_map(|s| s.pool.map(|p| (s.shard, p)))
        .collect();
    if !shards_with_pool.is_empty() {
        let _ = writeln!(w, "# TYPE ctxres_pool_live_slots gauge");
        for (i, p) in &shards_with_pool {
            let _ = writeln!(
                w,
                "ctxres_pool_live_slots{{shard=\"{i}\"}} {}",
                p.live_slots
            );
        }
        let _ = writeln!(w, "# TYPE ctxres_pool_free_slots gauge");
        for (i, p) in &shards_with_pool {
            let _ = writeln!(
                w,
                "ctxres_pool_free_slots{{shard=\"{i}\"}} {}",
                p.free_slots
            );
        }
        let _ = writeln!(w, "# TYPE ctxres_pool_generation_recycles_total counter");
        for (i, p) in &shards_with_pool {
            let _ = writeln!(
                w,
                "ctxres_pool_generation_recycles_total{{shard=\"{i}\"}} {}",
                p.recycles
            );
        }
    }

    let kind_rows: Vec<_> = health
        .snapshot
        .shards
        .iter()
        .flat_map(|s| s.kinds.iter().map(move |k| (s.shard, k)))
        .collect();
    if !kind_rows.is_empty() {
        for (field, get) in [
            (
                "ingested",
                &(|k: &crate::health::KindHealth| k.ingested) as &dyn Fn(_) -> u64,
            ),
            ("delivered", &|k: &crate::health::KindHealth| k.delivered),
            ("discarded", &|k: &crate::health::KindHealth| k.discarded),
            ("expired", &|k: &crate::health::KindHealth| k.expired),
            ("violations", &|k: &crate::health::KindHealth| k.violations),
        ] {
            let _ = writeln!(w, "# TYPE ctxres_health_{field}_total counter");
            for (i, k) in &kind_rows {
                let _ = writeln!(
                    w,
                    "ctxres_health_{field}_total{{shard=\"{i}\",kind=\"{}\"}} {}",
                    k.kind,
                    get(k)
                );
            }
        }
        let _ = writeln!(w, "# TYPE ctxres_health_kind_live gauge");
        for (i, k) in &kind_rows {
            let _ = writeln!(
                w,
                "ctxres_health_kind_live{{shard=\"{i}\",kind=\"{}\"}} {}",
                k.kind, k.live
            );
        }
    }

    // Windowed cross-shard estimators: one row per kind, rendered only
    // when the window defined them (no traffic, no line).
    for (metric, get) in [
        (
            "discard_rate",
            &(|k: &crate::health::KindQuality| k.discard_rate) as &dyn Fn(_) -> Option<f64>,
        ),
        ("violation_rate", &|k: &crate::health::KindQuality| {
            k.violation_rate
        }),
        ("use_rate", &|k: &crate::health::KindQuality| k.use_rate),
        ("use_rate_ewma", &|k: &crate::health::KindQuality| {
            k.use_rate_ewma
        }),
        ("staleness", &|k: &crate::health::KindQuality| k.staleness),
    ] {
        let rows: Vec<_> = health
            .kinds
            .iter()
            .filter_map(|k| get(k).map(|v| (&k.kind, v)))
            .collect();
        if rows.is_empty() {
            continue;
        }
        let _ = writeln!(w, "# TYPE ctxres_health_{metric} gauge");
        for (kind, v) in rows {
            let _ = writeln!(w, "ctxres_health_{metric}{{kind=\"{kind}\"}} {v}");
        }
    }
    let ages: Vec<_> = health
        .kinds
        .iter()
        .filter_map(|k| k.oldest_age_ticks.map(|v| (&k.kind, v)))
        .collect();
    if !ages.is_empty() {
        let _ = writeln!(w, "# TYPE ctxres_health_oldest_age_ticks gauge");
        for (kind, v) in ages {
            let _ = writeln!(w, "ctxres_health_oldest_age_ticks{{kind=\"{kind}\"}} {v}");
        }
    }

    if !health.active_alerts.is_empty() {
        let _ = writeln!(w, "# TYPE ctxres_slo_firing gauge");
        for rule in &health.active_alerts {
            let escaped = rule.replace('\\', "\\\\").replace('"', "\\\"");
            let _ = writeln!(w, "ctxres_slo_firing{{rule=\"{escaped}\"}} 1");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{ObsConfig, ObsRegistry};
    use crate::snapshot::Sampler;
    use std::sync::Arc;

    /// A small deterministic registry: two shards, seeded counters, one
    /// histogram with known observations.
    fn seeded_sample() -> Sample {
        let registry = ObsRegistry::shared(ObsConfig::metrics_only(), 2);
        let mut sampler = Sampler::new(Arc::clone(&registry));
        sampler.sample_after(0.0);
        let a = registry.handle(0);
        let b = registry.handle(1);
        a.count(CounterKind::Ingested, 40);
        a.count(CounterKind::Deliveries, 30);
        a.count(CounterKind::Discards, 10);
        a.count(CounterKind::Detections, 12);
        b.count(CounterKind::Ingested, 20);
        a.observe(MetricKind::DeltaSize, 1);
        a.observe(MetricKind::DeltaSize, 3);
        a.observe(MetricKind::DeltaSize, 100);
        b.observe(MetricKind::QueueDepth, 7);
        sampler.sample_after(2.0)
    }

    /// The golden test: the full exposition of the seeded run, pinned
    /// byte for byte. If you change the export format, update this
    /// string *deliberately* — scrapers and the CI artifact diff on it.
    #[test]
    fn golden_exposition_for_a_seeded_run() {
        let text = render_prometheus(&seeded_sample());
        let expected = "\
# ctxres telemetry (Prometheus text exposition v0.0.4)
# rates cover the window since the previous scrape
# TYPE ctxres_obs_shards gauge
ctxres_obs_shards 2
# TYPE ctxres_scrape_window_seconds gauge
ctxres_scrape_window_seconds 2
# TYPE ctxres_events_recorded_total counter
ctxres_events_recorded_total{shard=\"0\"} 0
ctxres_events_recorded_total{shard=\"1\"} 0
# TYPE ctxres_events_recorded_per_sec gauge
ctxres_events_recorded_per_sec{shard=\"0\"} 0
ctxres_events_recorded_per_sec{shard=\"1\"} 0
# TYPE ctxres_events_dropped_total counter
ctxres_events_dropped_total{shard=\"0\"} 0
ctxres_events_dropped_total{shard=\"1\"} 0
# TYPE ctxres_events_dropped_per_sec gauge
ctxres_events_dropped_per_sec{shard=\"0\"} 0
ctxres_events_dropped_per_sec{shard=\"1\"} 0
# TYPE ctxres_detections_total counter
ctxres_detections_total{shard=\"0\"} 12
ctxres_detections_total{shard=\"1\"} 0
# TYPE ctxres_detections_per_sec gauge
ctxres_detections_per_sec{shard=\"0\"} 6
ctxres_detections_per_sec{shard=\"1\"} 0
# TYPE ctxres_discards_total counter
ctxres_discards_total{shard=\"0\"} 10
ctxres_discards_total{shard=\"1\"} 0
# TYPE ctxres_discards_per_sec gauge
ctxres_discards_per_sec{shard=\"0\"} 5
ctxres_discards_per_sec{shard=\"1\"} 0
# TYPE ctxres_deliveries_total counter
ctxres_deliveries_total{shard=\"0\"} 30
ctxres_deliveries_total{shard=\"1\"} 0
# TYPE ctxres_deliveries_per_sec gauge
ctxres_deliveries_per_sec{shard=\"0\"} 15
ctxres_deliveries_per_sec{shard=\"1\"} 0
# TYPE ctxres_ingested_total counter
ctxres_ingested_total{shard=\"0\"} 40
ctxres_ingested_total{shard=\"1\"} 20
# TYPE ctxres_ingested_per_sec gauge
ctxres_ingested_per_sec{shard=\"0\"} 20
ctxres_ingested_per_sec{shard=\"1\"} 10
# TYPE ctxres_situation_evals_total counter
ctxres_situation_evals_total{shard=\"0\"} 0
ctxres_situation_evals_total{shard=\"1\"} 0
# TYPE ctxres_situation_evals_per_sec gauge
ctxres_situation_evals_per_sec{shard=\"0\"} 0
ctxres_situation_evals_per_sec{shard=\"1\"} 0
# TYPE ctxres_situation_cache_skips_total counter
ctxres_situation_cache_skips_total{shard=\"0\"} 0
ctxres_situation_cache_skips_total{shard=\"1\"} 0
# TYPE ctxres_situation_cache_skips_per_sec gauge
ctxres_situation_cache_skips_per_sec{shard=\"0\"} 0
ctxres_situation_cache_skips_per_sec{shard=\"1\"} 0
# TYPE ctxres_compiled_evals_total counter
ctxres_compiled_evals_total{shard=\"0\"} 0
ctxres_compiled_evals_total{shard=\"1\"} 0
# TYPE ctxres_compiled_evals_per_sec gauge
ctxres_compiled_evals_per_sec{shard=\"0\"} 0
ctxres_compiled_evals_per_sec{shard=\"1\"} 0
# TYPE ctxres_prov_edges_total counter
ctxres_prov_edges_total{shard=\"0\"} 0
ctxres_prov_edges_total{shard=\"1\"} 0
# TYPE ctxres_prov_edges_per_sec gauge
ctxres_prov_edges_per_sec{shard=\"0\"} 0
ctxres_prov_edges_per_sec{shard=\"1\"} 0
# TYPE ctxres_prov_nodes_total counter
ctxres_prov_nodes_total{shard=\"0\"} 0
ctxres_prov_nodes_total{shard=\"1\"} 0
# TYPE ctxres_prov_nodes_per_sec gauge
ctxres_prov_nodes_per_sec{shard=\"0\"} 0
ctxres_prov_nodes_per_sec{shard=\"1\"} 0
# TYPE ctxres_pred_memo_hits_total counter
ctxres_pred_memo_hits_total{shard=\"0\"} 0
ctxres_pred_memo_hits_total{shard=\"1\"} 0
# TYPE ctxres_pred_memo_hits_per_sec gauge
ctxres_pred_memo_hits_per_sec{shard=\"0\"} 0
ctxres_pred_memo_hits_per_sec{shard=\"1\"} 0
# TYPE ctxres_pred_memo_misses_total counter
ctxres_pred_memo_misses_total{shard=\"0\"} 0
ctxres_pred_memo_misses_total{shard=\"1\"} 0
# TYPE ctxres_pred_memo_misses_per_sec gauge
ctxres_pred_memo_misses_per_sec{shard=\"0\"} 0
ctxres_pred_memo_misses_per_sec{shard=\"1\"} 0
# TYPE ctxres_fused_batch_evals_total counter
ctxres_fused_batch_evals_total{shard=\"0\"} 0
ctxres_fused_batch_evals_total{shard=\"1\"} 0
# TYPE ctxres_fused_batch_evals_per_sec gauge
ctxres_fused_batch_evals_per_sec{shard=\"0\"} 0
ctxres_fused_batch_evals_per_sec{shard=\"1\"} 0
# TYPE ctxres_trace_events_dropped_total counter
ctxres_trace_events_dropped_total{shard=\"0\"} 0
ctxres_trace_events_dropped_total{shard=\"1\"} 0
# TYPE ctxres_trace_events_buffered gauge
ctxres_trace_events_buffered{shard=\"0\"} 0
ctxres_trace_events_buffered{shard=\"1\"} 0
# TYPE ctxres_delta_size histogram
ctxres_delta_size_bucket{shard=\"0\",le=\"1\"} 1
ctxres_delta_size_bucket{shard=\"0\",le=\"2\"} 1
ctxres_delta_size_bucket{shard=\"0\",le=\"4\"} 2
ctxres_delta_size_bucket{shard=\"0\",le=\"8\"} 2
ctxres_delta_size_bucket{shard=\"0\",le=\"16\"} 2
ctxres_delta_size_bucket{shard=\"0\",le=\"32\"} 2
ctxres_delta_size_bucket{shard=\"0\",le=\"64\"} 2
ctxres_delta_size_bucket{shard=\"0\",le=\"128\"} 3
ctxres_delta_size_bucket{shard=\"0\",le=\"+Inf\"} 3
ctxres_delta_size_sum{shard=\"0\"} 104
ctxres_delta_size_count{shard=\"0\"} 3
ctxres_delta_size_bucket{shard=\"1\",le=\"+Inf\"} 0
ctxres_delta_size_sum{shard=\"1\"} 0
ctxres_delta_size_count{shard=\"1\"} 0
# TYPE ctxres_delta_size_quantile_bound gauge
ctxres_delta_size_quantile_bound{shard=\"0\",q=\"0.5\"} 4
ctxres_delta_size_quantile_bound{shard=\"0\",q=\"0.95\"} 128
ctxres_delta_size_quantile_bound{shard=\"0\",q=\"0.99\"} 128
# TYPE ctxres_delta_size_quantile_est gauge
ctxres_delta_size_quantile_est{shard=\"0\",q=\"0.5\"} 4
ctxres_delta_size_quantile_est{shard=\"0\",q=\"0.95\"} 128
ctxres_delta_size_quantile_est{shard=\"0\",q=\"0.99\"} 128
# TYPE ctxres_queue_depth histogram
ctxres_queue_depth_bucket{shard=\"0\",le=\"+Inf\"} 0
ctxres_queue_depth_sum{shard=\"0\"} 0
ctxres_queue_depth_count{shard=\"0\"} 0
ctxres_queue_depth_bucket{shard=\"1\",le=\"1\"} 0
ctxres_queue_depth_bucket{shard=\"1\",le=\"2\"} 0
ctxres_queue_depth_bucket{shard=\"1\",le=\"4\"} 0
ctxres_queue_depth_bucket{shard=\"1\",le=\"8\"} 1
ctxres_queue_depth_bucket{shard=\"1\",le=\"+Inf\"} 1
ctxres_queue_depth_sum{shard=\"1\"} 7
ctxres_queue_depth_count{shard=\"1\"} 1
# TYPE ctxres_queue_depth_quantile_bound gauge
ctxres_queue_depth_quantile_bound{shard=\"1\",q=\"0.5\"} 8
ctxres_queue_depth_quantile_bound{shard=\"1\",q=\"0.95\"} 8
ctxres_queue_depth_quantile_bound{shard=\"1\",q=\"0.99\"} 8
# TYPE ctxres_queue_depth_quantile_est gauge
ctxres_queue_depth_quantile_est{shard=\"1\",q=\"0.5\"} 8
ctxres_queue_depth_quantile_est{shard=\"1\",q=\"0.95\"} 8
ctxres_queue_depth_quantile_est{shard=\"1\",q=\"0.99\"} 8
";
        assert_eq!(text, expected, "exposition drifted from the golden copy");
    }

    /// Like [`seeded_sample`] but with health telemetry published and a
    /// breaching SLO rule attached, so every health section renders.
    fn seeded_health_sample() -> Sample {
        let registry = ObsRegistry::shared(ObsConfig::metrics_only(), 2);
        let engine = crate::slo::SloEngine::from_spec("discard_rate > 0.3 for 1").unwrap();
        let mut sampler = Sampler::new(Arc::clone(&registry)).with_slo(engine);
        let a = registry.handle(0);
        let b = registry.handle(1);
        let rfid = a.kind_handle("rfid");
        rfid.ingested(10);
        rfid.delivered(4);
        rfid.discarded(6);
        rfid.violations(2);
        rfid.set_watermark(3, Some(40), Some(64));
        let loc = b.kind_handle("location");
        loc.ingested(8);
        loc.delivered(8);
        a.publish_pool(12, 4, 5, 100);
        b.publish_pool(9, 7, 2, 100);
        sampler.sample_after(0.0);
        rfid.ingested(10);
        rfid.discarded(6);
        rfid.delivered(4);
        sampler.sample_after(2.0)
    }

    /// The health sections only appear once something published health
    /// telemetry, and then carry the arena gauges, per-kind quality
    /// counters, windowed estimators, and firing SLO rules.
    #[test]
    fn health_sections_render_only_when_published() {
        let plain = render_prometheus(&seeded_sample());
        assert!(
            !plain.contains("ctxres_pool_live_slots"),
            "unpublished health must not render"
        );

        let text = render_prometheus(&seeded_health_sample());
        for needle in [
            "ctxres_pool_live_slots{shard=\"0\"} 12",
            "ctxres_pool_free_slots{shard=\"1\"} 7",
            "ctxres_pool_generation_recycles_total{shard=\"0\"} 5",
            "ctxres_health_ingested_total{shard=\"0\",kind=\"rfid\"} 20",
            "ctxres_health_delivered_total{shard=\"1\",kind=\"location\"} 8",
            "ctxres_health_kind_live{shard=\"0\",kind=\"rfid\"} 3",
            "ctxres_health_discard_rate{kind=\"rfid\"} 0.6",
            "ctxres_health_use_rate{kind=\"rfid\"} 0.4",
            "ctxres_health_use_rate_ewma{kind=\"location\"} 1",
            "ctxres_health_staleness{kind=\"rfid\"} 0.625",
            "ctxres_health_oldest_age_ticks{kind=\"rfid\"} 40",
            "ctxres_slo_firing{rule=\"discard_rate > 0.3 for 1\"} 1",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    /// Health lines obey the same exposition rules as the core metrics.
    #[test]
    fn health_lines_are_valid_exposition() {
        assert_valid_exposition(&render_prometheus(&seeded_health_sample()));
    }

    /// Like [`seeded_sample`] but with profiling on, phases run, and a
    /// build stamp attached, so every new section renders.
    fn seeded_profiled_sample() -> Sample {
        use crate::profile::Phase;
        let registry = ObsRegistry::shared(ObsConfig::metrics_only().with_profile(1), 2);
        let mut sampler = Sampler::new(Arc::clone(&registry)).with_build_info(crate::BuildInfo {
            commit: "abc1234".into(),
            host: "bench\"host\"".into(),
        });
        sampler.sample_after(0.0);
        let h = registry.handle(0);
        {
            let _root = h.phase(Phase::Ingest);
            let h2 = registry.handle(0);
            let _child = h2.phase(Phase::ConstraintCheck);
        }
        sampler.sample_after(2.0)
    }

    /// The phase/build sections only appear once profiling ran / a
    /// stamp was attached, and then carry per-(shard, phase) series,
    /// sampling counters, windowed shares, and the identity gauge.
    #[test]
    fn phase_and_build_sections_render_only_when_present() {
        let plain = render_prometheus(&seeded_sample());
        assert!(!plain.contains("ctxres_phase_"), "no profiling, no phases");
        assert!(!plain.contains("ctxres_build_info"), "no stamp, no gauge");

        let text = render_prometheus(&seeded_profiled_sample());
        for needle in [
            "ctxres_phase_self_seconds_total{shard=\"0\",phase=\"ingest\"}",
            "ctxres_phase_total_seconds_total{shard=\"0\",phase=\"constraint_check\"}",
            "ctxres_phase_calls_total{shard=\"0\",phase=\"ingest\"} 1",
            "ctxres_phase_roots_total{shard=\"0\"} 1",
            "ctxres_phase_sampled_roots_total{shard=\"0\"} 1",
            "ctxres_phase_spans_dropped_total{shard=\"1\"} 0",
            "ctxres_phase_self_share{phase=\"ingest\"}",
            "ctxres_build_info{commit=\"abc1234\",host=\"bench\\\"host\\\"\"} 1",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    /// Phase/build lines obey the exposition rules too.
    #[test]
    fn phase_lines_are_valid_exposition() {
        assert_valid_exposition(&render_prometheus(&seeded_profiled_sample()));
    }

    /// Like [`seeded_sample`] but with the tail layer on and spans,
    /// speculation accounting, and queue timings recorded, so every
    /// tail section renders.
    fn seeded_tail_sample() -> Sample {
        use crate::tail::{ContextSpan, SpecBatch, SpecOutcome, TailOutcome};
        use ctxres_context::{ContextId, LogicalTime};
        let registry = ObsRegistry::shared(ObsConfig::metrics_only().with_tail(true), 2);
        let mut sampler = Sampler::new(Arc::clone(&registry));
        sampler.sample_after(0.0);
        let a = registry.handle(0);
        for (i, total_us) in [(1u64, 50u64), (2, 100), (3, 4000)] {
            a.record_e2e(
                ContextId::from_raw(i),
                TailOutcome::Delivered,
                ContextSpan {
                    ingress_ns: 0,
                    verdict_ns: total_us * 400,
                    decision_ns: total_us * 600,
                    end_ns: total_us * 1000,
                },
                0,
                SpecOutcome::Consumed,
                LogicalTime::new(i),
            );
        }
        a.record_spec_batch(&SpecBatch {
            groups_speculated: 10,
            consumed: 6,
            wasted_dirty: 2,
            inline_checks: 2,
            workers_used: 3,
            worker_busy_ns: vec![2_000_000, 1_000_000, 500_000],
        });
        let b = registry.handle(1);
        b.record_queue_wait(3_000_000);
        b.record_queue_service(9_000_000);
        sampler.sample_after(2.0)
    }

    /// The tail sections only appear once the tail layer recorded, and
    /// then carry the per-outcome latency series, windowed quantiles,
    /// exemplar counters, and speculation/queue efficiency.
    #[test]
    fn tail_sections_render_only_when_recorded() {
        let plain = render_prometheus(&seeded_sample());
        assert!(!plain.contains("ctxres_e2e_"), "tail off, no e2e series");
        assert!(!plain.contains("ctxres_spec_"), "tail off, no spec series");

        let text = render_prometheus(&seeded_tail_sample());
        for needle in [
            "ctxres_e2e_latency_us_count{shard=\"0\",outcome=\"delivered\"} 3",
            "ctxres_e2e_latency_us_sum{shard=\"0\",outcome=\"delivered\"} 4150",
            "ctxres_e2e_window_quantile_ns{outcome=\"delivered\",q=\"0.5\"}",
            "ctxres_e2e_window_quantile_ns{outcome=\"all\",q=\"0.99\"}",
            "ctxres_e2e_exemplars_captured_total{shard=\"0\"} 3",
            "ctxres_e2e_capture_threshold_ns{shard=\"0\"}",
            "ctxres_spec_groups_speculated_total{shard=\"0\"} 10",
            "ctxres_spec_consumed_total{shard=\"0\"} 6",
            "ctxres_spec_worker_busy_seconds_total{shard=\"0\",worker=\"0\"} 0.002",
            "ctxres_spec_consumed_rate 0.6",
            "ctxres_spec_wasted_rate 0.2",
            "ctxres_queue_wait_seconds_total{shard=\"1\"} 0.003",
            "ctxres_queue_service_seconds_total{shard=\"1\"} 0.009",
            "ctxres_queue_wait_share 0.25",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    /// Tail lines obey the exposition rules too.
    #[test]
    fn tail_lines_are_valid_exposition() {
        assert_valid_exposition(&render_prometheus(&seeded_tail_sample()));
    }

    /// Every non-comment line must parse as `name{labels} value` (or a
    /// bare `name value`), with a numeric (or ±Inf) value.
    #[test]
    fn every_line_is_valid_exposition() {
        assert_valid_exposition(&render_prometheus(&seeded_sample()));
    }

    fn assert_valid_exposition(text: &str) {
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let (series, value) = line.rsplit_once(' ').expect("name value");
            assert!(
                value == "+Inf" || value.parse::<f64>().is_ok(),
                "bad value in {line:?}"
            );
            let name = series.split('{').next().unwrap();
            assert!(
                name.chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
                "bad metric name in {line:?}"
            );
            assert!(name.starts_with("ctxres_"), "unprefixed metric {line:?}");
            if let Some(rest) = series.strip_prefix(name) {
                if !rest.is_empty() {
                    assert!(
                        rest.starts_with('{') && rest.ends_with('}'),
                        "bad label block in {line:?}"
                    );
                }
            }
        }
    }

    /// Cumulative `_bucket` lines are monotone and end at `_count`.
    #[test]
    fn histogram_buckets_are_cumulative() {
        let text = render_prometheus(&seeded_sample());
        let bucket_values: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("ctxres_delta_size_bucket{shard=\"0\""))
            .map(|l| l.rsplit_once(' ').unwrap().1.parse().unwrap())
            .collect();
        assert!(!bucket_values.is_empty());
        assert!(
            bucket_values.windows(2).all(|w| w[0] <= w[1]),
            "{bucket_values:?}"
        );
        assert_eq!(*bucket_values.last().unwrap(), 3, "le=+Inf equals count");
    }

    #[test]
    fn metric_names_are_unit_suffixed() {
        assert_eq!(
            histogram_metric_name(MetricKind::CheckLatency),
            "ctxres_check_latency_ns"
        );
        assert_eq!(
            histogram_metric_name(MetricKind::UseResidualDelay),
            "ctxres_use_residual_delay_ticks"
        );
        assert_eq!(
            histogram_metric_name(MetricKind::QueueDepth),
            "ctxres_queue_depth"
        );
        assert_eq!(
            counter_metric_name(CounterKind::Ingested),
            "ctxres_ingested_total"
        );
    }
}

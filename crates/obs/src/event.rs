//! Typed life-cycle trace events.

use ctxres_context::{ContextId, ContextState};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One thing that happened inside the middleware.
///
/// Context ids are shard-local (each shard engine numbers its own
/// pool); a [`TraceRecord`] pairs the event with its shard id, so
/// `(shard, ctx)` is globally unique within one run's trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A context entered the middleware (a context addition change).
    Received {
        /// The id the pool assigned.
        ctx: ContextId,
        /// The context's kind name.
        kind: String,
        /// The context's subject.
        subject: String,
    },
    /// A context moved through the Fig. 8 life cycle.
    StateChanged {
        /// The transitioning context.
        ctx: ContextId,
        /// The state it left.
        from: ContextState,
        /// The state it entered.
        to: ContextState,
    },
    /// Detection found an inconsistency.
    Detected {
        /// The violated constraint's name.
        constraint: String,
        /// The participating contexts.
        contexts: Vec<ContextId>,
    },
    /// An inconsistency entered the tracked set Δ (drop-bad §3.2).
    DeltaInserted {
        /// The violated constraint's name.
        constraint: String,
        /// The participating contexts.
        contexts: Vec<ContextId>,
    },
    /// An inconsistency was resolved and left Δ.
    DeltaRemoved {
        /// The violated constraint's name.
        constraint: String,
        /// The participating contexts.
        contexts: Vec<ContextId>,
    },
    /// A context's count value rose (it joined another tracked
    /// inconsistency).
    CountBumped {
        /// The context whose count changed.
        ctx: ContextId,
        /// Its new count value.
        count: u64,
    },
    /// A context was marked `Bad` — a deferred discard (Fig. 7 Part 2).
    MarkedBad {
        /// The marked context.
        ctx: ContextId,
    },
    /// A context was discarded (set `Inconsistent`).
    Discarded {
        /// The discarded context.
        ctx: ContextId,
    },
    /// A context was delivered to applications.
    Delivered {
        /// The delivered context.
        ctx: ContextId,
    },
    /// A use request found the context expired (neither delivered nor
    /// blamed).
    Expired {
        /// The expired context.
        ctx: ContextId,
    },
}

impl TraceEvent {
    /// A short machine-friendly tag naming the event variant.
    pub fn tag(&self) -> &'static str {
        match self {
            TraceEvent::Received { .. } => "received",
            TraceEvent::StateChanged { .. } => "state",
            TraceEvent::Detected { .. } => "detected",
            TraceEvent::DeltaInserted { .. } => "delta+",
            TraceEvent::DeltaRemoved { .. } => "delta-",
            TraceEvent::CountBumped { .. } => "count",
            TraceEvent::MarkedBad { .. } => "bad",
            TraceEvent::Discarded { .. } => "discard",
            TraceEvent::Delivered { .. } => "deliver",
            TraceEvent::Expired { .. } => "expired",
        }
    }

    /// The context this event is primarily about, when it has one
    /// (detection and Δ events relate several contexts; see
    /// [`TraceEvent::contexts`]).
    pub fn primary_ctx(&self) -> Option<ContextId> {
        match self {
            TraceEvent::Received { ctx, .. }
            | TraceEvent::StateChanged { ctx, .. }
            | TraceEvent::CountBumped { ctx, .. }
            | TraceEvent::MarkedBad { ctx }
            | TraceEvent::Discarded { ctx }
            | TraceEvent::Delivered { ctx }
            | TraceEvent::Expired { ctx } => Some(*ctx),
            TraceEvent::Detected { .. }
            | TraceEvent::DeltaInserted { .. }
            | TraceEvent::DeltaRemoved { .. } => None,
        }
    }

    /// Every context the event involves.
    pub fn contexts(&self) -> Vec<ContextId> {
        match self {
            TraceEvent::Detected { contexts, .. }
            | TraceEvent::DeltaInserted { contexts, .. }
            | TraceEvent::DeltaRemoved { contexts, .. } => contexts.clone(),
            other => other.primary_ctx().into_iter().collect(),
        }
    }
}

/// `ctx#5, ctx#8` — comma-joined Display ids for event lines.
fn join_ids(contexts: &[ContextId]) -> String {
    let mut out = String::new();
    for (i, ctx) in contexts.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = fmt::Write::write_fmt(&mut out, format_args!("{ctx}"));
    }
    out
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::Received { ctx, kind, subject } => {
                write!(f, "received {ctx} ({kind} of {subject:?})")
            }
            TraceEvent::StateChanged { ctx, from, to } => write!(f, "{ctx} {from} -> {to}"),
            TraceEvent::Detected {
                constraint,
                contexts,
            } => write!(f, "detected {constraint} among {}", join_ids(contexts)),
            TraceEvent::DeltaInserted {
                constraint,
                contexts,
            } => write!(f, "Δ += {constraint} [{}]", join_ids(contexts)),
            TraceEvent::DeltaRemoved {
                constraint,
                contexts,
            } => write!(f, "Δ -= {constraint} [{}]", join_ids(contexts)),
            TraceEvent::CountBumped { ctx, count } => write!(f, "count({ctx}) = {count}"),
            TraceEvent::MarkedBad { ctx } => write!(f, "{ctx} marked bad"),
            TraceEvent::Discarded { ctx } => write!(f, "{ctx} discarded"),
            TraceEvent::Delivered { ctx } => write!(f, "{ctx} delivered"),
            TraceEvent::Expired { ctx } => write!(f, "{ctx} expired on use"),
        }
    }
}

/// A trace event stamped with where and when it happened.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// The shard whose engine emitted the event.
    pub shard: u32,
    /// Per-shard monotonic sequence number (ties on `at` preserve
    /// emission order within a shard).
    pub seq: u64,
    /// The logical clock tick at emission.
    pub at: u64,
    /// What happened.
    pub event: TraceEvent,
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "t{:<6} shard {:<2} #{:<5} {}",
            self.at, self.shard, self.seq, self.event
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u64) -> ContextId {
        ContextId::from_raw(n)
    }

    #[test]
    fn tags_and_contexts() {
        let e = TraceEvent::Detected {
            constraint: "speed".into(),
            contexts: vec![id(1), id(2)],
        };
        assert_eq!(e.tag(), "detected");
        assert_eq!(e.primary_ctx(), None);
        assert_eq!(e.contexts(), vec![id(1), id(2)]);

        let d = TraceEvent::Discarded { ctx: id(7) };
        assert_eq!(d.primary_ctx(), Some(id(7)));
        assert_eq!(d.contexts(), vec![id(7)]);
    }

    #[test]
    fn display_is_compact() {
        let r = TraceRecord {
            shard: 1,
            seq: 4,
            at: 9,
            event: TraceEvent::MarkedBad { ctx: id(3) },
        };
        let s = r.to_string();
        assert!(s.contains("shard 1"), "{s}");
        assert!(s.contains("marked bad"), "{s}");
    }
}
